//! Cross-jobs equivalence properties for the parallel campaign runner.
//!
//! For randomly drawn kernels and campaign parameters — including
//! nested recovery-window faults — the *entire* `CampaignRunResult`
//! (every case record, the content hash, the CSV exports, the merged
//! metrics registry, the progress log, the recovery-energy bits) must be
//! byte-identical for every worker count. A scheduling-dependent merge,
//! a shard-local counter that escapes, or a case handed to the wrong
//! worker state all fail here.

use acr::{CampaignRunResult, Experiment, ExperimentSpec};
use acr_ckpt::CampaignConfig;
use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
use acr_rng::check::forall;
use acr_sim::{FaultKind, FaultKindSet, FaultStorm};

/// A small store-heavy kernel with per-thread disjoint buffers; `mult`
/// perturbs the data flow so different draws exercise different Slices.
fn kernel(threads: usize, iters: u64, mult: u64) -> Program {
    let mut b = ProgramBuilder::new(threads);
    b.set_mem_bytes(1 << 20);
    for t in 0..threads as u32 {
        let base = u64::from(t) * 131072;
        let tb = b.thread(t);
        tb.imm(Reg(10), base);
        let outer = tb.begin_loop(Reg(8), Reg(9), 10);
        let inner = tb.begin_loop(Reg(1), Reg(2), iters);
        tb.alui(AluOp::Mul, Reg(3), Reg(1), mult);
        tb.alu(AluOp::Xor, Reg(3), Reg(3), Reg(8));
        tb.alui(AluOp::Mul, Reg(4), Reg(1), 8);
        tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
        tb.store(Reg(3), Reg(5), 0);
        tb.end_loop(inner);
        tb.end_loop(outer);
        tb.halt();
    }
    b.build()
}

fn run(program: &Program, threads: u32, cfg: &CampaignConfig) -> CampaignRunResult {
    let spec = ExperimentSpec::default()
        .with_cores(threads)
        .with_checkpoints(cfg.num_checkpoints);
    let mut exp = Experiment::new(program.clone(), spec).expect("valid kernel");
    exp.run_fault_campaign(cfg, true).expect("campaign runs")
}

/// Asserts every observable of two runs matches, not just the hash.
fn assert_equivalent(seq: &CampaignRunResult, par: &CampaignRunResult, jobs: usize) {
    assert_eq!(seq.report, par.report, "jobs={jobs}");
    assert_eq!(
        seq.report.content_hash(),
        par.report.content_hash(),
        "jobs={jobs}"
    );
    assert_eq!(seq.report.csv(), par.report.csv(), "jobs={jobs}");
    assert_eq!(
        seq.report.escalation_csv(),
        par.report.escalation_csv(),
        "jobs={jobs}"
    );
    assert_eq!(seq.report.case_log, par.report.case_log, "jobs={jobs}");
    assert_eq!(seq.label, par.label, "jobs={jobs}");
    assert_eq!(
        seq.recovery_energy_joules.to_bits(),
        par.recovery_energy_joules.to_bits(),
        "jobs={jobs}"
    );
}

/// Plain campaigns: the report is jobs-invariant for every drawn
/// configuration.
#[test]
fn campaign_report_is_jobs_invariant() {
    forall("campaign_report_is_jobs_invariant", 4, 0xACAB, |rng| {
        let threads = rng.gen_range(1..=2u32);
        let program = kernel(
            threads as usize,
            rng.gen_range(30..=60u64),
            rng.gen_range(3..=17u64) | 1,
        );
        let mut cfg = CampaignConfig {
            seed: rng.next_u64(),
            count: rng.gen_range(5..=8u32),
            kinds: FaultKindSet::recoverable(),
            num_checkpoints: rng.gen_range(4..=7u32),
            progress: true,
            ..CampaignConfig::default()
        };
        cfg.jobs = 1;
        let seq = run(&program, threads, &cfg);
        assert!(!seq.report.case_log.is_empty(), "progress log was on");
        for jobs in [2usize, 4, 8] {
            cfg.jobs = jobs;
            let par = run(&program, threads, &cfg);
            assert_equivalent(&seq, &par, jobs);
        }
    });
}

/// Nested-fault campaigns: recovery-window faults stress the escalation
/// paths (retries, generation fallbacks, degraded entries), whose
/// per-case data extends the content hash — all still jobs-invariant.
#[test]
fn recovery_fault_campaign_is_jobs_invariant() {
    forall(
        "recovery_fault_campaign_is_jobs_invariant",
        3,
        0xF00D,
        |rng| {
            let threads = rng.gen_range(1..=2u32);
            let program = kernel(
                threads as usize,
                rng.gen_range(30..=50u64),
                rng.gen_range(3..=13u64) | 1,
            );
            let mut cfg = CampaignConfig {
                seed: rng.next_u64(),
                count: rng.gen_range(4..=6u32),
                kinds: FaultKindSet::recoverable(),
                num_checkpoints: rng.gen_range(4..=6u32),
                recovery_faults: true,
                generations: 2,
                progress: true,
                ..CampaignConfig::default()
            };
            cfg.jobs = 1;
            let seq = run(&program, threads, &cfg);
            assert!(
                seq.report.escalation_csv().lines().count() > 1,
                "nested faults must produce escalation rows"
            );
            for jobs in [2usize, 4, 8] {
                cfg.jobs = jobs;
                let par = run(&program, threads, &cfg);
                assert_equivalent(&seq, &par, jobs);
            }
        },
    );
}

/// Adversarial campaigns: multi-bit bursts, stuck-at cells (which
/// re-corrupt every write until recovery rewrites the line) and
/// storm-clustered placement feed the same case-index-ordered merge —
/// the report must stay jobs-invariant for them too.
#[test]
fn adversarial_campaign_is_jobs_invariant() {
    forall(
        "adversarial_campaign_is_jobs_invariant",
        3,
        0xBAD_B17,
        |rng| {
            let threads = rng.gen_range(1..=2u32);
            let program = kernel(
                threads as usize,
                rng.gen_range(30..=50u64),
                rng.gen_range(3..=13u64) | 1,
            );
            let stormy = rng.gen_range(0..=1u32) == 1;
            let mut cfg = CampaignConfig {
                seed: rng.next_u64(),
                count: rng.gen_range(5..=8u32),
                kinds: FaultKindSet {
                    reg: false,
                    pc: false,
                    mem: true,
                    burst: true,
                    stuck: true,
                    crash: false,
                },
                storm: stormy.then(|| FaultStorm {
                    mean_gap: rng.gen_range(50..=400u64),
                    max_burst: rng.gen_range(2..=5u32),
                }),
                num_checkpoints: rng.gen_range(4..=7u32),
                progress: true,
                ..CampaignConfig::default()
            };
            cfg.jobs = 1;
            let seq = run(&program, threads, &cfg);
            assert!(
                seq.report.cases.iter().any(|c| matches!(
                    c.fault.kind,
                    FaultKind::MemBurst { .. } | FaultKind::StuckAt { .. }
                )),
                "the adversarial kinds must actually reach the plan"
            );
            // Every case lands in exactly one outcome class.
            let (recovered, due, sdc, hang) = seq.report.class_counts();
            assert_eq!(recovered + due + sdc + hang, seq.report.cases.len() as u64);
            for jobs in [2usize, 4, 8] {
                cfg.jobs = jobs;
                let par = run(&program, threads, &cfg);
                assert_equivalent(&seq, &par, jobs);
            }
        },
    );
}
