//! Observability invariants: tracing is byte-deterministic per seed,
//! the disabled sink perturbs nothing, and the Chrome export round-trips
//! through our own parser with properly nested spans.

use acr::{Experiment, ExperimentSpec, RunResult};
use acr_ckpt::CampaignConfig;
use acr_mem::CoreId;
use acr_sim::{Fault, FaultKind, FaultKindSet};
use acr_trace::{chrome_trace_json, validate_chrome_trace, SharedSink};
use acr_workloads::{generate, Benchmark, WorkloadConfig};

fn spec_for(bench: Benchmark, threads: u32) -> ExperimentSpec {
    ExperimentSpec::default()
        .with_cores(threads)
        .with_checkpoints(8)
        .with_threshold(bench.default_threshold())
}

/// Runs ACR under one injected recoverable fault with the given spec and
/// returns the result (the report carries recoveries and, when sampling
/// is on, the metrics series).
fn faulted_run(bench: Benchmark, spec: ExperimentSpec) -> RunResult {
    let p = generate(
        bench,
        &WorkloadConfig::default().with_threads(2).with_scale(0.03),
    );
    let mut exp = Experiment::new(p, spec).expect("valid program");
    let total = exp.total_work().expect("baseline runs");
    let fault = Fault {
        at_progress: total / 2,
        core: CoreId(0),
        kind: FaultKind::RegBitFlip { reg: 5, bit: 17 },
    };
    exp.run_reckpt_faulted(vec![fault]).expect("faulted run")
}

fn traced_export(bench: Benchmark, detail: bool) -> String {
    let (sink, events) = SharedSink::memory();
    let spec = spec_for(bench, 2)
        .with_trace(sink.with_detail(detail))
        .with_sample_interval(2000);
    let run = faulted_run(bench, spec);
    let report = run.report.as_ref().expect("engine runs carry a report");
    let recorded = events.borrow().events().to_vec();
    chrome_trace_json(&recorded, Some(&report.series))
}

/// Same seed, same options → the exported trace file is byte-identical.
#[test]
fn same_seed_traces_are_byte_identical() {
    let a = traced_export(Benchmark::Is, false);
    let b = traced_export(Benchmark::Is, false);
    assert_eq!(a, b, "trace export must be byte-deterministic");
    assert!(!a.is_empty());
}

/// A traced run and an untraced run of the same configuration retire the
/// same instructions in the same number of cycles with identical memory
/// statistics — the sink is purely observational, even at detail level.
#[test]
fn tracing_does_not_perturb_the_run() {
    let untraced = faulted_run(Benchmark::Is, spec_for(Benchmark::Is, 2));
    let (sink, _events) = SharedSink::memory();
    let traced = faulted_run(
        Benchmark::Is,
        spec_for(Benchmark::Is, 2)
            .with_trace(sink.with_detail(true))
            .with_sample_interval(1000),
    );
    assert_eq!(untraced.cycles, traced.cycles, "cycles perturbed");
    assert_eq!(untraced.sim, traced.sim, "instruction mix perturbed");
    assert_eq!(untraced.mem, traced.mem, "memory stats perturbed");
    assert_eq!(
        untraced.checkpoint_bytes(),
        traced.checkpoint_bytes(),
        "checkpoint traffic perturbed"
    );
}

/// Campaign sampling is observational too: the content hash with
/// sampling on equals the hash with sampling off.
#[test]
fn sampling_does_not_change_campaign_hash() {
    let run = |sample_interval: u64| {
        let p = generate(
            Benchmark::Is,
            &WorkloadConfig::default().with_threads(2).with_scale(0.03),
        );
        let spec = spec_for(Benchmark::Is, 2);
        let mut exp = Experiment::new(p, spec).expect("valid program");
        let cfg = CampaignConfig {
            seed: 42,
            count: 12,
            kinds: FaultKindSet::recoverable(),
            sample_interval,
            ..CampaignConfig::default()
        };
        exp.run_fault_campaign(&cfg, true).expect("campaign")
    };
    let off = run(0);
    let on = run(4000);
    assert_eq!(
        off.report.content_hash(),
        on.report.content_hash(),
        "sampling must not perturb campaign outcomes"
    );
    assert!(off.report.baseline_series.samples().is_empty());
    assert!(!on.report.baseline_series.samples().is_empty());
}

/// The Chrome export parses with our own JSON parser, its spans nest
/// cleanly per track, and the load-bearing span names are all present —
/// including the recovery spans with Slice-replay sub-spans the injected
/// fault must produce.
#[test]
fn chrome_export_round_trips_with_nested_spans() {
    let text = traced_export(Benchmark::Cg, false);
    let summary = validate_chrome_trace(&text).expect("valid Chrome trace");
    assert!(summary.spans > 0, "no complete events");
    assert!(summary.counters > 0, "no counter samples");
    assert!(summary.count("ckpt") >= 1, "no checkpoint spans");
    assert!(
        summary.count("ckpt.interval") >= 1,
        "no checkpoint-interval spans"
    );
    assert_eq!(summary.count("recovery"), 1, "expected one recovery span");
    assert_eq!(
        summary.count("recovery.replay"),
        1,
        "recovery must carry a Slice-replay sub-span"
    );
    assert_eq!(summary.count("recovery.restore"), 1);
    assert_eq!(summary.count("fault.inject"), 1, "missing fault marker");
}
