//! Flight-recorder properties: the fixed-capacity ring retains exactly
//! the last K events in order under arbitrary wraparound, and attaching
//! the recorder to a campaign is purely observational — recorder-on and
//! recorder-off runs produce identical reports and content hashes.

use acr::{Experiment, ExperimentSpec};
use acr_ckpt::CampaignConfig;
use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
use acr_rng::check::forall;
use acr_sim::FaultKindSet;
use acr_trace::{FlightRecorder, Ring, TraceEvent, TraceSink};

fn event(i: u64, track: u32) -> TraceEvent {
    TraceEvent::counter("evt", "test", track, i).with_arg("i", i)
}

/// Ring wraparound: after pushing N events into a capacity-K ring, the
/// ring holds exactly the last `min(N, K)` events in push order, reports
/// `total == N`, and counts every evicted event as dropped.
#[test]
fn ring_retains_exactly_the_last_k_events_in_order() {
    forall(
        "ring_retains_exactly_the_last_k_events_in_order",
        64,
        0x0F11_6000,
        |rng| {
            let cap = rng.gen_range(1..33u64) as usize;
            let n = rng.gen_range(0..200u64);
            let mut ring = Ring::new(cap);
            for i in 0..n {
                ring.push(event(i, 0));
            }
            let kept = (n as usize).min(cap);
            let got = ring.events_in_order();
            assert_eq!(got.len(), kept);
            assert_eq!(ring.total(), n);
            assert_eq!(ring.dropped(), n - kept as u64);
            for (k, ev) in got.iter().enumerate() {
                let expect = n - kept as u64 + k as u64;
                assert_eq!(ev.cycle, expect, "slot {k} holds the wrong event");
            }
        },
    );
}

/// Routing: core-track events land in their core's ring, engine/mem
/// tracks in the global ring — and both wrap independently.
#[test]
fn recorder_routes_by_track_and_wraps_independently() {
    forall(
        "recorder_routes_by_track_and_wraps_independently",
        32,
        0x0F11_6001,
        |rng| {
            let cores = rng.gen_range(1..4u64) as usize;
            let cap = rng.gen_range(1..9u64) as usize;
            let mut rec = FlightRecorder::new(cores, cap, cap * 2);
            let n = rng.gen_range(1..60u64);
            for i in 0..n {
                let track = (i % (cores as u64 + 1)) as u32;
                let track = if track == cores as u32 { 1000 } else { track };
                rec.record(&event(i, track));
            }
            let ring_total: u64 = (0..cores).map(|c| rec.core_ring(c).total()).sum::<u64>()
                + rec.global_ring().total();
            assert_eq!(ring_total, n, "every event is routed somewhere");
            for c in 0..cores {
                for ev in rec.core_ring(c).events_in_order() {
                    assert_eq!(ev.track, c as u32);
                }
            }
            for ev in rec.global_ring().events_in_order() {
                assert!(ev.track as usize >= cores);
            }
            // The merged timeline is cycle-ordered.
            let merged = rec.merged_timeline();
            assert!(merged.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        },
    );
}

/// A recomputable-store kernel (same shape as the recovery proptests) so
/// campaigns exercise checkpoints, omission and recovery.
fn kernel(threads: u32, iters: u64) -> Program {
    let mut b = ProgramBuilder::new(threads as usize);
    b.set_mem_bytes(1 << 20);
    for t in 0..threads {
        let base = 4096 + u64::from(t) * 65536;
        let tb = b.thread(t);
        tb.imm(Reg(10), base);
        let l = tb.begin_loop(Reg(1), Reg(2), iters);
        tb.alui(AluOp::Mul, Reg(3), Reg(1), 13);
        tb.alui(AluOp::And, Reg(4), Reg(1), 127);
        tb.alui(AluOp::Mul, Reg(4), Reg(4), 8);
        tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
        tb.store(Reg(3), Reg(5), 0);
        tb.end_loop(l);
        tb.halt();
    }
    b.build()
}

/// The recorder is observational: over random kernels, seeds and fault
/// mixes (including unrecoverable mem flips), recorder-on and
/// recorder-off campaigns agree on every case record, the summary, and
/// the content hash — the determinism contract behind the pinned CI
/// hashes.
#[test]
fn recorder_on_and_off_campaigns_are_identical() {
    forall(
        "recorder_on_and_off_campaigns_are_identical",
        8,
        0x0F11_6002,
        |rng| {
            let threads = rng.gen_range(1..3u32);
            let iters = rng.gen_range(60..120u64);
            let amnesic = rng.gen_bool();
            let kinds = if rng.gen_bool() {
                FaultKindSet::recoverable()
            } else {
                FaultKindSet {
                    reg: false,
                    pc: false,
                    mem: true,
                    burst: false,
                    stuck: false,
                    crash: false,
                }
            };
            let program = kernel(threads, iters);
            let spec = ExperimentSpec::default()
                .with_cores(threads)
                .with_checkpoints(5)
                .with_oracle(true);
            let run = |recorder: bool| {
                let cfg = CampaignConfig {
                    seed: 0xF11,
                    count: 6,
                    kinds,
                    num_checkpoints: 4,
                    recorder,
                    ..CampaignConfig::default()
                };
                let mut exp =
                    Experiment::new(program.clone(), spec.clone()).expect("valid program");
                exp.run_fault_campaign(&cfg, amnesic).expect("campaign")
            };
            let on = run(true);
            let off = run(false);
            assert_eq!(on.report.cases, off.report.cases);
            assert_eq!(on.report.summary(), off.report.summary());
            assert_eq!(on.report.content_hash(), off.report.content_hash());
            // Only the postmortem rings may differ: recorder-off bundles
            // carry no rings, recorder-on bundles carry them per core + 1.
            assert_eq!(on.report.postmortems.len(), off.report.postmortems.len());
            for (b_on, b_off) in on.report.postmortems.iter().zip(&off.report.postmortems) {
                assert_eq!(b_on.rings.len(), threads as usize + 1);
                assert!(b_off.rings.is_empty());
                assert_eq!(b_on.probable_cause, b_off.probable_cause);
            }
        },
    );
}

/// Attaching a live sink backed by the recorder never allocates after
/// construction: the rings are pre-sized and pushes overwrite in place.
#[test]
fn shared_sink_feeds_the_recorder() {
    let (sink, rec) = FlightRecorder::shared(2);
    assert!(sink.enabled());
    sink.emit(event(1, 0));
    sink.emit(event(2, 1));
    sink.emit(event(3, 1000));
    let rec = rec.borrow();
    assert_eq!(rec.core_ring(0).total(), 1);
    assert_eq!(rec.core_ring(1).total(), 1);
    assert_eq!(rec.global_ring().total(), 1);
    assert_eq!(rec.merged_timeline().len(), 3);
}
