//! Bit-for-bit reproducibility: the simulator is deterministic by design
//! (explicit core interleaving, seeded generators), so identical
//! configurations must produce identical cycles, energy and reports.

use acr::{Experiment, ExperimentSpec};
use acr_workloads::{generate, Benchmark, WorkloadConfig};

fn run_pair(bench: Benchmark, errors: u32) -> (u64, f64, u64) {
    let p = generate(
        bench,
        &WorkloadConfig {
            threads: 4,
            scale: 0.15,
            seed: 9,
        },
    );
    let spec = ExperimentSpec::default()
        .with_cores(4)
        .with_checkpoints(5)
        .with_threshold(bench.default_threshold());
    let mut exp = Experiment::new(p, spec).expect("valid");
    let r = exp.run_reckpt(errors).expect("run");
    (
        r.cycles,
        r.energy.total_joules(),
        r.checkpoint_bytes(),
    )
}

#[test]
fn identical_runs_are_bit_identical() {
    for errors in [0u32, 2] {
        let a = run_pair(Benchmark::Sp, errors);
        let b = run_pair(Benchmark::Sp, errors);
        assert_eq!(a.0, b.0, "cycles differ");
        assert!((a.1 - b.1).abs() < 1e-18, "energy differs");
        assert_eq!(a.2, b.2, "checkpoint bytes differ");
    }
}

#[test]
fn different_seeds_differ() {
    let p1 = generate(
        Benchmark::Sp,
        &WorkloadConfig {
            threads: 2,
            scale: 0.15,
            seed: 1,
        },
    );
    let p2 = generate(
        Benchmark::Sp,
        &WorkloadConfig {
            threads: 2,
            scale: 0.15,
            seed: 2,
        },
    );
    assert_ne!(p1, p2);
}
