//! Bit-for-bit reproducibility: the simulator is deterministic by design
//! (explicit core interleaving, seeded generators), so identical
//! configurations must produce identical cycles, energy and reports.

use acr::{CampaignRunResult, Experiment, ExperimentSpec};
use acr_ckpt::CampaignConfig;
use acr_sim::FaultKindSet;
use acr_workloads::{generate, Benchmark, WorkloadConfig};

fn run_pair(bench: Benchmark, errors: u32) -> (u64, f64, u64) {
    let p = generate(
        bench,
        &WorkloadConfig {
            threads: 4,
            scale: 0.15,
            seed: 9,
        },
    );
    let spec = ExperimentSpec::default()
        .with_cores(4)
        .with_checkpoints(5)
        .with_threshold(bench.default_threshold());
    let mut exp = Experiment::new(p, spec).expect("valid");
    let r = exp.run_reckpt(errors).expect("run");
    (r.cycles, r.energy.total_joules(), r.checkpoint_bytes())
}

#[test]
fn identical_runs_are_bit_identical() {
    for errors in [0u32, 2] {
        let a = run_pair(Benchmark::Sp, errors);
        let b = run_pair(Benchmark::Sp, errors);
        assert_eq!(a.0, b.0, "cycles differ");
        assert!((a.1 - b.1).abs() < 1e-18, "energy differs");
        assert_eq!(a.2, b.2, "checkpoint bytes differ");
    }
}

fn run_campaign_once(seed: u64) -> CampaignRunResult {
    let p = generate(
        Benchmark::Is,
        &WorkloadConfig {
            threads: 2,
            scale: 0.05,
            seed: 5,
        },
    );
    let spec = ExperimentSpec::default()
        .with_cores(2)
        .with_threshold(Benchmark::Is.default_threshold());
    let mut exp = Experiment::new(p, spec).expect("valid");
    let cfg = CampaignConfig {
        seed,
        count: 30,
        kinds: FaultKindSet::all(),
        ..CampaignConfig::default()
    };
    exp.run_fault_campaign(&cfg, true).expect("campaign")
}

/// Two identically-seeded fault campaigns produce identical per-case
/// records, identical CSVs, the same content hash, and bit-identical
/// recovery energy.
#[test]
fn identical_campaigns_are_bit_identical() {
    let a = run_campaign_once(42);
    let b = run_campaign_once(42);
    assert_eq!(a.report, b.report);
    assert_eq!(a.report.csv(), b.report.csv());
    assert_eq!(a.report.content_hash(), b.report.content_hash());
    assert_eq!(
        a.recovery_energy_joules.to_bits(),
        b.recovery_energy_joules.to_bits(),
        "recovery energy differs"
    );

    // And the hash actually discriminates: a different campaign seed
    // plans different faults.
    let c = run_campaign_once(43);
    assert_ne!(a.report.content_hash(), c.report.content_hash());
}

#[test]
fn different_seeds_differ() {
    let p1 = generate(
        Benchmark::Sp,
        &WorkloadConfig {
            threads: 2,
            scale: 0.15,
            seed: 1,
        },
    );
    let p2 = generate(
        Benchmark::Sp,
        &WorkloadConfig {
            threads: 2,
            scale: 0.15,
            seed: 2,
        },
    );
    assert_ne!(p1, p2);
}
