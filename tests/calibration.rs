//! Calibration regression tests: the paper's qualitative *shapes* must
//! hold at reduced scale, so a workload or model change that destroys the
//! reproduction fails CI rather than being discovered in a figure run.
//!
//! All bounds are deliberately loose — they pin orderings and bands, not
//! exact percentages (EXPERIMENTS.md records the full-scale values).

use acr::{Experiment, ExperimentSpec};
use acr_ckpt::Scheme;
use acr_workloads::{generate, Benchmark, WorkloadConfig};

const SCALE: f64 = 0.5;
const THREADS: u32 = 8;
/// Checkpoints scale with the ROI so intervals keep the same relationship
/// to the kernels' sweeps as at full scale (25 checkpoints, scale 1.0).
const CHECKPOINTS: u32 = 12;

fn experiment(bench: Benchmark) -> Experiment {
    let program = generate(
        bench,
        &WorkloadConfig::default()
            .with_threads(THREADS)
            .with_scale(SCALE),
    );
    let spec = ExperimentSpec::default()
        .with_cores(THREADS)
        .with_checkpoints(CHECKPOINTS)
        .with_threshold(bench.default_threshold());
    Experiment::new(program, spec).expect("valid workload")
}

fn size_reduction(bench: Benchmark, threshold: usize) -> f64 {
    let mut exp = experiment(bench);
    let mut spec = exp.spec().clone();
    spec.slicer.threshold = threshold;
    exp.set_spec(spec);
    exp.run_reckpt(0)
        .expect("runs")
        .report
        .expect("report")
        .overall_reduction_pct()
}

#[test]
fn fig9_shape_is_near_top_cg_smallest() {
    // At reduced scale `is` and `dc` (the two high-coverage kernels) may
    // swap; `is` must stay in the top two and `cg` must stay last.
    let mut reds = Vec::new();
    for b in Benchmark::ALL {
        reds.push((b, size_reduction(b, b.default_threshold())));
    }
    let is = reds.iter().find(|(b, _)| *b == Benchmark::Is).unwrap().1;
    let cg = reds.iter().find(|(b, _)| *b == Benchmark::Cg).unwrap().1;
    let above_is = reds.iter().filter(|(_, r)| *r > is).count();
    assert!(
        above_is <= 1,
        "is ({is:.1}) must be in the top two: {reds:?}"
    );
    for (b, r) in &reds {
        assert!(
            cg <= *r,
            "cg ({cg:.1}) must be the smallest, {b} has {r:.1}"
        );
    }
    assert!(is > 45.0, "is reduction {is:.1} too low");
    assert!(cg < 15.0, "cg reduction {cg:.1} too high");
}

#[test]
fn table2_bands_hold() {
    // cg: low at 10, jumps by 20-30 (the paper's most distinctive band).
    let cg10 = size_reduction(Benchmark::Cg, 10);
    let cg30 = size_reduction(Benchmark::Cg, 30);
    assert!(
        cg30 > cg10 + 30.0,
        "cg band jump missing: {cg10:.1}→{cg30:.1}"
    );
    // mg: the step is between 20 and 30.
    let mg20 = size_reduction(Benchmark::Mg, 20);
    let mg30 = size_reduction(Benchmark::Mg, 30);
    assert!(
        mg30 > mg20 + 30.0,
        "mg band jump missing: {mg20:.1}→{mg30:.1}"
    );
    // Monotone in threshold for every benchmark.
    for b in [Benchmark::Bt, Benchmark::Lu, Benchmark::Sp, Benchmark::Ft] {
        let lo = size_reduction(b, 10);
        let hi = size_reduction(b, 50);
        assert!(hi >= lo, "{b}: threshold increase reduced coverage");
    }
}

#[test]
fn fig6_orderings_hold() {
    // `is` must show the largest time reduction; `cg` must have the
    // smallest checkpoint overhead.
    let mut best = (Benchmark::Bt, f64::MIN);
    let mut cg_oh = 0.0;
    let mut min_other_oh = f64::MAX;
    for b in Benchmark::ALL {
        let mut exp = experiment(b);
        let no = exp.run_no_ckpt().expect("no");
        let c = exp.run_ckpt(0).expect("ckpt");
        let r = exp.run_reckpt(0).expect("reckpt");
        let t_red = 100.0 * (c.cycles as f64 - r.cycles as f64) / c.cycles as f64;
        if t_red > best.1 {
            best = (b, t_red);
        }
        let oh = c.time_overhead_pct(&no);
        if b == Benchmark::Cg {
            cg_oh = oh;
        } else {
            min_other_oh = min_other_oh.min(oh);
        }
        assert!(
            oh > 5.0,
            "{b}: checkpointing must cost something ({oh:.1}%)"
        );
    }
    assert!(
        matches!(best.0, Benchmark::Is | Benchmark::Dc),
        "is or dc must benefit most, got {} ({:.1}%)",
        best.0,
        best.1
    );
    assert!(
        cg_oh < min_other_oh,
        "cg ({cg_oh:.1}%) must have the smallest checkpoint overhead (next: {min_other_oh:.1}%)"
    );
}

#[test]
fn fig13_roles_hold() {
    // All-to-all benchmarks must gain nothing from the local scheme;
    // group-local ones must gain meaningfully.
    let ratio = |b: Benchmark| {
        let program = generate(
            b,
            &WorkloadConfig::default()
                .with_threads(THREADS)
                .with_scale(SCALE),
        );
        let spec = ExperimentSpec::default()
            .with_cores(THREADS)
            .with_checkpoints(CHECKPOINTS)
            .with_threshold(b.default_threshold());
        let mut glob = Experiment::new(program.clone(), spec.clone()).expect("valid");
        let mut loc =
            Experiment::new(program, spec.with_scheme(Scheme::LocalCoordinated)).expect("valid");
        loc.run_ckpt(0).expect("local").cycles as f64
            / glob.run_ckpt(0).expect("global").cycles as f64
    };
    for b in [Benchmark::Bt, Benchmark::Cg] {
        let r = ratio(b);
        assert!(r > 0.97, "{b}: local must not beat global ({r:.3})");
    }
    for b in [Benchmark::Ft, Benchmark::Is, Benchmark::Mg] {
        let r = ratio(b);
        assert!(r < 0.9, "{b}: local must win ({r:.3})");
    }
}

#[test]
fn edp_reductions_roughly_double_time_reductions() {
    // The paper's EDP reductions are ≈2× its time reductions (energy and
    // time fall together).
    let mut exp = experiment(Benchmark::Is);
    let c = exp.run_ckpt(0).expect("ckpt");
    let r = exp.run_reckpt(0).expect("reckpt");
    let t_red = 100.0 * (c.cycles as f64 - r.cycles as f64) / c.cycles as f64;
    let edp_red = r.edp_reduction_pct(&c);
    assert!(edp_red > 1.5 * t_red, "EDP {edp_red:.1} vs time {t_red:.1}");
    assert!(edp_red < 2.5 * t_red, "EDP {edp_red:.1} vs time {t_red:.1}");
}
