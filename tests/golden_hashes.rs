//! Golden campaign content hashes.
//!
//! These tests replicate `acr_cli inject`'s exact campaign construction —
//! workload list, per-workload fault split, seed offsets, spec and
//! campaign defaults, and the FNV-1a fold of per-workload content hashes
//! into the combined hash — and pin the resulting values. The pins serve
//! two masters:
//!
//! * **Reproducibility regression**: any change to fault planning, the
//!   timing model, recovery, or report hashing shows up here as a hash
//!   mismatch instead of silently shifting every published number.
//! * **Cross-jobs equivalence**: the campaigns run with `jobs > 1`, so a
//!   merge-order bug in the parallel runner would change the hash away
//!   from the value pinned by the (sequential) seed runs.
//!
//! The 1000-fault pins match `acr_cli inject --seed 42 --faults 1000`
//! (plus `--recovery-faults`) and EXPERIMENTS.md, but a debug-profile run
//! costs minutes, so they ride only in release test runs
//! (`cargo test --release`); CI also checks them through the CLI itself.

use acr::{run_campaign_sweep, CampaignSweepItem, ExperimentSpec};
use acr_ckpt::CampaignConfig;
use acr_sim::FaultKindSet;
use acr_trace::Fnv1a;
use acr_workloads::{generate, Benchmark, WorkloadConfig};

const THREADS: u32 = 4;
const SCALE: f64 = 0.05;
const BENCHES: [Benchmark; 3] = [Benchmark::Is, Benchmark::Cg, Benchmark::Mg];

/// Mirrors `acr_cli inject`: `faults` split evenly across the workloads
/// (remainder to the first ones), per-workload seed = `seed + index`.
fn items(seed: u64, faults: u32, recovery_faults: bool) -> Vec<CampaignSweepItem> {
    let n = BENCHES.len() as u32;
    let base = faults / n;
    let rem = faults % n;
    BENCHES
        .iter()
        .enumerate()
        .map(|(i, &bench)| CampaignSweepItem {
            name: bench.name().to_owned(),
            program: generate(
                bench,
                &WorkloadConfig::default()
                    .with_threads(THREADS)
                    .with_scale(SCALE),
            ),
            campaign: CampaignConfig {
                seed: seed.wrapping_add(i as u64),
                count: base + u32::from((i as u32) < rem),
                kinds: FaultKindSet::recoverable(),
                recovery_faults,
                ..CampaignConfig::default()
            },
            amnesic: true,
        })
        .collect()
}

/// The CLI's combined hash: FNV-1a over the little-endian bytes of each
/// workload's content hash, in workload order (via the shared
/// `acr_trace::Fnv1a` — the pins below prove the consolidation changed no
/// value).
fn combined(hashes: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    for &hash in hashes {
        h.write_u64(hash);
    }
    h.finish()
}

/// Runs the replicated inject campaign and returns per-workload content
/// hashes, using a parallel jobs value so the golden pins also exercise
/// the sharded merge path.
fn content_hashes(seed: u64, faults: u32, recovery_faults: bool, jobs: usize) -> Vec<u64> {
    let items = items(seed, faults, recovery_faults);
    run_campaign_sweep(&items, jobs, |item| {
        let bench = Benchmark::from_name(&item.name).expect("items are built from benchmarks");
        ExperimentSpec::default()
            .with_cores(THREADS)
            .with_threshold(bench.default_threshold())
    })
    .into_iter()
    .map(|o| o.run.expect("campaign runs").report.content_hash())
    .collect()
}

/// `inject --seed 42 --faults 200`: cheap enough for every profile.
#[test]
fn golden_hash_200_faults() {
    let hashes = content_hashes(42, 200, false, 4);
    assert_eq!(
        hashes,
        [0x06521c827f174fec, 0xbece6c8dc712d4d7, 0x952051189f0f9d35],
        "per-workload content hashes moved"
    );
    assert_eq!(combined(&hashes), 0xbc40ca2ec6d2d9bd, "combined hash moved");
}

/// `inject --seed 42 --faults 1000` — the hash EXPERIMENTS.md publishes.
#[cfg(not(debug_assertions))]
#[test]
fn golden_hash_1000_faults() {
    let hashes = content_hashes(42, 1000, false, 4);
    assert_eq!(
        hashes,
        [0x81b27c1de07d532a, 0xb0b066289f8a1355, 0xdfc7df89a8fb09fb],
        "per-workload content hashes moved"
    );
    assert_eq!(combined(&hashes), 0x0e73a8b36bdbdb2f, "combined hash moved");
}

/// `inject --seed 42 --faults 1000 --recovery-faults`: the nested-fault
/// escalation data extends the hash; pin that too.
#[cfg(not(debug_assertions))]
#[test]
fn golden_hash_1000_faults_with_recovery_faults() {
    let hashes = content_hashes(42, 1000, true, 4);
    assert_eq!(
        hashes,
        [0xe9627d0decaffc76, 0x4aa17e0ee53bbe4f, 0x7c9e13d0005fd6c9],
        "per-workload content hashes moved"
    );
    assert_eq!(combined(&hashes), 0x3911050a1804b4e6, "combined hash moved");
}
