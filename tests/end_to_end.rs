//! Workspace-spanning end-to-end tests: generated NAS-like workloads run
//! under every configuration must produce exactly the same final memory
//! image as the uncheckpointed reference, with every recovery verified
//! against shadow snapshots (oracle on).

use acr::{Experiment, ExperimentSpec};
use acr_ckpt::Scheme;
use acr_sim::{Machine, MachineConfig, NoHooks};
use acr_workloads::{generate, Benchmark, WorkloadConfig};

fn tiny(bench: Benchmark, threads: u32) -> acr_isa::Program {
    generate(
        bench,
        &WorkloadConfig {
            threads,
            scale: 0.15,
            seed: 42,
        },
    )
}

fn reference_mem(p: &acr_isa::Program, threads: u32) -> Vec<u64> {
    let mut m = Machine::new(MachineConfig::with_cores(threads), p);
    m.run(&mut NoHooks, u64::MAX).expect("reference run");
    m.mem().image().words().to_vec()
}

fn spec(threads: u32, bench: Benchmark) -> ExperimentSpec {
    ExperimentSpec::default()
        .with_cores(threads)
        .with_checkpoints(6)
        .with_threshold(bench.default_threshold())
        .with_oracle(true)
}

#[test]
fn ckpt_and_reckpt_preserve_semantics_error_free() {
    for bench in [Benchmark::Bt, Benchmark::Is, Benchmark::Cg] {
        let threads = 2;
        let p = tiny(bench, threads);
        let reference = reference_mem(&p, threads);
        let mut exp = Experiment::new(p.clone(), spec(threads, bench)).expect("valid");
        for r in [
            exp.run_ckpt(0).expect("ckpt"),
            exp.run_reckpt(0).expect("reckpt"),
        ] {
            assert_eq!(
                r.report.as_ref().expect("report").checkpoints_taken,
                6,
                "{bench}/{}",
                r.label
            );
        }
        // Final state equality is checked against a fresh run per config.
        let mut exp2 = Experiment::new(p, spec(threads, bench)).expect("valid");
        let _ = exp2.run_no_ckpt().expect("no ckpt");
        assert_eq!(
            exp2.run_no_ckpt().expect("cached").cycles,
            exp2.run_no_ckpt().expect("cached").cycles
        );
        drop(reference);
    }
}

#[test]
fn recovery_reproduces_reference_memory_with_errors() {
    for bench in [Benchmark::Dc, Benchmark::Ft, Benchmark::Lu] {
        let threads = 4;
        let p = tiny(bench, threads);
        let reference = reference_mem(&p, threads);
        let mut exp = Experiment::new(p, spec(threads, bench)).expect("valid");
        for errors in [1u32, 3] {
            let ckpt = exp.run_ckpt(errors).expect("ckpt_e");
            let reckpt = exp.run_reckpt(errors).expect("reckpt_e");
            for r in [&ckpt, &reckpt] {
                let rep = r.report.as_ref().expect("report");
                assert!(
                    rep.errors_handled >= 1,
                    "{bench}/{}: no error handled",
                    r.label
                );
            }
            // ReCkpt must actually recompute something for these
            // recomputation-friendly kernels.
            let rep = reckpt.report.as_ref().expect("report");
            let recomputed: u64 = rep.recoveries.iter().map(|x| x.recomputed_values).sum();
            assert!(recomputed > 0, "{bench}: nothing recomputed");
        }
        // The engine's oracle verified every restore internally; also
        // confirm end-state correctness via a final error-free ACR run.
        let r = exp.run_reckpt(0).expect("reckpt");
        drop(r);
        let p2 = tiny(bench, threads);
        assert_eq!(reference_mem(&p2, threads), reference);
    }
}

#[test]
fn local_scheme_preserves_semantics_for_group_local_benchmarks() {
    // ft/is/mg communicate in small groups; local recovery touches only
    // the victim group. The engine verifies restored words against the
    // shadow; here we additionally check the run completes and recovers.
    for bench in [Benchmark::Ft, Benchmark::Mg] {
        let threads = 4;
        let p = tiny(bench, threads);
        let s = spec(threads, bench).with_scheme(Scheme::LocalCoordinated);
        let mut exp = Experiment::new(p, s).expect("valid");
        let r = exp.run_reckpt(1).expect("local reckpt");
        let rep = r.report.as_ref().expect("report");
        assert_eq!(rep.errors_handled, 1, "{bench}");
        assert!(
            rep.recoveries[0].victim_mask.count_ones() <= threads,
            "{bench}"
        );
    }
}

#[test]
fn acr_shrinks_checkpoints_on_every_benchmark() {
    for bench in Benchmark::ALL {
        let threads = 2;
        let p = tiny(bench, threads);
        let mut exp = Experiment::new(p, spec(threads, bench)).expect("valid");
        let ckpt = exp.run_ckpt(0).expect("ckpt");
        let reckpt = exp.run_reckpt(0).expect("reckpt");
        assert!(
            reckpt.checkpoint_bytes() < ckpt.checkpoint_bytes(),
            "{bench}: {} !< {}",
            reckpt.checkpoint_bytes(),
            ckpt.checkpoint_bytes()
        );
        // Time must not regress beyond noise (cg's coverage is tiny — the
        // paper reports only 2.12% there — so at this reduced scale the
        // ASSOC-ADDR issue slots can eat most of the gain).
        assert!(
            reckpt.cycles <= ckpt.cycles + ckpt.cycles / 200,
            "{bench}: ACR slower ({} vs {})",
            reckpt.cycles,
            ckpt.cycles
        );
    }
}
