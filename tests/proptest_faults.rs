//! Property test for the fault-injection harness itself: for arbitrary
//! (program, fault cycle, fault kind) triples, recovery either restores a
//! state word-for-word equivalent to the fault-free reference, or the
//! case is *reported* as diverged/aborted with visible evidence — a
//! campaign never silently diverges.

use acr_ckpt::{run_campaign, CampaignConfig, CaseOutcome, NoOmission};
use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
use acr_rng::check::forall;
use acr_rng::SmallRng;
use acr_sim::{FaultKindSet, MachineConfig};

#[derive(Debug, Clone)]
struct KernelParams {
    threads: u32,
    words: u64,
    sweeps: u64,
    depth: u8,
    op: AluOp,
}

fn gen_params(rng: &mut SmallRng) -> KernelParams {
    KernelParams {
        threads: rng.gen_range(1..4u32),
        words: *rng.choose(&[16u64, 48]),
        sweeps: rng.gen_range(1..5u64),
        depth: rng.gen_range(1..8u8),
        op: *rng.choose(&[AluOp::Add, AluOp::Mul, AluOp::Xor, AluOp::Sub]),
    }
}

fn build(p: &KernelParams) -> Program {
    let mut b = ProgramBuilder::new(p.threads as usize);
    b.set_mem_bytes(1 << 18);
    for t in 0..p.threads {
        let base = 4096 + u64::from(t) * 16384;
        let tb = b.thread(t);
        tb.imm(Reg(10), base);
        let sweeps = tb.begin_loop(Reg(1), Reg(2), p.sweeps);
        let inner = tb.begin_loop(Reg(3), Reg(4), p.words);
        tb.alu(AluOp::Add, Reg(22), Reg(3), Reg(1));
        for k in 0..p.depth {
            tb.alui(p.op, Reg(22), Reg(22), u64::from(k) * 2 + 3);
        }
        tb.alui(AluOp::Mul, Reg(6), Reg(3), 8);
        tb.alu(AluOp::Add, Reg(7), Reg(10), Reg(6));
        tb.store(Reg(22), Reg(7), 0);
        tb.end_loop(inner);
        tb.end_loop(sweeps);
        tb.halt();
    }
    b.build()
}

/// Every campaign case over arbitrary programs, fault cycles (plan seeds
/// draw the injection progress points) and fault kinds — including
/// potentially unrecoverable memory flips — is classified soundly:
///
/// * `Recovered` cases are word-for-word equal to the reference and
///   retired the full fault-free instruction count;
/// * `Diverged` cases carry visible evidence (divergent words, a shadow
///   oracle hit, or truncated progress) — never a silent mismatch;
/// * kinds the paper guarantees recoverable (reg/pc/crash) always
///   converge.
#[test]
fn arbitrary_faults_never_silently_diverge() {
    forall(
        "arbitrary_faults_never_silently_diverge",
        24,
        0xFA17_0001,
        |rng| {
            let params = gen_params(rng);
            let program = build(&params);
            assert!(program.validate().is_ok());

            let cfg = CampaignConfig {
                seed: rng.next_u64(),
                count: 4,
                kinds: FaultKindSet::all(),
                num_checkpoints: rng.gen_range(2..8u32),
                detection_latency_frac: *rng.choose(&[0.1f64, 0.5, 0.9]),
                ..CampaignConfig::default()
            };
            let r = run_campaign(
                &program,
                MachineConfig::with_cores(params.threads),
                &cfg,
                || NoOmission,
            )
            .expect("fault-free baseline agrees with the reference");

            assert_eq!(r.injected(), u64::from(cfg.count));
            for c in &r.cases {
                match c.outcome {
                    CaseOutcome::Recovered => {
                        assert_eq!(c.mem_divergence, 0, "{c:?}");
                        assert_eq!(c.reg_divergence, 0, "{c:?}");
                        assert_eq!(c.final_retired, r.total_progress, "{c:?}");
                    }
                    CaseOutcome::Diverged => {
                        assert!(
                            c.mem_divergence + c.reg_divergence + c.shadow_divergence > 0
                                || c.final_retired != r.total_progress,
                            "silent divergence: {c:?}"
                        );
                    }
                    // An abort is a loud verdict, not a silent one.
                    CaseOutcome::Aborted => {}
                }
                if c.fault.kind.guaranteed_recoverable() {
                    assert_eq!(
                        c.outcome,
                        CaseOutcome::Recovered,
                        "guaranteed-recoverable fault did not converge: {c:?}"
                    );
                }
            }
        },
    );
}
