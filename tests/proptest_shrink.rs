//! Property tests for the failing-case shrinker.
//!
//! For randomly drawn kernels and dense mem-fault plans that happen to
//! fail, the shrunk plan must (a) never be larger than the original,
//! (b) still fail when replayed from scratch, and (c) carry the
//! *identical* failure signature — trigger and probable cause
//! byte-for-byte — for `--jobs 1` and `--jobs 4` alike. Draws whose
//! dense plan recovers cleanly are legitimate (the shrinker must reject
//! them) and are counted, not skipped silently.

use acr::{Experiment, ExperimentSpec};
use acr_ckpt::{CampaignConfig, ShrinkConfig};
use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
use acr_rng::check::forall;
use acr_sim::FaultKindSet;
use acr_workloads::{generate, Benchmark, WorkloadConfig};

/// The store-heavy kernel family the parallel-campaign properties use;
/// `mult` perturbs the data flow so draws exercise different Slices.
fn kernel(threads: usize, iters: u64, mult: u64) -> Program {
    let mut b = ProgramBuilder::new(threads);
    b.set_mem_bytes(1 << 20);
    for t in 0..threads as u32 {
        let base = u64::from(t) * 131072;
        let tb = b.thread(t);
        tb.imm(Reg(10), base);
        let l = tb.begin_loop(Reg(1), Reg(2), iters);
        tb.alui(AluOp::Mul, Reg(3), Reg(1), mult);
        tb.alui(AluOp::Mul, Reg(4), Reg(1), 8);
        tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
        tb.store(Reg(3), Reg(5), 0);
        tb.end_loop(l);
        tb.halt();
    }
    b.build()
}

fn mem_only() -> FaultKindSet {
    FaultKindSet {
        reg: false,
        pc: false,
        mem: true,
        burst: false,
        stuck: false,
        crash: false,
    }
}

#[test]
fn shrunk_plans_are_minimal_reproducers_for_every_jobs_value() {
    let mut failing_draws = 0u32;
    forall(
        "shrunk_plans_are_minimal_reproducers_for_every_jobs_value",
        6,
        0x51C4,
        |rng| {
            let threads = rng.gen_range(1..=2u32);
            let program = kernel(
                threads as usize,
                rng.gen_range(30..=50u64),
                rng.gen_range(3..=13u64) | 1,
            );
            let cfg = CampaignConfig {
                seed: rng.next_u64(),
                count: rng.gen_range(8..=12u32),
                kinds: mem_only(),
                num_checkpoints: rng.gen_range(3..=5u32),
                jobs: 1,
                ..CampaignConfig::default()
            };
            let spec = ExperimentSpec::default()
                .with_cores(threads)
                .with_checkpoints(cfg.num_checkpoints);
            let mut exp = Experiment::new(program, spec).expect("valid kernel");
            let faults = exp.plan_dense_faults(&cfg, true).expect("plan generates");
            let seq = match exp.shrink_fault_case(&cfg, true, 0, &faults, &ShrinkConfig::default())
            {
                Ok(out) => out,
                Err(e) => {
                    // A recovering dense plan must be *rejected*, not
                    // half-shrunk.
                    assert!(e.to_string().contains("does not fail"), "{e}");
                    return;
                }
            };
            failing_draws += 1;

            // (a) Never larger.
            assert!(seq.minimal.len() <= faults.len());
            assert_eq!(seq.original_faults, faults.len());

            // (b) Still fails when replayed from scratch, with the
            // identical signature — trigger and probable cause
            // byte-for-byte.
            let replay = exp
                .replay_fault_case(&cfg, true, 0, &seq.minimal)
                .expect("replay runs")
                .expect("the minimal plan still fails");
            assert_eq!(replay.trigger, seq.failure.trigger);
            assert_eq!(
                replay.bundle.probable_cause,
                seq.failure.bundle.probable_cause
            );
            assert_eq!(replay.bundle.to_json(), seq.failure.bundle.to_json());

            // (c) Jobs-invariant: same minimal plan, signature,
            // forensics and even evaluation count at --jobs 4.
            let par = exp
                .shrink_fault_case(
                    &cfg,
                    true,
                    0,
                    &faults,
                    &ShrinkConfig {
                        jobs: 4,
                        ..ShrinkConfig::default()
                    },
                )
                .expect("fails identically at jobs=4");
            assert_eq!(seq.minimal, par.minimal);
            assert_eq!(seq.failure.trigger, par.failure.trigger);
            assert_eq!(
                seq.failure.bundle.probable_cause,
                par.failure.bundle.probable_cause
            );
            assert_eq!(seq.failure.bundle.to_json(), par.failure.bundle.to_json());
            assert_eq!(seq.evaluations, par.evaluations);
        },
    );
    assert!(
        failing_draws > 0,
        "no drawn dense plan failed — the property never fired"
    );
}

/// The acceptance-pinned forced-divergence case: a dense 10-fault `cg`
/// plan (the `acr_cli shrink` defaults) shrinks by at least half and
/// replays with the same trigger and probable cause.
#[test]
fn dense_cg_case_shrinks_by_half_with_the_same_signature() {
    let program = generate(
        Benchmark::Cg,
        &WorkloadConfig::default().with_threads(2).with_scale(0.05),
    );
    let cfg = CampaignConfig {
        seed: 42,
        count: 10,
        kinds: mem_only(),
        num_checkpoints: 4,
        jobs: 1,
        ..CampaignConfig::default()
    };
    let mut exp = Experiment::new(
        program,
        ExperimentSpec::default()
            .with_cores(2)
            .with_threshold(Benchmark::Cg.default_threshold()),
    )
    .expect("cg generates");
    let faults = exp.plan_dense_faults(&cfg, true).expect("plan generates");
    assert!(faults.len() >= 8, "want a dense plan, got {}", faults.len());
    let out = exp
        .shrink_fault_case(&cfg, true, 0, &faults, &ShrinkConfig::default())
        .expect("the pinned case fails");
    assert!(
        out.minimal.len() * 2 <= faults.len(),
        "acceptance: >=50% shrink, got {} of {}",
        out.minimal.len(),
        faults.len()
    );
    let replay = exp
        .replay_fault_case(&cfg, true, 0, &out.minimal)
        .expect("replay runs")
        .expect("still fails");
    assert_eq!(replay.trigger, out.failure.trigger);
    assert_eq!(
        replay.bundle.probable_cause,
        out.failure.bundle.probable_cause
    );
}
