//! Property tests for the compiler pass: over randomly generated
//! expression kernels, every embedded Slice must reproduce the stored
//! value at every dynamic execution (checked by the reference
//! interpreter's `verify_slices` oracle), and instrumentation must never
//! change program semantics.

use acr_isa::interp::Interp;
use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
use acr_rng::check::forall;
use acr_rng::SmallRng;
use acr_slicer::{instrument, SlicerConfig};

/// One random arithmetic statement in a generated kernel body.
#[derive(Debug, Clone)]
enum Stmt {
    /// `rd <- op(ra, rb)` over the scratch registers.
    Alu(u8, AluOp, u8, u8),
    /// `rd <- op(ra, imm)`.
    AluI(u8, AluOp, u8, u64),
    /// `rd <- imm`.
    Imm(u8, u64),
    /// `rd <- mem[input + off]`.
    Load(u8, u8),
    /// `mem[out + off] <- rs`.
    Store(u8, u8),
}

const SCRATCH: [Reg; 6] = [Reg(20), Reg(21), Reg(22), Reg(23), Reg(24), Reg(25)];

const OPS: [AluOp; 12] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Xor,
    AluOp::Or,
    AluOp::And,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Min,
    AluOp::Max,
    AluOp::Div,
    AluOp::Rem,
];

fn gen_stmt(rng: &mut SmallRng) -> Stmt {
    match rng.gen_range(0..5u32) {
        0 => Stmt::Alu(
            rng.gen_range(0..6u8),
            *rng.choose(&OPS),
            rng.gen_range(0..6u8),
            rng.gen_range(0..6u8),
        ),
        1 => Stmt::AluI(
            rng.gen_range(0..6u8),
            *rng.choose(&OPS),
            rng.gen_range(0..6u8),
            rng.gen_range(0..1000u64),
        ),
        2 => Stmt::Imm(rng.gen_range(0..6u8), rng.next_u64()),
        3 => Stmt::Load(rng.gen_range(0..6u8), rng.gen_range(0..32u8)),
        _ => Stmt::Store(rng.gen_range(0..6u8), rng.gen_range(0..64u8)),
    }
}

fn gen_stmts(rng: &mut SmallRng, max: usize) -> Vec<Stmt> {
    let n = rng.gen_range(1..max);
    (0..n).map(|_| gen_stmt(rng)).collect()
}

/// Builds a 1-thread program: an input-seeding prologue, then `sweeps`
/// iterations of the random body.
fn build(stmts: &[Stmt], sweeps: u64) -> Program {
    let mut b = ProgramBuilder::new(1);
    b.set_mem_bytes(8192);
    let t = b.thread(0);
    t.imm(Reg(10), 1024); // out base
    t.imm(Reg(12), 0); // input base
                       // Seed the input array deterministically.
    let init = t.begin_loop(Reg(3), Reg(4), 32);
    t.alui(AluOp::Mul, Reg(5), Reg(3), 0x9E37);
    t.alui(AluOp::Xor, Reg(5), Reg(5), 0x5A5A);
    t.alui(AluOp::Mul, Reg(6), Reg(3), 8);
    t.alu(AluOp::Add, Reg(7), Reg(12), Reg(6));
    t.store(Reg(5), Reg(7), 0);
    t.end_loop(init);
    let l = t.begin_loop(Reg(1), Reg(2), sweeps);
    for s in stmts {
        match *s {
            Stmt::Alu(d, op, a, b2) => {
                t.alu(
                    op,
                    SCRATCH[d as usize],
                    SCRATCH[a as usize],
                    SCRATCH[b2 as usize],
                );
            }
            Stmt::AluI(d, op, a, i) => {
                t.alui(op, SCRATCH[d as usize], SCRATCH[a as usize], i);
            }
            Stmt::Imm(d, i) => {
                t.imm(SCRATCH[d as usize], i);
            }
            Stmt::Load(d, o) => {
                t.load(SCRATCH[d as usize], Reg(12), u64::from(o) * 8);
            }
            Stmt::Store(s2, o) => {
                t.store(SCRATCH[s2 as usize], Reg(10), u64::from(o) * 8);
            }
        }
    }
    t.end_loop(l);
    t.halt();
    b.build()
}

/// Every embedded Slice reproduces its store's value dynamically, and
/// the instrumented program computes the same final memory.
#[test]
fn slices_verify_and_semantics_preserved() {
    forall(
        "slices_verify_and_semantics_preserved",
        48,
        0x51C3_0001,
        |rng| {
            let stmts = gen_stmts(rng, 40);
            let sweeps = rng.gen_range(1..5u64);
            let threshold = *rng.choose(&[1usize, 3, 10, 30]);

            let p = build(&stmts, sweeps);
            assert!(p.validate().is_ok());
            let (ip, _stats) = instrument(&p, &SlicerConfig { threshold });
            assert!(ip.validate().is_ok());

            let mut reference = Interp::new(&p);
            reference.run_to_completion(10_000_000).expect("reference");

            let mut verified = Interp::new(&ip);
            verified.verify_slices(true);
            verified
                .run_to_completion(10_000_000)
                .expect("instrumented");

            assert_eq!(reference.mem(), verified.mem());
        },
    );
}

/// Instrumentation is idempotent in effect: re-instrumenting the raw
/// program at the same threshold produces the identical binary.
#[test]
fn instrumentation_is_deterministic() {
    forall("instrumentation_is_deterministic", 48, 0x51C3_0002, |rng| {
        let stmts = gen_stmts(rng, 25);
        let p = build(&stmts, 2);
        let (a, sa) = instrument(&p, &SlicerConfig { threshold: 10 });
        let (b, sb) = instrument(&p, &SlicerConfig { threshold: 10 });
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    });
}

/// Coverage is monotone in the threshold.
#[test]
fn coverage_monotone_in_threshold() {
    forall("coverage_monotone_in_threshold", 48, 0x51C3_0003, |rng| {
        let stmts = gen_stmts(rng, 40);
        let p = build(&stmts, 2);
        let mut last = 0;
        for t in [1usize, 2, 5, 10, 20, 50] {
            let (_, s) = instrument(&p, &SlicerConfig { threshold: t });
            assert!(
                s.sliced_stores >= last,
                "coverage dropped from {last} to {} at threshold {t}",
                s.sliced_stores
            );
            last = s.sliced_stores;
        }
    });
}
