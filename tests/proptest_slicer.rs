//! Property tests for the compiler pass: over randomly generated
//! expression kernels, every embedded Slice must reproduce the stored
//! value at every dynamic execution (checked by the reference
//! interpreter's `verify_slices` oracle), and instrumentation must never
//! change program semantics.

use proptest::prelude::*;

use acr_isa::interp::Interp;
use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
use acr_slicer::{instrument, SlicerConfig};

/// One random arithmetic statement in a generated kernel body.
#[derive(Debug, Clone)]
enum Stmt {
    /// `rd <- op(ra, rb)` over the scratch registers.
    Alu(u8, AluOp, u8, u8),
    /// `rd <- op(ra, imm)`.
    AluI(u8, AluOp, u8, u64),
    /// `rd <- imm`.
    Imm(u8, u64),
    /// `rd <- mem[input + off]`.
    Load(u8, u8),
    /// `mem[out + off] <- rs`.
    Store(u8, u8),
}

const SCRATCH: [Reg; 6] = [Reg(20), Reg(21), Reg(22), Reg(23), Reg(24), Reg(25)];

fn op_strategy() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Xor,
        AluOp::Or,
        AluOp::And,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Min,
        AluOp::Max,
        AluOp::Div,
        AluOp::Rem,
    ])
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0..6u8, op_strategy(), 0..6u8, 0..6u8).prop_map(|(d, op, a, b)| Stmt::Alu(d, op, a, b)),
        (0..6u8, op_strategy(), 0..6u8, 0..1000u64)
            .prop_map(|(d, op, a, i)| Stmt::AluI(d, op, a, i)),
        (0..6u8, any::<u64>()).prop_map(|(d, i)| Stmt::Imm(d, i)),
        (0..6u8, 0..32u8).prop_map(|(d, o)| Stmt::Load(d, o)),
        (0..6u8, 0..64u8).prop_map(|(s, o)| Stmt::Store(s, o)),
    ]
}

/// Builds a 1-thread program: an input-seeding prologue, then `sweeps`
/// iterations of the random body.
fn build(stmts: &[Stmt], sweeps: u64) -> Program {
    let mut b = ProgramBuilder::new(1);
    b.set_mem_bytes(8192);
    let t = b.thread(0);
    t.imm(Reg(10), 1024); // out base
    t.imm(Reg(12), 0); // input base
    // Seed the input array deterministically.
    let init = t.begin_loop(Reg(3), Reg(4), 32);
    t.alui(AluOp::Mul, Reg(5), Reg(3), 0x9E37);
    t.alui(AluOp::Xor, Reg(5), Reg(5), 0x5A5A);
    t.alui(AluOp::Mul, Reg(6), Reg(3), 8);
    t.alu(AluOp::Add, Reg(7), Reg(12), Reg(6));
    t.store(Reg(5), Reg(7), 0);
    t.end_loop(init);
    let l = t.begin_loop(Reg(1), Reg(2), sweeps);
    for s in stmts {
        match *s {
            Stmt::Alu(d, op, a, b2) => {
                t.alu(op, SCRATCH[d as usize], SCRATCH[a as usize], SCRATCH[b2 as usize]);
            }
            Stmt::AluI(d, op, a, i) => {
                t.alui(op, SCRATCH[d as usize], SCRATCH[a as usize], i);
            }
            Stmt::Imm(d, i) => {
                t.imm(SCRATCH[d as usize], i);
            }
            Stmt::Load(d, o) => {
                t.load(SCRATCH[d as usize], Reg(12), u64::from(o) * 8);
            }
            Stmt::Store(s2, o) => {
                t.store(SCRATCH[s2 as usize], Reg(10), u64::from(o) * 8);
            }
        }
    }
    t.end_loop(l);
    t.halt();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every embedded Slice reproduces its store's value dynamically, and
    /// the instrumented program computes the same final memory.
    #[test]
    fn slices_verify_and_semantics_preserved(
        stmts in prop::collection::vec(stmt_strategy(), 1..40),
        sweeps in 1u64..5,
        threshold in prop::sample::select(vec![1usize, 3, 10, 30]),
    ) {
        let p = build(&stmts, sweeps);
        prop_assert!(p.validate().is_ok());
        let (ip, _stats) = instrument(&p, &SlicerConfig { threshold });
        prop_assert!(ip.validate().is_ok());

        let mut reference = Interp::new(&p);
        reference.run_to_completion(10_000_000).expect("reference");

        let mut verified = Interp::new(&ip);
        verified.verify_slices(true);
        verified.run_to_completion(10_000_000).expect("instrumented");

        prop_assert_eq!(reference.mem(), verified.mem());
    }

    /// Instrumentation is idempotent in effect: re-instrumenting the raw
    /// program at the same threshold produces the identical binary.
    #[test]
    fn instrumentation_is_deterministic(
        stmts in prop::collection::vec(stmt_strategy(), 1..25),
    ) {
        let p = build(&stmts, 2);
        let (a, sa) = instrument(&p, &SlicerConfig { threshold: 10 });
        let (b, sb) = instrument(&p, &SlicerConfig { threshold: 10 });
        prop_assert_eq!(a, b);
        prop_assert_eq!(sa, sb);
    }

    /// Coverage is monotone in the threshold.
    #[test]
    fn coverage_monotone_in_threshold(
        stmts in prop::collection::vec(stmt_strategy(), 1..40),
    ) {
        let p = build(&stmts, 2);
        let mut last = 0;
        for t in [1usize, 2, 5, 10, 20, 50] {
            let (_, s) = instrument(&p, &SlicerConfig { threshold: t });
            prop_assert!(s.sliced_stores >= last,
                "coverage dropped from {last} to {} at threshold {t}", s.sliced_stores);
            last = s.sliced_stores;
        }
    }
}
