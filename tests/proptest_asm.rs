//! Property test: the assembler and disassembler are inverses over
//! arbitrary (structured) programs — `assemble(disassemble(p))` must
//! reproduce `p`'s instruction streams exactly, and the reassembled
//! program must execute identically.

use proptest::prelude::*;

use acr_isa::asm::{assemble, disassemble};
use acr_isa::interp::Interp;
use acr_isa::{AluOp, BranchCond, Instr, Program, ProgramBuilder, Reg};

#[derive(Debug, Clone)]
enum Piece {
    Imm(u8, u64),
    Alu(AluOp, u8, u8, u8),
    AluI(AluOp, u8, u8, u64),
    Load(u8, u8),
    Store(u8, u8),
    /// A short forward branch over one instruction.
    SkipIfEq(u8, u8),
    /// A small counted loop with a body of simple adds.
    Loop(u8),
}

fn op_strategy() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Min,
        AluOp::Max,
    ])
}

fn piece_strategy() -> impl Strategy<Value = Piece> {
    prop_oneof![
        (0..8u8, any::<u64>()).prop_map(|(d, i)| Piece::Imm(d, i)),
        (op_strategy(), 0..8u8, 0..8u8, 0..8u8).prop_map(|(o, d, a, b)| Piece::Alu(o, d, a, b)),
        (op_strategy(), 0..8u8, 0..8u8, 0..1_000_000u64)
            .prop_map(|(o, d, a, i)| Piece::AluI(o, d, a, i)),
        (0..8u8, 0..32u8).prop_map(|(d, o)| Piece::Load(d, o)),
        (0..8u8, 0..32u8).prop_map(|(s, o)| Piece::Store(s, o)),
        (0..8u8, 0..8u8).prop_map(|(a, b)| Piece::SkipIfEq(a, b)),
        (1..5u8).prop_map(Piece::Loop),
    ]
}

/// Scratch registers r20..r27 hold values; r10 is the data base.
fn build(pieces_per_thread: &[Vec<Piece>]) -> Program {
    let mut b = ProgramBuilder::new(pieces_per_thread.len());
    b.set_mem_bytes(4096);
    for (t, pieces) in pieces_per_thread.iter().enumerate() {
        let tb = b.thread(t as u32);
        let r = |k: u8| Reg(20 + k % 8);
        for p in pieces {
            match *p {
                Piece::Imm(d, i) => {
                    tb.imm(r(d), i);
                }
                Piece::Alu(op, d, a, b2) => {
                    tb.alu(op, r(d), r(a), r(b2));
                }
                Piece::AluI(op, d, a, i) => {
                    tb.alui(op, r(d), r(a), i);
                }
                Piece::Load(d, o) => {
                    tb.load(r(d), Reg(0), u64::from(o) * 8);
                }
                Piece::Store(s, o) => {
                    tb.store(r(s), Reg(0), u64::from(o) * 8);
                }
                Piece::SkipIfEq(a, b2) => {
                    let target = tb.here() + 2;
                    tb.raw(Instr::Branch {
                        cond: BranchCond::Eq,
                        ra: r(a),
                        rb: r(b2),
                        target,
                    });
                    tb.alui(AluOp::Add, Reg(27), Reg(27), 1);
                }
                Piece::Loop(n) => {
                    let l = tb.begin_loop(Reg(28), Reg(29), u64::from(n));
                    tb.alui(AluOp::Add, Reg(26), Reg(26), 3);
                    tb.end_loop(l);
                }
            }
        }
        tb.halt();
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn disassemble_assemble_roundtrip(
        threads in prop::collection::vec(
            prop::collection::vec(piece_strategy(), 0..25),
            1..3,
        ),
    ) {
        let original = build(&threads);
        prop_assert!(original.validate().is_ok());

        let text = disassemble(&original);
        let rebuilt = assemble(&text).expect("reassembles");
        prop_assert_eq!(original.threads(), rebuilt.threads());
        prop_assert_eq!(original.mem_bytes(), rebuilt.mem_bytes());

        // And it runs to the same memory image.
        let mut a = Interp::new(&original);
        a.run_to_completion(1_000_000).expect("original runs");
        let mut b = Interp::new(&rebuilt);
        b.run_to_completion(1_000_000).expect("rebuilt runs");
        prop_assert_eq!(a.mem(), b.mem());
    }
}
