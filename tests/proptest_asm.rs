//! Property test: the assembler and disassembler are inverses over
//! arbitrary (structured) programs — `assemble(disassemble(p))` must
//! reproduce `p`'s instruction streams exactly, and the reassembled
//! program must execute identically.

use acr_isa::asm::{assemble, disassemble};
use acr_isa::interp::Interp;
use acr_isa::{AluOp, BranchCond, Instr, Program, ProgramBuilder, Reg};
use acr_rng::check::forall;
use acr_rng::SmallRng;

#[derive(Debug, Clone)]
enum Piece {
    Imm(u8, u64),
    Alu(AluOp, u8, u8, u8),
    AluI(AluOp, u8, u8, u64),
    Load(u8, u8),
    Store(u8, u8),
    /// A short forward branch over one instruction.
    SkipIfEq(u8, u8),
    /// A small counted loop with a body of simple adds.
    Loop(u8),
}

const OPS: [AluOp; 12] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Min,
    AluOp::Max,
];

fn gen_piece(rng: &mut SmallRng) -> Piece {
    match rng.gen_range(0..7u32) {
        0 => Piece::Imm(rng.gen_range(0..8u8), rng.next_u64()),
        1 => Piece::Alu(
            *rng.choose(&OPS),
            rng.gen_range(0..8u8),
            rng.gen_range(0..8u8),
            rng.gen_range(0..8u8),
        ),
        2 => Piece::AluI(
            *rng.choose(&OPS),
            rng.gen_range(0..8u8),
            rng.gen_range(0..8u8),
            rng.gen_range(0..1_000_000u64),
        ),
        3 => Piece::Load(rng.gen_range(0..8u8), rng.gen_range(0..32u8)),
        4 => Piece::Store(rng.gen_range(0..8u8), rng.gen_range(0..32u8)),
        5 => Piece::SkipIfEq(rng.gen_range(0..8u8), rng.gen_range(0..8u8)),
        _ => Piece::Loop(rng.gen_range(1..5u8)),
    }
}

/// Scratch registers r20..r27 hold values; r10 is the data base.
fn build(pieces_per_thread: &[Vec<Piece>]) -> Program {
    let mut b = ProgramBuilder::new(pieces_per_thread.len());
    b.set_mem_bytes(4096);
    for (t, pieces) in pieces_per_thread.iter().enumerate() {
        let tb = b.thread(t as u32);
        let r = |k: u8| Reg(20 + k % 8);
        for p in pieces {
            match *p {
                Piece::Imm(d, i) => {
                    tb.imm(r(d), i);
                }
                Piece::Alu(op, d, a, b2) => {
                    tb.alu(op, r(d), r(a), r(b2));
                }
                Piece::AluI(op, d, a, i) => {
                    tb.alui(op, r(d), r(a), i);
                }
                Piece::Load(d, o) => {
                    tb.load(r(d), Reg(0), u64::from(o) * 8);
                }
                Piece::Store(s, o) => {
                    tb.store(r(s), Reg(0), u64::from(o) * 8);
                }
                Piece::SkipIfEq(a, b2) => {
                    let target = tb.here() + 2;
                    tb.raw(Instr::Branch {
                        cond: BranchCond::Eq,
                        ra: r(a),
                        rb: r(b2),
                        target,
                    });
                    tb.alui(AluOp::Add, Reg(27), Reg(27), 1);
                }
                Piece::Loop(n) => {
                    let l = tb.begin_loop(Reg(28), Reg(29), u64::from(n));
                    tb.alui(AluOp::Add, Reg(26), Reg(26), 3);
                    tb.end_loop(l);
                }
            }
        }
        tb.halt();
    }
    b.build()
}

#[test]
fn disassemble_assemble_roundtrip() {
    forall("disassemble_assemble_roundtrip", 64, 0xA5E1_0001, |rng| {
        let nthreads = rng.gen_range(1..3usize);
        let threads: Vec<Vec<Piece>> = (0..nthreads)
            .map(|_| {
                let n = rng.gen_range(0..25usize);
                (0..n).map(|_| gen_piece(rng)).collect()
            })
            .collect();

        let original = build(&threads);
        assert!(original.validate().is_ok());

        let text = disassemble(&original);
        let rebuilt = assemble(&text).expect("reassembles");
        assert_eq!(original.threads(), rebuilt.threads());
        assert_eq!(original.mem_bytes(), rebuilt.mem_bytes());

        // And it runs to the same memory image.
        let mut a = Interp::new(&original);
        a.run_to_completion(1_000_000).expect("original runs");
        let mut b = Interp::new(&rebuilt);
        b.run_to_completion(1_000_000).expect("rebuilt runs");
        assert_eq!(a.mem(), b.mem());
    });
}
