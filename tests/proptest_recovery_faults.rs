//! Property: recovery-window escalation never loses committed data.
//!
//! Over random kernels, seeds, retention depths and nested-fault
//! schedules, a guaranteed-recoverable injected fault must still converge
//! to the reference state (zero divergent words) no matter which
//! recovery-window fault class — corrupt replay input, flipped restored
//! word, torn log record, crash mid-restore, torn checkpoint commit —
//! strikes the recovery; and whatever the engine cannot repair must be
//! reported as divergence, never silently returned as success.

use acr::{Experiment, ExperimentSpec};
use acr_ckpt::{CampaignConfig, CaseOutcome, ResilienceConfig};
use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
use acr_rng::check::forall;
use acr_rng::SmallRng;
use acr_sim::{FaultKindSet, RecoveryFault, RecoveryFaultKind};

/// A recomputable-store kernel: every stored value is a short arithmetic
/// chain over loop counters, so ACR's slicer covers the stores and the
/// amnesic configurations exercise omitted-record replay during recovery.
fn kernel(threads: u32, iters: u64) -> Program {
    let mut b = ProgramBuilder::new(threads as usize);
    b.set_mem_bytes(1 << 20);
    for t in 0..threads {
        let base = 4096 + u64::from(t) * 65536;
        let tb = b.thread(t);
        tb.imm(Reg(10), base);
        let outer = tb.begin_loop(Reg(8), Reg(9), 6);
        let l = tb.begin_loop(Reg(1), Reg(2), iters);
        tb.alui(AluOp::Mul, Reg(3), Reg(1), 13);
        tb.alu(AluOp::Xor, Reg(3), Reg(3), Reg(8));
        tb.alui(AluOp::And, Reg(4), Reg(1), 127);
        tb.alui(AluOp::Mul, Reg(4), Reg(4), 8);
        tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
        tb.store(Reg(3), Reg(5), 0);
        tb.end_loop(l);
        tb.end_loop(outer);
        tb.halt();
    }
    b.build()
}

fn random_kind(rng: &mut SmallRng) -> RecoveryFaultKind {
    let bit = rng.gen_range(0..64u64) as u8;
    match rng.gen_range(0..5u32) {
        0 => RecoveryFaultKind::ReplayInput { bit },
        1 => RecoveryFaultKind::RestoredWordFlip { bit },
        2 => RecoveryFaultKind::TornRecord { bit },
        3 => RecoveryFaultKind::CrashMidRestore,
        _ => RecoveryFaultKind::TornCommit,
    }
}

/// Nested-fault campaigns over guaranteed-recoverable injected faults:
/// every case converges, with visible (not silent) escalation work.
#[test]
fn escalation_never_loses_committed_data() {
    forall(
        "escalation_never_loses_committed_data",
        10,
        0x2EC0_0005,
        |rng| {
            let threads = rng.gen_range(1..3u32);
            let iters = rng.gen_range(50..110u64);
            let amnesic = rng.gen_bool();
            let program = kernel(threads, iters);
            let spec = ExperimentSpec::default()
                .with_cores(threads)
                .with_checkpoints(5)
                .with_oracle(true);
            let mut exp = Experiment::new(program, spec).expect("valid program");
            let cfg = CampaignConfig {
                seed: rng.gen_range(0..1_000_000u64),
                count: 5,
                kinds: FaultKindSet::recoverable(),
                num_checkpoints: rng.gen_range(3..7u32),
                recovery_faults: true,
                generations: rng.gen_range(1..4u32),
                ..CampaignConfig::default()
            };
            let run = exp.run_fault_campaign(&cfg, amnesic).expect("campaign");
            let r = &run.report;
            assert!(r.has_recovery_faults());
            assert_eq!(r.aborted(), 0, "{}", r.summary());
            for c in &r.cases {
                assert_eq!(
                    c.outcome,
                    CaseOutcome::Recovered,
                    "committed data lost under {:?}:\n{}",
                    c.recovery_fault,
                    r.summary()
                );
                assert_eq!(c.mem_divergence + c.reg_divergence, 0, "{c:?}");
                assert_eq!(c.final_retired, r.total_progress, "{c:?}");
            }
        },
    );
}

/// A scheduled recovery-window fault on a phantom-error run converges to
/// the same progress as the clean run, pays for the escalation in cycles
/// (never less), and reports zero divergent words.
#[test]
fn scheduled_recovery_faults_preserve_the_final_image() {
    forall(
        "scheduled_recovery_faults_preserve_the_final_image",
        12,
        0x2EC0_0006,
        |rng| {
            let threads = rng.gen_range(1..3u32);
            let iters = rng.gen_range(50..110u64);
            let errors = rng.gen_range(1..3u32);
            let amnesic = rng.gen_bool();
            let program = kernel(threads, iters);
            let resilience = ResilienceConfig {
                generations: rng.gen_range(2..4u32),
                recovery_faults: vec![RecoveryFault {
                    at_recovery: rng.gen_range(0..errors),
                    kind: random_kind(rng),
                }],
                ..ResilienceConfig::default()
            };
            let base_spec = ExperimentSpec::default()
                .with_cores(threads)
                .with_checkpoints(5)
                .with_oracle(true);
            let run = |spec: ExperimentSpec| {
                let mut exp = Experiment::new(program.clone(), spec).expect("valid program");
                if amnesic {
                    exp.run_reckpt(errors).expect("reckpt run")
                } else {
                    exp.run_ckpt(errors).expect("ckpt run")
                }
            };
            let clean = run(base_spec.clone());
            let faulted = run(base_spec.with_resilience(resilience));
            let rep = faulted.report.as_ref().expect("report");
            assert_eq!(rep.divergent_words, 0, "silent divergence");
            // Retired counts include re-executed (wasted) work, so deeper
            // rollbacks only ever add instructions, never drop them.
            assert!(faulted.sim.retired >= clean.sim.retired);
            assert!(
                faulted.cycles >= clean.cycles,
                "escalation can never make recovery cheaper: {} < {}",
                faulted.cycles,
                clean.cycles
            );
        },
    );
}
