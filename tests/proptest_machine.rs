//! Property test: the timing simulator (`acr-sim`) and the reference
//! interpreter (`acr-isa`) must compute identical final memory images for
//! arbitrary (structured) multithreaded programs — timing modelling must
//! never change semantics.

use acr_isa::interp::Interp;
use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
use acr_rng::check::forall;
use acr_rng::SmallRng;
use acr_sim::{Machine, MachineConfig, NoHooks};

#[derive(Debug, Clone)]
struct ThreadPlan {
    sweeps: u64,
    words: u64,
    ops: Vec<(AluOp, u64)>,
    read_peer: bool,
}

const OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Xor,
    AluOp::Or,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Min,
    AluOp::Max,
    AluOp::Div,
];

fn gen_plan(rng: &mut SmallRng) -> ThreadPlan {
    let sweeps = rng.gen_range(1..4u64);
    let words = *rng.choose(&[8u64, 24, 40]);
    let nops = rng.gen_range(1..8usize);
    let ops = (0..nops)
        .map(|_| (*rng.choose(&OPS), rng.gen_range(1..1000u64)))
        .collect();
    ThreadPlan {
        sweeps,
        words,
        ops,
        read_peer: rng.gen_bool(),
    }
}

fn build(plans: &[ThreadPlan]) -> Program {
    let threads = plans.len();
    let mut b = ProgramBuilder::new(threads);
    b.set_mem_bytes(1 << 16);
    for (t, plan) in plans.iter().enumerate() {
        let base = 4096 + t as u64 * 4096;
        let tb = b.thread(t as u32);
        tb.imm(Reg(10), base);
        let sweeps = tb.begin_loop(Reg(1), Reg(2), plan.sweeps);
        let inner = tb.begin_loop(Reg(3), Reg(4), plan.words);
        tb.alu(AluOp::Add, Reg(22), Reg(3), Reg(1));
        for (op, c) in &plan.ops {
            tb.alui(*op, Reg(22), Reg(22), *c);
        }
        tb.alui(AluOp::Mul, Reg(6), Reg(3), 8);
        tb.alu(AluOp::Add, Reg(7), Reg(10), Reg(6));
        tb.store(Reg(22), Reg(7), 0);
        tb.end_loop(inner);
        if plan.read_peer && threads > 1 {
            let peer = 4096 + ((t + 1) % threads) as u64 * 4096;
            tb.imm(Reg(11), peer);
            tb.load(Reg(25), Reg(11), 0); // value intentionally unused
        }
        tb.end_loop(sweeps);
        tb.barrier();
        tb.halt();
    }
    b.build()
}

#[test]
fn machine_matches_interpreter() {
    forall("machine_matches_interpreter", 48, 0x3A9C_0001, |rng| {
        let nthreads = rng.gen_range(1..4usize);
        let plans: Vec<ThreadPlan> = (0..nthreads).map(|_| gen_plan(rng)).collect();
        let p = build(&plans);
        assert!(p.validate().is_ok());

        let mut interp = Interp::new(&p);
        interp.run_to_completion(50_000_000).expect("interp");

        let cfg = MachineConfig::with_cores(plans.len() as u32);
        let mut machine = Machine::new(cfg, &p);
        machine.run(&mut NoHooks, u64::MAX).expect("machine");

        assert_eq!(machine.mem().image().words(), interp.mem());
        assert_eq!(
            machine.total_retired(),
            interp.retired().iter().sum::<u64>()
        );
        assert!(machine.cycles() > 0);
    });
}

/// Timing sanity: adding dependent work never reduces cycles.
#[test]
fn longer_chains_cost_more() {
    forall("longer_chains_cost_more", 32, 0x3A9C_0002, |rng| {
        let mut plan = gen_plan(rng);
        plan.read_peer = false;
        let short = build(std::slice::from_ref(&plan));
        let mut longer_plan = plan.clone();
        longer_plan.ops.extend_from_slice(&[(AluOp::Add, 1); 8]);
        let long = build(std::slice::from_ref(&longer_plan));

        let mut m1 = Machine::new(MachineConfig::with_cores(1), &short);
        m1.run(&mut NoHooks, u64::MAX).expect("short");
        let mut m2 = Machine::new(MachineConfig::with_cores(1), &long);
        m2.run(&mut NoHooks, u64::MAX).expect("long");
        assert!(m2.cycles() >= m1.cycles());
    });
}
