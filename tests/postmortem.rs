//! Postmortem bundles through the public API: a forced-divergence
//! campaign captures one byte-identical-per-seed bundle per failed case,
//! the JSON round-trips through the in-tree parser, and the
//! probable-cause classification is never empty.

use acr::{Experiment, ExperimentSpec};
use acr_ckpt::{CampaignConfig, CaseOutcome, POSTMORTEM_SCHEMA};
use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
use acr_sim::FaultKindSet;
use acr_trace::{parse_json, Json};

fn kernel(threads: u32, iters: u64) -> Program {
    let mut b = ProgramBuilder::new(threads as usize);
    b.set_mem_bytes(1 << 20);
    for t in 0..threads {
        let base = 4096 + u64::from(t) * 65536;
        let tb = b.thread(t);
        tb.imm(Reg(10), base);
        let l = tb.begin_loop(Reg(1), Reg(2), iters);
        tb.alui(AluOp::Mul, Reg(3), Reg(1), 13);
        tb.alui(AluOp::And, Reg(4), Reg(1), 127);
        tb.alui(AluOp::Mul, Reg(4), Reg(4), 8);
        tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
        tb.store(Reg(3), Reg(5), 0);
        tb.end_loop(l);
        tb.halt();
    }
    b.build()
}

/// Mem-only fault campaigns flip words that may fall outside the
/// incremental log window — the engine cannot restore those, so some
/// cases diverge and every failed case must carry a bundle.
fn divergent_campaign(seed: u64) -> acr::CampaignRunResult {
    let program = kernel(2, 90);
    let spec = ExperimentSpec::default()
        .with_cores(2)
        .with_checkpoints(5)
        .with_oracle(true);
    let cfg = CampaignConfig {
        seed,
        count: 12,
        kinds: FaultKindSet {
            reg: false,
            pc: false,
            mem: true,
            burst: false,
            stuck: false,
            crash: false,
        },
        num_checkpoints: 4,
        ..CampaignConfig::default()
    };
    let mut exp = Experiment::new(program, spec).expect("valid program");
    exp.run_fault_campaign(&cfg, true).expect("campaign")
}

#[test]
fn failed_cases_carry_byte_identical_bundles() {
    let a = divergent_campaign(0xACF);
    let b = divergent_campaign(0xACF);
    let r = &a.report;
    let failed = r
        .cases
        .iter()
        .filter(|c| c.outcome != CaseOutcome::Recovered)
        .count();
    assert!(failed > 0, "mem faults must force at least one divergence");
    assert_eq!(r.postmortems.len(), failed, "one bundle per failed case");
    assert_eq!(
        r.postmortems.len(),
        b.report.postmortems.len(),
        "same seed, same failures"
    );
    for (x, y) in r.postmortems.iter().zip(&b.report.postmortems) {
        assert_eq!(x, y, "bundles are value-identical across runs");
        assert_eq!(x.to_json(), y.to_json(), "and byte-identical as JSON");
        assert!(!x.probable_cause.is_empty(), "cause line is never empty");
    }
    // Bundle order follows case order — jobs-invariant naming depends
    // on it.
    let cases: Vec<u32> = r.postmortems.iter().map(|p| p.case).collect();
    let mut sorted = cases.clone();
    sorted.sort_unstable();
    assert_eq!(cases, sorted);
}

#[test]
fn bundle_json_round_trips_through_the_in_tree_parser() {
    let run = divergent_campaign(0xACF);
    let bundle = run
        .report
        .postmortems
        .first()
        .expect("at least one divergence");
    let j = parse_json(&bundle.to_json()).expect("bundle JSON parses");
    assert_eq!(
        j.get("schema").and_then(Json::as_str),
        Some(POSTMORTEM_SCHEMA)
    );
    assert_eq!(
        j.get("trigger").and_then(Json::as_str),
        Some(bundle.trigger)
    );
    assert_eq!(
        j.get("case").and_then(Json::as_u64),
        Some(u64::from(bundle.case))
    );
    let machine = j.get("machine").expect("machine section");
    assert_eq!(
        machine.get("cycles").and_then(Json::as_u64),
        Some(bundle.cycles)
    );
    // The memory FNV is a hex string (it exceeds f64's exact range).
    let fnv = machine
        .get("mem_fnv")
        .and_then(Json::as_str)
        .expect("mem_fnv is a string");
    assert_eq!(fnv, format!("{:#018x}", bundle.mem_fnv));
    // Rings: one per core plus the global ring, with cycle-sorted events.
    let rings = j.get("rings").and_then(Json::as_arr).expect("rings");
    assert_eq!(rings.len(), bundle.rings.len());
    assert!(
        j.get("probable_cause")
            .and_then(Json::as_str)
            .is_some_and(|c| !c.is_empty()),
        "probable cause survives the JSON round trip"
    );
}
