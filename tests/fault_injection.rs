//! End-to-end fault-injection campaigns over the bundled NAS-style
//! workloads: hundreds of seeded faults, every one detected, every
//! recovery differentially verified against the reference interpreter.
//!
//! This is the integration-level counterpart of the unit campaigns in
//! `acr-ckpt`: real workloads, the real compiler pass, and the real
//! `AcrPolicy` recomputing omitted values from Slices during recovery.

use acr::{CampaignRunResult, Experiment, ExperimentSpec};
use acr_ckpt::{CampaignConfig, CaseOutcome};
use acr_sim::FaultKindSet;
use acr_workloads::{generate, Benchmark, WorkloadConfig};

const THREADS: u32 = 2;

fn campaign(
    bench: Benchmark,
    seed: u64,
    count: u32,
    kinds: FaultKindSet,
    amnesic: bool,
) -> CampaignRunResult {
    let program = generate(
        bench,
        &WorkloadConfig {
            threads: THREADS,
            scale: 0.05,
            seed: 9,
        },
    );
    let spec = ExperimentSpec::default()
        .with_cores(THREADS)
        .with_threshold(bench.default_threshold());
    let mut exp = Experiment::new(program, spec).expect("valid workload");
    let cfg = CampaignConfig {
        seed,
        count,
        kinds,
        num_checkpoints: 8,
        ..CampaignConfig::default()
    };
    exp.run_fault_campaign(&cfg, amnesic)
        .expect("campaign runs")
}

/// ≥200 seeded faults across three workloads, amnesic recovery: every
/// fault is detected and every recovery converges to the fault-free
/// reference state (zero divergent words).
#[test]
fn two_hundred_faults_across_workloads_all_converge() {
    let benches = [Benchmark::Is, Benchmark::Cg, Benchmark::Mg];
    let per_workload = 70u32;
    let mut injected = 0u64;
    let mut recomputed = 0u64;
    for (i, &bench) in benches.iter().enumerate() {
        let run = campaign(
            bench,
            42 + i as u64,
            per_workload,
            FaultKindSet::recoverable(),
            true,
        );
        let r = &run.report;
        assert_eq!(run.label, "Inject_ReCkpt");
        assert_eq!(r.injected(), u64::from(per_workload), "{}", bench.name());
        assert_eq!(
            r.detected(),
            u64::from(per_workload),
            "{}: {}",
            bench.name(),
            r.summary()
        );
        assert_eq!(
            r.recovered(),
            u64::from(per_workload),
            "{}: {}",
            bench.name(),
            r.summary()
        );
        assert_eq!(r.diverged(), 0, "{}", bench.name());
        assert_eq!(r.aborted(), 0, "{}", bench.name());
        assert_eq!(r.divergent_words(), 0, "{}", bench.name());
        for c in &r.cases {
            assert_eq!(c.outcome, CaseOutcome::Recovered, "{c:?}");
            assert_eq!(c.final_retired, r.total_progress, "{c:?}");
            assert!(c.recoveries >= 1, "undetected fault: {c:?}");
        }
        assert!(run.recovery_energy_joules > 0.0);
        injected += r.injected();
        recomputed += r.recomputed_values();
    }
    assert!(injected >= 200, "only {injected} faults injected");
    // The amnesic policy must actually exercise Slice re-execution.
    assert!(recomputed > 0, "no values were recomputed from Slices");
}

/// The non-amnesic baseline recovers the same faults purely from the log:
/// same convergence, zero recomputation.
#[test]
fn baseline_policy_converges_without_recomputation() {
    let run = campaign(Benchmark::Is, 7, 25, FaultKindSet::recoverable(), false);
    let r = &run.report;
    assert_eq!(run.label, "Inject_Ckpt");
    assert_eq!(r.recovered(), 25, "{}", r.summary());
    assert_eq!(r.divergent_words(), 0);
    assert_eq!(r.recomputed_values(), 0);
    assert!(r.restored_records() > 0);
}

/// Crash faults (whole-core state loss) are detected immediately and
/// always recovered.
#[test]
fn crash_faults_recover() {
    let crash_only = FaultKindSet {
        reg: false,
        pc: false,
        mem: false,
        burst: false,
        stuck: false,
        crash: true,
    };
    let run = campaign(Benchmark::Cg, 13, 20, crash_only, true);
    let r = &run.report;
    let (total, ok) = r.kind_counts("crash");
    assert_eq!(total, 20);
    assert_eq!(ok, 20, "{}", r.summary());
    assert_eq!(r.divergent_words(), 0);
}
