//! Property tests for the deterministic log-bucketed `Histogram`
//! (`acr_trace::Histogram`), driven by the in-tree `forall` harness:
//! merge associativity/commutativity, percentile monotonicity, and
//! record/count conservation.

use acr_rng::check::forall;
use acr_rng::SmallRng;
use acr_trace::Histogram;

/// Random value with magnitude spread across the whole `u64` range, so the
/// log buckets (not just the exact small-value region) are exercised.
fn gen_value(rng: &mut SmallRng) -> u64 {
    let bits = rng.gen_range(0..64u32);
    rng.next_u64() >> bits
}

fn gen_hist(rng: &mut SmallRng, max_records: u32) -> Histogram {
    let n = rng.gen_range(0..=max_records);
    let mut h = Histogram::new();
    for _ in 0..n {
        h.record(gen_value(rng));
    }
    h
}

#[test]
fn merge_is_associative_and_commutative() {
    forall("hist_merge_assoc", 64, 0x6869_7374, |rng| {
        let a = gen_hist(rng, 40);
        let b = gen_hist(rng, 40);
        let c = gen_hist(rng, 40);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert_eq!(left, right, "merge must be associative");

        // b ⊕ a == a ⊕ b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
    });
}

#[test]
fn percentiles_are_monotone_in_rank() {
    forall("hist_pct_monotone", 64, 0x9c7_1e55, |rng| {
        let h = gen_hist(rng, 100);
        let mut prev = 0u64;
        for pct in 0..=100u32 {
            let v = h.percentile(pct);
            assert!(
                v >= prev,
                "percentile({pct}) = {v} < percentile({}) = {prev}",
                pct - 1
            );
            prev = v;
        }
        // The top percentile never exceeds the bucket bound above max.
        if h.count() > 0 {
            assert!(h.percentile(100) >= h.max());
        }
    });
}

#[test]
fn record_count_is_conserved() {
    forall("hist_conservation", 64, 0xc0_c5e2, |rng| {
        let n = rng.gen_range(0..200u32);
        let mut h = Histogram::new();
        let mut expect_sum = 0u64;
        for _ in 0..n {
            let v = gen_value(rng);
            h.record(v);
            expect_sum = expect_sum.saturating_add(v);
        }
        assert_eq!(h.count(), u64::from(n), "count must equal records made");
        assert_eq!(h.sum(), expect_sum, "sum must equal the summed stream");
        let bucket_total: u64 = h.nonzero_buckets().map(|(_, c)| c).sum();
        assert_eq!(bucket_total, h.count(), "bucket counts must sum to count");

        // Merging two shards conserves counts exactly.
        let other = gen_hist(rng, 50);
        let merged_count = h.count() + other.count();
        h.merge(&other);
        assert_eq!(h.count(), merged_count);
        let bucket_total: u64 = h.nonzero_buckets().map(|(_, c)| c).sum();
        assert_eq!(bucket_total, merged_count);
    });
}

#[test]
fn same_stream_gives_identical_histograms() {
    forall("hist_determinism", 16, 7, |rng| {
        let values: Vec<u64> = (0..64).map(|_| gen_value(rng)).collect();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in &values {
            a.record(v);
            b.record(v);
        }
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    });
}
