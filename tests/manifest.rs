//! Run-manifest integration tests: the sim section a manifest gates on
//! must be byte-identical across `--jobs` values, survive a JSON
//! round-trip exactly, and make `diff` fail hard on any sim perturbation
//! while host timings only trip the tolerance band.

use acr::{run_campaign_sweep, CampaignSweepItem, ExperimentSpec};
use acr_ckpt::CampaignConfig;
use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
use acr_trace::{
    diff_manifests, BenchStats, DiffOptions, Fnv1a, Manifest, MetricsRegistry, WorkerLoad,
};

fn kernel(threads: usize, iters: u64) -> Program {
    let mut b = ProgramBuilder::new(threads);
    b.set_mem_bytes(1 << 20);
    for t in 0..threads as u32 {
        let base = u64::from(t) * 131072;
        let tb = b.thread(t);
        tb.imm(Reg(10), base);
        let outer = tb.begin_loop(Reg(8), Reg(9), 10);
        let l = tb.begin_loop(Reg(1), Reg(2), iters);
        tb.alui(AluOp::Mul, Reg(3), Reg(1), 13);
        tb.alu(AluOp::Xor, Reg(3), Reg(3), Reg(8));
        tb.alui(AluOp::Mul, Reg(4), Reg(1), 8);
        tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
        tb.store(Reg(3), Reg(5), 0);
        tb.end_loop(l);
        tb.end_loop(outer);
        tb.halt();
    }
    b.build()
}

fn items() -> Vec<CampaignSweepItem> {
    ["a", "b"]
        .iter()
        .enumerate()
        .map(|(i, name)| CampaignSweepItem {
            name: (*name).to_owned(),
            program: kernel(2, 40 + 10 * i as u64),
            campaign: CampaignConfig {
                seed: 42 + i as u64,
                count: 5,
                num_checkpoints: 5,
                ..CampaignConfig::default()
            },
            amnesic: true,
        })
        .collect()
}

/// Runs the sweep and builds a manifest the way `acr_cli inject` does:
/// per-workload content hashes plus a combined fold, merged metrics
/// digest, host gauges that may legitimately differ between runs.
fn manifest_for(jobs: usize, wall_ns: u64) -> Manifest {
    let items = items();
    let spec = |_: &CampaignSweepItem| ExperimentSpec::default().with_cores(2).with_checkpoints(5);
    let outcomes = run_campaign_sweep(&items, jobs, spec);
    let mut hashes: Vec<(String, u64)> = Vec::new();
    let mut merged = MetricsRegistry::new();
    let mut combined = Fnv1a::new();
    for o in outcomes {
        let run = o.run.expect("sweep runs");
        hashes.push((o.name.clone(), run.report.content_hash()));
        combined.write_u64(run.report.content_hash());
        merged.merge(&run.report.metrics);
    }
    hashes.push(("combined".to_owned(), combined.finish()));
    Manifest {
        command: "inject".to_owned(),
        config: vec![
            ("seed".to_owned(), "42".to_owned()),
            ("faults".to_owned(), "10".to_owned()),
        ],
        sim_hashes: hashes,
        metrics_digest: merged.digest(),
        host: Manifest::worker_loads(&[WorkerLoad {
            busy_ns: wall_ns / 2,
            items: 10,
        }])
        .into_iter()
        .chain([("host.wall_ns".to_owned(), wall_ns)])
        .collect(),
        bench: None,
    }
}

/// The gated sim section is byte-identical for every jobs value even
/// though the host section differs — exactly the property that makes
/// cross-machine manifest diffs meaningful.
#[test]
fn sim_section_is_jobs_invariant_while_host_differs() {
    let seq = manifest_for(1, 1_000_000);
    let par = manifest_for(4, 1_100_000); // +10%: inside the tolerance band
    assert_eq!(seq.sim_json(), par.sim_json());
    assert_ne!(seq.host, par.host);
    let r = diff_manifests(&seq, &par, &DiffOptions::default());
    assert!(!r.failed(), "{}", r.render());
}

/// to_json -> parse is the identity on every compared field, including
/// u64 hashes above 2^53 (serialized as hex strings, not JSON numbers).
#[test]
fn manifest_round_trips_through_json() {
    let mut m = manifest_for(2, 3_456_789);
    m.bench = Some(BenchStats::from_samples(&[90, 100, 110], 1));
    let parsed = Manifest::parse(&m.to_json()).expect("parses");
    assert_eq!(parsed.command, m.command);
    assert_eq!(parsed.config, m.config);
    assert_eq!(parsed.sim_hashes, m.sim_hashes);
    assert_eq!(parsed.metrics_digest, m.metrics_digest);
    assert_eq!(parsed.host, m.host);
    assert_eq!(parsed.bench, m.bench);
    // And the round-trip is a fixed point byte-wise.
    assert_eq!(parsed.to_json(), m.to_json());
}

/// A flipped sim hash fails the diff even with the host gate off — sim
/// regressions are never tolerated.
#[test]
fn diff_fails_hard_on_a_perturbed_hash() {
    let base = manifest_for(1, 1_000_000);
    let mut bad = manifest_for(1, 1_000_000);
    bad.sim_hashes[0].1 ^= 1;
    let opts = DiffOptions {
        gate_host: false,
        ..DiffOptions::default()
    };
    let r = diff_manifests(&base, &bad, &opts);
    assert!(r.sim_mismatch);
    assert!(r.failed(), "{}", r.render());
}

/// Host timings over the tolerance band fail only when the gate is on;
/// CI runs with the gate off, where the same delta is report-only.
#[test]
fn diff_gates_host_regressions_by_tolerance_band() {
    let base = manifest_for(1, 1_000_000);
    let slow = manifest_for(1, 2_000_000); // +100% wall time
    let gated = diff_manifests(&base, &slow, &DiffOptions::default());
    assert!(gated.host_regression);
    assert!(gated.failed(), "{}", gated.render());
    let opts = DiffOptions {
        gate_host: false,
        ..DiffOptions::default()
    };
    let ungated = diff_manifests(&base, &slow, &opts);
    assert!(ungated.host_regression);
    assert!(!ungated.failed(), "{}", ungated.render());
}
