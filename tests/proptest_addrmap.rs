//! Model-based property test for ACR's `AddrMap` + policy semantics.
//!
//! A naive reference model keeps, per address, the *complete* history of
//! associations and invalidating stores. Over random operation sequences
//! (stores, associations, checkpoints, rollbacks), the real
//! `acr::AcrPolicy` must agree with the model on every omission decision
//! and recomputed value — within the retention window the paper
//! guarantees (the two most recent checkpoints).

use std::collections::HashMap;

use acr::{AcrPolicy, AddrMapConfig};
use acr_ckpt::OmissionPolicy;
use acr_isa::{AluOp, Slice, SliceId, SliceInstr, SliceOperand};
use acr_mem::{CoreId, WordAddr};
use acr_rng::check::forall;
use acr_rng::SmallRng;
use acr_sim::AssocEvent;

/// Identity-plus-constant slices: slice `k` computes `input0 + k`.
fn slice_table(n: u32) -> Vec<Slice> {
    (0..n)
        .map(|k| {
            Slice::new(
                vec![SliceInstr {
                    op: AluOp::Add,
                    a: SliceOperand::Input(0),
                    b: SliceOperand::Imm(u64::from(k)),
                }],
                1,
            )
            .expect("valid slice")
        })
        .collect()
}

#[derive(Debug, Clone)]
enum Op {
    /// Covered store: `store + assoc` pair on `core` at `addr` with slice
    /// `slice` and input `input`.
    Assoc {
        core: u32,
        addr: u8,
        slice: u32,
        input: u64,
    },
    /// Uncovered store on `core` at `addr`.
    Store { core: u32, addr: u8 },
    /// Establish a checkpoint (advance the epoch).
    Checkpoint,
}

/// Weighted 4/2/1 mix of Assoc/Store/Checkpoint.
fn gen_op(rng: &mut SmallRng, cores: u32, slices: u32) -> Op {
    match rng.gen_range(0..7u32) {
        0..=3 => Op::Assoc {
            core: rng.gen_range(0..cores),
            addr: rng.gen_range(0..24u8),
            slice: rng.gen_range(0..slices),
            input: rng.next_u64(),
        },
        4 | 5 => Op::Store {
            core: rng.gen_range(0..cores),
            addr: rng.gen_range(0..24u8),
        },
        _ => Op::Checkpoint,
    }
}

fn gen_ops(rng: &mut SmallRng, cores: u32, slices: u32, max: usize) -> Vec<Op> {
    let n = rng.gen_range(1..max);
    (0..n).map(|_| gen_op(rng, cores, slices)).collect()
}

/// One reference-model history entry: epoch plus the live association
/// (owner core, slice id, captured input), or `None` for a tombstone.
type ModelEntry = (u64, Option<(u32, u32, u64)>);

/// Reference model: full association history per address.
#[derive(Default)]
struct Model {
    history: HashMap<u64, Vec<ModelEntry>>,
}

impl Model {
    fn lookup(&self, addr: u64, epoch: u64) -> Option<(u32, u32, u64)> {
        self.history
            .get(&addr)?
            .iter()
            .rev()
            .find(|(e, _)| *e < epoch)
            .and_then(|(_, a)| *a)
    }
}

fn apply(policy: &mut AcrPolicy, model: &mut Model, epoch: &mut u64, ops: &[Op], prune: bool) {
    for op in ops {
        match *op {
            Op::Assoc {
                core,
                addr,
                slice,
                input,
            } => {
                let a = u64::from(addr) * 8;
                policy.on_store(core, WordAddr::new(a), *epoch);
                policy.on_assoc(
                    &AssocEvent {
                        core: CoreId(core),
                        pc: 0,
                        addr: WordAddr::new(a),
                        value: input.wrapping_add(u64::from(slice)),
                        slice: SliceId(slice),
                        inputs: vec![input],
                        cycle: 0,
                    },
                    *epoch,
                );
                let h = model.history.entry(a).or_default();
                // Same-epoch entries supersede (last store wins).
                if h.last().map(|(e, _)| *e == *epoch).unwrap_or(false) {
                    h.pop();
                }
                h.push((*epoch, Some((core, slice, input))));
            }
            Op::Store { core, addr } => {
                let a = u64::from(addr) * 8;
                policy.on_store(core, WordAddr::new(a), *epoch);
                let h = model.history.entry(a).or_default();
                if h.last().map(|(e, _)| *e == *epoch).unwrap_or(false) {
                    h.pop();
                }
                // Only meaningful if it kills a live association (a
                // tombstone after nothing is still nothing).
                h.push((*epoch, None));
            }
            Op::Checkpoint => {
                if prune {
                    policy.on_checkpoint(*epoch);
                }
                *epoch += 1;
            }
        }
    }
}

#[test]
fn policy_matches_reference_model() {
    forall("policy_matches_reference_model", 64, 0xADD2_0001, |rng| {
        let ops = gen_ops(rng, 3, 8, 120);
        let slices = slice_table(8);
        let mut policy = AcrPolicy::new(slices.clone(), AddrMapConfig::default(), 3);
        let mut model = Model::default();
        let mut epoch = 0u64;

        for op in &ops {
            apply(
                &mut policy,
                &mut model,
                &mut epoch,
                std::slice::from_ref(op),
                true,
            );

            // After every step, the policy must agree with the model for
            // every address at the current epoch (the only epoch the
            // engine queries omission decisions for).
            for addr in 0..24u64 {
                let a = addr * 8;
                let want = model.lookup(a, epoch);
                let got_owner = policy.clone().try_omit(0, WordAddr::new(a), epoch);
                assert_eq!(
                    got_owner,
                    want.map(|(owner, _, _)| owner),
                    "owner mismatch at addr {a} epoch {epoch}"
                );
                if let Some((_, slice, input)) = want {
                    let rc = policy
                        .clone()
                        .recompute(WordAddr::new(a), epoch)
                        .expect("model says recomputable");
                    assert_eq!(rc.value, input.wrapping_add(u64::from(slice)));
                }
            }
        }
    });
}

/// Rollback forgets exactly the victim's associations from the undone
/// epochs.
#[test]
fn rollback_selectively_forgets() {
    forall("rollback_selectively_forgets", 64, 0xADD2_0002, |rng| {
        let pre = gen_ops(rng, 2, 4, 40);
        let post = gen_ops(rng, 2, 4, 40);
        let slices = slice_table(4);
        let mut policy = AcrPolicy::new(slices, AddrMapConfig::default(), 2);
        let mut model = Model::default();
        let mut epoch = 0u64;

        // No pruning here: this test isolates rollback.
        apply(&mut policy, &mut model, &mut epoch, &pre, false);
        let safe = epoch; // roll anything after this point back
        epoch += 1;
        apply(&mut policy, &mut model, &mut epoch, &post, false);

        // Roll both cores back to `safe`.
        policy.on_rollback(safe, 0b11);
        for h in model.history.values_mut() {
            h.retain(|(e, _)| *e < safe);
        }

        for addr in 0..24u64 {
            let a = addr * 8;
            let want = model.lookup(a, safe);
            let got = policy.clone().try_omit(0, WordAddr::new(a), safe);
            assert_eq!(got, want.map(|(owner, _, _)| owner));
        }
    });
}
