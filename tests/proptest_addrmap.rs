//! Model-based property test for ACR's `AddrMap` + policy semantics.
//!
//! A naive reference model keeps, per address, the *complete* history of
//! associations and invalidating stores. Over random operation sequences
//! (stores, associations, checkpoints, rollbacks), the real
//! `acr::AcrPolicy` must agree with the model on every omission decision
//! and recomputed value — within the retention window the paper
//! guarantees (the two most recent checkpoints).

use std::collections::HashMap;

use acr::{AcrPolicy, AddrMapConfig, AssocState};
use acr_ckpt::OmissionPolicy;
use acr_isa::{AluOp, Slice, SliceId, SliceInstr, SliceOperand};
use acr_mem::{CoreId, WordAddr};
use acr_rng::check::forall;
use acr_rng::SmallRng;
use acr_sim::AssocEvent;

/// Identity-plus-constant slices: slice `k` computes `input0 + k`.
fn slice_table(n: u32) -> Vec<Slice> {
    (0..n)
        .map(|k| {
            Slice::new(
                vec![SliceInstr {
                    op: AluOp::Add,
                    a: SliceOperand::Input(0),
                    b: SliceOperand::Imm(u64::from(k)),
                }],
                1,
            )
            .expect("valid slice")
        })
        .collect()
}

#[derive(Debug, Clone)]
enum Op {
    /// Covered store: `store + assoc` pair on `core` at `addr` with slice
    /// `slice` and input `input`.
    Assoc {
        core: u32,
        addr: u8,
        slice: u32,
        input: u64,
    },
    /// Uncovered store on `core` at `addr`.
    Store { core: u32, addr: u8 },
    /// Establish a checkpoint (advance the epoch).
    Checkpoint,
}

/// Weighted 4/2/1 mix of Assoc/Store/Checkpoint.
fn gen_op(rng: &mut SmallRng, cores: u32, slices: u32) -> Op {
    match rng.gen_range(0..7u32) {
        0..=3 => Op::Assoc {
            core: rng.gen_range(0..cores),
            addr: rng.gen_range(0..24u8),
            slice: rng.gen_range(0..slices),
            input: rng.next_u64(),
        },
        4 | 5 => Op::Store {
            core: rng.gen_range(0..cores),
            addr: rng.gen_range(0..24u8),
        },
        _ => Op::Checkpoint,
    }
}

fn gen_ops(rng: &mut SmallRng, cores: u32, slices: u32, max: usize) -> Vec<Op> {
    let n = rng.gen_range(1..max);
    (0..n).map(|_| gen_op(rng, cores, slices)).collect()
}

/// One reference-model history entry: epoch plus the live association
/// (owner core, slice id, captured input), or `None` for a tombstone.
type ModelEntry = (u64, Option<(u32, u32, u64)>);

/// Reference model: full association history per address.
#[derive(Default)]
struct Model {
    history: HashMap<u64, Vec<ModelEntry>>,
}

impl Model {
    fn lookup(&self, addr: u64, epoch: u64) -> Option<(u32, u32, u64)> {
        self.history
            .get(&addr)?
            .iter()
            .rev()
            .find(|(e, _)| *e < epoch)
            .and_then(|(_, a)| *a)
    }
}

fn apply(policy: &mut AcrPolicy, model: &mut Model, epoch: &mut u64, ops: &[Op], prune: bool) {
    for op in ops {
        match *op {
            Op::Assoc {
                core,
                addr,
                slice,
                input,
            } => {
                let a = u64::from(addr) * 8;
                policy.on_store(core, WordAddr::new(a), *epoch);
                policy.on_assoc(
                    &AssocEvent {
                        core: CoreId(core),
                        pc: 0,
                        addr: WordAddr::new(a),
                        value: input.wrapping_add(u64::from(slice)),
                        slice: SliceId(slice),
                        inputs: acr_isa::InputVals::new(&[input]),
                        cycle: 0,
                    },
                    *epoch,
                );
                let h = model.history.entry(a).or_default();
                // Same-epoch entries supersede (last store wins).
                if h.last().map(|(e, _)| *e == *epoch).unwrap_or(false) {
                    h.pop();
                }
                h.push((*epoch, Some((core, slice, input))));
            }
            Op::Store { core, addr } => {
                let a = u64::from(addr) * 8;
                policy.on_store(core, WordAddr::new(a), *epoch);
                let h = model.history.entry(a).or_default();
                if h.last().map(|(e, _)| *e == *epoch).unwrap_or(false) {
                    h.pop();
                }
                // Only meaningful if it kills a live association (a
                // tombstone after nothing is still nothing).
                h.push((*epoch, None));
            }
            Op::Checkpoint => {
                if prune {
                    policy.on_checkpoint(*epoch);
                }
                *epoch += 1;
            }
        }
    }
}

#[test]
fn policy_matches_reference_model() {
    forall("policy_matches_reference_model", 64, 0xADD2_0001, |rng| {
        let ops = gen_ops(rng, 3, 8, 120);
        let slices = slice_table(8);
        let mut policy = AcrPolicy::new(slices.clone(), AddrMapConfig::default(), 3);
        let mut model = Model::default();
        let mut epoch = 0u64;

        for op in &ops {
            apply(
                &mut policy,
                &mut model,
                &mut epoch,
                std::slice::from_ref(op),
                true,
            );

            // After every step, the policy must agree with the model for
            // every address at the current epoch (the only epoch the
            // engine queries omission decisions for).
            for addr in 0..24u64 {
                let a = addr * 8;
                let want = model.lookup(a, epoch);
                let got_owner = policy.clone().try_omit(0, WordAddr::new(a), epoch);
                assert_eq!(
                    got_owner,
                    want.map(|(owner, _, _)| owner),
                    "owner mismatch at addr {a} epoch {epoch}"
                );
                if let Some((_, slice, input)) = want {
                    let rc = policy
                        .clone()
                        .recompute(WordAddr::new(a), epoch)
                        .expect("model says recomputable");
                    assert_eq!(rc.value, input.wrapping_add(u64::from(slice)));
                }
            }
        }
    });
}

/// Rollback forgets exactly the victim's associations from the undone
/// epochs.
#[test]
fn rollback_selectively_forgets() {
    forall("rollback_selectively_forgets", 64, 0xADD2_0002, |rng| {
        let pre = gen_ops(rng, 2, 4, 40);
        let post = gen_ops(rng, 2, 4, 40);
        let slices = slice_table(4);
        let mut policy = AcrPolicy::new(slices, AddrMapConfig::default(), 2);
        let mut model = Model::default();
        let mut epoch = 0u64;

        // No pruning here: this test isolates rollback.
        apply(&mut policy, &mut model, &mut epoch, &pre, false);
        let safe = epoch; // roll anything after this point back
        epoch += 1;
        apply(&mut policy, &mut model, &mut epoch, &post, false);

        // Roll both cores back to `safe`.
        policy.on_rollback(safe, 0b11);
        for h in model.history.values_mut() {
            h.retain(|(e, _)| *e < safe);
        }

        for addr in 0..24u64 {
            let a = addr * 8;
            let want = model.lookup(a, safe);
            let got = policy.clone().try_omit(0, WordAddr::new(a), safe);
            assert_eq!(got, want.map(|(owner, _, _)| owner));
        }
    });
}

// ---------------------------------------------------------------------------
// Differential model for the open-addressed `AddrMap` itself.
//
// The tests above check *policy* semantics with generous capacity; this
// model targets the data structure: a `HashMap<addr, Vec<version>>`
// mirror of the documented version-list rules, driven through the same
// operation stream as the real open-addressed index + arena + inline
// storage, with a deliberately tiny per-core capacity so eviction
// tombstones fire, and with generation pruning and rollbacks
// interleaved. Every step compares classifications, omission owners,
// recomputed values, live counts and tombstone/eviction counters.
// ---------------------------------------------------------------------------

/// One reference version: mirrors the semantics `AddrMap` documents,
/// stored in plain std containers.
#[derive(Debug, Clone, Copy)]
struct MirrorVersion {
    epoch: u64,
    core: u32,
    /// `Some((slice, input))` for a live association, `None` tombstone.
    assoc: Option<(u32, u64)>,
    evicted: bool,
}

#[derive(Debug, Default)]
struct MirrorMap {
    versions: HashMap<u64, Vec<MirrorVersion>>,
    live: Vec<usize>,
    rejected_capacity: u64,
    tombstones: u64,
    evicted_tombstones: u64,
}

impl MirrorMap {
    fn new(cores: usize) -> Self {
        MirrorMap {
            live: vec![0; cores],
            ..MirrorMap::default()
        }
    }

    fn tombstone(&mut self, addr: u64, core: u32, epoch: u64, evicted: bool) {
        let live = &mut self.live;
        let h = self.versions.entry(addr).or_default();
        match h.last_mut() {
            // Already dead from an earlier (or equal) epoch on: no-op.
            Some(last) if last.assoc.is_none() => return,
            // Same-epoch association superseded in place.
            Some(last) if last.epoch == epoch => {
                live[last.core as usize] -= 1;
                last.core = core;
                last.assoc = None;
                last.evicted = evicted;
            }
            _ => h.push(MirrorVersion {
                epoch,
                core,
                assoc: None,
                evicted,
            }),
        }
        self.tombstones += 1;
        if evicted {
            self.evicted_tombstones += 1;
        }
    }

    fn store(&mut self, core: u32, addr: u64, epoch: u64) {
        // Uncovered stores to never-associated (or fully pruned)
        // addresses leave no trace.
        if self.versions.get(&addr).is_none_or(Vec::is_empty) {
            return;
        }
        self.tombstone(addr, core, epoch, false);
    }

    fn assoc(&mut self, core: u32, addr: u64, epoch: u64, slice: u32, input: u64, cap: usize) {
        if self.live[core as usize] >= cap {
            self.rejected_capacity += 1;
            self.tombstone(addr, core, epoch, true);
            return;
        }
        let live = &mut self.live;
        let h = self.versions.entry(addr).or_default();
        match h.last_mut() {
            Some(last) if last.epoch == epoch => {
                if last.assoc.is_some() {
                    live[last.core as usize] -= 1;
                }
                last.core = core;
                last.assoc = Some((slice, input));
                last.evicted = false;
            }
            _ => h.push(MirrorVersion {
                epoch,
                core,
                assoc: Some((slice, input)),
                evicted: false,
            }),
        }
        self.live[core as usize] += 1;
    }

    /// Mirrors `AddrMap::prune`: keep versions with `epoch >= sealed`
    /// plus the latest older one; a lone stale tombstone empties the
    /// history entirely.
    fn prune(&mut self, sealed: u64) {
        let live = &mut self.live;
        for h in self.versions.values_mut() {
            if h.is_empty() {
                continue;
            }
            let keep_from = (0..h.len())
                .rev()
                .find(|&i| h[i].epoch < sealed)
                .unwrap_or(0);
            for v in h.drain(..keep_from) {
                if v.assoc.is_some() {
                    live[v.core as usize] -= 1;
                }
            }
            if h.len() == 1 && h[0].assoc.is_none() && h[0].epoch < sealed {
                h.clear();
            }
        }
    }

    fn rollback(&mut self, safe_epoch: u64, victim_mask: u64) {
        let live = &mut self.live;
        for h in self.versions.values_mut() {
            h.retain(|v| {
                let undone = v.epoch >= safe_epoch && victim_mask >> v.core & 1 == 1;
                if undone && v.assoc.is_some() {
                    live[v.core as usize] -= 1;
                }
                !undone
            });
        }
    }

    /// Classification for `addr` at checkpoint `epoch`, as a comparable
    /// mirror of [`AssocState`]: `None` = absent, otherwise
    /// `(live_slice_and_core, evicted)`.
    #[allow(clippy::type_complexity)]
    fn classify(&self, addr: u64, epoch: u64) -> Option<(Option<(u32, u32, u64)>, bool)> {
        let v = self
            .versions
            .get(&addr)?
            .iter()
            .rev()
            .find(|v| v.epoch < epoch)?;
        Some((
            v.assoc.map(|(slice, input)| (slice, v.core, input)),
            v.evicted,
        ))
    }
}

#[test]
fn addrmap_matches_hashmap_mirror_under_eviction_prune_rollback() {
    const CORES: u32 = 2;
    const ADDRS: u64 = 10;
    const SLICES: u32 = 4;
    // Tiny on purpose: a handful of hot addresses per core saturates it,
    // so capacity evictions (and their tombstones) fire constantly.
    const CAP: usize = 3;
    forall("addrmap_matches_hashmap_mirror", 48, 0xADD2_0003, |rng| {
        let generations = rng.gen_range(1..3u32);
        let mut policy = AcrPolicy::new(
            slice_table(SLICES),
            AddrMapConfig {
                capacity_per_core: CAP,
            },
            CORES as usize,
        )
        .with_generations(generations);
        let mut mirror = MirrorMap::new(CORES as usize);
        let mut epoch = 0u64;

        let steps = rng.gen_range(20..140u32);
        for _ in 0..steps {
            match rng.gen_range(0..10u32) {
                0..=4 => {
                    let core = rng.gen_range(0..CORES);
                    let a = u64::from(rng.gen_range(0..ADDRS as u32)) * 8;
                    let slice = rng.gen_range(0..SLICES);
                    let input = rng.next_u64();
                    policy.on_store(core, WordAddr::new(a), epoch);
                    policy.on_assoc(
                        &AssocEvent {
                            core: CoreId(core),
                            pc: 0,
                            addr: WordAddr::new(a),
                            value: input.wrapping_add(u64::from(slice)),
                            slice: SliceId(slice),
                            inputs: acr_isa::InputVals::new(&[input]),
                            cycle: 0,
                        },
                        epoch,
                    );
                    mirror.store(core, a, epoch);
                    mirror.assoc(core, a, epoch, slice, input, CAP);
                }
                5 | 6 => {
                    let core = rng.gen_range(0..CORES);
                    let a = u64::from(rng.gen_range(0..ADDRS as u32)) * 8;
                    policy.on_store(core, WordAddr::new(a), epoch);
                    mirror.store(core, a, epoch);
                }
                7 | 8 => {
                    policy.on_checkpoint(epoch);
                    mirror.prune(epoch.saturating_sub(u64::from(generations)));
                    epoch += 1;
                }
                _ => {
                    let safe = u64::from(rng.gen_range(0..epoch as u32 + 1));
                    let mask = u64::from(rng.gen_range(1..4u32));
                    policy.on_rollback(safe, mask);
                    mirror.rollback(safe, mask);
                }
            }

            // Occupancy accounting must agree exactly — eviction
            // decisions downstream depend on it.
            let map = policy.addr_map();
            for c in 0..CORES {
                assert_eq!(map.live(c), mirror.live[c as usize], "live({c})");
            }
            let usage = map.usage();
            assert_eq!(usage.rejected_capacity, mirror.rejected_capacity);
            assert_eq!(usage.tombstones, mirror.tombstones);
            assert_eq!(usage.evicted_tombstones, mirror.evicted_tombstones);

            // Full classification sweep: every address at every epoch
            // still reachable by recovery (plus the next one).
            for a in (0..ADDRS).map(|a| a * 8) {
                for e in epoch.saturating_sub(3)..=epoch + 1 {
                    let got = map.classify_for_epoch(WordAddr::new(a), e);
                    let want = mirror.classify(a, e);
                    match (got, want) {
                        (AssocState::Absent, None) => {}
                        (AssocState::Live { slice, core }, Some((Some((ws, wc, _)), _))) => {
                            assert_eq!((slice.0, core), (ws, wc), "live at {a}@{e}");
                        }
                        (AssocState::Evicted, Some((None, true))) => {}
                        (AssocState::Dead, Some((None, false))) => {}
                        (got, want) => {
                            panic!("addr {a} epoch {e}: map {got:?} vs mirror {want:?}")
                        }
                    }
                }
                // Omission owner and recomputed value at the current
                // epoch (the only epoch the engine consults).
                let want = mirror.classify(a, epoch).and_then(|(live, _)| live);
                let got = policy.clone().try_omit(0, WordAddr::new(a), epoch);
                assert_eq!(got, want.map(|(_, core, _)| core), "owner at {a}@{epoch}");
                if let Some((slice, _, input)) = want {
                    let rc = policy
                        .clone()
                        .recompute(WordAddr::new(a), epoch)
                        .expect("mirror says recomputable");
                    assert_eq!(rc.value, input.wrapping_add(u64::from(slice)));
                }
            }
        }
    });
}
