//! Property tests for checkpointing and recovery: over random
//! multithreaded kernels, checkpoint schedules and error schedules, the
//! recovered execution must (a) pass the engine's shadow-memory oracle at
//! every recovery and (b) finish with exactly the reference memory image.

use acr::{Experiment, ExperimentSpec};
use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
use acr_rng::check::forall;
use acr_rng::SmallRng;
use acr_sim::{Machine, MachineConfig, NoHooks};

/// A small parametric kernel family: each thread runs `sweeps` passes
/// over `words` private words, with a per-thread op/constant mix, an
/// optional mid-kernel barrier, and cross-thread *read-only* probes (loads
/// of other threads' regions never feed stores, keeping the final image
/// deterministic under any interleaving).
#[derive(Debug, Clone)]
struct KernelParams {
    threads: u32,
    words: u64,
    sweeps: u64,
    depth: u8,
    op: AluOp,
    with_barrier: bool,
    probe_peers: bool,
}

fn gen_params(rng: &mut SmallRng) -> KernelParams {
    KernelParams {
        threads: rng.gen_range(1..4u32),
        words: *rng.choose(&[16u64, 48, 96]),
        sweeps: rng.gen_range(1..6u64),
        depth: rng.gen_range(1..12u8),
        op: *rng.choose(&[AluOp::Add, AluOp::Mul, AluOp::Xor, AluOp::Sub]),
        with_barrier: rng.gen_bool(),
        probe_peers: rng.gen_bool(),
    }
}

fn build(p: &KernelParams) -> Program {
    let mut b = ProgramBuilder::new(p.threads as usize);
    b.set_mem_bytes(1 << 18);
    for t in 0..p.threads {
        let base = 4096 + u64::from(t) * 16384;
        let tb = b.thread(t);
        tb.imm(Reg(10), base);
        let sweeps = tb.begin_loop(Reg(1), Reg(2), p.sweeps);
        let inner = tb.begin_loop(Reg(3), Reg(4), p.words);
        // value = chain of `depth` ops over (i, sweep).
        tb.alu(AluOp::Add, Reg(22), Reg(3), Reg(1));
        for k in 0..p.depth {
            tb.alui(p.op, Reg(22), Reg(22), u64::from(k) * 2 + 3);
        }
        tb.alui(AluOp::Mul, Reg(6), Reg(3), 8);
        tb.alu(AluOp::Add, Reg(7), Reg(10), Reg(6));
        tb.store(Reg(22), Reg(7), 0);
        tb.end_loop(inner);
        if p.probe_peers && p.threads > 1 {
            // Read a neighbour's region (value discarded): exercises the
            // coherence protocol and the sharing tracker.
            let peer = 4096 + u64::from((t + 1) % p.threads) * 16384;
            tb.imm(Reg(11), peer);
            tb.load(Reg(25), Reg(11), 0);
        }
        tb.end_loop(sweeps);
        if p.with_barrier {
            tb.barrier();
        }
        tb.halt();
    }
    b.build()
}

fn reference(pr: &Program, threads: u32) -> Vec<u64> {
    let mut m = Machine::new(MachineConfig::with_cores(threads), pr);
    m.run(&mut NoHooks, u64::MAX).expect("reference");
    m.mem().image().words().to_vec()
}

/// Recovery (plain and amnesic, with the shadow oracle enabled)
/// always reproduces the reference final memory.
#[test]
fn recovered_execution_matches_reference() {
    forall(
        "recovered_execution_matches_reference",
        40,
        0x2EC0_0001,
        |rng| {
            let params = gen_params(rng);
            let checkpoints = rng.gen_range(2..8u32);
            let errors = rng.gen_range(0..4u32);
            let latency = *rng.choose(&[0.1f64, 0.5, 0.9]);

            let program = build(&params);
            assert!(program.validate().is_ok());
            let want = reference(&program, params.threads);

            let spec = ExperimentSpec {
                detection_latency_frac: latency,
                ..ExperimentSpec::default()
            }
            .with_cores(params.threads)
            .with_checkpoints(checkpoints)
            .with_oracle(true);

            let mut exp = Experiment::new(program, spec).expect("valid program");
            for amnesic in [false, true] {
                let r = if amnesic {
                    exp.run_reckpt(errors).expect("reckpt run")
                } else {
                    exp.run_ckpt(errors).expect("ckpt run")
                };
                let rep = r.report.as_ref().expect("report");
                if errors > 0 {
                    assert!(rep.errors_handled >= 1);
                }
                assert!(rep.checkpoints_taken >= u64::from(checkpoints));
                // o_waste is only incurred when recovering.
                let waste: u64 = rep.recoveries.iter().map(|x| x.waste_cycles).sum();
                if errors == 0 {
                    assert_eq!(waste, 0);
                }
            }
            // Final image equality, via a fresh plain run of the cached
            // experiment's machine is not exposed; rebuild and compare.
            let again = build(&params);
            assert_eq!(reference(&again, params.threads), want);
        },
    );
}

/// The recovery ordering invariant: with more errors, execution never
/// gets cheaper.
#[test]
fn more_errors_never_cheaper() {
    forall("more_errors_never_cheaper", 16, 0x2EC0_0002, |rng| {
        let params = gen_params(rng);
        let program = build(&params);
        let spec = ExperimentSpec::default()
            .with_cores(params.threads)
            .with_checkpoints(5)
            .with_oracle(true);
        let mut exp = Experiment::new(program, spec).expect("valid");
        let none = exp.run_ckpt(0).expect("0 errors");
        let some = exp.run_ckpt(2).expect("2 errors");
        assert!(some.cycles >= none.cycles);
    });
}
