//! Simulator-level statistics (instruction mix, cycles).

/// Dynamic instruction mix and time, accumulated by the [`crate::Machine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Retired simple ALU operations (add/sub/logic/shift/min/max) and
    /// immediates.
    pub alu_ops: u64,
    /// Retired multiplies.
    pub mul_ops: u64,
    /// Retired divides/remainders.
    pub div_ops: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
    /// Retired branches and jumps.
    pub branches: u64,
    /// Retired `ASSOC-ADDR` instructions.
    pub assocs: u64,
    /// Barriers released (per participating core).
    pub barrier_waits: u64,
    /// Total retired instructions.
    pub retired: u64,
}

impl SimStats {
    /// Publishes every counter into `reg` under `sim.*` keys (all values
    /// are retired-event counts):
    ///
    /// * `sim.alu_ops` / `sim.mul_ops` / `sim.div_ops` — arithmetic
    ///   operations (instructions);
    /// * `sim.loads` / `sim.stores` — memory operations (instructions);
    /// * `sim.branches` — branches and jumps (instructions);
    /// * `sim.assocs` — `ASSOC-ADDR` instructions (instructions);
    /// * `sim.barrier_waits` — barrier releases (per participating core);
    /// * `sim.retired` — total retired instructions (the progress metric).
    pub fn metrics(&self, reg: &mut acr_trace::MetricsRegistry) {
        reg.set("sim.alu_ops", self.alu_ops);
        reg.set("sim.mul_ops", self.mul_ops);
        reg.set("sim.div_ops", self.div_ops);
        reg.set("sim.loads", self.loads);
        reg.set("sim.stores", self.stores);
        reg.set("sim.branches", self.branches);
        reg.set("sim.assocs", self.assocs);
        reg.set("sim.barrier_waits", self.barrier_waits);
        reg.set("sim.retired", self.retired);
    }

    /// Field-wise sum.
    pub fn add(&mut self, o: &SimStats) {
        self.alu_ops += o.alu_ops;
        self.mul_ops += o.mul_ops;
        self.div_ops += o.div_ops;
        self.loads += o.loads;
        self.stores += o.stores;
        self.branches += o.branches;
        self.assocs += o.assocs;
        self.barrier_waits += o.barrier_waits;
        self.retired += o.retired;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut a = SimStats {
            loads: 3,
            retired: 10,
            ..Default::default()
        };
        a.add(&SimStats {
            loads: 2,
            stores: 1,
            retired: 5,
            ..Default::default()
        });
        assert_eq!(a.loads, 5);
        assert_eq!(a.stores, 1);
        assert_eq!(a.retired, 15);
    }
}
