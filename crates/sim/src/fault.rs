//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded, fully deterministic campaign of state
//! corruptions expressed in the *progress* metric (total retired
//! instructions) — the same clock checkpoint triggers and error schedules
//! use, so an injection point means the same thing in a raw and an
//! instrumented binary. No wall-clock time or OS randomness is involved:
//! the same seed always produces the same plan, and applying the same plan
//! to the same machine always produces the same execution.
//!
//! The kinds model the classic soft-error surface:
//!
//! * [`FaultKind::RegBitFlip`] — a single-event upset in a register file
//!   cell,
//! * [`FaultKind::PcBitFlip`] — a control-flow upset (the core continues
//!   from the wrong instruction),
//! * [`FaultKind::MemBitFlip`] — a flipped DRAM/cache word, made globally
//!   visible by invalidating cached copies,
//! * [`FaultKind::Crash`] — a power-loss event: every core's volatile
//!   architectural state is lost at once.
//!
//! Two *adversarial* kinds extend that surface with the fault shapes real
//! memories exhibit (off by default, so classic plans — and the golden
//! campaign hashes pinned on them — are untouched):
//!
//! * [`FaultKind::MemBurst`] — a spatially correlated multi-bit upset:
//!   `span` adjacent bits flip, carrying into the next word(s), modeling
//!   row-adjacent DRAM upsets,
//! * [`FaultKind::StuckAt`] — a memory cell pinned to 0/1 that re-corrupts
//!   on every write until recovery rewrites (remaps) the line, exercising
//!   the escalation ladder's re-replay and degraded-mode rungs.
//!
//! Temporal clustering is modeled by [`FaultStorm`]: when set on a
//! [`FaultPlanConfig`], injection points arrive in seeded Poisson-style
//! bursts instead of uniformly.
//!
//! Register, pc, and crash faults corrupt only state that a checkpoint
//! fully re-creates, so a correct recovery always repairs them. Memory
//! faults (single-bit, burst, or stuck-at) can corrupt words the
//! incremental log no longer covers (or poison old-value records captured
//! *after* the flip), so they are *potentially unrecoverable* — the
//! verification harness must classify them, never silently diverge.

use acr_isa::NUM_REGS;
use acr_mem::{CoreId, WordAddr};
use acr_rng::SmallRng;

/// The kind of state corruption to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip bit `bit` of architectural register `reg` on the target core.
    RegBitFlip {
        /// Register index (`0..NUM_REGS`).
        reg: u8,
        /// Bit position (`0..64`).
        bit: u8,
    },
    /// Flip a low bit of the target core's program counter.
    PcBitFlip {
        /// Bit position (`0..PC_FAULT_BITS`), keeping the bad jump within
        /// a small window so the run keeps retiring instructions (which is
        /// what lets progress-based detection fire).
        bit: u8,
    },
    /// Flip bit `bit` of the memory word at `addr`; all cached copies are
    /// invalidated so the corruption is globally visible.
    MemBitFlip {
        /// Target word.
        addr: WordAddr,
        /// Bit position (`0..64`).
        bit: u8,
    },
    /// Spatially correlated multi-bit upset: flip `span` adjacent bits
    /// starting at bit `bit` of the word at `addr`, carrying into the next
    /// word(s) — a row-adjacent DRAM burst. Truncated at the end of the
    /// memory image.
    MemBurst {
        /// First affected word.
        addr: WordAddr,
        /// Starting bit position (`0..64`).
        bit: u8,
        /// Number of adjacent bits to flip (`2..=BURST_MAX_SPAN`).
        span: u8,
    },
    /// Stuck-at cell: bit `bit` of the word at `addr` is pinned to
    /// `stuck_one` and re-asserts itself on every subsequent write until
    /// the line is rewritten (remapped) by recovery, which scrubs the
    /// cell. First assertion corrupts the word immediately.
    StuckAt {
        /// Pinned word.
        addr: WordAddr,
        /// Pinned bit position (`0..64`).
        bit: u8,
        /// `true` pins the bit to 1, `false` pins it to 0.
        stuck_one: bool,
    },
    /// Power-loss crash: every core loses registers and pc simultaneously.
    /// Detection is immediate (a crash is not silent).
    Crash,
}

/// Highest pc bit a [`FaultKind::PcBitFlip`] may flip.
pub const PC_FAULT_BITS: u8 = 4;

/// Largest adjacent-bit span a [`FaultKind::MemBurst`] may flip.
pub const BURST_MAX_SPAN: u8 = 8;

impl FaultKind {
    /// Short stable label for reports ("reg" / "pc" / "mem" / "burst" /
    /// "stuck" / "crash").
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::RegBitFlip { .. } => "reg",
            FaultKind::PcBitFlip { .. } => "pc",
            FaultKind::MemBitFlip { .. } => "mem",
            FaultKind::MemBurst { .. } => "burst",
            FaultKind::StuckAt { .. } => "stuck",
            FaultKind::Crash => "crash",
        }
    }

    /// Whether a correct checkpoint recovery is guaranteed to repair this
    /// fault (see the module docs for why memory corruptions are not).
    pub fn guaranteed_recoverable(&self) -> bool {
        !matches!(
            self,
            FaultKind::MemBitFlip { .. } | FaultKind::MemBurst { .. } | FaultKind::StuckAt { .. }
        )
    }
}

/// One planned fault: corrupt `core` with `kind` once total retired
/// instructions reach `at_progress`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Injection point in retired instructions.
    pub at_progress: u64,
    /// Target core (ignored by [`FaultKind::MemBitFlip`] and
    /// [`FaultKind::Crash`], which are not core-local).
    pub core: CoreId,
    /// What to corrupt.
    pub kind: FaultKind,
}

/// Which fault kinds a campaign draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultKindSet {
    /// Register-file bit flips.
    pub reg: bool,
    /// Program-counter bit flips.
    pub pc: bool,
    /// Memory-word bit flips (potentially unrecoverable).
    pub mem: bool,
    /// Adjacent multi-bit memory bursts (potentially unrecoverable).
    pub burst: bool,
    /// Stuck-at memory cells (potentially unrecoverable; re-corrupting).
    pub stuck: bool,
    /// Whole-machine power-loss crashes.
    pub crash: bool,
}

impl FaultKindSet {
    /// The set with no kind enabled — only useful as a comparison anchor.
    fn none() -> Self {
        FaultKindSet {
            reg: false,
            pc: false,
            mem: false,
            burst: false,
            stuck: false,
            crash: false,
        }
    }

    /// Every *classic* kind, including potentially unrecoverable memory
    /// flips. This is the historical set the pinned golden campaign
    /// hashes were generated with, so it deliberately excludes the
    /// adversarial kinds; use [`FaultKindSet::adversarial`] to opt into
    /// those as well.
    pub fn all() -> Self {
        FaultKindSet {
            reg: true,
            pc: true,
            mem: true,
            crash: true,
            ..Self::none()
        }
    }

    /// Every kind, classic and adversarial (bursts and stuck-at cells).
    pub fn adversarial() -> Self {
        FaultKindSet {
            burst: true,
            stuck: true,
            ..Self::all()
        }
    }

    /// Only kinds a correct recovery is guaranteed to repair.
    pub fn recoverable() -> Self {
        FaultKindSet {
            reg: true,
            pc: true,
            crash: true,
            ..Self::none()
        }
    }

    /// Parses a comma-separated list of kind labels (e.g. `"reg,mem"` or
    /// `"burst,stuck"`), or the shorthands `"all"` (classic kinds),
    /// `"recoverable"`, and `"adversarial"` (everything).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "all" => return Ok(Self::all()),
            "recoverable" => return Ok(Self::recoverable()),
            "adversarial" => return Ok(Self::adversarial()),
            _ => {}
        }
        let mut set = Self::none();
        for part in s.split(',') {
            match part.trim() {
                "reg" => set.reg = true,
                "pc" => set.pc = true,
                "mem" => set.mem = true,
                "burst" => set.burst = true,
                "stuck" => set.stuck = true,
                "crash" => set.crash = true,
                other => return Err(format!("unknown fault kind `{other}`")),
            }
        }
        if set == Self::none() {
            return Err("empty fault-kind set".to_string());
        }
        Ok(set)
    }
}

impl Default for FaultKindSet {
    /// Defaults to the guaranteed-recoverable kinds.
    fn default() -> Self {
        Self::recoverable()
    }
}

/// Temporal clustering for [`FaultPlan::generate`]: instead of drawing
/// injection points uniformly, points arrive in seeded Poisson-style
/// bursts — an exponential-ish inter-burst gap (uniform over
/// `[1, 2 * mean_gap]`) followed by a cluster of `1 + Geometric(1/2)`
/// faults (truncated at `max_burst`) at adjacent progress points. All
/// arithmetic is integer-only, so schedules are bit-reproducible across
/// hosts. Off by default ([`FaultPlanConfig::storm`]` = None`), which
/// keeps classic plans — and the golden campaign hashes pinned on them —
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStorm {
    /// Mean inter-burst gap in progress units (≥ 1).
    pub mean_gap: u64,
    /// Largest burst size (≥ 1).
    pub max_burst: u32,
}

impl Default for FaultStorm {
    /// A dense default: bursts of up to 6 arriving every ~200 retired
    /// instructions.
    fn default() -> Self {
        FaultStorm {
            mean_gap: 200,
            max_burst: 6,
        }
    }
}

impl FaultStorm {
    /// Parses a `"MEAN_GAP,MAX_BURST"` spec (e.g. `"200,6"`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (g, b) = s
            .split_once(',')
            .ok_or_else(|| format!("bad storm spec `{s}` (want MEAN_GAP,MAX_BURST)"))?;
        let mean_gap = g
            .trim()
            .parse::<u64>()
            .map_err(|e| format!("bad storm mean gap `{g}`: {e}"))?;
        let max_burst = b
            .trim()
            .parse::<u32>()
            .map_err(|e| format!("bad storm max burst `{b}`: {e}"))?;
        if mean_gap == 0 || max_burst == 0 {
            return Err("storm mean gap and max burst must be >= 1".to_string());
        }
        Ok(FaultStorm {
            mean_gap,
            max_burst,
        })
    }
}

/// Inputs the deterministic plan generator needs about the target machine
/// and program.
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// Campaign seed.
    pub seed: u64,
    /// Number of faults to plan (one per campaign case).
    pub count: u32,
    /// Kinds to draw from.
    pub kinds: FaultKindSet,
    /// Total retired instructions of the fault-free run; injection points
    /// are drawn from `[1, total_progress)`.
    pub total_progress: u64,
    /// Number of cores faults may target.
    pub cores: u32,
    /// Candidate words for memory flips — normally the program's written
    /// working set from a [`crate::StoreCensus`] pre-run, so flips land on
    /// state the program actually uses.
    pub mem_targets: Vec<WordAddr>,
    /// Optional temporal clustering of injection points. `None` (the
    /// default everywhere) draws points uniformly, exactly as historical
    /// plans did.
    pub storm: Option<FaultStorm>,
}

/// A seeded, deterministic fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Planned faults, in generation order (one per campaign case; they
    /// are independent experiments, not a sequence within one run).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Generates a plan from `cfg`. Deterministic: same config, same plan.
    ///
    /// # Panics
    ///
    /// Panics if `total_progress < 2`, no kind is enabled, or `mem` is the
    /// only enabled kind while `mem_targets` is empty.
    pub fn generate(cfg: &FaultPlanConfig) -> FaultPlan {
        assert!(cfg.total_progress >= 2, "program too short to inject into");
        assert!(cfg.cores >= 1, "need at least one core");
        let mut kinds: Vec<&str> = Vec::new();
        if cfg.kinds.reg {
            kinds.push("reg");
        }
        if cfg.kinds.pc {
            kinds.push("pc");
        }
        if cfg.kinds.mem && !cfg.mem_targets.is_empty() {
            kinds.push("mem");
        }
        if cfg.kinds.burst && !cfg.mem_targets.is_empty() {
            kinds.push("burst");
        }
        if cfg.kinds.stuck && !cfg.mem_targets.is_empty() {
            kinds.push("stuck");
        }
        if cfg.kinds.crash {
            kinds.push("crash");
        }
        assert!(!kinds.is_empty(), "no injectable fault kind enabled");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // Storm schedules consume RNG draws up front; the `None` path
        // leaves the draw sequence byte-identical to historical plans.
        let storm_slots = cfg
            .storm
            .map(|s| storm_schedule(&mut rng, s, cfg.count, cfg.total_progress));
        let faults = (0..cfg.count)
            .map(|i| {
                let at_progress = match &storm_slots {
                    Some(slots) => slots[i as usize],
                    None => rng.gen_range(1..cfg.total_progress),
                };
                let core = CoreId(rng.gen_range(0..cfg.cores));
                let kind = match *rng.choose(&kinds) {
                    "reg" => FaultKind::RegBitFlip {
                        reg: rng.gen_range(0..NUM_REGS as u8),
                        bit: rng.gen_range(0..64u8),
                    },
                    "pc" => FaultKind::PcBitFlip {
                        bit: rng.gen_range(0..PC_FAULT_BITS),
                    },
                    "mem" => FaultKind::MemBitFlip {
                        addr: *rng.choose(&cfg.mem_targets),
                        bit: rng.gen_range(0..64u8),
                    },
                    "burst" => FaultKind::MemBurst {
                        addr: *rng.choose(&cfg.mem_targets),
                        bit: rng.gen_range(0..64u8),
                        span: 2 + rng.gen_range(0..BURST_MAX_SPAN - 1),
                    },
                    "stuck" => FaultKind::StuckAt {
                        addr: *rng.choose(&cfg.mem_targets),
                        bit: rng.gen_range(0..64u8),
                        stuck_one: rng.gen_range(0..2u8) == 1,
                    },
                    _ => FaultKind::Crash,
                };
                Fault {
                    at_progress,
                    core,
                    kind,
                }
            })
            .collect();
        FaultPlan { faults }
    }
}

/// Seeded Poisson-burst schedule of `count` injection points in
/// `[1, total)`: exponential-ish inter-burst gaps, geometric burst sizes,
/// adjacent progress points within a burst. Integer arithmetic only.
fn storm_schedule(rng: &mut SmallRng, storm: FaultStorm, count: u32, total: u64) -> Vec<u64> {
    let span = total - 1; // valid points are 1..total
    let gap = storm.mean_gap.max(1);
    let mut slots = Vec::with_capacity(count as usize);
    let mut t: u64 = 0;
    while slots.len() < count as usize {
        t = t.wrapping_add(1 + rng.gen_range(0..2 * gap));
        let mut k = 1u32;
        while k < storm.max_burst.max(1) && rng.gen_range(0..2u32) == 1 {
            k += 1;
        }
        for j in 0..u64::from(k) {
            if slots.len() == count as usize {
                break;
            }
            slots.push(1 + (t + j) % span);
        }
    }
    slots
}

/// A corruption that strikes *while recovery itself is running* — the
/// nested-fault surface the base [`FaultPlan`] does not model. JASS-style
/// multi-level retention and ReStore-style redundant recovery state exist
/// precisely because these happen; the escalation ladder in
/// `acr-ckpt::engine` is exercised by injecting them deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryFaultKind {
    /// Corrupt the output of one Slice replay: the first recomputation of
    /// an omitted word returns a value with `bit` flipped. The omitted
    /// record's stored checksum exposes the mismatch; a re-replay (Slice
    /// execution is repeatable) produces the correct word.
    ReplayInput {
        /// Bit flipped in the recomputed value (`0..64`).
        bit: u8,
    },
    /// Flip `bit` of a restored word after it is written back to memory.
    /// Read-back verification against the log record detects it; rewriting
    /// the word on retry repairs it.
    RestoredWordFlip {
        /// Bit flipped in the restored word (`0..64`).
        bit: u8,
    },
    /// Persistently corrupt one old-value log record (flip `bit` of its
    /// stored value) before it is applied. The per-record checksum detects
    /// the tear; the retry repairs the record from the redundant mirror
    /// copy (ReStore-style) at an extra read cost.
    TornRecord {
        /// Bit flipped in the record's stored old value (`0..64`).
        bit: u8,
    },
    /// Power-loss crash halfway through applying the restore: the attempt
    /// stops after half the records. Restoring old values is idempotent,
    /// so a full retry from the same generation succeeds.
    CrashMidRestore,
    /// The selected safe checkpoint turns out to be a torn commit (a crash
    /// landed inside its commit window): its integrity checksum fails
    /// verification, forcing fallback to the previous retained generation.
    TornCommit,
}

impl RecoveryFaultKind {
    /// Short stable label for reports and the escalation histogram.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryFaultKind::ReplayInput { .. } => "replay-input",
            RecoveryFaultKind::RestoredWordFlip { .. } => "restored-word",
            RecoveryFaultKind::TornRecord { .. } => "torn-record",
            RecoveryFaultKind::CrashMidRestore => "crash-mid-restore",
            RecoveryFaultKind::TornCommit => "torn-commit",
        }
    }
}

/// One planned recovery-window fault: strike during the `at_recovery`-th
/// recovery of the run (0-based), once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryFault {
    /// Which recovery of the run to strike (0 = the first).
    pub at_recovery: u32,
    /// What to corrupt inside the recovery window.
    pub kind: RecoveryFaultKind,
}

impl RecoveryFault {
    /// Deterministic per-case recovery-fault plan: one fault striking the
    /// case's first recovery, its kind cycling through all five classes
    /// and its bit position derived from the seed. No RNG — the same
    /// `(seed, case)` always yields the same plan, which keeps campaign
    /// output byte-identical across runs.
    pub fn planned(seed: u64, case: u32) -> Vec<RecoveryFault> {
        let mix = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(case));
        let bit = (mix >> 8) as u8 % 64;
        let kind = match (u64::from(case).wrapping_add(seed)) % 5 {
            0 => RecoveryFaultKind::ReplayInput { bit },
            1 => RecoveryFaultKind::RestoredWordFlip { bit },
            2 => RecoveryFaultKind::TornRecord { bit },
            3 => RecoveryFaultKind::CrashMidRestore,
            _ => RecoveryFaultKind::TornCommit,
        };
        vec![RecoveryFault {
            at_recovery: 0,
            kind,
        }]
    }
}

/// What applying a fault actually changed — recorded so campaign reports
/// can describe each case precisely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// A register bit was flipped.
    Reg {
        /// Target core.
        core: CoreId,
        /// Register index.
        reg: u8,
        /// Value after the flip.
        after: u64,
    },
    /// The pc was redirected.
    Pc {
        /// Target core.
        core: CoreId,
        /// pc before the flip.
        from: u32,
        /// pc after the flip.
        to: u32,
    },
    /// A memory word was flipped in the backing image.
    Mem {
        /// Target word.
        addr: WordAddr,
        /// Word value before the flip.
        before: u64,
        /// Word value after the flip.
        after: u64,
    },
    /// A burst flipped adjacent memory bits in the backing image.
    MemBurst {
        /// First affected word.
        addr: WordAddr,
        /// Bits actually flipped (the span truncates at the image end).
        bits: u64,
    },
    /// A stuck-at cell was armed and its pin first asserted.
    Stuck {
        /// Pinned word.
        addr: WordAddr,
        /// Pinned bit position.
        bit: u8,
        /// Pin polarity.
        stuck_one: bool,
    },
    /// All cores lost volatile state.
    Crash,
}

/// An armed stuck-at cell tracked by the machine: the pin re-asserts
/// itself onto the functional memory image as execution progresses, until
/// recovery rewrites (remaps) the line and scrubs the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckCell {
    /// Pinned word.
    pub addr: WordAddr,
    /// Pinned bit position (`0..64`).
    pub bit: u8,
    /// `true` pins the bit to 1, `false` pins it to 0.
    pub stuck_one: bool,
}

impl StuckCell {
    /// Applies the pin to `value`, returning the pinned word.
    pub fn pin(&self, value: u64) -> u64 {
        if self.stuck_one {
            value | (1u64 << self.bit)
        } else {
            value & !(1u64 << self.bit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaultPlanConfig {
        FaultPlanConfig {
            seed: 7,
            count: 64,
            kinds: FaultKindSet::all(),
            total_progress: 10_000,
            cores: 4,
            mem_targets: vec![WordAddr::new(0), WordAddr::new(64), WordAddr::new(128)],
            storm: None,
        }
    }

    #[test]
    fn plans_are_deterministic() {
        assert_eq!(FaultPlan::generate(&cfg()), FaultPlan::generate(&cfg()));
        let mut other = cfg();
        other.seed = 8;
        assert_ne!(FaultPlan::generate(&cfg()), FaultPlan::generate(&other));
    }

    #[test]
    fn plans_respect_bounds_and_kinds() {
        let plan = FaultPlan::generate(&cfg());
        assert_eq!(plan.faults.len(), 64);
        let mut labels = std::collections::BTreeSet::new();
        for f in &plan.faults {
            assert!((1..10_000).contains(&f.at_progress));
            assert!(f.core.0 < 4);
            labels.insert(f.kind.label());
            match f.kind {
                FaultKind::RegBitFlip { reg, bit } => {
                    assert!((reg as usize) < NUM_REGS && bit < 64);
                }
                FaultKind::PcBitFlip { bit } => assert!(bit < PC_FAULT_BITS),
                FaultKind::MemBitFlip { addr, bit } => {
                    assert!(addr.byte() <= 128 && bit < 64);
                }
                FaultKind::Crash => {}
                FaultKind::MemBurst { .. } | FaultKind::StuckAt { .. } => {
                    unreachable!("all() excludes adversarial kinds")
                }
            }
        }
        // With 64 draws over 4 kinds, every kind appears.
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn recoverable_set_excludes_mem() {
        let mut c = cfg();
        c.kinds = FaultKindSet::recoverable();
        for f in &FaultPlan::generate(&c).faults {
            assert!(f.kind.guaranteed_recoverable());
        }
    }

    #[test]
    fn recovery_plans_are_deterministic_and_cover_all_kinds() {
        let mut labels = std::collections::BTreeSet::new();
        for case in 0..10 {
            let plan = RecoveryFault::planned(42, case);
            assert_eq!(plan, RecoveryFault::planned(42, case));
            assert_eq!(plan.len(), 1);
            assert_eq!(plan[0].at_recovery, 0);
            labels.insert(plan[0].kind.label());
            match plan[0].kind {
                RecoveryFaultKind::ReplayInput { bit }
                | RecoveryFaultKind::RestoredWordFlip { bit }
                | RecoveryFaultKind::TornRecord { bit } => assert!(bit < 64),
                _ => {}
            }
        }
        // Ten consecutive cases cycle through all five classes.
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn kind_set_parses() {
        assert_eq!(FaultKindSet::parse("all").unwrap(), FaultKindSet::all());
        assert_eq!(
            FaultKindSet::parse("recoverable").unwrap(),
            FaultKindSet::recoverable()
        );
        assert_eq!(
            FaultKindSet::parse("adversarial").unwrap(),
            FaultKindSet::adversarial()
        );
        let set = FaultKindSet::parse("reg,mem").unwrap();
        assert!(set.reg && set.mem && !set.pc && !set.crash && !set.burst && !set.stuck);
        let adv = FaultKindSet::parse("burst,stuck").unwrap();
        assert!(adv.burst && adv.stuck && !adv.reg && !adv.mem);
        assert!(FaultKindSet::parse("bogus").is_err());
        assert!(FaultKindSet::parse("").is_err());
    }

    #[test]
    fn adversarial_plans_draw_bursts_and_stuck_cells_in_bounds() {
        let mut c = cfg();
        c.kinds = FaultKindSet::adversarial();
        let plan = FaultPlan::generate(&c);
        let mut labels = std::collections::BTreeSet::new();
        for f in &plan.faults {
            labels.insert(f.kind.label());
            match f.kind {
                FaultKind::MemBurst { addr, bit, span } => {
                    assert!(addr.byte() <= 128 && bit < 64);
                    assert!((2..=BURST_MAX_SPAN).contains(&span));
                    assert!(!f.kind.guaranteed_recoverable());
                }
                FaultKind::StuckAt { addr, bit, .. } => {
                    assert!(addr.byte() <= 128 && bit < 64);
                    assert!(!f.kind.guaranteed_recoverable());
                }
                _ => {}
            }
        }
        // 64 draws over 6 kinds: every kind appears.
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn classic_all_set_excludes_adversarial_kinds() {
        let all = FaultKindSet::all();
        assert!(!all.burst && !all.stuck, "all() must stay hash-stable");
        for f in &FaultPlan::generate(&cfg()).faults {
            assert!(!matches!(
                f.kind,
                FaultKind::MemBurst { .. } | FaultKind::StuckAt { .. }
            ));
        }
    }

    #[test]
    fn storm_schedules_are_deterministic_clustered_and_bounded() {
        let mut c = cfg();
        c.storm = Some(FaultStorm {
            mean_gap: 100,
            max_burst: 4,
        });
        let plan = FaultPlan::generate(&c);
        assert_eq!(plan, FaultPlan::generate(&c));
        assert_ne!(plan, FaultPlan::generate(&cfg()), "storm reshapes timing");
        assert_eq!(plan.faults.len(), 64);
        let mut adjacent = 0;
        for (a, b) in plan.faults.iter().zip(plan.faults.iter().skip(1)) {
            assert!((1..10_000).contains(&a.at_progress));
            if b.at_progress == a.at_progress + 1 {
                adjacent += 1;
            }
        }
        assert!(
            adjacent > 0,
            "a storm schedule must cluster some faults at adjacent points"
        );
    }

    #[test]
    fn storm_spec_parses() {
        assert_eq!(FaultStorm::parse("200,6").unwrap(), FaultStorm::default());
        assert_eq!(
            FaultStorm::parse(" 10 , 2 ").unwrap(),
            FaultStorm {
                mean_gap: 10,
                max_burst: 2
            }
        );
        assert!(FaultStorm::parse("200").is_err());
        assert!(FaultStorm::parse("0,6").is_err());
        assert!(FaultStorm::parse("200,0").is_err());
        assert!(FaultStorm::parse("x,y").is_err());
    }

    #[test]
    fn stuck_cells_pin_bits_both_ways() {
        let hi = StuckCell {
            addr: WordAddr::new(0),
            bit: 3,
            stuck_one: true,
        };
        assert_eq!(hi.pin(0), 1 << 3);
        assert_eq!(hi.pin(u64::MAX), u64::MAX);
        let lo = StuckCell {
            addr: WordAddr::new(0),
            bit: 3,
            stuck_one: false,
        };
        assert_eq!(lo.pin(u64::MAX), !(1u64 << 3));
        assert_eq!(lo.pin(0), 0);
    }
}
