//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded, fully deterministic campaign of state
//! corruptions expressed in the *progress* metric (total retired
//! instructions) — the same clock checkpoint triggers and error schedules
//! use, so an injection point means the same thing in a raw and an
//! instrumented binary. No wall-clock time or OS randomness is involved:
//! the same seed always produces the same plan, and applying the same plan
//! to the same machine always produces the same execution.
//!
//! The kinds model the classic soft-error surface:
//!
//! * [`FaultKind::RegBitFlip`] — a single-event upset in a register file
//!   cell,
//! * [`FaultKind::PcBitFlip`] — a control-flow upset (the core continues
//!   from the wrong instruction),
//! * [`FaultKind::MemBitFlip`] — a flipped DRAM/cache word, made globally
//!   visible by invalidating cached copies,
//! * [`FaultKind::Crash`] — a power-loss event: every core's volatile
//!   architectural state is lost at once.
//!
//! Register, pc, and crash faults corrupt only state that a checkpoint
//! fully re-creates, so a correct recovery always repairs them. Memory
//! faults can corrupt words the incremental log no longer covers (or
//! poison old-value records captured *after* the flip), so they are
//! *potentially unrecoverable* — the verification harness must classify
//! them, never silently diverge.

use acr_isa::NUM_REGS;
use acr_mem::{CoreId, WordAddr};
use acr_rng::SmallRng;

/// The kind of state corruption to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip bit `bit` of architectural register `reg` on the target core.
    RegBitFlip {
        /// Register index (`0..NUM_REGS`).
        reg: u8,
        /// Bit position (`0..64`).
        bit: u8,
    },
    /// Flip a low bit of the target core's program counter.
    PcBitFlip {
        /// Bit position (`0..PC_FAULT_BITS`), keeping the bad jump within
        /// a small window so the run keeps retiring instructions (which is
        /// what lets progress-based detection fire).
        bit: u8,
    },
    /// Flip bit `bit` of the memory word at `addr`; all cached copies are
    /// invalidated so the corruption is globally visible.
    MemBitFlip {
        /// Target word.
        addr: WordAddr,
        /// Bit position (`0..64`).
        bit: u8,
    },
    /// Power-loss crash: every core loses registers and pc simultaneously.
    /// Detection is immediate (a crash is not silent).
    Crash,
}

/// Highest pc bit a [`FaultKind::PcBitFlip`] may flip.
pub const PC_FAULT_BITS: u8 = 4;

impl FaultKind {
    /// Short stable label for reports ("reg" / "pc" / "mem" / "crash").
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::RegBitFlip { .. } => "reg",
            FaultKind::PcBitFlip { .. } => "pc",
            FaultKind::MemBitFlip { .. } => "mem",
            FaultKind::Crash => "crash",
        }
    }

    /// Whether a correct checkpoint recovery is guaranteed to repair this
    /// fault (see the module docs for why memory flips are not).
    pub fn guaranteed_recoverable(&self) -> bool {
        !matches!(self, FaultKind::MemBitFlip { .. })
    }
}

/// One planned fault: corrupt `core` with `kind` once total retired
/// instructions reach `at_progress`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Injection point in retired instructions.
    pub at_progress: u64,
    /// Target core (ignored by [`FaultKind::MemBitFlip`] and
    /// [`FaultKind::Crash`], which are not core-local).
    pub core: CoreId,
    /// What to corrupt.
    pub kind: FaultKind,
}

/// Which fault kinds a campaign draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultKindSet {
    /// Register-file bit flips.
    pub reg: bool,
    /// Program-counter bit flips.
    pub pc: bool,
    /// Memory-word bit flips (potentially unrecoverable).
    pub mem: bool,
    /// Whole-machine power-loss crashes.
    pub crash: bool,
}

impl FaultKindSet {
    /// Every kind, including potentially unrecoverable memory flips.
    pub fn all() -> Self {
        FaultKindSet {
            reg: true,
            pc: true,
            mem: true,
            crash: true,
        }
    }

    /// Only kinds a correct recovery is guaranteed to repair.
    pub fn recoverable() -> Self {
        FaultKindSet {
            reg: true,
            pc: true,
            mem: false,
            crash: true,
        }
    }

    /// Parses a comma-separated list of kind labels (e.g. `"reg,mem"`),
    /// or the shorthands `"all"` / `"recoverable"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "all" => return Ok(Self::all()),
            "recoverable" => return Ok(Self::recoverable()),
            _ => {}
        }
        let mut set = FaultKindSet {
            reg: false,
            pc: false,
            mem: false,
            crash: false,
        };
        for part in s.split(',') {
            match part.trim() {
                "reg" => set.reg = true,
                "pc" => set.pc = true,
                "mem" => set.mem = true,
                "crash" => set.crash = true,
                other => return Err(format!("unknown fault kind `{other}`")),
            }
        }
        if set
            == (FaultKindSet {
                reg: false,
                pc: false,
                mem: false,
                crash: false,
            })
        {
            return Err("empty fault-kind set".to_string());
        }
        Ok(set)
    }
}

impl Default for FaultKindSet {
    /// Defaults to the guaranteed-recoverable kinds.
    fn default() -> Self {
        Self::recoverable()
    }
}

/// Inputs the deterministic plan generator needs about the target machine
/// and program.
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// Campaign seed.
    pub seed: u64,
    /// Number of faults to plan (one per campaign case).
    pub count: u32,
    /// Kinds to draw from.
    pub kinds: FaultKindSet,
    /// Total retired instructions of the fault-free run; injection points
    /// are drawn from `[1, total_progress)`.
    pub total_progress: u64,
    /// Number of cores faults may target.
    pub cores: u32,
    /// Candidate words for memory flips — normally the program's written
    /// working set from a [`crate::StoreCensus`] pre-run, so flips land on
    /// state the program actually uses.
    pub mem_targets: Vec<WordAddr>,
}

/// A seeded, deterministic fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Planned faults, in generation order (one per campaign case; they
    /// are independent experiments, not a sequence within one run).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Generates a plan from `cfg`. Deterministic: same config, same plan.
    ///
    /// # Panics
    ///
    /// Panics if `total_progress < 2`, no kind is enabled, or `mem` is the
    /// only enabled kind while `mem_targets` is empty.
    pub fn generate(cfg: &FaultPlanConfig) -> FaultPlan {
        assert!(cfg.total_progress >= 2, "program too short to inject into");
        assert!(cfg.cores >= 1, "need at least one core");
        let mut kinds: Vec<&str> = Vec::new();
        if cfg.kinds.reg {
            kinds.push("reg");
        }
        if cfg.kinds.pc {
            kinds.push("pc");
        }
        if cfg.kinds.mem && !cfg.mem_targets.is_empty() {
            kinds.push("mem");
        }
        if cfg.kinds.crash {
            kinds.push("crash");
        }
        assert!(!kinds.is_empty(), "no injectable fault kind enabled");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let faults = (0..cfg.count)
            .map(|_| {
                let at_progress = rng.gen_range(1..cfg.total_progress);
                let core = CoreId(rng.gen_range(0..cfg.cores));
                let kind = match *rng.choose(&kinds) {
                    "reg" => FaultKind::RegBitFlip {
                        reg: rng.gen_range(0..NUM_REGS as u8),
                        bit: rng.gen_range(0..64u8),
                    },
                    "pc" => FaultKind::PcBitFlip {
                        bit: rng.gen_range(0..PC_FAULT_BITS),
                    },
                    "mem" => FaultKind::MemBitFlip {
                        addr: *rng.choose(&cfg.mem_targets),
                        bit: rng.gen_range(0..64u8),
                    },
                    _ => FaultKind::Crash,
                };
                Fault {
                    at_progress,
                    core,
                    kind,
                }
            })
            .collect();
        FaultPlan { faults }
    }
}

/// A corruption that strikes *while recovery itself is running* — the
/// nested-fault surface the base [`FaultPlan`] does not model. JASS-style
/// multi-level retention and ReStore-style redundant recovery state exist
/// precisely because these happen; the escalation ladder in
/// `acr-ckpt::engine` is exercised by injecting them deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryFaultKind {
    /// Corrupt the output of one Slice replay: the first recomputation of
    /// an omitted word returns a value with `bit` flipped. The omitted
    /// record's stored checksum exposes the mismatch; a re-replay (Slice
    /// execution is repeatable) produces the correct word.
    ReplayInput {
        /// Bit flipped in the recomputed value (`0..64`).
        bit: u8,
    },
    /// Flip `bit` of a restored word after it is written back to memory.
    /// Read-back verification against the log record detects it; rewriting
    /// the word on retry repairs it.
    RestoredWordFlip {
        /// Bit flipped in the restored word (`0..64`).
        bit: u8,
    },
    /// Persistently corrupt one old-value log record (flip `bit` of its
    /// stored value) before it is applied. The per-record checksum detects
    /// the tear; the retry repairs the record from the redundant mirror
    /// copy (ReStore-style) at an extra read cost.
    TornRecord {
        /// Bit flipped in the record's stored old value (`0..64`).
        bit: u8,
    },
    /// Power-loss crash halfway through applying the restore: the attempt
    /// stops after half the records. Restoring old values is idempotent,
    /// so a full retry from the same generation succeeds.
    CrashMidRestore,
    /// The selected safe checkpoint turns out to be a torn commit (a crash
    /// landed inside its commit window): its integrity checksum fails
    /// verification, forcing fallback to the previous retained generation.
    TornCommit,
}

impl RecoveryFaultKind {
    /// Short stable label for reports and the escalation histogram.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryFaultKind::ReplayInput { .. } => "replay-input",
            RecoveryFaultKind::RestoredWordFlip { .. } => "restored-word",
            RecoveryFaultKind::TornRecord { .. } => "torn-record",
            RecoveryFaultKind::CrashMidRestore => "crash-mid-restore",
            RecoveryFaultKind::TornCommit => "torn-commit",
        }
    }
}

/// One planned recovery-window fault: strike during the `at_recovery`-th
/// recovery of the run (0-based), once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryFault {
    /// Which recovery of the run to strike (0 = the first).
    pub at_recovery: u32,
    /// What to corrupt inside the recovery window.
    pub kind: RecoveryFaultKind,
}

impl RecoveryFault {
    /// Deterministic per-case recovery-fault plan: one fault striking the
    /// case's first recovery, its kind cycling through all five classes
    /// and its bit position derived from the seed. No RNG — the same
    /// `(seed, case)` always yields the same plan, which keeps campaign
    /// output byte-identical across runs.
    pub fn planned(seed: u64, case: u32) -> Vec<RecoveryFault> {
        let mix = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(case));
        let bit = (mix >> 8) as u8 % 64;
        let kind = match (u64::from(case).wrapping_add(seed)) % 5 {
            0 => RecoveryFaultKind::ReplayInput { bit },
            1 => RecoveryFaultKind::RestoredWordFlip { bit },
            2 => RecoveryFaultKind::TornRecord { bit },
            3 => RecoveryFaultKind::CrashMidRestore,
            _ => RecoveryFaultKind::TornCommit,
        };
        vec![RecoveryFault {
            at_recovery: 0,
            kind,
        }]
    }
}

/// What applying a fault actually changed — recorded so campaign reports
/// can describe each case precisely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// A register bit was flipped.
    Reg {
        /// Target core.
        core: CoreId,
        /// Register index.
        reg: u8,
        /// Value after the flip.
        after: u64,
    },
    /// The pc was redirected.
    Pc {
        /// Target core.
        core: CoreId,
        /// pc before the flip.
        from: u32,
        /// pc after the flip.
        to: u32,
    },
    /// A memory word was flipped in the backing image.
    Mem {
        /// Target word.
        addr: WordAddr,
        /// Word value before the flip.
        before: u64,
        /// Word value after the flip.
        after: u64,
    },
    /// All cores lost volatile state.
    Crash,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaultPlanConfig {
        FaultPlanConfig {
            seed: 7,
            count: 64,
            kinds: FaultKindSet::all(),
            total_progress: 10_000,
            cores: 4,
            mem_targets: vec![WordAddr::new(0), WordAddr::new(64), WordAddr::new(128)],
        }
    }

    #[test]
    fn plans_are_deterministic() {
        assert_eq!(FaultPlan::generate(&cfg()), FaultPlan::generate(&cfg()));
        let mut other = cfg();
        other.seed = 8;
        assert_ne!(FaultPlan::generate(&cfg()), FaultPlan::generate(&other));
    }

    #[test]
    fn plans_respect_bounds_and_kinds() {
        let plan = FaultPlan::generate(&cfg());
        assert_eq!(plan.faults.len(), 64);
        let mut labels = std::collections::BTreeSet::new();
        for f in &plan.faults {
            assert!((1..10_000).contains(&f.at_progress));
            assert!(f.core.0 < 4);
            labels.insert(f.kind.label());
            match f.kind {
                FaultKind::RegBitFlip { reg, bit } => {
                    assert!((reg as usize) < NUM_REGS && bit < 64);
                }
                FaultKind::PcBitFlip { bit } => assert!(bit < PC_FAULT_BITS),
                FaultKind::MemBitFlip { addr, bit } => {
                    assert!(addr.byte() <= 128 && bit < 64);
                }
                FaultKind::Crash => {}
            }
        }
        // With 64 draws over 4 kinds, every kind appears.
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn recoverable_set_excludes_mem() {
        let mut c = cfg();
        c.kinds = FaultKindSet::recoverable();
        for f in &FaultPlan::generate(&c).faults {
            assert!(f.kind.guaranteed_recoverable());
        }
    }

    #[test]
    fn recovery_plans_are_deterministic_and_cover_all_kinds() {
        let mut labels = std::collections::BTreeSet::new();
        for case in 0..10 {
            let plan = RecoveryFault::planned(42, case);
            assert_eq!(plan, RecoveryFault::planned(42, case));
            assert_eq!(plan.len(), 1);
            assert_eq!(plan[0].at_recovery, 0);
            labels.insert(plan[0].kind.label());
            match plan[0].kind {
                RecoveryFaultKind::ReplayInput { bit }
                | RecoveryFaultKind::RestoredWordFlip { bit }
                | RecoveryFaultKind::TornRecord { bit } => assert!(bit < 64),
                _ => {}
            }
        }
        // Ten consecutive cases cycle through all five classes.
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn kind_set_parses() {
        assert_eq!(FaultKindSet::parse("all").unwrap(), FaultKindSet::all());
        assert_eq!(
            FaultKindSet::parse("recoverable").unwrap(),
            FaultKindSet::recoverable()
        );
        let set = FaultKindSet::parse("reg,mem").unwrap();
        assert!(set.reg && set.mem && !set.pc && !set.crash);
        assert!(FaultKindSet::parse("bogus").is_err());
        assert!(FaultKindSet::parse("").is_err());
    }
}
