//! Instrumentation hooks the checkpoint/recovery machinery attaches to.

use acr_isa::{InputVals, SliceId};
use acr_mem::{CoreId, WordAddr};
use acr_trace::{SharedSink, TraceEvent};

/// A store retired by a core: the event the incremental checkpoint log
/// observes (first-update detection happens in the hook's implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEvent {
    /// Core that stored.
    pub core: CoreId,
    /// Program counter of the store instruction (post-instrumentation
    /// coordinates), for attribution and ledger classification.
    pub pc: u32,
    /// Target word.
    pub addr: WordAddr,
    /// Value the word held *before* this store.
    pub old: u64,
    /// Value stored.
    pub new: u64,
    /// Core-local issue cycle of the store (simulated time; for tracing).
    pub cycle: u64,
}

/// An `ASSOC-ADDR` retired by a core: associates the preceding store's
/// address with a Slice, capturing its input operands.
///
/// `Copy` by design: the captured inputs live in a fixed [`InputVals`]
/// buffer, so handing the event to hooks and policies costs no allocation.
#[derive(Debug, Clone, Copy)]
pub struct AssocEvent {
    /// Core that executed the association.
    pub core: CoreId,
    /// Program counter of the `ASSOC-ADDR` instruction, for attribution.
    pub pc: u32,
    /// Address of the associated (preceding) store.
    pub addr: WordAddr,
    /// Value that store wrote (the value the Slice recomputes).
    pub value: u64,
    /// The Slice embedded in the binary.
    pub slice: SliceId,
    /// Captured input operand values, in Slice input order.
    pub inputs: InputVals,
    /// Core-local issue cycle of the association (simulated time).
    pub cycle: u64,
}

/// Execution hooks. Implementations return extra cycles to charge to the
/// executing core (e.g. an `AddrMap` insertion modelled after an L1-D
/// store).
pub trait ExecHooks {
    /// Called after every retired store, before the next instruction
    /// issues.
    fn on_store(&mut self, ev: StoreEvent) -> u64;

    /// Called for every retired `ASSOC-ADDR`.
    fn on_assoc(&mut self, ev: AssocEvent) -> u64;
}

/// No instrumentation: the `No_Ckpt` baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl ExecHooks for NoHooks {
    fn on_store(&mut self, _ev: StoreEvent) -> u64 {
        0
    }

    fn on_assoc(&mut self, _ev: AssocEvent) -> u64 {
        0
    }
}

/// Records the distinct words a program stores to (its written working
/// set), in address order. A fault campaign pre-runs a program under this
/// hook so memory bit-flips target state the program actually uses —
/// flipping never-touched words would only measure the oracle, not
/// recovery. Costs nothing in simulated time.
#[derive(Debug, Clone, Default)]
pub struct StoreCensus {
    words: std::collections::BTreeSet<WordAddr>,
}

impl StoreCensus {
    /// An empty census.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded store targets in ascending address order.
    pub fn into_targets(self) -> Vec<WordAddr> {
        self.words.into_iter().collect()
    }

    /// Number of distinct words recorded.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when nothing stored yet.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

impl ExecHooks for StoreCensus {
    fn on_store(&mut self, ev: StoreEvent) -> u64 {
        self.words.insert(ev.addr);
        0
    }

    fn on_assoc(&mut self, _ev: AssocEvent) -> u64 {
        0
    }
}

/// Wraps any [`ExecHooks`] and mirrors store/assoc events into a trace
/// sink as detail-gated instants, charging exactly the cycles the inner
/// hooks charge — tracing never perturbs simulated time. Events land on
/// the issuing core's track.
pub struct TracingHooks<'h> {
    inner: &'h mut dyn ExecHooks,
    trace: SharedSink,
}

impl<'h> TracingHooks<'h> {
    /// Wraps `inner`, emitting into `trace`. With a disabled or
    /// non-detail sink the wrapper is pass-through.
    pub fn new(inner: &'h mut dyn ExecHooks, trace: SharedSink) -> Self {
        TracingHooks { inner, trace }
    }
}

impl ExecHooks for TracingHooks<'_> {
    fn on_store(&mut self, ev: StoreEvent) -> u64 {
        if self.trace.detail() {
            self.trace.emit(
                TraceEvent::instant("core.store", "core", ev.core.0, ev.cycle)
                    .with_arg("addr", ev.addr.byte())
                    .with_arg("new", ev.new),
            );
        }
        self.inner.on_store(ev)
    }

    fn on_assoc(&mut self, ev: AssocEvent) -> u64 {
        if self.trace.detail() {
            self.trace.emit(
                TraceEvent::instant("core.assoc", "core", ev.core.0, ev.cycle)
                    .with_arg("addr", ev.addr.byte())
                    .with_arg("slice", u64::from(ev.slice.0)),
            );
        }
        self.inner.on_assoc(ev)
    }
}
