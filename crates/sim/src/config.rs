//! Machine configuration (Table I of the paper).

use acr_mem::MemConfig;

/// Full simulated-machine configuration. Defaults reproduce Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of cores (the paper evaluates 8/16/32; one thread per core).
    pub num_cores: u32,
    /// Core frequency in GHz (Table I: 1.09).
    pub freq_ghz: f64,
    /// Issue width (Table I: 4-issue, in-order).
    pub issue_width: u32,
    /// Outstanding load/store queue entries (Table I: 8).
    pub lsq_entries: usize,
    /// Single-cycle ALU latency (add/logic), in cycles.
    pub alu_latency: u64,
    /// Multiply latency, in cycles.
    pub mul_latency: u64,
    /// Divide/remainder latency, in cycles.
    pub div_latency: u64,
    /// Latency charged to the `ASSOC-ADDR` instruction. The paper models
    /// it "after a store to L1-D" (Section IV), so this defaults to the
    /// L1-D hit latency.
    pub assoc_latency: u64,
    /// Base latency of a full synchronization barrier; the total barrier
    /// cost additionally grows logarithmically with participant count (see
    /// [`MachineConfig::barrier_cycles`]).
    pub barrier_base: u64,
    /// Per-participant serialization cost of *checkpoint* coordination
    /// (core drain + ack collection at the coordinator). This is what
    /// makes checkpointing overhead grow with core count (Section V-D4);
    /// program-level barriers do not pay it.
    pub coord_per_core: u64,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            num_cores: 8,
            freq_ghz: 1.09,
            issue_width: 4,
            lsq_entries: 8,
            alu_latency: 1,
            mul_latency: 3,
            div_latency: 12,
            assoc_latency: 4,
            barrier_base: 40,
            coord_per_core: 100,
            mem: MemConfig::default(),
        }
    }
}

impl MachineConfig {
    /// A Table-I machine with `num_cores` cores.
    pub fn with_cores(num_cores: u32) -> Self {
        MachineConfig {
            num_cores,
            ..Default::default()
        }
    }

    /// Coordination cost of a barrier among `participants` cores: a
    /// tree-structured barrier costs `base * ceil(log2(n))` plus the base
    /// arrival round.
    pub fn barrier_cycles(&self, participants: u32) -> u64 {
        let n = participants.max(1);
        let log = 32 - (n - 1).leading_zeros(); // ceil(log2(n)), 0 for n=1
        self.barrier_base * (1 + u64::from(log))
    }

    /// Coordination cost of establishing a checkpoint among `participants`
    /// cores: the barrier plus per-core drain/ack serialization.
    pub fn checkpoint_coordination_cycles(&self, participants: u32) -> u64 {
        self.barrier_cycles(participants) + self.coord_per_core * u64::from(participants)
    }

    /// Converts cycles to seconds at the configured frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Renders the configuration in the shape of the paper's Table I.
    pub fn table_i(&self) -> String {
        let m = &self.mem;
        format!(
            "Technology node: 22nm\n\
             Freq: {:.2} GHz, {}-issue, in-order, {} outstanding ld/st\n\
             L1-I (LRU):      32KB, 4-way, 3.66ns\n\
             L1-D (LRU, WB):  {}KB, {}-way, {:.2}ns\n\
             L2 (LRU, WB):    {}KB, {}-way, {:.2}ns\n\
             Main Memory:     {:.0}ns, 7.6 GB/s/controller, 1 contr. per {}-cores\n\
             Cores: {}",
            self.freq_ghz,
            self.issue_width,
            self.lsq_entries,
            m.l1d.size_bytes / 1024,
            m.l1d.ways,
            m.l1d.latency_cycles as f64 / self.freq_ghz,
            m.l2.size_bytes / 1024,
            m.l2.ways,
            m.l2.latency_cycles as f64 / self.freq_ghz,
            m.dram.latency_cycles as f64 / self.freq_ghz,
            m.dram.cores_per_ctrl,
            self.num_cores,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_i() {
        let c = MachineConfig::default();
        assert_eq!(c.num_cores, 8);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.lsq_entries, 8);
        assert_eq!(c.mem.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.mem.l2.size_bytes, 512 * 1024);
        assert!((c.freq_ghz - 1.09).abs() < 1e-9);
    }

    #[test]
    fn barrier_grows_with_cores() {
        let c = MachineConfig::default();
        assert_eq!(c.barrier_cycles(1), c.barrier_base);
        assert!(c.barrier_cycles(8) < c.barrier_cycles(32));
    }

    #[test]
    fn table_i_mentions_key_parameters() {
        let s = MachineConfig::with_cores(16).table_i();
        assert!(s.contains("1.09 GHz"));
        assert!(s.contains("512KB"));
        assert!(s.contains("Cores: 16"));
    }

    #[test]
    fn cycles_to_seconds() {
        let c = MachineConfig::default();
        let s = c.cycles_to_seconds(1_090_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
