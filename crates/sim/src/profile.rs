//! Per-PC retire attribution.
//!
//! When enabled on a [`crate::Machine`], every retired instruction charges
//! its issue-slot ticks to the program counter it retired from, split into
//! execute / stall / memory-wait buckets. Attribution is purely
//! observational: it reads the core's local clock around each step and
//! never charges simulated cycles, so a profiled run is cycle-for-cycle
//! and hash-for-hash identical to an unprofiled one (the same contract
//! [`acr_trace::SharedSink`] keeps).
//!
//! ## Charging rules
//!
//! For one retired instruction with observed local-time delta `d` ticks
//! (always ≥ 1: the issue slot itself):
//!
//! * `ticks += d` — total time attributed to the PC;
//! * the first tick is the issue slot (execute);
//! * the remaining `d − 1` ticks are `mem_ticks` for loads, stores and
//!   `ASSOC-ADDR`s (LSQ admission + dependent-miss delay) and
//!   `stall_ticks` for everything else (operand scoreboard waits,
//!   barrier drains).
//!
//! Keys are `(core, pc)` in a `BTreeMap`, so iteration order — and every
//! export built from it — is deterministic.

use std::collections::BTreeMap;

use acr_trace::Histogram;

/// Which attribution bucket an instruction's excess ticks land in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetireClass {
    /// ALU/immediate/branch/control: excess ticks are scoreboard stalls.
    Compute,
    /// Load/store/`ASSOC-ADDR`: excess ticks are memory waits.
    Memory,
}

/// Cycle accounting for one `(core, pc)` site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcCounters {
    /// Instructions retired at this PC.
    pub retires: u64,
    /// Total ticks attributed (issue slots + stalls + memory waits).
    pub ticks: u64,
    /// Ticks beyond the issue slot spent waiting on memory.
    pub mem_ticks: u64,
    /// Ticks beyond the issue slot spent stalled on operands/control.
    pub stall_ticks: u64,
}

/// The per-PC attribution profile of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcProfile {
    map: BTreeMap<(u32, u32), PcCounters>,
    tick_hist: Histogram,
}

impl PcProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one retired instruction at `(core, pc)` with observed
    /// local-time delta `delta_ticks` (≥ 1).
    #[inline]
    pub fn record(&mut self, core: u32, pc: u32, class: RetireClass, delta_ticks: u64) {
        let c = self.map.entry((core, pc)).or_default();
        c.retires += 1;
        c.ticks += delta_ticks;
        let excess = delta_ticks.saturating_sub(1);
        match class {
            RetireClass::Memory => c.mem_ticks += excess,
            RetireClass::Compute => c.stall_ticks += excess,
        }
        self.tick_hist.record(delta_ticks);
    }

    /// Per-site counters in `(core, pc)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, u32), &PcCounters)> {
        self.map.iter()
    }

    /// Number of distinct `(core, pc)` sites observed.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total ticks attributed across all sites.
    pub fn total_ticks(&self) -> u64 {
        self.map.values().map(|c| c.ticks).sum()
    }

    /// Total instructions attributed across all sites.
    pub fn total_retires(&self) -> u64 {
        self.map.values().map(|c| c.retires).sum()
    }

    /// Distribution of per-retire tick deltas (issue-to-issue latency).
    pub fn tick_histogram(&self) -> &Histogram {
        &self.tick_hist
    }

    /// Folds `other` into `self` (used to combine per-segment profiles of
    /// a run that was interrupted by recoveries).
    pub fn merge(&mut self, other: &PcProfile) {
        for (key, c) in &other.map {
            let dst = self.map.entry(*key).or_default();
            dst.retires += c.retires;
            dst.ticks += c.ticks;
            dst.mem_ticks += c.mem_ticks;
            dst.stall_ticks += c.stall_ticks;
        }
        self.tick_hist.merge(&other.tick_hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_classifies_excess_ticks() {
        let mut p = PcProfile::new();
        p.record(0, 4, RetireClass::Compute, 1); // pure issue slot
        p.record(0, 4, RetireClass::Compute, 5); // 4 stall ticks
        p.record(0, 7, RetireClass::Memory, 9); // 8 mem ticks
        let c4 = p.iter().find(|(k, _)| **k == (0, 4)).unwrap().1;
        assert_eq!(c4.retires, 2);
        assert_eq!(c4.ticks, 6);
        assert_eq!(c4.stall_ticks, 4);
        assert_eq!(c4.mem_ticks, 0);
        let c7 = p.iter().find(|(k, _)| **k == (0, 7)).unwrap().1;
        assert_eq!(c7.mem_ticks, 8);
        assert_eq!(p.total_ticks(), 15);
        assert_eq!(p.total_retires(), 3);
        assert_eq!(p.tick_histogram().count(), 3);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = PcProfile::new();
        let mut b = PcProfile::new();
        a.record(0, 1, RetireClass::Compute, 2);
        b.record(0, 1, RetireClass::Memory, 3);
        b.record(1, 1, RetireClass::Compute, 1);
        a.merge(&b);
        assert_eq!(a.total_retires(), 3);
        assert_eq!(a.total_ticks(), 6);
        let c = a.iter().find(|(k, _)| **k == (0, 1)).unwrap().1;
        assert_eq!(c.stall_ticks, 1);
        assert_eq!(c.mem_ticks, 2);
    }
}
