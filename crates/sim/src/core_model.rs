//! In-order multi-issue core approximation.
//!
//! The model tracks per-register readiness (a scoreboard) and a bounded
//! load/store queue:
//!
//! * each instruction occupies one issue slot (1 tick = 1/issue-width of a
//!   cycle) and cannot issue before its source operands are ready,
//! * ALU results become ready after their operation latency,
//! * memory operations enter the LSQ and complete after the latency
//!   reported by the memory hierarchy; misses overlap with independent
//!   work until a dependent use (scoreboard) or a full LSQ stalls issue.
//!
//! This is the usual "interval-style" approximation of an in-order core —
//! far cheaper than cycle-accurate pipelines but faithful to the
//! first-order behaviour Table I describes (4-issue, in-order, 8
//! outstanding ld/st).

use std::collections::VecDeque;

use acr_isa::{AluOp, Instr, Reg, NUM_REGS};
use acr_mem::{CoreId, MemSystem, WordAddr};

use crate::config::MachineConfig;
use crate::hooks::{AssocEvent, ExecHooks, StoreEvent};
use crate::machine::SimError;
use crate::TICKS_PER_CYCLE;

/// Architectural state captured at a checkpoint (register file, pc, control
/// bits). This is exactly the state the paper's checkpoint records per
/// core; its size is charged to the checkpoint by `acr-ckpt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSnapshot {
    /// Register file.
    pub regs: [u64; NUM_REGS],
    /// Program counter.
    pub pc: u32,
    /// Whether the core had halted.
    pub halted: bool,
    /// Whether the core was waiting at a program barrier.
    pub at_barrier: bool,
    /// Retired-instruction counter (progress bookkeeping).
    pub retired: u64,
}

impl CoreSnapshot {
    /// Bytes of architectural state a checkpoint must record for one core:
    /// 32 registers + pc/flags word.
    pub const BYTES: u64 = (NUM_REGS as u64 + 1) * 8;
}

/// What a step did, so the scheduler can react.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// An ordinary instruction retired.
    Normal,
    /// A store retired (an adjacent `ASSOC-ADDR` should retire atomically
    /// with it).
    Store,
    /// The core reached a program barrier and is now waiting.
    Barrier,
    /// The core halted.
    Halt,
}

/// One simulated core.
#[derive(Debug, Clone)]
pub struct CoreModel {
    id: CoreId,
    regs: [u64; NUM_REGS],
    pc: u32,
    halted: bool,
    at_barrier: bool,
    /// Local time in ticks (issue slots).
    ticks: u64,
    reg_ready: [u64; NUM_REGS],
    lsq: VecDeque<u64>,
    /// Address/value of the just-retired store, consumed by `ASSOC-ADDR`.
    last_store: Option<(WordAddr, u64)>,
    retired: u64,
}

impl CoreModel {
    /// Creates core `id` at time zero with zeroed registers.
    pub fn new(id: CoreId) -> Self {
        CoreModel {
            id,
            regs: [0; NUM_REGS],
            pc: 0,
            halted: false,
            at_barrier: false,
            ticks: 0,
            reg_ready: [0; NUM_REGS],
            lsq: VecDeque::new(),
            last_store: None,
            retired: 0,
        }
    }

    /// The core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Local time in ticks.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Local time in cycles.
    pub fn cycles(&self) -> u64 {
        self.ticks / TICKS_PER_CYCLE
    }

    /// True when the core can issue (not halted, not at a barrier).
    pub fn runnable(&self) -> bool {
        !self.halted && !self.at_barrier
    }

    /// Whether the core has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether the core waits at a program barrier.
    pub fn at_barrier(&self) -> bool {
        self.at_barrier
    }

    /// Retired instructions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Register value (for tests and the assoc capture path).
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Releases the core from a barrier: resumes after the barrier
    /// instruction at time `resume_ticks`.
    pub(crate) fn release_barrier(&mut self, resume_ticks: u64) {
        debug_assert!(self.at_barrier);
        self.at_barrier = false;
        self.pc += 1;
        self.advance_to(resume_ticks);
    }

    /// Moves local time forward to at least `ticks` (checkpoint stalls,
    /// barrier releases). Outstanding operation readiness is unaffected —
    /// stall time subsumes it.
    pub fn advance_to(&mut self, ticks: u64) {
        self.ticks = self.ticks.max(ticks);
    }

    /// Captures the architectural state.
    pub fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            regs: self.regs,
            pc: self.pc,
            halted: self.halted,
            at_barrier: self.at_barrier,
            retired: self.retired,
        }
    }

    /// Restores architectural state (recovery), resuming the core at
    /// `resume_ticks` with a drained pipeline.
    pub fn restore(&mut self, snap: &CoreSnapshot, resume_ticks: u64) {
        self.regs = snap.regs;
        self.pc = snap.pc;
        self.halted = snap.halted;
        self.at_barrier = snap.at_barrier;
        self.retired = snap.retired;
        self.ticks = resume_ticks;
        self.reg_ready = [resume_ticks; NUM_REGS];
        self.lsq.clear();
        self.last_store = None;
    }

    /// Fault injection: flips one bit of an architectural register and
    /// returns the corrupted value.
    pub fn flip_reg_bit(&mut self, reg: Reg, bit: u32) -> u64 {
        self.regs[reg.index()] ^= 1u64 << bit;
        self.regs[reg.index()]
    }

    /// Fault injection: flips one bit of the program counter and returns
    /// `(old_pc, new_pc)`. An out-of-range pc fetches `Halt`, so the worst
    /// case is an early (detectable) halt, never a simulator panic.
    pub fn flip_pc_bit(&mut self, bit: u32) -> (u32, u32) {
        let from = self.pc;
        self.pc ^= 1u32 << bit;
        (from, self.pc)
    }

    /// Fault injection: power loss. All volatile architectural state —
    /// registers, pc, pipeline bookkeeping, control bits — is lost; the
    /// core restarts cold from pc 0. Local time and the retired counter
    /// survive (they are simulator bookkeeping, not machine state).
    pub fn crash(&mut self) {
        self.regs = [0; NUM_REGS];
        self.pc = 0;
        self.halted = false;
        self.at_barrier = false;
        self.reg_ready = [self.ticks; NUM_REGS];
        self.lsq.clear();
        self.last_store = None;
    }

    #[inline]
    fn ready(&self, issue: u64, srcs: &[Reg]) -> u64 {
        let mut t = issue;
        for r in srcs {
            t = t.max(self.reg_ready[r.index()]);
        }
        t
    }

    /// Admits a memory operation to the LSQ: returns the (possibly
    /// delayed) issue tick after freeing completed entries and, if the
    /// queue is full, waiting for the oldest entry.
    fn lsq_admit(&mut self, mut issue: u64, cap: usize) -> u64 {
        while matches!(self.lsq.front(), Some(&t) if t <= issue) {
            self.lsq.pop_front();
        }
        if self.lsq.len() >= cap {
            if let Some(t) = self.lsq.pop_front() {
                issue = issue.max(t);
            }
            while matches!(self.lsq.front(), Some(&t) if t <= issue) {
                self.lsq.pop_front();
            }
        }
        issue
    }

    fn alu_latency(cfg: &MachineConfig, op: AluOp) -> u64 {
        match op {
            AluOp::Mul => cfg.mul_latency,
            AluOp::Div | AluOp::Rem => cfg.div_latency,
            _ => cfg.alu_latency,
        }
    }

    fn check_addr(&self, mem: &MemSystem, addr: u64) -> Result<WordAddr, SimError> {
        if !addr.is_multiple_of(acr_isa::WORD_BYTES) {
            return Err(SimError::Misaligned {
                core: self.id,
                addr,
            });
        }
        let w = WordAddr::new(addr);
        if !mem.in_bounds(w) {
            return Err(SimError::OutOfBounds {
                core: self.id,
                addr,
            });
        }
        Ok(w)
    }

    /// Executes one instruction functionally and charges its timing.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for out-of-bounds / misaligned accesses or a
    /// malformed `ASSOC-ADDR` (all indicate generator/pass bugs).
    pub fn step(
        &mut self,
        instr: &Instr,
        cfg: &MachineConfig,
        mem: &mut MemSystem,
        stats: &mut crate::SimStats,
        hooks: &mut dyn ExecHooks,
    ) -> Result<StepKind, SimError> {
        let issue0 = self.ticks + 1;
        let pc = self.pc;
        self.retired += 1;
        stats.retired += 1;
        // Stamp the memory system's observational clock so trace events it
        // emits carry this core's current cycle. Never affects latency.
        mem.set_now(issue0 / TICKS_PER_CYCLE);
        let last_store = self.last_store.take();
        match *instr {
            Instr::Imm { rd, imm } => {
                stats.alu_ops += 1;
                let issue = issue0;
                self.regs[rd.index()] = imm;
                self.reg_ready[rd.index()] = issue;
                self.ticks = issue;
                self.pc += 1;
                Ok(StepKind::Normal)
            }
            Instr::Alu { op, rd, ra, rb } => {
                match op {
                    AluOp::Mul => stats.mul_ops += 1,
                    AluOp::Div | AluOp::Rem => stats.div_ops += 1,
                    _ => stats.alu_ops += 1,
                }
                let issue = self.ready(issue0, &[ra, rb]);
                self.regs[rd.index()] = op.apply(self.regs[ra.index()], self.regs[rb.index()]);
                self.reg_ready[rd.index()] = issue + Self::alu_latency(cfg, op) * TICKS_PER_CYCLE;
                self.ticks = issue;
                self.pc += 1;
                Ok(StepKind::Normal)
            }
            Instr::AluI { op, rd, ra, imm } => {
                match op {
                    AluOp::Mul => stats.mul_ops += 1,
                    AluOp::Div | AluOp::Rem => stats.div_ops += 1,
                    _ => stats.alu_ops += 1,
                }
                let issue = self.ready(issue0, &[ra]);
                self.regs[rd.index()] = op.apply(self.regs[ra.index()], imm);
                self.reg_ready[rd.index()] = issue + Self::alu_latency(cfg, op) * TICKS_PER_CYCLE;
                self.ticks = issue;
                self.pc += 1;
                Ok(StepKind::Normal)
            }
            Instr::Load { rd, base, disp } => {
                stats.loads += 1;
                let issue = self.ready(issue0, &[base]);
                let issue = self.lsq_admit(issue, cfg.lsq_entries);
                let ea = self.regs[base.index()].wrapping_add(disp);
                let w = self.check_addr(mem, ea)?;
                let (val, lat) = mem.load(self.id, w);
                let done = issue + lat * TICKS_PER_CYCLE;
                self.lsq.push_back(done);
                self.regs[rd.index()] = val;
                self.reg_ready[rd.index()] = done;
                self.ticks = issue;
                self.pc += 1;
                Ok(StepKind::Normal)
            }
            Instr::Store { rs, base, disp } => {
                stats.stores += 1;
                let issue = self.ready(issue0, &[rs, base]);
                let issue = self.lsq_admit(issue, cfg.lsq_entries);
                let ea = self.regs[base.index()].wrapping_add(disp);
                let w = self.check_addr(mem, ea)?;
                let val = self.regs[rs.index()];
                let (old, lat) = mem.store(self.id, w, val);
                self.lsq.push_back(issue + lat * TICKS_PER_CYCLE);
                self.last_store = Some((w, val));
                self.ticks = issue;
                self.pc += 1;
                let extra = hooks.on_store(StoreEvent {
                    core: self.id,
                    pc,
                    addr: w,
                    old,
                    new: val,
                    cycle: issue / TICKS_PER_CYCLE,
                });
                self.ticks += extra * TICKS_PER_CYCLE;
                Ok(StepKind::Store)
            }
            Instr::AssocAddr { slice, inputs } => {
                stats.assocs += 1;
                // ASSOC-ADDR retires atomically with its store and is
                // excluded from the progress metric, so checkpoint/error
                // schedules align between raw and instrumented binaries.
                self.retired -= 1;
                stats.retired -= 1;
                let Some((addr, value)) = last_store else {
                    return Err(SimError::AssocWithoutStore {
                        core: self.id,
                        pc: self.pc,
                    });
                };
                // Modelled after a store to L1-D (Section IV): occupies an
                // issue slot and an LSQ entry; the AddrMap/operand-buffer
                // insertion completes in the background.
                let issue = self.ready(issue0, inputs.as_slice());
                let issue = self.lsq_admit(issue, cfg.lsq_entries);
                let mut captured = acr_isa::InputVals::default();
                for r in inputs.iter() {
                    captured.push(self.regs[r.index()]);
                }
                self.lsq
                    .push_back(issue + cfg.assoc_latency * TICKS_PER_CYCLE);
                self.ticks = issue;
                self.pc += 1;
                let extra = hooks.on_assoc(AssocEvent {
                    core: self.id,
                    pc,
                    addr,
                    value,
                    slice,
                    inputs: captured,
                    cycle: issue / TICKS_PER_CYCLE,
                });
                self.ticks += extra * TICKS_PER_CYCLE;
                Ok(StepKind::Normal)
            }
            Instr::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                stats.branches += 1;
                let issue = self.ready(issue0, &[ra, rb]);
                if cond.eval(self.regs[ra.index()], self.regs[rb.index()]) {
                    self.pc = target;
                } else {
                    self.pc += 1;
                }
                self.ticks = issue;
                Ok(StepKind::Normal)
            }
            Instr::Jump { target } => {
                stats.branches += 1;
                self.pc = target;
                self.ticks = issue0;
                Ok(StepKind::Normal)
            }
            Instr::Barrier => {
                // Wait for outstanding memory operations to drain before
                // arriving (a barrier implies a fence).
                let drain = self.lsq.iter().copied().max().unwrap_or(0);
                self.ticks = issue0.max(drain);
                self.lsq.clear();
                self.at_barrier = true;
                Ok(StepKind::Barrier)
            }
            Instr::Halt => {
                self.halted = true;
                self.ticks = issue0;
                Ok(StepKind::Halt)
            }
        }
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_isa::{AluOp, Instr, ProgramBuilder};
    use acr_mem::MemConfig;

    fn machine_parts() -> (MachineConfig, MemSystem, crate::SimStats) {
        let cfg = MachineConfig::with_cores(1);
        let mem = MemSystem::new(MemConfig::default(), 1, 1 << 20);
        (cfg, mem, crate::SimStats::default())
    }

    fn run_instrs(instrs: &[Instr]) -> (CoreModel, u64) {
        let (cfg, mut mem, mut stats) = machine_parts();
        let mut core = CoreModel::new(CoreId(0));
        let mut hooks = crate::hooks::NoHooks;
        for i in instrs {
            core.step(i, &cfg, &mut mem, &mut stats, &mut hooks)
                .expect("step");
        }
        let cycles = core.cycles();
        (core, cycles)
    }

    fn ld(rd: u8, disp: u64) -> Instr {
        Instr::Load {
            rd: Reg(rd),
            base: Reg(0),
            disp,
        }
    }

    #[test]
    fn independent_loads_overlap_dependent_use_stalls() {
        // Eight independent cold loads to distinct lines overlap in the
        // LSQ; their total time is far below eight serialized DRAM
        // latencies.
        let independent: Vec<Instr> = (0..8).map(|i| ld(i + 1, u64::from(i) * 64)).collect();
        let (_, cycles_overlap) = run_instrs(&independent);

        // The same loads, each followed by a dependent use, serialize.
        let mut dependent = Vec::new();
        for i in 0..8u8 {
            dependent.push(ld(i + 1, u64::from(i) * 64 + 4096));
            dependent.push(Instr::AluI {
                op: AluOp::Add,
                rd: Reg(20),
                ra: Reg(i + 1),
                imm: 1,
            });
        }
        let (_, cycles_serial) = run_instrs(&dependent);
        assert!(
            cycles_serial > cycles_overlap * 3,
            "serial {cycles_serial} should dwarf overlapped {cycles_overlap}"
        );
    }

    #[test]
    fn lsq_capacity_limits_outstanding_misses() {
        let cfg = MachineConfig::with_cores(1);
        // 16 independent cold misses with an 8-entry LSQ must take at
        // least two DRAM latencies end to end (the trailing barrier
        // drains the queue so completion time becomes visible).
        let mut instrs: Vec<Instr> = (0..16u32).map(|i| ld(1, u64::from(i) * 64)).collect();
        instrs.push(Instr::Barrier);
        let (_, cycles) = run_instrs(&instrs);
        assert!(
            cycles >= 2 * cfg.mem.dram.latency_cycles,
            "cycles {cycles} too low for a bounded LSQ"
        );
    }

    #[test]
    fn barrier_drains_outstanding_stores() {
        let (cfg, mut mem, mut stats) = machine_parts();
        let mut core = CoreModel::new(CoreId(0));
        let mut hooks = crate::hooks::NoHooks;
        core.step(
            &Instr::Store {
                rs: Reg(1),
                base: Reg(0),
                disp: 0,
            },
            &cfg,
            &mut mem,
            &mut stats,
            &mut hooks,
        )
        .unwrap();
        let before = core.ticks();
        core.step(&Instr::Barrier, &cfg, &mut mem, &mut stats, &mut hooks)
            .unwrap();
        // The barrier waits for the cold store miss to complete.
        assert!(core.ticks() > before + crate::TICKS_PER_CYCLE);
        assert!(core.at_barrier());
    }

    #[test]
    fn snapshot_restore_resets_pipeline_state() {
        let (cfg, mut mem, mut stats) = machine_parts();
        let mut core = CoreModel::new(CoreId(0));
        let mut hooks = crate::hooks::NoHooks;
        core.step(
            &Instr::Imm {
                rd: Reg(5),
                imm: 99,
            },
            &cfg,
            &mut mem,
            &mut stats,
            &mut hooks,
        )
        .unwrap();
        let snap = core.snapshot();
        core.step(&ld(6, 0), &cfg, &mut mem, &mut stats, &mut hooks)
            .unwrap();
        core.restore(&snap, 1_000_000);
        assert_eq!(core.reg(Reg(5)), 99);
        assert_eq!(core.ticks(), 1_000_000);
        assert_eq!(core.retired(), 1);
        assert!(core.runnable());
    }

    #[test]
    fn mul_and_div_latencies_apply() {
        // A chain of dependent multiplies takes mul_latency cycles each;
        // dependent adds take one cycle each.
        let chain = |op: AluOp| -> u64 {
            let mut v = vec![Instr::Imm { rd: Reg(1), imm: 3 }];
            for _ in 0..10 {
                v.push(Instr::AluI {
                    op,
                    rd: Reg(1),
                    ra: Reg(1),
                    imm: 3,
                });
            }
            run_instrs(&v).1
        };
        let add = chain(AluOp::Add);
        let mul = chain(AluOp::Mul);
        let div = chain(AluOp::Div);
        assert!(mul > add);
        assert!(div > mul);
    }

    #[test]
    fn assoc_requires_adjacent_store() {
        let p = {
            let mut b = ProgramBuilder::new(1);
            b.set_mem_bytes(4096);
            b.build()
        };
        let _ = p; // silence unused when not building full programs here
        let (cfg, mut mem, mut stats) = machine_parts();
        let mut core = CoreModel::new(CoreId(0));
        let mut hooks = crate::hooks::NoHooks;
        let r = core.step(
            &Instr::AssocAddr {
                slice: acr_isa::SliceId(0),
                inputs: acr_isa::InputRegs::new(&[]),
            },
            &cfg,
            &mut mem,
            &mut stats,
            &mut hooks,
        );
        assert!(matches!(r, Err(SimError::AssocWithoutStore { .. })));
    }
}
