//! The multicore machine: deterministic scheduling of N cores over a
//! shared memory system.

use std::fmt;

use acr_isa::{Instr, Program};
use acr_mem::{CoreId, MemSystem};
use acr_trace::{MetricsRegistry, Sampler, SharedSink, TimeSeries, TraceEvent, TRACK_ENGINE};

use crate::config::MachineConfig;
use crate::core_model::{CoreModel, CoreSnapshot, StepKind};
use crate::hooks::ExecHooks;
use crate::profile::{PcProfile, RetireClass};
use crate::stats::SimStats;
use crate::TICKS_PER_CYCLE;

/// Maximum local-time skew (in ticks) a core may run ahead of the slowest
/// runnable core before the scheduler switches. Bounds the coherence
/// interleaving error while keeping scheduling cheap.
const SKEW_QUANTUM_TICKS: u64 = 400;

/// Maximum instructions per scheduling batch, so stop conditions are
/// checked often enough.
const BATCH_INSTRS: u64 = 1024;

/// Simulator execution errors (program/generator bugs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Memory access outside the data image.
    OutOfBounds {
        /// Faulting core.
        core: CoreId,
        /// Faulting byte address.
        addr: u64,
    },
    /// Misaligned access.
    Misaligned {
        /// Faulting core.
        core: CoreId,
        /// Faulting byte address.
        addr: u64,
    },
    /// `ASSOC-ADDR` with no pending store.
    AssocWithoutStore {
        /// Faulting core.
        core: CoreId,
        /// Program counter of the `ASSOC-ADDR`.
        pc: u32,
    },
    /// The machine's global fuel (instruction budget) ran out — almost
    /// certainly an accidental infinite loop in a generated kernel.
    FuelExhausted,
    /// A recovery escalation exceeded its watchdog cycle budget and was
    /// aborted as hung. Raised by the checkpoint engine (`acr-ckpt`), not
    /// the machine itself; it lives here so `run_to_completion` keeps a
    /// single error type.
    RecoveryHang {
        /// The configured escalation cycle budget.
        budget_cycles: u64,
        /// Stall cycles the escalation had consumed when aborted.
        spent_cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { core, addr } => {
                write!(f, "core {}: access at {addr:#x} out of bounds", core.0)
            }
            SimError::Misaligned { core, addr } => {
                write!(f, "core {}: misaligned access at {addr:#x}", core.0)
            }
            SimError::AssocWithoutStore { core, pc } => {
                write!(
                    f,
                    "core {}@{pc}: assoc-addr without preceding store",
                    core.0
                )
            }
            SimError::FuelExhausted => write!(f, "instruction budget exhausted"),
            SimError::RecoveryHang {
                budget_cycles,
                spent_cycles,
            } => write!(
                f,
                "recovery watchdog: escalation exceeded its {budget_cycles}-cycle \
                 budget ({spent_cycles} cycles spent)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The retired-instruction target was reached (checkpoint/error point).
    ProgressReached,
    /// Every core halted.
    AllHalted,
}

/// The simulated machine.
///
/// ```
/// use acr_isa::{AluOp, ProgramBuilder, Reg};
/// use acr_sim::{Machine, MachineConfig, NoHooks};
///
/// let mut b = ProgramBuilder::new(1);
/// b.set_mem_bytes(4096);
/// let t = b.thread(0);
/// t.imm(Reg(1), 21);
/// t.alu(AluOp::Add, Reg(2), Reg(1), Reg(1));
/// t.store(Reg(2), Reg(0), 64);
/// t.halt();
/// let program = b.build();
///
/// let mut machine = Machine::new(MachineConfig::with_cores(1), &program);
/// machine.run(&mut NoHooks, u64::MAX)?;
/// assert_eq!(machine.mem().image().read(acr_mem::WordAddr::new(64)), 42);
/// assert!(machine.cycles() > 0);
/// # Ok::<(), acr_sim::SimError>(())
/// ```
pub struct Machine<'p> {
    cfg: MachineConfig,
    program: &'p Program,
    cores: Vec<CoreModel>,
    mem: MemSystem,
    stats: SimStats,
    fuel: u64,
    trace: SharedSink,
    registry: MetricsRegistry,
    sampler: Option<Sampler>,
    profiler: Option<Box<PcProfile>>,
    stuck: Vec<crate::StuckCell>,
}

impl fmt::Debug for Machine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("retired", &self.total_retired())
            .field("cycles", &self.cycles())
            .finish()
    }
}

impl<'p> Machine<'p> {
    /// Builds a machine for `program` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the program has more threads than the machine has cores
    /// (the paper pins one thread per core).
    pub fn new(cfg: MachineConfig, program: &'p Program) -> Self {
        assert!(
            program.num_threads() <= cfg.num_cores as usize,
            "program has {} threads but machine has {} cores",
            program.num_threads(),
            cfg.num_cores
        );
        let mem = MemSystem::new(cfg.mem, cfg.num_cores, program.mem_bytes());
        let mut cores: Vec<CoreModel> = (0..program.num_threads() as u32)
            .map(|i| CoreModel::new(CoreId(i)))
            .collect();
        // Cores with no thread are parked (halted) from the start.
        for c in &mut cores {
            let _ = c;
        }
        Machine {
            cfg,
            program,
            cores,
            mem,
            stats: SimStats::default(),
            fuel: u64::MAX,
            trace: SharedSink::disabled(),
            registry: MetricsRegistry::new(),
            sampler: None,
            profiler: None,
            stuck: Vec::new(),
        }
    }

    /// Installs a trace sink; events from the machine, its memory system
    /// and any attached engine flow into one shared stream. The default
    /// (disabled) sink keeps the hot path to a single cached-bool branch.
    pub fn set_trace_sink(&mut self, sink: SharedSink) {
        self.mem.set_trace(sink.clone());
        self.trace = sink;
    }

    /// The installed trace sink handle (cheap to clone; engines attach
    /// through this so all layers share the stream).
    pub fn trace(&self) -> &SharedSink {
        &self.trace
    }

    /// Enables interval sampling: the unified metrics registry is
    /// snapshotted into a time series at the first observation point
    /// at-or-after every `every_cycles` boundary.
    pub fn enable_sampling(&mut self, every_cycles: u64) {
        self.sampler = Some(Sampler::new(every_cycles));
    }

    /// Enables per-PC retire attribution (see [`PcProfile`]). Like the
    /// sampler and trace sink this is purely observational: it reads each
    /// core's local clock around every step and charges no simulated
    /// cycles, so a profiled run stays cycle- and hash-identical to an
    /// unprofiled one.
    pub fn enable_profiling(&mut self) {
        self.profiler = Some(Box::default());
    }

    /// The attribution profile accumulated so far (None unless
    /// [`Self::enable_profiling`] was called).
    pub fn profile(&self) -> Option<&PcProfile> {
        self.profiler.as_deref()
    }

    /// Takes the attribution profile, leaving profiling disabled.
    pub fn take_profile(&mut self) -> Option<PcProfile> {
        self.profiler.take().map(|b| *b)
    }

    /// The unified metrics registry. Engine layers publish their own
    /// gauges here (`ckpt.*`, …) so interval samples carry them alongside
    /// the `sim.*`/`mem.*`/`core.*` keys the machine refreshes itself.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Refreshes the machine-owned registry keys and snapshots a sample
    /// at the current cycle, regardless of the sampling interval (end of
    /// run, checkpoint boundaries). No-op without [`Self::enable_sampling`].
    pub fn force_sample(&mut self) {
        if self.sampler.is_some() {
            self.refresh_metrics();
            let cycle = self.cycles();
            let reg = &self.registry;
            if let Some(s) = &mut self.sampler {
                s.record(cycle, reg);
            }
        }
    }

    /// Takes the sampled time series accumulated so far (empty if sampling
    /// was never enabled).
    pub fn take_series(&mut self) -> TimeSeries {
        self.sampler
            .as_mut()
            .map(Sampler::take_series)
            .unwrap_or_default()
    }

    /// Refreshes the machine-owned registry keys: `sim.*` / `mem.*` (see
    /// [`SimStats::metrics`] and [`acr_mem::MemStats::metrics`]) plus
    /// `core.N.retired` (instructions) and `core.N.cycles` (cycles) per
    /// core.
    fn refresh_metrics(&mut self) {
        self.stats.metrics(&mut self.registry);
        self.mem.stats().metrics(&mut self.registry);
        for (i, c) in self.cores.iter().enumerate() {
            self.registry.set(&format!("core.{i}.retired"), c.retired());
            self.registry.set(&format!("core.{i}.cycles"), c.cycles());
        }
        if let Some(p) = &self.profiler {
            // Set-semantics (idempotent): `profile.sites` is distinct
            // (core, pc) pairs, `profile.retired` instructions,
            // `profile.ticks` ticks; `profile.retire.ticks` is the
            // per-retire issue-to-issue latency distribution in ticks.
            self.registry.set("profile.sites", p.len() as u64);
            self.registry.set("profile.retired", p.total_retires());
            self.registry.set("profile.ticks", p.total_ticks());
            *self.registry.hist_mut("profile.retire.ticks") = p.tick_histogram().clone();
            self.registry.publish_hist_digests();
        }
    }

    /// Polls the sampler at a scheduling boundary.
    fn poll_sample(&mut self) {
        let cycle = self.cycles();
        if matches!(&self.sampler, Some(s) if s.due(cycle)) {
            self.refresh_metrics();
            let reg = &self.registry;
            if let Some(s) = &mut self.sampler {
                s.record(cycle, reg);
            }
        }
    }

    /// Sets a global instruction budget (defence against runaway loops).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The program under execution.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The memory system.
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Mutable memory system (checkpoint flushes, recovery restores).
    pub fn mem_mut(&mut self) -> &mut MemSystem {
        &mut self.mem
    }

    /// Simulator statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The cores.
    pub fn cores(&self) -> &[CoreModel] {
        &self.cores
    }

    /// Total retired instructions (the progress metric checkpoint and
    /// error schedules are expressed in).
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(CoreModel::retired).sum()
    }

    /// Machine time in ticks: the maximum local time across cores.
    pub fn ticks(&self) -> u64 {
        self.cores.iter().map(CoreModel::ticks).max().unwrap_or(0)
    }

    /// Machine time in cycles.
    pub fn cycles(&self) -> u64 {
        self.ticks() / TICKS_PER_CYCLE
    }

    /// True when every core halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|c| c.halted())
    }

    /// Read-only architectural sanity audit: the number of cores whose
    /// visible state violates a structural invariant — a program counter
    /// outside the core's thread code on a still-running core (the next
    /// fetch could never retire), or the halted and at-barrier flags set
    /// simultaneously. Zero on every machine the scheduler can legally
    /// produce; the checkpoint engine samples this at epoch-commit
    /// boundaries as one of its invariant monitors.
    pub fn audit(&self) -> u64 {
        let mut violations = 0u64;
        for (i, c) in self.cores.iter().enumerate() {
            let code_len = self.program.thread(i as u32).len();
            if !c.halted() && c.pc() as usize >= code_len {
                violations += 1;
            }
            if c.halted() && c.at_barrier() {
                violations += 1;
            }
        }
        violations
    }

    /// Stalls the cores in `mask` until at least `resume_ticks`
    /// (checkpoint stalls).
    pub fn stall_cores(&mut self, mask: u64, resume_ticks: u64) {
        for (i, c) in self.cores.iter_mut().enumerate() {
            if mask >> i & 1 == 1 {
                c.advance_to(resume_ticks);
            }
        }
    }

    /// Maximum local time (ticks) among the cores in `mask`.
    pub fn mask_ticks(&self, mask: u64) -> u64 {
        self.cores
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, c)| c.ticks())
            .max()
            .unwrap_or(0)
    }

    /// Snapshots every core's architectural state (the register/PC part of
    /// a checkpoint).
    pub fn snapshot_arch(&self) -> Vec<CoreSnapshot> {
        self.cores.iter().map(CoreModel::snapshot).collect()
    }

    /// Restores the cores in `mask` from `snaps` (indexed by core),
    /// resuming them at `resume_ticks` (recovery).
    pub fn restore_arch(&mut self, snaps: &[CoreSnapshot], mask: u64, resume_ticks: u64) {
        for (i, c) in self.cores.iter_mut().enumerate() {
            if mask >> i & 1 == 1 {
                c.restore(&snaps[i], resume_ticks);
            }
        }
    }

    /// All-cores mask for this machine.
    pub fn all_mask(&self) -> u64 {
        if self.cores.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.cores.len()) - 1
        }
    }

    /// Applies one fault to the current machine state and reports what
    /// changed. The functional memory image is updated eagerly by stores
    /// (caches model timing only), so flipping the image word *is* the
    /// globally visible corruption.
    pub fn apply_fault(&mut self, target: CoreId, kind: crate::FaultKind) -> crate::FaultEffect {
        use crate::{FaultEffect, FaultKind};
        match kind {
            FaultKind::RegBitFlip { reg, bit } => {
                let core = &mut self.cores[target.0 as usize];
                let after = core.flip_reg_bit(acr_isa::Reg(reg), u32::from(bit));
                FaultEffect::Reg {
                    core: target,
                    reg,
                    after,
                }
            }
            FaultKind::PcBitFlip { bit } => {
                let core = &mut self.cores[target.0 as usize];
                let (from, to) = core.flip_pc_bit(u32::from(bit));
                FaultEffect::Pc {
                    core: target,
                    from,
                    to,
                }
            }
            FaultKind::MemBitFlip { addr, bit } => {
                let before = self.mem.image().read(addr);
                let after = before ^ (1u64 << bit);
                self.mem.image_mut().write(addr, after);
                FaultEffect::Mem {
                    addr,
                    before,
                    after,
                }
            }
            FaultKind::MemBurst { addr, bit, span } => {
                let words_len = self.mem.image().words().len();
                let base = addr.word_index();
                let mut bits = 0u64;
                for i in 0..u32::from(span) {
                    let wi = base + ((u32::from(bit) + i) / 64) as usize;
                    if wi >= words_len {
                        break; // the burst truncates at the image end
                    }
                    let a = acr_mem::WordAddr::new(wi as u64 * 8);
                    let b = (u32::from(bit) + i) % 64;
                    let v = self.mem.image().read(a) ^ (1u64 << b);
                    self.mem.image_mut().write(a, v);
                    bits += 1;
                }
                FaultEffect::MemBurst { addr, bits }
            }
            FaultKind::StuckAt {
                addr,
                bit,
                stuck_one,
            } => {
                let cell = crate::StuckCell {
                    addr,
                    bit,
                    stuck_one,
                };
                let before = self.mem.image().read(addr);
                self.mem.image_mut().write(addr, cell.pin(before));
                self.stuck.push(cell);
                FaultEffect::Stuck {
                    addr,
                    bit,
                    stuck_one,
                }
            }
            FaultKind::Crash => {
                for core in &mut self.cores {
                    core.crash();
                }
                // Caches don't survive a power cycle either.
                self.mem.invalidate_all();
                FaultEffect::Crash
            }
        }
    }

    /// Whether any stuck-at cell is currently armed (cheap hot-path gate:
    /// machines without stuck faults never pay for the pin machinery).
    pub fn has_stuck_cells(&self) -> bool {
        !self.stuck.is_empty()
    }

    /// The armed stuck-at cells.
    pub fn stuck_cells(&self) -> &[crate::StuckCell] {
        &self.stuck
    }

    /// Re-asserts every armed stuck-at cell onto the functional memory
    /// image, returning how many words the pins actually changed. Called
    /// by the engine between run segments so a pinned cell re-corrupts
    /// whatever the program wrote over it.
    pub fn reassert_stuck_cells(&mut self) -> u64 {
        let mut changed = 0;
        for i in 0..self.stuck.len() {
            let cell = self.stuck[i];
            let before = self.mem.image().read(cell.addr);
            let after = cell.pin(before);
            if after != before {
                self.mem.image_mut().write(cell.addr, after);
                changed += 1;
            }
        }
        changed
    }

    /// Recovery wrote `addr`: any pinned cell there fires one last time —
    /// re-corrupting the freshly restored word so the engine's read-back
    /// verification catches it — and is then scrubbed (the read-back
    /// failure makes recovery remap the line, which clears the defect).
    /// Returns whether a cell fired.
    pub fn stuck_scrub(&mut self, addr: acr_mem::WordAddr) -> bool {
        let mut fired = false;
        for i in 0..self.stuck.len() {
            let cell = self.stuck[i];
            if cell.addr == addr {
                let v = self.mem.image().read(addr);
                self.mem.image_mut().write(addr, cell.pin(v));
                fired = true;
            }
        }
        if fired {
            self.stuck.retain(|c| c.addr != addr);
        }
        fired
    }

    fn release_barrier_if_ready(&mut self) -> bool {
        let participants: Vec<usize> = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| c.at_barrier())
            .map(|(i, _)| i)
            .collect();
        if participants.is_empty() {
            return false;
        }
        let all_arrived = self.cores.iter().all(|c| c.halted() || c.at_barrier());
        if !all_arrived {
            return false;
        }
        let arrival = participants
            .iter()
            .map(|&i| self.cores[i].ticks())
            .max()
            .expect("non-empty");
        let cost = self.cfg.barrier_cycles(participants.len() as u32) * TICKS_PER_CYCLE;
        for &i in &participants {
            self.cores[i].release_barrier(arrival + cost);
            self.stats.barrier_waits += 1;
        }
        if self.trace.enabled() {
            self.trace.emit(
                TraceEvent::instant(
                    "barrier.release",
                    "sim",
                    TRACK_ENGINE,
                    (arrival + cost) / TICKS_PER_CYCLE,
                )
                .with_arg("cores", participants.len() as u64),
            );
        }
        true
    }

    /// Runs until total retired instructions reach `until_retired` or all
    /// cores halt, whichever comes first.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the cores, including fuel exhaustion.
    pub fn run(
        &mut self,
        hooks: &mut dyn ExecHooks,
        until_retired: u64,
    ) -> Result<RunOutcome, SimError> {
        // Observation dispatch is decided once per run: the sampler is
        // only installed before `run` (never mid-run), so the scheduler
        // loop branches on a local instead of re-reading the field.
        let sampling = self.sampler.is_some();
        loop {
            if self.total_retired() >= until_retired {
                return Ok(RunOutcome::ProgressReached);
            }
            if self.all_halted() {
                return Ok(RunOutcome::AllHalted);
            }
            // Pick the runnable core with minimum local time.
            let mut min_i = None;
            let mut min_t = u64::MAX;
            let mut second_t = u64::MAX;
            for (i, c) in self.cores.iter().enumerate() {
                if !c.runnable() {
                    continue;
                }
                let t = c.ticks();
                if t < min_t {
                    second_t = min_t;
                    min_t = t;
                    min_i = Some(i);
                } else if t < second_t {
                    second_t = t;
                }
            }
            let Some(i) = min_i else {
                // No runnable core: all non-halted cores are at a barrier.
                if !self.release_barrier_if_ready() {
                    // All halted (checked above) or inconsistent state.
                    return Ok(RunOutcome::AllHalted);
                }
                continue;
            };
            let limit = second_t.saturating_add(SKEW_QUANTUM_TICKS);
            self.run_core_batch(i, limit, hooks, until_retired)?;
            if sampling {
                self.poll_sample();
            }
        }
    }

    /// Runs core `i` until its local time exceeds `limit_ticks`, it blocks,
    /// or the global stop condition is met.
    ///
    /// The attribution profiler is hoisted out of `self` for the batch so
    /// the per-instruction retire path dispatches on a register-resident
    /// local rather than re-loading the field every step; it must be back
    /// in place before the scheduler's sampling poll, which publishes
    /// `profile.*` gauges from it.
    fn run_core_batch(
        &mut self,
        i: usize,
        limit_ticks: u64,
        hooks: &mut dyn ExecHooks,
        until_retired: u64,
    ) -> Result<(), SimError> {
        let mut profiler = self.profiler.take();
        let result = self.core_batch_inner(i, limit_ticks, hooks, until_retired, &mut profiler);
        self.profiler = profiler;
        result
    }

    fn core_batch_inner(
        &mut self,
        i: usize,
        limit_ticks: u64,
        hooks: &mut dyn ExecHooks,
        until_retired: u64,
        profiler: &mut Option<Box<PcProfile>>,
    ) -> Result<(), SimError> {
        let mut retired_total = self.total_retired();
        // Split the machine into disjoint field borrows once so the batch
        // loop indexes `cores[i]` a single time and keeps the fuel counter
        // in a register instead of a per-instruction load/store on `self`.
        let Machine {
            cfg,
            program,
            cores,
            mem,
            stats,
            fuel,
            ..
        } = self;
        let code = program.thread(i as u32);
        let core = &mut cores[i];
        let mut fuel_left = *fuel;
        let mut batch = 0u64;
        let result = loop {
            if !core.runnable()
                || core.ticks() > limit_ticks
                || batch >= BATCH_INSTRS
                || retired_total >= until_retired
            {
                break Ok(());
            }
            if fuel_left == 0 {
                break Err(SimError::FuelExhausted);
            }
            fuel_left -= 1;
            let pc = core.pc();
            let instr = *code.fetch(pc).unwrap_or(&Instr::Halt);
            let ticks_before = core.ticks();
            let kind = match core.step(&instr, cfg, mem, stats, hooks) {
                Ok(k) => k,
                Err(e) => break Err(e),
            };
            let delta = core.ticks() - ticks_before;
            if let Some(prof) = profiler.as_deref_mut() {
                prof.record(i as u32, pc, retire_class(&instr), delta);
            }
            batch += 1;
            retired_total += 1;
            match kind {
                StepKind::Store => {
                    // Retire an adjacent ASSOC-ADDR atomically with its
                    // store so a checkpoint can never split the pair.
                    let next_pc = core.pc();
                    if let Some(next @ Instr::AssocAddr { .. }) = code.fetch(next_pc) {
                        let next = *next;
                        if fuel_left == 0 {
                            break Err(SimError::FuelExhausted);
                        }
                        fuel_left -= 1;
                        let t0 = core.ticks();
                        if let Err(e) = core.step(&next, cfg, mem, stats, hooks) {
                            break Err(e);
                        }
                        if let Some(prof) = profiler.as_deref_mut() {
                            let d = core.ticks() - t0;
                            prof.record(i as u32, next_pc, RetireClass::Memory, d);
                        }
                        batch += 1;
                        retired_total += 1;
                    }
                }
                StepKind::Barrier | StepKind::Halt => break Ok(()),
                StepKind::Normal => {}
            }
        };
        *fuel = fuel_left;
        result
    }
}

/// Which attribution bucket an instruction's excess ticks belong in:
/// memory waits for loads, stores and `ASSOC-ADDR`s, scoreboard/control
/// stalls for everything else.
fn retire_class(instr: &Instr) -> RetireClass {
    match instr {
        Instr::Load { .. } | Instr::Store { .. } | Instr::AssocAddr { .. } => RetireClass::Memory,
        _ => RetireClass::Compute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;
    use acr_isa::interp::Interp;
    use acr_isa::{AluOp, ProgramBuilder, Reg};

    fn demo_program(threads: usize) -> acr_isa::Program {
        let mut b = ProgramBuilder::new(threads);
        b.set_mem_bytes(1 << 20);
        for t in 0..threads as u32 {
            let base = u64::from(t) * 65536;
            let tb = b.thread(t);
            tb.imm(Reg(10), base);
            tb.imm(Reg(5), 0);
            let l = tb.begin_loop(Reg(1), Reg(2), 200);
            tb.alu(AluOp::Add, Reg(5), Reg(5), Reg(1));
            tb.alui(AluOp::Mul, Reg(6), Reg(1), 8);
            tb.alu(AluOp::Add, Reg(7), Reg(10), Reg(6));
            tb.store(Reg(5), Reg(7), 0);
            tb.end_loop(l);
            tb.barrier();
            tb.load(Reg(8), Reg(10), 8);
            tb.store(Reg(8), Reg(10), 4096);
            tb.halt();
        }
        b.build()
    }

    #[test]
    fn matches_reference_interpreter() {
        let p = demo_program(4);
        p.validate().unwrap();
        let mut interp = Interp::new(&p);
        interp.run_to_completion(10_000_000).unwrap();

        let cfg = MachineConfig::with_cores(4);
        let mut m = Machine::new(cfg, &p);
        let out = m.run(&mut NoHooks, u64::MAX).unwrap();
        assert_eq!(out, RunOutcome::AllHalted);
        assert_eq!(m.mem().image().words(), interp.mem());
        assert_eq!(m.total_retired(), interp.retired().iter().sum::<u64>());
    }

    #[test]
    fn cycles_advance_and_are_deterministic() {
        let p = demo_program(2);
        let cfg = MachineConfig::with_cores(2);
        let mut m1 = Machine::new(cfg, &p);
        m1.run(&mut NoHooks, u64::MAX).unwrap();
        let mut m2 = Machine::new(cfg, &p);
        m2.run(&mut NoHooks, u64::MAX).unwrap();
        assert!(m1.cycles() > 0);
        assert_eq!(m1.cycles(), m2.cycles());
        assert_eq!(m1.stats(), m2.stats());
    }

    #[test]
    fn progress_target_pauses_run() {
        let p = demo_program(2);
        let cfg = MachineConfig::with_cores(2);
        let mut m = Machine::new(cfg, &p);
        let out = m.run(&mut NoHooks, 100).unwrap();
        assert_eq!(out, RunOutcome::ProgressReached);
        let r = m.total_retired();
        assert!((100..4000).contains(&r), "retired {r}");
        // Resume to completion.
        let out = m.run(&mut NoHooks, u64::MAX).unwrap();
        assert_eq!(out, RunOutcome::AllHalted);
    }

    #[test]
    fn snapshot_restore_roundtrip_reexecutes_identically() {
        let p = demo_program(2);
        let cfg = MachineConfig::with_cores(2);

        // Reference: run to completion.
        let mut reference = Machine::new(cfg, &p);
        reference.run(&mut NoHooks, u64::MAX).unwrap();

        // Snapshot mid-run, capture memory, run further, then roll back.
        let mut m = Machine::new(cfg, &p);
        m.run(&mut NoHooks, 500).unwrap();
        let snaps = m.snapshot_arch();
        let mem_snapshot = m.mem().image().snapshot();
        m.run(&mut NoHooks, 1500).unwrap();

        // "Recovery": restore memory image and architectural state.
        let mask = m.all_mask();
        let words: Vec<(usize, u64)> = mem_snapshot.iter().copied().enumerate().collect();
        for (i, w) in words {
            let addr = acr_mem::WordAddr::new(i as u64 * 8);
            m.mem_mut().image_mut().write(addr, w);
        }
        let resume = m.ticks();
        m.restore_arch(&snaps, mask, resume);
        m.mem_mut().invalidate_all();
        m.run(&mut NoHooks, u64::MAX).unwrap();

        assert_eq!(m.mem().image().words(), reference.mem().image().words());
    }

    #[test]
    fn stall_cores_advances_time() {
        let p = demo_program(2);
        let cfg = MachineConfig::with_cores(2);
        let mut m = Machine::new(cfg, &p);
        m.run(&mut NoHooks, 100).unwrap();
        let before = m.ticks();
        m.stall_cores(m.all_mask(), before + 4000);
        assert_eq!(m.ticks(), before + 4000);
    }

    #[test]
    fn profiling_conserves_retires_and_never_perturbs_timing() {
        let p = demo_program(2);
        let cfg = MachineConfig::with_cores(2);

        let mut plain = Machine::new(cfg, &p);
        plain.run(&mut NoHooks, u64::MAX).unwrap();

        let mut profiled = Machine::new(cfg, &p);
        profiled.enable_profiling();
        profiled.run(&mut NoHooks, u64::MAX).unwrap();

        // Observational only: identical timing and final state.
        assert_eq!(profiled.cycles(), plain.cycles());
        assert_eq!(profiled.stats(), plain.stats());
        assert_eq!(profiled.mem().image().words(), plain.mem().image().words());

        // Every retired instruction was attributed, and total attributed
        // ticks equal the sum of per-core local clocks.
        let prof = profiled.take_profile().unwrap();
        assert_eq!(prof.total_retires(), profiled.total_retired());
        let core_ticks: u64 = profiled.cores().iter().map(CoreModel::ticks).sum();
        assert!(
            prof.total_ticks() <= core_ticks,
            "attributed {} > clock sum {core_ticks}",
            prof.total_ticks()
        );
        assert_eq!(prof.tick_histogram().count(), prof.total_retires());
        // Memory waits exist in this store-heavy program.
        assert!(prof.iter().any(|(_, c)| c.mem_ticks > 0));
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(4096);
        let t = b.thread(0);
        let top = t.here();
        t.raw(acr_isa::Instr::Jump { target: top });
        t.halt();
        let p = b.build();
        let mut m = Machine::new(MachineConfig::with_cores(1), &p);
        m.set_fuel(1000);
        assert_eq!(m.run(&mut NoHooks, u64::MAX), Err(SimError::FuelExhausted));
    }
}
