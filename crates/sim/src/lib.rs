//! # acr-sim — multicore timing simulator
//!
//! The paper implements ACR in Snipersim (Table I): in-order 4-issue cores
//! at 1.09 GHz with 8 outstanding loads/stores, per-core L1-I/L1-D/L2 and
//! directory coherence. This crate is our Sniper substitute:
//!
//! * [`CoreModel`] — an in-order, multi-issue core approximation with a
//!   register scoreboard and a bounded load/store queue (non-blocking
//!   misses overlap until a dependent use or a full LSQ stalls issue),
//! * [`Machine`] — N cores over an `acr-mem` [`acr_mem::MemSystem`],
//!   scheduled deterministically by local time with a bounded skew quantum
//!   (results are bit-for-bit reproducible),
//! * [`ExecHooks`] — the instrumentation surface the checkpoint/recovery
//!   engine (`acr-ckpt`) and ACR (`acr`) attach to: store events for
//!   first-update logging, `ASSOC-ADDR` events for `AddrMap` maintenance,
//! * [`MachineConfig`] — Table I parameters, printable via
//!   [`MachineConfig::table_i`].
//!
//! Functional correctness of the timing simulator is tested against the
//! `acr-isa` reference interpreter: both must produce identical final
//! memory images for the same program.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod core_model;
mod fault;
mod hooks;
mod machine;
mod profile;
mod stats;

pub use config::MachineConfig;
pub use core_model::{CoreModel, CoreSnapshot};
pub use fault::{
    Fault, FaultEffect, FaultKind, FaultKindSet, FaultPlan, FaultPlanConfig, FaultStorm,
    RecoveryFault, RecoveryFaultKind, StuckCell, BURST_MAX_SPAN, PC_FAULT_BITS,
};
pub use hooks::{AssocEvent, ExecHooks, NoHooks, StoreCensus, StoreEvent, TracingHooks};
pub use machine::{Machine, RunOutcome, SimError};
pub use profile::{PcCounters, PcProfile, RetireClass};
pub use stats::SimStats;

/// Scheduling ticks per core cycle (one tick is one issue slot of the
/// 4-issue core).
pub const TICKS_PER_CYCLE: u64 = 4;

/// Thread-safety audit for the parallel campaign runner (`acr-ckpt`'s
/// `parallel` module). Everything a worker thread *receives* — programs,
/// configs, planned faults, census results, snapshots, stats — must be
/// `Send + Sync`; these assertions turn that contract into a compile
/// error if a future change (say, an `Rc` in a config) silently breaks
/// it.
///
/// [`Machine`] is deliberately **not** on the list: it holds the
/// `Rc`-based trace sink (`acr_trace::SharedSink`) and is therefore
/// `!Send` by design. Workers must construct their own `Machine` inside
/// the worker closure — the compiler enforces that a machine can never
/// migrate between threads, which is exactly the isolation the
/// deterministic sharded campaign relies on.
#[allow(dead_code)]
fn _send_sync_audit() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<acr_isa::Program>();
    assert_send_sync::<MachineConfig>();
    assert_send_sync::<Fault>();
    assert_send_sync::<FaultKind>();
    assert_send_sync::<FaultKindSet>();
    assert_send_sync::<FaultPlan>();
    assert_send_sync::<FaultPlanConfig>();
    assert_send_sync::<FaultStorm>();
    assert_send_sync::<StuckCell>();
    assert_send_sync::<RecoveryFault>();
    assert_send_sync::<RecoveryFaultKind>();
    assert_send_sync::<StoreCensus>();
    assert_send_sync::<CoreSnapshot>();
    assert_send_sync::<SimStats>();
    assert_send_sync::<SimError>();
    assert_send_sync::<PcProfile>();
}
