//! Deterministic multi-workload sweep drivers.
//!
//! The CLI's `inject`, `trace` and `profile` subcommands all iterate a
//! list of independent workloads; this module shards that outer loop
//! across worker threads with the same jobs-invariance guarantee as the
//! per-case campaign parallelism in `acr-ckpt`: results come back in
//! item order, every worker builds its own `Experiment` (and, when
//! tracing, its own in-memory `TraceSink`) inside the worker thread, and
//! only plain data crosses the thread boundary.
//!
//! [`ExperimentSpec`] is deliberately `!Send` (it carries the `Rc`-based
//! [`SharedSink`]), so sweeps take a *spec factory* closure — called
//! once per item, in the worker — instead of prebuilt specs. The
//! compiler thereby enforces the per-worker isolation the deterministic
//! merge relies on.

use acr_ckpt::{CampaignConfig, ParallelRunner};
use acr_isa::Program;
use acr_sim::Fault;
use acr_trace::{SharedSink, Stopwatch, TraceEvent};

use crate::experiment::{
    CampaignRunResult, Experiment, ExperimentError, ExperimentSpec, RunResult,
};

/// One workload of a fault-campaign sweep (`acr_cli inject`).
#[derive(Debug, Clone)]
pub struct CampaignSweepItem {
    /// Display name (also how spec factories identify the workload).
    pub name: String,
    /// The raw (uninstrumented) workload program.
    pub program: Program,
    /// Campaign parameters. [`CampaignConfig::jobs`] is ignored: the
    /// sweep divides its worker budget between workloads and per-case
    /// shards itself (see [`run_campaign_sweep`]).
    pub campaign: CampaignConfig,
    /// ACR policy (`true`) or the non-amnesic log-only baseline.
    pub amnesic: bool,
}

/// Per-item outcome of [`run_campaign_sweep`], in item order.
#[derive(Debug)]
pub struct CampaignSweepOutcome {
    /// The item's name.
    pub name: String,
    /// The campaign result, or why this item failed (other items still
    /// run — a sweep never drops results behind an early failure).
    pub run: Result<CampaignRunResult, ExperimentError>,
    /// Host wall time this item took, in nanoseconds. Observability only
    /// (feeds `host.phase.<name>.ns` in run manifests); never part of the
    /// compared report.
    pub host_ns: u64,
}

/// Runs one fault campaign per item, sharding `jobs` worker threads
/// across the sweep: with more items than workers the parallelism lives
/// at the workload level; with more workers than items the surplus is
/// handed down as per-case campaign shards (`CampaignConfig::jobs`), so
/// a single-workload sweep still scales. Outcomes return in item order
/// and every report is byte-identical for every `jobs` value (0 = auto).
pub fn run_campaign_sweep<S>(
    items: &[CampaignSweepItem],
    jobs: usize,
    spec_for: S,
) -> Vec<CampaignSweepOutcome>
where
    S: Fn(&CampaignSweepItem) -> ExperimentSpec + Sync,
{
    let budget = ParallelRunner::new(jobs).jobs();
    let outer = budget.min(items.len()).max(1);
    let inner = (budget / outer).max(1);
    ParallelRunner::new(outer).run_ordered(items.len(), |i| {
        let item = &items[i];
        let sw = Stopwatch::start();
        let run = Experiment::new(item.program.clone(), spec_for(item)).and_then(|mut exp| {
            let mut cfg = item.campaign.clone();
            cfg.jobs = inner;
            exp.run_fault_campaign(&cfg, item.amnesic)
        });
        CampaignSweepOutcome {
            name: item.name.clone(),
            run,
            host_ns: sw.elapsed_ns(),
        }
    })
}

/// One workload of a faulted-run sweep (`acr_cli trace` / `profile`).
#[derive(Debug, Clone)]
pub struct FaultedSweepItem {
    /// Display name (also how spec/fault factories identify the
    /// workload).
    pub name: String,
    /// The raw (uninstrumented) workload program.
    pub program: Program,
}

/// What one faulted run produced (see [`run_faulted_sweep`]).
#[derive(Debug, Clone)]
pub struct FaultedRun {
    /// The `ReCkpt_F` run result (report, profile, ledger as enabled by
    /// the spec).
    pub result: RunResult,
    /// Events captured by the per-worker in-memory trace sink (empty
    /// when tracing was off).
    pub events: Vec<TraceEvent>,
    /// The instrumented binary the run executed (for flamegraph region
    /// labels).
    pub instrumented: Program,
}

/// Per-item outcome of [`run_faulted_sweep`], in item order.
#[derive(Debug)]
pub struct FaultedSweepOutcome {
    /// The item's name.
    pub name: String,
    /// The run, or why this item failed.
    pub run: Result<FaultedRun, ExperimentError>,
    /// Host wall time this item took, in nanoseconds (observability
    /// only; see [`CampaignSweepOutcome::host_ns`]).
    pub host_ns: u64,
}

/// Runs [`Experiment::run_reckpt_faulted`] once per item across `jobs`
/// workers (0 = auto). `faults_for` receives the item plus its
/// fault-free total work (which each worker measures itself) and returns
/// the faults to inject. `trace_detail: Some(detail)` attaches a fresh
/// in-memory trace sink per worker — sinks are `Rc`-based and must never
/// be shared across workloads, which is also why traced events come back
/// *per item* instead of interleaved.
pub fn run_faulted_sweep<S, Ff>(
    items: &[FaultedSweepItem],
    jobs: usize,
    trace_detail: Option<bool>,
    spec_for: S,
    faults_for: Ff,
) -> Vec<FaultedSweepOutcome>
where
    S: Fn(&FaultedSweepItem) -> ExperimentSpec + Sync,
    Ff: Fn(&FaultedSweepItem, u64) -> Vec<Fault> + Sync,
{
    ParallelRunner::new(jobs).run_ordered(items.len(), |i| {
        let item = &items[i];
        let sw = Stopwatch::start();
        let run: Result<FaultedRun, ExperimentError> = (|| {
            let mut spec = spec_for(item);
            let recorder = trace_detail.map(|detail| {
                let (sink, handle) = SharedSink::memory();
                spec.trace = sink.with_detail(detail);
                handle
            });
            let mut exp = Experiment::new(item.program.clone(), spec)?;
            let total = exp.total_work()?;
            let result = exp.run_reckpt_faulted(faults_for(item, total))?;
            let events = recorder
                .map(|h| h.borrow().events().to_vec())
                .unwrap_or_default();
            let instrumented = exp.instrumented().0.clone();
            Ok(FaultedRun {
                result,
                events,
                instrumented,
            })
        })();
        FaultedSweepOutcome {
            name: item.name.clone(),
            run,
            host_ns: sw.elapsed_ns(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_isa::{AluOp, ProgramBuilder, Reg};
    use acr_mem::CoreId;
    use acr_sim::FaultKind;

    fn kernel(threads: usize, iters: u64) -> Program {
        let mut b = ProgramBuilder::new(threads);
        b.set_mem_bytes(1 << 20);
        for t in 0..threads as u32 {
            let base = u64::from(t) * 131072;
            let tb = b.thread(t);
            tb.imm(Reg(10), base);
            let outer = tb.begin_loop(Reg(8), Reg(9), 12);
            let l = tb.begin_loop(Reg(1), Reg(2), iters);
            tb.alui(AluOp::Mul, Reg(3), Reg(1), 13);
            tb.alu(AluOp::Xor, Reg(3), Reg(3), Reg(8));
            tb.alui(AluOp::Mul, Reg(4), Reg(1), 8);
            tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
            tb.store(Reg(3), Reg(5), 0);
            tb.end_loop(l);
            tb.end_loop(outer);
            tb.halt();
        }
        b.build()
    }

    fn items() -> Vec<CampaignSweepItem> {
        ["a", "b", "c"]
            .iter()
            .enumerate()
            .map(|(i, name)| CampaignSweepItem {
                name: (*name).to_owned(),
                program: kernel(2, 40 + 10 * i as u64),
                campaign: CampaignConfig {
                    seed: 42 + i as u64,
                    count: 6,
                    num_checkpoints: 5,
                    ..CampaignConfig::default()
                },
                amnesic: true,
            })
            .collect()
    }

    /// The whole sweep — reports, hashes, recovery energy — is identical
    /// for every jobs value, including the budget-split cases (more
    /// workers than items hand the surplus to per-case shards).
    #[test]
    fn campaign_sweep_is_jobs_invariant() {
        let items = items();
        let spec =
            |_: &CampaignSweepItem| ExperimentSpec::default().with_cores(2).with_checkpoints(5);
        let seq = run_campaign_sweep(&items, 1, spec);
        assert_eq!(seq.len(), 3);
        for jobs in [2usize, 4, 8] {
            let par = run_campaign_sweep(&items, jobs, spec);
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.name, p.name, "jobs={jobs}");
                let (s, p) = (
                    s.run.as_ref().expect("sweep runs"),
                    p.run.as_ref().expect("sweep runs"),
                );
                assert_eq!(s.report, p.report, "jobs={jobs}");
                assert_eq!(s.report.content_hash(), p.report.content_hash());
                assert_eq!(
                    s.recovery_energy_joules.to_bits(),
                    p.recovery_energy_joules.to_bits(),
                    "jobs={jobs}"
                );
            }
        }
    }

    /// Faulted sweeps return per-item results in item order, with
    /// per-worker trace sinks that never interleave events across items.
    #[test]
    fn faulted_sweep_is_jobs_invariant_and_traces_per_item() {
        let items: Vec<FaultedSweepItem> = ["x", "y"]
            .iter()
            .enumerate()
            .map(|(i, name)| FaultedSweepItem {
                name: (*name).to_owned(),
                program: kernel(2, 50 + 20 * i as u64),
            })
            .collect();
        let spec =
            |_: &FaultedSweepItem| ExperimentSpec::default().with_cores(2).with_checkpoints(5);
        let faults = |_: &FaultedSweepItem, total: u64| {
            vec![Fault {
                at_progress: total / 2,
                core: CoreId(0),
                kind: FaultKind::RegBitFlip { reg: 5, bit: 3 },
            }]
        };
        let seq = run_faulted_sweep(&items, 1, Some(false), spec, faults);
        let par = run_faulted_sweep(&items, 4, Some(false), spec, faults);
        assert_eq!(seq.len(), 2);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.name, p.name);
            let (s, p) = (
                s.run.as_ref().expect("sweep runs"),
                p.run.as_ref().expect("sweep runs"),
            );
            assert_eq!(s.result.cycles, p.result.cycles);
            assert_eq!(s.events, p.events, "traced events must be jobs-invariant");
            assert!(!s.events.is_empty(), "tracing was on");
            assert_eq!(s.instrumented, p.instrumented);
        }
    }
}
