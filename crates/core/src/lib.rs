//! # acr — Amnesic Checkpointing and Recovery
//!
//! Reproduction of the primary contribution of *ACR: Amnesic Checkpointing
//! and Recovery* (Akturk & Karpuzcu, HPCA 2020). ACR reduces the overhead
//! of backward error recovery by **omitting recomputable values from
//! checkpoints**: the old values that incremental checkpointing would log
//! are instead regenerated during recovery by executing short, memory-free
//! backward Slices that the compiler embedded into the binary.
//!
//! This crate supplies the on-chip machinery of Fig. 5 of the paper and
//! the experiment API used by the figure/table harnesses:
//!
//! * [`AddrMap`] — the versioned ⟨memory address, Slice address⟩ buffer
//!   (plus the captured input operands, i.e. the operand buffer), keeping
//!   the mappings of the two most recent checkpoints (Section III-A);
//! * [`AcrPolicy`] — the ACR checkpoint handler + recovery handler pair,
//!   implemented as an `acr-ckpt` [`acr_ckpt::OmissionPolicy`]: it decides
//!   at each first update whether the old value may be omitted and
//!   regenerates omitted values during recovery (Fig. 4);
//! * [`Experiment`]/[`RunResult`] — one-call runners for the paper's
//!   configurations (`No_Ckpt`, `Ckpt_{NE,E}`, `ReCkpt_{NE,E}`, and their
//!   `Loc` variants), with time, energy and EDP accounting.
//!
//! ## Quick start
//!
//! ```
//! use acr::{Experiment, ExperimentSpec};
//! use acr_isa::{AluOp, ProgramBuilder, Reg};
//!
//! // A tiny kernel: fill a buffer with i*3+7.
//! let mut b = ProgramBuilder::new(1);
//! b.set_mem_bytes(1 << 16);
//! let t = b.thread(0);
//! t.imm(Reg(10), 4096);
//! let l = t.begin_loop(Reg(1), Reg(2), 100);
//! t.alui(AluOp::Mul, Reg(3), Reg(1), 3);
//! t.alui(AluOp::Add, Reg(3), Reg(3), 7);
//! t.alui(AluOp::Mul, Reg(4), Reg(1), 8);
//! t.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
//! t.store(Reg(3), Reg(5), 0);
//! t.end_loop(l);
//! t.halt();
//! let program = b.build();
//!
//! let spec = ExperimentSpec::default().with_cores(1);
//! let mut exp = Experiment::new(program, spec)?;
//! let no_ckpt = exp.run_no_ckpt()?;
//! let ckpt = exp.run_ckpt(0)?;      // 0 errors: Ckpt_NE
//! let reckpt = exp.run_reckpt(0)?;  // ReCkpt_NE
//! assert!(ckpt.cycles >= no_ckpt.cycles);
//! assert!(reckpt.checkpoint_bytes() <= ckpt.checkpoint_bytes());
//! # Ok::<(), acr::ExperimentError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr_map;
mod experiment;
pub mod placement;
mod policy;
mod stats;
mod sweep;

pub use addr_map::{AddrMap, AddrMapConfig, AddrMapUsage, AssocState};
pub use experiment::{CampaignRunResult, Experiment, ExperimentError, ExperimentSpec, RunResult};
pub use policy::AcrPolicy;
pub use stats::AcrStats;
pub use sweep::{
    run_campaign_sweep, run_faulted_sweep, CampaignSweepItem, CampaignSweepOutcome, FaultedRun,
    FaultedSweepItem, FaultedSweepOutcome,
};
