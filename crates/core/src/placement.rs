//! Recomputation-aware checkpoint placement — the paper's future-work
//! extension.
//!
//! Sections V-D1 and V-D3 observe that recomputable values are not
//! uniformly distributed over time, so "instead of checkpointing in
//! uniformly distributed intervals, the time to checkpoint can be
//! adjusted … to exploit more recomputation opportunities", and leave the
//! exploration to future work. This module implements it:
//!
//! 1. **Profile**: run `ReCkpt_NE` once with a finer-than-target uniform
//!    schedule, recording each micro-interval's omitted fraction.
//! 2. **Place**: pick the target number of boundaries from the micro
//!    boundaries by dynamic programming, maximizing the recomputability
//!    of the work each checkpoint seals, under spacing bounds that keep
//!    the worst-case `o_waste` close to the uniform schedule's.
//! 3. **Validate**: run with the adaptive schedule and compare —
//!    [`tune`] returns both runs so callers can see the actual effect
//!    rather than a prediction.

use acr_ckpt::BerReport;

use crate::experiment::{Experiment, ExperimentError, RunResult};

/// A per-micro-interval recomputability profile.
#[derive(Debug, Clone)]
pub struct PlacementProfile {
    /// End-of-interval progress values, ascending (the candidate
    /// checkpoint sites).
    pub boundaries: Vec<u64>,
    /// Fraction of each micro-interval's first-updates that were omitted
    /// (recomputable).
    pub omitted_frac: Vec<f64>,
    /// Total work (progress) of the profiled run.
    pub total_work: u64,
}

impl PlacementProfile {
    /// Extracts a profile from a fine-grained `ReCkpt_NE` report.
    pub fn from_report(report: &BerReport, total_work: u64) -> Self {
        let mut boundaries = Vec::with_capacity(report.intervals.len());
        let mut omitted_frac = Vec::with_capacity(report.intervals.len());
        for i in &report.intervals {
            boundaries.push(i.progress);
            let fu = i.records + i.omitted;
            omitted_frac.push(if fu == 0 {
                0.0
            } else {
                i.omitted as f64 / fu as f64
            });
        }
        PlacementProfile {
            boundaries,
            omitted_frac,
            total_work,
        }
    }
}

/// Chooses `n` checkpoint points from the profile's candidate boundaries,
/// maximizing the summed omitted fraction at the chosen sites while
/// keeping consecutive checkpoints within `[min_gap_frac, max_gap_frac]`
/// of the uniform period (bounding `o_waste` growth). Falls back to the
/// profile's uniform prefix when the constraints cannot be met.
pub fn adaptive_triggers(
    profile: &PlacementProfile,
    n: u32,
    min_gap_frac: f64,
    max_gap_frac: f64,
) -> Vec<u64> {
    let m = profile.boundaries.len();
    let n = n as usize;
    if n == 0 {
        return Vec::new();
    }
    if m == 0 || n > m {
        return acr_ckpt::uniform_points(profile.total_work, n as u32);
    }
    let period = profile.total_work as f64 / (n as f64 + 1.0);
    let min_gap = (period * min_gap_frac) as u64;
    let max_gap = (period * max_gap_frac) as u64;

    const NEG: f64 = f64::NEG_INFINITY;
    // dp[k][j]: best score choosing k boundaries, the k-th at site j.
    let mut dp = vec![vec![NEG; m]; n + 1];
    let mut from = vec![vec![usize::MAX; m]; n + 1];
    for (j, &b) in profile.boundaries.iter().enumerate() {
        if b >= min_gap && b <= max_gap {
            dp[1][j] = profile.omitted_frac[j];
        }
    }
    for k in 2..=n {
        for j in 0..m {
            let bj = profile.boundaries[j];
            for i in 0..j {
                if dp[k - 1][i] == NEG {
                    continue;
                }
                let gap = bj - profile.boundaries[i];
                if gap < min_gap || gap > max_gap {
                    continue;
                }
                let cand = dp[k - 1][i] + profile.omitted_frac[j];
                if cand > dp[k][j] {
                    dp[k][j] = cand;
                    from[k][j] = i;
                }
            }
        }
    }
    // The last checkpoint must leave a bounded tail.
    let mut best: Option<usize> = None;
    for j in 0..m {
        if dp[n][j] == NEG {
            continue;
        }
        let tail = profile.total_work.saturating_sub(profile.boundaries[j]);
        if tail > max_gap {
            continue;
        }
        if best.map(|b| dp[n][j] > dp[n][b]).unwrap_or(true) {
            best = Some(j);
        }
    }
    let Some(mut j) = best else {
        // Constraints unsatisfiable on this profile: fall back to uniform.
        return acr_ckpt::uniform_points(profile.total_work, n as u32);
    };
    let mut picks = Vec::with_capacity(n);
    let mut k = n;
    while k >= 1 {
        picks.push(profile.boundaries[j]);
        let prev = from[k][j];
        k -= 1;
        if k == 0 {
            break;
        }
        j = prev;
    }
    picks.reverse();
    picks
}

/// Outcome of profile-guided tuning: the uniform baseline run, the
/// adaptive run, and the schedule used.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// `ReCkpt_NE` with the uniform schedule.
    pub uniform: RunResult,
    /// `ReCkpt_NE` with the adaptive schedule.
    pub adaptive: RunResult,
    /// The adaptive trigger points.
    pub triggers: Vec<u64>,
}

impl TuningOutcome {
    /// Checkpoint-bytes improvement of adaptive over uniform (%).
    pub fn bytes_improvement_pct(&self) -> f64 {
        let u = self.uniform.checkpoint_bytes() as f64;
        let a = self.adaptive.checkpoint_bytes() as f64;
        if u == 0.0 {
            0.0
        } else {
            100.0 * (u - a) / u
        }
    }

    /// Cycle improvement of adaptive over uniform (%).
    pub fn time_improvement_pct(&self) -> f64 {
        let u = self.uniform.cycles as f64;
        100.0 * (u - self.adaptive.cycles as f64) / u
    }
}

/// Profiles `exp` at `micro_factor ×` the target checkpoint count, builds
/// an adaptive schedule for the spec's `num_checkpoints`, and runs both
/// schedules. The experiment's spec is left with the adaptive triggers
/// installed (callers can clear `custom_triggers` to go back).
///
/// # Errors
///
/// Propagates simulator errors from the profiling and evaluation runs.
pub fn tune(exp: &mut Experiment, micro_factor: u32) -> Result<TuningOutcome, ExperimentError> {
    let n = exp.spec().num_checkpoints;
    let total = exp.total_work()?;

    // Uniform baseline.
    let mut spec = exp.spec().clone();
    spec.custom_triggers = None;
    exp.set_spec(spec);
    let uniform = exp.run_reckpt(0)?;

    // Profile at fine granularity.
    let mut spec = exp.spec().clone();
    spec.num_checkpoints = n * micro_factor.max(2);
    exp.set_spec(spec);
    let fine = exp.run_reckpt(0)?;
    let profile =
        PlacementProfile::from_report(fine.report.as_ref().expect("reckpt reports"), total);

    // Adaptive schedule.
    let triggers = adaptive_triggers(&profile, n, 0.4, 2.0);
    let mut spec = exp.spec().clone();
    spec.num_checkpoints = n;
    spec.custom_triggers = Some(triggers.clone());
    exp.set_spec(spec);
    let adaptive = exp.run_reckpt(0)?;

    Ok(TuningOutcome {
        uniform,
        adaptive,
        triggers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(bounds: &[u64], fracs: &[f64], total: u64) -> PlacementProfile {
        PlacementProfile {
            boundaries: bounds.to_vec(),
            omitted_frac: fracs.to_vec(),
            total_work: total,
        }
    }

    #[test]
    fn picks_high_omission_sites_under_spacing() {
        // 10 candidate sites; sites 3 and 7 have the best fractions.
        let bounds: Vec<u64> = (1..=10).map(|i| i * 100).collect();
        let mut fracs = vec![0.1; 10];
        fracs[2] = 0.9; // site at 300
        fracs[6] = 0.8; // site at 700
        let p = profile(&bounds, &fracs, 1000);
        let t = adaptive_triggers(&p, 2, 0.4, 2.0);
        assert_eq!(t, vec![300, 700]);
    }

    #[test]
    fn respects_max_gap() {
        // The greedy-best pair (100, 200) leaves an 800-unit tail; with
        // n=2 and period ≈ 333, max gap 666 forbids it.
        let bounds: Vec<u64> = (1..=10).map(|i| i * 100).collect();
        let mut fracs = vec![0.0; 10];
        fracs[0] = 1.0;
        fracs[1] = 1.0;
        let p = profile(&bounds, &fracs, 1000);
        let t = adaptive_triggers(&p, 2, 0.1, 2.0);
        assert_eq!(t.len(), 2);
        let tail = 1000 - t[1];
        assert!(tail <= 666, "tail {tail} violates max gap");
    }

    #[test]
    fn falls_back_to_uniform_when_infeasible() {
        // One candidate site cannot satisfy n=3.
        let p = profile(&[500], &[1.0], 1000);
        let t = adaptive_triggers(&p, 3, 0.4, 2.0);
        assert_eq!(t, acr_ckpt::uniform_points(1000, 3));
    }

    #[test]
    fn from_report_computes_fractions() {
        use acr_ckpt::IntervalRecord;
        let report = BerReport {
            intervals: vec![
                IntervalRecord {
                    epoch: 0,
                    progress: 100,
                    records: 75,
                    omitted: 25,
                    bytes: 0,
                    baseline_bytes: 0,
                    stall_cycles: 0,
                    lines_flushed: 0,
                },
                IntervalRecord {
                    epoch: 1,
                    progress: 200,
                    records: 0,
                    omitted: 0,
                    bytes: 0,
                    baseline_bytes: 0,
                    stall_cycles: 0,
                    lines_flushed: 0,
                },
            ],
            ..Default::default()
        };
        let p = PlacementProfile::from_report(&report, 250);
        assert_eq!(p.boundaries, vec![100, 200]);
        assert!((p.omitted_frac[0] - 0.25).abs() < 1e-12);
        assert_eq!(p.omitted_frac[1], 0.0);
    }
}
