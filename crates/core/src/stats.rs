//! ACR hardware statistics (energy accounting inputs).

/// Event counts for ACR's on-chip structures (Fig. 5): the `AddrMap`, the
/// operand buffer and the recomputation datapath.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AcrStats {
    /// `ASSOC-ADDR` instructions handled (checkpoint handler).
    pub assoc_events: u64,
    /// `AddrMap` insertions (association versions + tombstones).
    pub addrmap_writes: u64,
    /// `AddrMap` lookups (omission checks + recovery resolution).
    pub addrmap_reads: u64,
    /// Operand values captured into the operand buffer.
    pub opbuf_writes: u64,
    /// Operand values read back during recomputation.
    pub opbuf_reads: u64,
    /// ALU operations executed while recomputing Slices (recovery).
    pub slice_alu_ops: u64,
    /// Values regenerated during recovery.
    pub recomputed_values: u64,
    /// Associations dropped because the `AddrMap` was full.
    pub capacity_rejections: u64,
    /// Peak live `AddrMap` associations (storage-complexity ablation).
    pub addrmap_peak_live: u64,
}

impl AcrStats {
    /// Field-wise sum (peak is max-merged).
    pub fn add(&mut self, o: &AcrStats) {
        self.assoc_events += o.assoc_events;
        self.addrmap_writes += o.addrmap_writes;
        self.addrmap_reads += o.addrmap_reads;
        self.opbuf_writes += o.opbuf_writes;
        self.opbuf_reads += o.opbuf_reads;
        self.slice_alu_ops += o.slice_alu_ops;
        self.recomputed_values += o.recomputed_values;
        self.capacity_rejections += o.capacity_rejections;
        self.addrmap_peak_live = self.addrmap_peak_live.max(o.addrmap_peak_live);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_merges_counts_and_peak() {
        let mut a = AcrStats {
            assoc_events: 2,
            addrmap_peak_live: 10,
            ..Default::default()
        };
        a.add(&AcrStats {
            assoc_events: 3,
            addrmap_peak_live: 7,
            slice_alu_ops: 4,
            ..Default::default()
        });
        assert_eq!(a.assoc_events, 5);
        assert_eq!(a.slice_alu_ops, 4);
        assert_eq!(a.addrmap_peak_live, 10);
    }
}
