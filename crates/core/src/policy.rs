//! [`AcrPolicy`] — the ACR checkpoint handler and recovery handler.

use std::collections::BTreeSet;
use std::sync::Arc;

use acr_ckpt::{OmissionPolicy, OmitReason, Recomputed};
use acr_isa::{Slice, SliceId};
use acr_mem::WordAddr;
use acr_sim::AssocEvent;
use acr_trace::MetricsRegistry;

use crate::addr_map::{AddrMap, AddrMapConfig, AssocState};
use crate::stats::AcrStats;

/// ACR's control logic (Fig. 4 of the paper), plugged into the BER engine
/// as its omission policy.
///
/// * **Checkpoint handler** (Fig. 4a): on each `ASSOC-ADDR`, record the
///   ⟨memory address, Slice⟩ pair and the captured input operands in the
///   [`AddrMap`]; on each first update, tell the memory controller (via
///   the engine) whether the old value is recomputable and may be omitted
///   from the log.
/// * **Recovery handler** (Fig. 4b): for every omitted value of the
///   epochs being rolled back, execute the associated Slice over its
///   buffered inputs and hand the regenerated value (plus its cost) back
///   to the engine for write-back.
#[derive(Debug, Clone)]
pub struct AcrPolicy {
    /// The instrumented program's Slice table, shared rather than owned:
    /// fault campaigns build one policy per case, and the table never
    /// changes after instrumentation.
    slices: Arc<[Slice]>,
    map: AddrMap,
    stats: AcrStats,
    /// Extra cycles per `ASSOC-ADDR` for the `AddrMap` insertion; the
    /// paper models the instruction itself after an L1-D store (charged by
    /// the core model), with the map access "after L1-D".
    assoc_extra_cycles: u64,
    /// Scratchpad-based recomputation (Section II-B): recomputation
    /// overlaps the restore instead of serializing before the register
    /// restore.
    scratchpad: bool,
    /// `(thread, pc)` of stores whose extracted Slice the slicer's length
    /// threshold rejected (post-instrumentation coordinates, from
    /// `SliceStats::rejected_store_pcs`). Lets the decision ledger
    /// distinguish `logged:slice-too-long` from `logged:no-slice`.
    rejected_pcs: BTreeSet<(u32, u32)>,
    /// Checkpoint generations the engine retains as rollback fallbacks
    /// (≥ 1). Deepens association pruning so a generation-fallback
    /// rollback can still recompute every omitted value of the older
    /// epochs it restores. Must match the engine's
    /// `ResilienceConfig::generations`.
    generations: u64,
}

impl AcrPolicy {
    /// Creates the policy for an instrumented program's Slice table.
    /// Accepts anything convertible to a shared table (`Vec<Slice>`,
    /// `Arc<[Slice]>`, …) so campaign loops can share one allocation
    /// across cases.
    pub fn new(slices: impl Into<Arc<[Slice]>>, cfg: AddrMapConfig, num_cores: usize) -> Self {
        AcrPolicy {
            slices: slices.into(),
            map: AddrMap::new(cfg, num_cores),
            stats: AcrStats::default(),
            assoc_extra_cycles: 0,
            scratchpad: false,
            rejected_pcs: BTreeSet::new(),
            generations: 1,
        }
    }

    /// Sets the checkpoint-generation retention depth (≥ 1; values below
    /// are clamped up). Must match the engine's
    /// `ResilienceConfig::generations` so a torn-commit fallback finds
    /// its associations still live.
    pub fn with_generations(mut self, generations: u32) -> Self {
        self.generations = u64::from(generations.max(1));
        self
    }

    /// Installs the slicer's threshold-rejected store sites
    /// (`SliceStats::rejected_store_pcs`) so the decision ledger can
    /// attribute their first updates to `logged:slice-too-long`.
    pub fn with_rejected_pcs(mut self, pcs: &[(u32, u32)]) -> Self {
        self.rejected_pcs = pcs.iter().copied().collect();
        self
    }

    /// Enables the scratchpad-based recomputation implementation
    /// (Section II-B): recovery recomputation overlaps restore traffic
    /// instead of serializing before the register-file restore.
    pub fn with_scratchpad(mut self, on: bool) -> Self {
        self.scratchpad = on;
        self
    }

    /// Accumulated hardware statistics.
    pub fn stats(&self) -> AcrStats {
        let usage = self.map.usage();
        let mut s = self.stats;
        s.capacity_rejections = usage.rejected_capacity;
        s.addrmap_peak_live = usage.peak_live as u64;
        s
    }

    /// The `AddrMap`, for inspection.
    pub fn addr_map(&self) -> &AddrMap {
        &self.map
    }
}

impl OmissionPolicy for AcrPolicy {
    fn on_store(&mut self, core: u32, addr: WordAddr, epoch: u64) {
        self.map.record_store(core, addr, epoch);
    }

    fn on_assoc(&mut self, ev: &AssocEvent, epoch: u64) -> u64 {
        self.stats.assoc_events += 1;
        self.stats.addrmap_writes += 1;
        self.stats.opbuf_writes += ev.inputs.len() as u64;
        self.map
            .record_assoc(ev.core.0, ev.addr, epoch, ev.slice, ev.inputs);
        self.assoc_extra_cycles
    }

    fn try_omit(&mut self, _first_updater: u32, addr: WordAddr, epoch: u64) -> Option<u32> {
        self.stats.addrmap_reads += 1;
        // The old value being overwritten is the value the word held at
        // checkpoint `epoch` (the opening of the current interval); only
        // an association created before that checkpoint describes it.
        self.map.owner_for_epoch(addr, epoch)
    }

    fn recompute(&mut self, addr: WordAddr, epoch: u64) -> Option<Recomputed> {
        self.stats.addrmap_reads += 1;
        let assoc = self.map.lookup_for_epoch(addr, epoch)?;
        let slice = &self.slices[assoc.slice.0 as usize];
        let value = slice
            .execute(assoc.inputs.as_slice())
            .expect("embedded slice arity matches captured inputs");
        let alu_ops = slice.len() as u64;
        let opbuf_reads = assoc.inputs.len() as u64;
        self.stats.slice_alu_ops += alu_ops;
        self.stats.opbuf_reads += opbuf_reads;
        self.stats.recomputed_values += 1;
        Some(Recomputed {
            value,
            slice: assoc.slice,
            cycles: alu_ops + opbuf_reads,
            alu_ops,
            opbuf_reads,
        })
    }

    fn classify(
        &self,
        core: u32,
        pc: u32,
        addr: WordAddr,
        epoch: u64,
        omitted: bool,
    ) -> (OmitReason, Option<SliceId>) {
        match self.map.classify_for_epoch(addr, epoch) {
            AssocState::Live { slice, .. } => {
                debug_assert!(omitted, "live association must have been omitted");
                (OmitReason::OmittedSlice, Some(slice))
            }
            AssocState::Evicted => (OmitReason::LoggedAddrmapEvicted, None),
            AssocState::Dead => (OmitReason::LoggedNotRecomputable, None),
            // The map never saw the address: either no Slice covers the
            // producing store, or one was extracted but rejected by the
            // length threshold. Attributed to the overwriting store's
            // site — for the loop-structured kernels here the overwriter
            // and the producer are the same static store.
            AssocState::Absent => {
                if self.rejected_pcs.contains(&(core, pc)) {
                    (OmitReason::LoggedSliceTooLong, None)
                } else {
                    (OmitReason::LoggedNoSlice, None)
                }
            }
        }
    }

    fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        self.map.usage().metrics(reg);
    }

    fn occupancy(&self) -> Option<(u64, u64)> {
        Some((
            self.map.total_live() as u64,
            self.map.total_capacity() as u64,
        ))
    }

    fn on_checkpoint(&mut self, sealed_epoch: u64) {
        // After sealing epoch `k` with G retained generations, the oldest
        // restorable checkpoint is `k - G`; prune associations
        // unreachable from every surviving checkpoint. G = 1 gives the
        // original two-checkpoint retention.
        self.map
            .prune(sealed_epoch.saturating_sub(self.generations));
    }

    fn on_rollback(&mut self, safe_epoch: u64, victim_mask: u64) {
        self.map.rollback(safe_epoch, victim_mask);
    }

    fn overlaps_restore(&self) -> bool {
        self.scratchpad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_isa::{AluOp, SliceId, SliceInstr, SliceOperand};
    use acr_mem::CoreId;

    fn add_slice() -> Slice {
        Slice::new(
            vec![SliceInstr {
                op: AluOp::Add,
                a: SliceOperand::Input(0),
                b: SliceOperand::Input(1),
            }],
            2,
        )
        .unwrap()
    }

    fn assoc_event(addr: u64, inputs: &[u64]) -> AssocEvent {
        AssocEvent {
            core: CoreId(0),
            pc: 0,
            addr: WordAddr::new(addr),
            value: inputs.iter().sum(),
            slice: SliceId(0),
            inputs: acr_isa::InputVals::new(inputs),
            cycle: 0,
        }
    }

    #[test]
    fn omit_then_recompute_roundtrip() {
        let mut p = AcrPolicy::new(vec![add_slice()], AddrMapConfig::default(), 1);
        // Store + assoc in epoch 0 (value 5+9=14 at addr 64).
        p.on_store(0, WordAddr::new(64), 0);
        p.on_assoc(&assoc_event(64, &[5, 9]), 0);
        // First update in epoch 1: the old value (14) is recomputable.
        p.on_store(0, WordAddr::new(64), 1);
        assert_eq!(p.try_omit(0, WordAddr::new(64), 1), Some(0));
        // Recovery to checkpoint 1 regenerates 14.
        let rc = p.recompute(WordAddr::new(64), 1).unwrap();
        assert_eq!(rc.value, 14);
        assert_eq!(rc.alu_ops, 1);
        assert_eq!(rc.opbuf_reads, 2);
        let s = p.stats();
        assert_eq!(s.recomputed_values, 1);
        assert_eq!(s.slice_alu_ops, 1);
    }

    #[test]
    fn uncovered_store_blocks_omission() {
        let mut p = AcrPolicy::new(vec![add_slice()], AddrMapConfig::default(), 1);
        p.on_store(0, WordAddr::new(64), 0);
        p.on_assoc(&assoc_event(64, &[1, 2]), 0);
        // Plain store overwrites in epoch 1.
        p.on_store(0, WordAddr::new(64), 1);
        // First update in epoch 2: value at checkpoint 2 came from the
        // uncovered store — not recomputable.
        p.on_store(0, WordAddr::new(64), 2);
        assert_eq!(p.try_omit(0, WordAddr::new(64), 2), None);
    }

    #[test]
    fn same_epoch_association_is_not_usable_yet() {
        let mut p = AcrPolicy::new(vec![add_slice()], AddrMapConfig::default(), 1);
        p.on_store(0, WordAddr::new(8), 3);
        p.on_assoc(&assoc_event(8, &[1, 1]), 3);
        // A later store in the SAME epoch 3: the old value it overwrites
        // is the assoc'd value, but that value is NOT the value at
        // checkpoint 3 (it was created after c_3) — and indeed it is not a
        // first update either (the assoc'd store already logged it).
        // try_omit for epoch 3 must refuse.
        assert_eq!(p.try_omit(0, WordAddr::new(8), 3), None);
    }

    #[test]
    fn rollback_forgets_undone_associations() {
        let mut p = AcrPolicy::new(vec![add_slice()], AddrMapConfig::default(), 1);
        p.on_store(0, WordAddr::new(8), 2);
        p.on_assoc(&assoc_event(8, &[3, 4]), 2);
        p.on_rollback(2, 0b1);
        assert_eq!(p.try_omit(0, WordAddr::new(8), 3), None);
        assert!(p.recompute(WordAddr::new(8), 3).is_none());
    }
}
