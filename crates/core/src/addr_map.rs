//! The `AddrMap`: ACR's on-chip ⟨memory address, Slice⟩ association buffer.
//!
//! Section III-A: each `ASSOC-ADDR` records a ⟨memory address, Slice
//! address⟩ pair together with the Slice's captured input operands (the
//! operand buffer is folded into the record). Associations must remain
//! valid "as long as the established checkpoint for the corresponding
//! interval remains in memory", i.e. for the two most recent checkpoints —
//! so entries are *versioned by epoch*: a lookup for checkpoint `k`
//! returns the association describing the value the address held at `k`
//! (the latest association created before `k`), and an uncovered store
//! writes a *tombstone* version that invalidates the association from that
//! point on.
//!
//! Capacity is bounded per core (Slices are confined to thread-local data,
//! so each core owns its associations); when a core's budget is exhausted,
//! new associations are dropped and the corresponding values are simply
//! checkpointed — ACR degrades gracefully to the baseline.

use std::collections::HashMap;

use acr_isa::SliceId;
use acr_mem::WordAddr;
use acr_trace::MetricsRegistry;

/// `AddrMap` sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrMapConfig {
    /// Live associations each core may hold. The paper argues a small
    /// buffer suffices because the number of unique addresses updated per
    /// interval is bounded by the checkpoint period (Section III-C).
    pub capacity_per_core: usize,
}

impl Default for AddrMapConfig {
    fn default() -> Self {
        AddrMapConfig {
            capacity_per_core: 16 * 1024,
        }
    }
}

/// One association version.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Version {
    /// Epoch in which the version was created (the association describes
    /// the address's value from then until the next version).
    epoch: u64,
    /// Owning core.
    core: u32,
    /// `None` is a tombstone: the address's value is no longer the output
    /// of a known Slice.
    assoc: Option<Assoc>,
    /// For tombstones only: `true` when the invalidation was forced by a
    /// capacity eviction (the association existed but had to be dropped),
    /// `false` when an uncovered store genuinely killed it. Drives the
    /// omission-decision ledger's `logged:addrmap-evicted` vs
    /// `logged:not-recomputable` split.
    evicted: bool,
}

/// A live association: the Slice and its captured inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Assoc {
    pub slice: SliceId,
    pub inputs: Vec<u64>,
}

/// Usage counters (for capacity ablations and energy accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AddrMapUsage {
    /// Association versions inserted.
    pub inserted: u64,
    /// Insertions dropped because the owning core was at capacity.
    pub rejected_capacity: u64,
    /// Tombstones written by uncovered stores.
    pub tombstones: u64,
    /// Subset of `tombstones` written by capacity evictions rather than
    /// uncovered stores.
    pub evicted_tombstones: u64,
    /// Peak live associations across all cores.
    pub peak_live: usize,
}

impl AddrMapUsage {
    /// Publishes the counters into the unified metrics registry under
    /// `ckpt.addrmap.*` (set-semantics, so refreshes are idempotent):
    ///
    /// * `ckpt.addrmap.inserted` — association versions inserted (count);
    /// * `ckpt.addrmap.rejected_capacity` — insertions dropped at
    ///   capacity (count);
    /// * `ckpt.addrmap.tombstones` — tombstone versions written (count);
    /// * `ckpt.addrmap.evicted_tombstones` — tombstones forced by
    ///   capacity evictions (count, subset of `tombstones`);
    /// * `ckpt.addrmap.peak_live` — peak live associations across all
    ///   cores (associations).
    pub fn metrics(&self, reg: &mut MetricsRegistry) {
        reg.set("ckpt.addrmap.inserted", self.inserted);
        reg.set("ckpt.addrmap.rejected_capacity", self.rejected_capacity);
        reg.set("ckpt.addrmap.tombstones", self.tombstones);
        reg.set("ckpt.addrmap.evicted_tombstones", self.evicted_tombstones);
        reg.set("ckpt.addrmap.peak_live", self.peak_live as u64);
    }
}

/// What the `AddrMap` knows about the value `addr` held at a checkpoint —
/// the classification behind the omission-decision ledger's reason codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocState {
    /// A live association describes the value: recomputable via `slice`
    /// on `core`.
    Live {
        /// The associated Slice.
        slice: SliceId,
        /// The owning core.
        core: u32,
    },
    /// The association was invalidated by a later uncovered store.
    Dead,
    /// The association was dropped by a capacity eviction.
    Evicted,
    /// No version covers the epoch (the address never had an association
    /// old enough).
    Absent,
}

/// The versioned association buffer — see the module-level notes at
/// the top of this file.
#[derive(Debug, Clone)]
pub struct AddrMap {
    cfg: AddrMapConfig,
    map: HashMap<WordAddr, Vec<Version>>,
    live_per_core: Vec<usize>,
    usage: AddrMapUsage,
}

impl AddrMap {
    /// Creates an empty map for `num_cores` cores.
    pub fn new(cfg: AddrMapConfig, num_cores: usize) -> Self {
        AddrMap {
            cfg,
            map: HashMap::new(),
            live_per_core: vec![0; num_cores],
            usage: AddrMapUsage::default(),
        }
    }

    /// Usage counters.
    pub fn usage(&self) -> AddrMapUsage {
        self.usage
    }

    /// Live associations currently held by `core`.
    pub fn live(&self, core: u32) -> usize {
        self.live_per_core[core as usize]
    }

    /// Live associations across all cores.
    pub fn total_live(&self) -> usize {
        self.live_per_core.iter().sum()
    }

    /// The per-core capacity bound every `live(core)` must respect.
    pub fn capacity_per_core(&self) -> usize {
        self.cfg.capacity_per_core
    }

    /// The aggregate capacity bound (`capacity_per_core × num_cores`).
    pub fn total_capacity(&self) -> usize {
        self.cfg.capacity_per_core * self.live_per_core.len()
    }

    fn note_peak(&mut self) {
        let total: usize = self.live_per_core.iter().sum();
        if total > self.usage.peak_live {
            self.usage.peak_live = total;
        }
    }

    /// Records an uncovered store to `addr`: from `epoch` on, the
    /// address's value is not recomputable. A tombstone is only needed if
    /// a (non-tombstone) association exists.
    pub(crate) fn record_store(&mut self, core: u32, addr: WordAddr, epoch: u64) {
        self.tombstone(core, addr, epoch, false, false);
    }

    /// Writes a tombstone version. `evicted` marks capacity evictions
    /// (vs. genuine invalidation by an uncovered store); `create_entry`
    /// materialises an entry for a previously unknown address — eviction
    /// tombstones need one so a later first update can still be
    /// attributed to the eviction, while plain uncovered stores to
    /// unknown addresses stay free.
    fn tombstone(&mut self, core: u32, addr: WordAddr, epoch: u64, evicted: bool, create: bool) {
        let versions = if create {
            self.map.entry(addr).or_default()
        } else {
            match self.map.get_mut(&addr) {
                Some(v) => v,
                None => return,
            }
        };
        match versions.last_mut() {
            Some(last) if last.assoc.is_none() => {
                // Already dead from an earlier (or equal) epoch on; a
                // later uncovered store changes nothing.
            }
            Some(last) if last.epoch == epoch => {
                // Same-epoch association superseded within the
                // interval: it can never be looked up (lookups target
                // strictly older epochs), so replace in place.
                let owner = last.core;
                last.assoc = None;
                last.core = core;
                last.evicted = evicted;
                self.live_per_core[owner as usize] -= 1;
                self.usage.tombstones += 1;
                if evicted {
                    self.usage.evicted_tombstones += 1;
                }
            }
            _ => {
                versions.push(Version {
                    epoch,
                    core,
                    assoc: None,
                    evicted,
                });
                self.usage.tombstones += 1;
                if evicted {
                    self.usage.evicted_tombstones += 1;
                }
            }
        }
    }

    /// Records an `ASSOC-ADDR`: the value stored to `addr` in `epoch` is
    /// the output of `slice` over `inputs`. Returns `false` if dropped for
    /// capacity.
    pub(crate) fn record_assoc(
        &mut self,
        core: u32,
        addr: WordAddr,
        epoch: u64,
        slice: SliceId,
        inputs: Vec<u64>,
    ) -> bool {
        if self.live_per_core[core as usize] >= self.cfg.capacity_per_core {
            self.usage.rejected_capacity += 1;
            // The association (if any) no longer describes the new value;
            // the eviction-flagged tombstone lets a later first update be
            // attributed to the capacity limit rather than the program.
            self.tombstone(core, addr, epoch, true, true);
            return false;
        }
        let versions = self.map.entry(addr).or_default();
        let assoc = Assoc { slice, inputs };
        match versions.last_mut() {
            Some(last) if last.epoch == epoch => {
                // Supersede the same-interval version in place.
                if last.assoc.is_some() {
                    self.live_per_core[last.core as usize] -= 1;
                }
                last.core = core;
                last.assoc = Some(assoc);
                last.evicted = false;
            }
            _ => {
                versions.push(Version {
                    epoch,
                    core,
                    assoc: Some(assoc),
                    evicted: false,
                });
            }
        }
        self.live_per_core[core as usize] += 1;
        self.usage.inserted += 1;
        self.note_peak();
        true
    }

    /// The association describing the value `addr` held at checkpoint
    /// `epoch` — the latest version created strictly before `epoch`.
    /// Returns `None` if that version is a tombstone or absent.
    pub(crate) fn lookup_for_epoch(&self, addr: WordAddr, epoch: u64) -> Option<&Assoc> {
        let versions = self.map.get(&addr)?;
        versions
            .iter()
            .rev()
            .find(|v| v.epoch < epoch)
            .and_then(|v| v.assoc.as_ref())
    }

    /// Owning core of the association usable for `epoch`, if any.
    pub(crate) fn owner_for_epoch(&self, addr: WordAddr, epoch: u64) -> Option<u32> {
        let versions = self.map.get(&addr)?;
        versions
            .iter()
            .rev()
            .find(|v| v.epoch < epoch)
            .filter(|v| v.assoc.is_some())
            .map(|v| v.core)
    }

    /// Classifies what the map knows about the value `addr` held at
    /// checkpoint `epoch` — the version lookup `lookup_for_epoch`
    /// performs, with tombstones split by cause. Read-only (ledger
    /// attribution; never charges simulated time).
    pub fn classify_for_epoch(&self, addr: WordAddr, epoch: u64) -> AssocState {
        let Some(versions) = self.map.get(&addr) else {
            return AssocState::Absent;
        };
        match versions.iter().rev().find(|v| v.epoch < epoch) {
            None => AssocState::Absent,
            Some(v) => match &v.assoc {
                Some(a) => AssocState::Live {
                    slice: a.slice,
                    core: v.core,
                },
                None if v.evicted => AssocState::Evicted,
                None => AssocState::Dead,
            },
        }
    }

    /// Prunes versions no longer reachable once epoch `sealed` is sealed:
    /// recovery can only target checkpoints `sealed` and `sealed + 1`, so
    /// per address we keep every version with `epoch >= sealed` plus the
    /// latest older one.
    pub(crate) fn prune(&mut self, sealed: u64) {
        let live = &mut self.live_per_core;
        let usage_peak = self.usage.peak_live;
        self.map.retain(|_, versions| {
            let keep_from = versions.iter().rposition(|v| v.epoch < sealed).unwrap_or(0);
            for v in versions.drain(..keep_from) {
                if v.assoc.is_some() {
                    live[v.core as usize] -= 1;
                }
            }
            // Drop addresses whose only remaining version is an old
            // tombstone.
            if versions.len() == 1 && versions[0].assoc.is_none() && versions[0].epoch < sealed {
                versions.clear();
            }
            !versions.is_empty()
        });
        self.usage.peak_live = usage_peak;
    }

    /// Rollback: recovery restored checkpoint `safe_epoch` for the cores
    /// in `victim_mask`; versions they created in the undone epochs
    /// (`epoch >= safe_epoch`) describe stores that never happened.
    pub(crate) fn rollback(&mut self, safe_epoch: u64, victim_mask: u64) {
        let live = &mut self.live_per_core;
        self.map.retain(|_, versions| {
            versions.retain(|v| {
                let undone = v.epoch >= safe_epoch && victim_mask >> v.core & 1 == 1;
                if undone && v.assoc.is_some() {
                    live[v.core as usize] -= 1;
                }
                !undone
            });
            !versions.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wa(i: u64) -> WordAddr {
        WordAddr::new(i * 8)
    }

    fn map(cap: usize) -> AddrMap {
        AddrMap::new(
            AddrMapConfig {
                capacity_per_core: cap,
            },
            2,
        )
    }

    #[test]
    fn assoc_visible_only_for_later_epochs() {
        let mut m = map(100);
        assert!(m.record_assoc(0, wa(1), 3, SliceId(7), vec![10]));
        // Value stored in epoch 3 describes the state at checkpoints 4, 5…
        assert!(m.lookup_for_epoch(wa(1), 3).is_none());
        let a = m.lookup_for_epoch(wa(1), 4).unwrap();
        assert_eq!(a.slice, SliceId(7));
        assert_eq!(m.owner_for_epoch(wa(1), 4), Some(0));
    }

    #[test]
    fn tombstone_invalidates_from_its_epoch() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 3, SliceId(7), vec![]);
        m.record_store(1, wa(1), 5);
        // Checkpoint 4 and 5 still see the association (store was in
        // epoch 5, after checkpoints 4 and 5 were... checkpoint 5 opens
        // epoch 5, so the value at checkpoint 5 predates the store).
        assert!(m.lookup_for_epoch(wa(1), 4).is_some());
        assert!(m.lookup_for_epoch(wa(1), 5).is_some());
        // Checkpoint 6 sees the overwritten (unknown) value.
        assert!(m.lookup_for_epoch(wa(1), 6).is_none());
    }

    #[test]
    fn same_epoch_supersede_keeps_single_version() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 3, SliceId(1), vec![1]);
        m.record_store(0, wa(1), 3); // overwritten in the same interval
        m.record_assoc(0, wa(1), 3, SliceId(2), vec![2]);
        let a = m.lookup_for_epoch(wa(1), 4).unwrap();
        assert_eq!(a.slice, SliceId(2));
        assert_eq!(m.live(0), 1);
    }

    #[test]
    fn capacity_rejection_degrades_to_baseline() {
        let mut m = map(2);
        assert!(m.record_assoc(0, wa(1), 0, SliceId(1), vec![]));
        assert!(m.record_assoc(0, wa(2), 0, SliceId(1), vec![]));
        assert!(!m.record_assoc(0, wa(3), 0, SliceId(1), vec![]));
        assert_eq!(m.usage().rejected_capacity, 1);
        assert!(m.lookup_for_epoch(wa(3), 1).is_none());
        // Capacity is per core: core 1 still has room.
        assert!(m.record_assoc(1, wa(4), 0, SliceId(1), vec![]));
    }

    #[test]
    fn capacity_rejection_invalidates_stale_assoc() {
        let mut m = map(1);
        assert!(m.record_assoc(0, wa(1), 0, SliceId(1), vec![5]));
        // New store to the same address in a later epoch, but the map is
        // full: the old association must not survive describing the new
        // value.
        assert!(!m.record_assoc(0, wa(1), 1, SliceId(2), vec![6]));
        assert!(m.lookup_for_epoch(wa(1), 2).is_none());
        // The old association still describes epoch 1's opening value.
        assert!(m.lookup_for_epoch(wa(1), 1).is_some());
    }

    #[test]
    fn prune_keeps_reachable_versions() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 0, SliceId(1), vec![]);
        m.record_assoc(0, wa(1), 2, SliceId(2), vec![]);
        m.record_assoc(0, wa(2), 0, SliceId(3), vec![]);
        m.prune(2); // checkpoints 2 and 3 remain restorable
                    // wa(1)@epoch0 is the latest version below 2 → kept.
        assert_eq!(m.lookup_for_epoch(wa(1), 2).unwrap().slice, SliceId(1));
        assert_eq!(m.lookup_for_epoch(wa(1), 3).unwrap().slice, SliceId(2));
        assert_eq!(m.lookup_for_epoch(wa(2), 2).unwrap().slice, SliceId(3));
        assert_eq!(m.live(0), 3);
        m.prune(4);
        // Only the latest version per address survives.
        assert_eq!(m.live(0), 2);
    }

    #[test]
    fn rollback_drops_undone_victim_versions() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 1, SliceId(1), vec![]);
        m.record_assoc(0, wa(2), 3, SliceId(2), vec![]);
        m.record_assoc(1, wa(3), 3, SliceId(3), vec![]);
        m.rollback(2, 0b01); // core 0 rolls back to checkpoint 2
        assert!(m.lookup_for_epoch(wa(1), 2).is_some()); // epoch 1 < 2 kept
        assert!(m.lookup_for_epoch(wa(2), 4).is_none()); // undone
        assert!(m.lookup_for_epoch(wa(3), 4).is_some()); // non-victim kept
        assert_eq!(m.live(0), 1);
        assert_eq!(m.live(1), 1);
    }

    #[test]
    fn tombstone_on_unknown_address_is_free() {
        let mut m = map(100);
        m.record_store(0, wa(9), 1);
        assert_eq!(m.usage().tombstones, 0);
        assert!(m.lookup_for_epoch(wa(9), 2).is_none());
    }

    #[test]
    fn classification_splits_tombstones_by_cause() {
        let mut m = map(1);
        // Live association.
        m.record_assoc(0, wa(1), 0, SliceId(1), vec![4]);
        assert_eq!(
            m.classify_for_epoch(wa(1), 1),
            AssocState::Live {
                slice: SliceId(1),
                core: 0
            }
        );
        // Uncovered store kills it → Dead.
        m.record_store(0, wa(1), 1);
        assert_eq!(m.classify_for_epoch(wa(1), 2), AssocState::Dead);
        // Capacity eviction on a fresh address → Evicted (entry is
        // materialised even though the address was never associated).
        m.record_assoc(1, wa(2), 0, SliceId(1), vec![]); // fills core 1
        m.record_assoc(1, wa(3), 0, SliceId(2), vec![]); // rejected
        assert_eq!(m.classify_for_epoch(wa(3), 1), AssocState::Evicted);
        // Never-seen address → Absent.
        assert_eq!(m.classify_for_epoch(wa(9), 1), AssocState::Absent);
        let u = m.usage();
        assert_eq!(u.rejected_capacity, 1);
        assert_eq!(u.evicted_tombstones, 1);
        assert!(u.tombstones >= 2);
    }

    #[test]
    fn usage_metrics_publish_under_ckpt_addrmap_keys() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 0, SliceId(1), vec![]);
        m.record_store(0, wa(1), 1);
        let mut reg = acr_trace::MetricsRegistry::new();
        m.usage().metrics(&mut reg);
        assert_eq!(reg.get("ckpt.addrmap.inserted"), Some(1));
        assert_eq!(reg.get("ckpt.addrmap.tombstones"), Some(1));
        assert_eq!(reg.get("ckpt.addrmap.evicted_tombstones"), Some(0));
        assert_eq!(reg.get("ckpt.addrmap.peak_live"), Some(1));
    }

    #[test]
    fn peak_live_tracks_high_water_mark() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 0, SliceId(1), vec![]);
        m.record_assoc(1, wa(2), 0, SliceId(1), vec![]);
        assert_eq!(m.usage().peak_live, 2);
        m.prune(10);
        // Peak is sticky.
        assert_eq!(m.usage().peak_live, 2);
    }
}
