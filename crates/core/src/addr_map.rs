//! The `AddrMap`: ACR's on-chip ⟨memory address, Slice⟩ association buffer.
//!
//! Section III-A: each `ASSOC-ADDR` records a ⟨memory address, Slice
//! address⟩ pair together with the Slice's captured input operands (the
//! operand buffer is folded into the record). Associations must remain
//! valid "as long as the established checkpoint for the corresponding
//! interval remains in memory", i.e. for the two most recent checkpoints —
//! so entries are *versioned by epoch*: a lookup for checkpoint `k`
//! returns the association describing the value the address held at `k`
//! (the latest association created before `k`), and an uncovered store
//! writes a *tombstone* version that invalidates the association from that
//! point on.
//!
//! Capacity is bounded per core (Slices are confined to thread-local data,
//! so each core owns its associations); when a core's budget is exhausted,
//! new associations are dropped and the corresponding values are simply
//! checkpointed — ACR degrades gracefully to the baseline.
//!
//! # Data layout
//!
//! This sits on the per-store hot path, so the map is an open-addressed
//! FNV-1a-keyed index (linear probing, power-of-two slot count) over an
//! entry arena. Each entry inlines the common case of one or two live
//! versions and spills longer histories to a side `Vec`; captured Slice
//! inputs live in a fixed [`InputVals`] buffer, so recording an
//! association allocates nothing. Entries are never removed from the
//! arena: pruning an address empties its version list, which is
//! observationally identical to absence, and the entry (plus its index
//! slot) is reused if the address is touched again. See DESIGN.md §14 for
//! the invariants and why determinism is structural here rather than
//! sort-on-iterate.

use acr_isa::{InputVals, SliceId};
use acr_mem::WordAddr;
use acr_trace::{Fnv1a, MetricsRegistry};

/// `AddrMap` sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrMapConfig {
    /// Live associations each core may hold. The paper argues a small
    /// buffer suffices because the number of unique addresses updated per
    /// interval is bounded by the checkpoint period (Section III-C).
    pub capacity_per_core: usize,
}

impl Default for AddrMapConfig {
    fn default() -> Self {
        AddrMapConfig {
            capacity_per_core: 16 * 1024,
        }
    }
}

/// One association version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Version {
    /// Epoch in which the version was created (the association describes
    /// the address's value from then until the next version).
    epoch: u64,
    /// Owning core.
    core: u32,
    /// `None` is a tombstone: the address's value is no longer the output
    /// of a known Slice.
    assoc: Option<Assoc>,
    /// For tombstones only: `true` when the invalidation was forced by a
    /// capacity eviction (the association existed but had to be dropped),
    /// `false` when an uncovered store genuinely killed it. Drives the
    /// omission-decision ledger's `logged:addrmap-evicted` vs
    /// `logged:not-recomputable` split.
    evicted: bool,
}

/// A live association: the Slice and its captured inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Assoc {
    pub slice: SliceId,
    pub inputs: InputVals,
}

/// Versions an entry holds before spilling to the heap. Profiling the
/// golden campaigns shows the overwhelming majority of addresses carry one
/// or two live versions (current association + one tombstone or
/// predecessor), so two inline slots cover the hot path.
const INLINE_VERSIONS: usize = 2;

/// Placeholder for unused inline slots; never observable because reads are
/// bounded by `len`.
const DEAD_VERSION: Version = Version {
    epoch: 0,
    core: 0,
    assoc: None,
    evicted: false,
};

/// An address's version history, newest last (push order is chronological
/// because same-epoch updates supersede in place).
#[derive(Debug, Clone)]
struct VersionList {
    inline: [Version; INLINE_VERSIONS],
    spill: Vec<Version>,
    len: u32,
}

impl VersionList {
    const fn new() -> Self {
        VersionList {
            inline: [DEAD_VERSION; INLINE_VERSIONS],
            spill: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn get(&self, i: usize) -> &Version {
        debug_assert!(i < self.len());
        if i < INLINE_VERSIONS {
            &self.inline[i]
        } else {
            &self.spill[i - INLINE_VERSIONS]
        }
    }

    #[inline]
    fn set(&mut self, i: usize, v: Version) {
        debug_assert!(i < self.len());
        if i < INLINE_VERSIONS {
            self.inline[i] = v;
        } else {
            self.spill[i - INLINE_VERSIONS] = v;
        }
    }

    #[inline]
    fn last_mut(&mut self) -> Option<&mut Version> {
        let i = self.len().checked_sub(1)?;
        Some(if i < INLINE_VERSIONS {
            &mut self.inline[i]
        } else {
            &mut self.spill[i - INLINE_VERSIONS]
        })
    }

    #[inline]
    fn push(&mut self, v: Version) {
        let i = self.len();
        if i < INLINE_VERSIONS {
            self.inline[i] = v;
        } else {
            self.spill.push(v);
        }
        self.len += 1;
    }

    /// The latest version with `epoch < bound`, scanning newest-first.
    /// Histories are short (inline in the common case), so a linear
    /// reverse scan beats a binary search.
    #[inline]
    fn latest_before(&self, bound: u64) -> Option<&Version> {
        for i in (0..self.len()).rev() {
            let v = self.get(i);
            if v.epoch < bound {
                return Some(v);
            }
        }
        None
    }

    /// In-place compaction keeping versions `f` accepts, preserving order.
    /// The write cursor never passes the read cursor, so spill writes land
    /// on still-occupied capacity.
    fn retain(&mut self, mut f: impl FnMut(&Version) -> bool) {
        let mut w = 0usize;
        for i in 0..self.len() {
            let v = *self.get(i);
            if f(&v) {
                if w != i {
                    self.set(w, v);
                }
                w += 1;
            }
        }
        self.spill.truncate(w.saturating_sub(INLINE_VERSIONS));
        self.len = w as u32;
    }

    fn clear(&mut self) {
        self.spill.clear();
        self.len = 0;
    }
}

/// One arena entry: an address and its version history. An entry with an
/// empty history is *dead* — behaviour-identical to the address being
/// absent — and is revived in place when the address is touched again.
#[derive(Debug, Clone)]
struct Entry {
    key: WordAddr,
    versions: VersionList,
}

/// Empty-slot sentinel in the open-addressed index.
const EMPTY_SLOT: u32 = u32::MAX;

/// One slot of the open-addressed index. The key is duplicated here so a
/// probe chain walks only this compact (16-byte) array; the fat `Entry`
/// arena is touched exactly once, after the match. Emptiness is carried by
/// `idx == EMPTY_SLOT` (a key of 0 is a valid address).
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u64,
    idx: u32,
}

impl Slot {
    const EMPTY: Slot = Slot {
        key: 0,
        idx: EMPTY_SLOT,
    };
}

/// Initial index size (power of two).
const INITIAL_SLOTS: usize = 64;

#[inline]
fn hash_addr(addr: WordAddr) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(addr.byte());
    h.finish()
}

/// Usage counters (for capacity ablations and energy accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AddrMapUsage {
    /// Association versions inserted.
    pub inserted: u64,
    /// Insertions dropped because the owning core was at capacity.
    pub rejected_capacity: u64,
    /// Tombstones written by uncovered stores.
    pub tombstones: u64,
    /// Subset of `tombstones` written by capacity evictions rather than
    /// uncovered stores.
    pub evicted_tombstones: u64,
    /// Peak live associations across all cores.
    pub peak_live: usize,
}

impl AddrMapUsage {
    /// Publishes the counters into the unified metrics registry under
    /// `ckpt.addrmap.*` (set-semantics, so refreshes are idempotent):
    ///
    /// * `ckpt.addrmap.inserted` — association versions inserted (count);
    /// * `ckpt.addrmap.rejected_capacity` — insertions dropped at
    ///   capacity (count);
    /// * `ckpt.addrmap.tombstones` — tombstone versions written (count);
    /// * `ckpt.addrmap.evicted_tombstones` — tombstones forced by
    ///   capacity evictions (count, subset of `tombstones`);
    /// * `ckpt.addrmap.peak_live` — peak live associations across all
    ///   cores (associations).
    pub fn metrics(&self, reg: &mut MetricsRegistry) {
        reg.set("ckpt.addrmap.inserted", self.inserted);
        reg.set("ckpt.addrmap.rejected_capacity", self.rejected_capacity);
        reg.set("ckpt.addrmap.tombstones", self.tombstones);
        reg.set("ckpt.addrmap.evicted_tombstones", self.evicted_tombstones);
        reg.set("ckpt.addrmap.peak_live", self.peak_live as u64);
    }
}

/// What the `AddrMap` knows about the value `addr` held at a checkpoint —
/// the classification behind the omission-decision ledger's reason codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocState {
    /// A live association describes the value: recomputable via `slice`
    /// on `core`.
    Live {
        /// The associated Slice.
        slice: SliceId,
        /// The owning core.
        core: u32,
    },
    /// The association was invalidated by a later uncovered store.
    Dead,
    /// The association was dropped by a capacity eviction.
    Evicted,
    /// No version covers the epoch (the address never had an association
    /// old enough).
    Absent,
}

/// The versioned association buffer — see the module-level notes at
/// the top of this file.
#[derive(Debug, Clone)]
pub struct AddrMap {
    cfg: AddrMapConfig,
    /// Open-addressed index: key + arena entry index per slot.
    slots: Vec<Slot>,
    /// Entry arena in first-touch order. Entries are never removed (dead
    /// entries have an empty version list), so indices in `slots` stay
    /// valid for the map's lifetime.
    entries: Vec<Entry>,
    live_per_core: Vec<usize>,
    usage: AddrMapUsage,
}

impl AddrMap {
    /// Creates an empty map for `num_cores` cores.
    pub fn new(cfg: AddrMapConfig, num_cores: usize) -> Self {
        AddrMap {
            cfg,
            slots: vec![Slot::EMPTY; INITIAL_SLOTS],
            entries: Vec::new(),
            live_per_core: vec![0; num_cores],
            usage: AddrMapUsage::default(),
        }
    }

    /// Usage counters.
    pub fn usage(&self) -> AddrMapUsage {
        self.usage
    }

    /// Live associations currently held by `core`.
    pub fn live(&self, core: u32) -> usize {
        self.live_per_core[core as usize]
    }

    /// Live associations across all cores.
    pub fn total_live(&self) -> usize {
        self.live_per_core.iter().sum()
    }

    /// The per-core capacity bound every `live(core)` must respect.
    pub fn capacity_per_core(&self) -> usize {
        self.cfg.capacity_per_core
    }

    /// The aggregate capacity bound (`capacity_per_core × num_cores`).
    pub fn total_capacity(&self) -> usize {
        self.cfg.capacity_per_core * self.live_per_core.len()
    }

    /// Finds the arena entry for `addr`, if it was ever touched.
    #[inline]
    fn find(&self, addr: WordAddr) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut slot = hash_addr(addr) as usize & mask;
        loop {
            let s = self.slots[slot];
            if s.idx == EMPTY_SLOT {
                return None;
            }
            if s.key == addr.byte() {
                return Some(s.idx as usize);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Finds or materialises the arena entry for `addr`.
    fn find_or_insert(&mut self, addr: WordAddr) -> usize {
        // Keep the load factor below 7/8 counting every arena entry (dead
        // ones still occupy index slots so they can be revived in place).
        if (self.entries.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut slot = hash_addr(addr) as usize & mask;
        loop {
            let s = self.slots[slot];
            if s.idx == EMPTY_SLOT {
                let idx = self.entries.len();
                self.slots[slot] = Slot {
                    key: addr.byte(),
                    idx: idx as u32,
                };
                self.entries.push(Entry {
                    key: addr,
                    versions: VersionList::new(),
                });
                return idx;
            }
            if s.key == addr.byte() {
                return s.idx as usize;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Doubles the index and re-seats every entry. Probe order after a
    /// grow depends only on the entry keys and the new size, never on
    /// lookup history, so growth cannot perturb observable behaviour.
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mask = new_len - 1;
        let mut slots = vec![Slot::EMPTY; new_len];
        for (idx, entry) in self.entries.iter().enumerate() {
            let mut slot = hash_addr(entry.key) as usize & mask;
            while slots[slot].idx != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            slots[slot] = Slot {
                key: entry.key.byte(),
                idx: idx as u32,
            };
        }
        self.slots = slots;
    }

    fn note_peak(&mut self) {
        let total: usize = self.live_per_core.iter().sum();
        if total > self.usage.peak_live {
            self.usage.peak_live = total;
        }
    }

    /// Records an uncovered store to `addr`: from `epoch` on, the
    /// address's value is not recomputable. A tombstone is only needed if
    /// a (non-tombstone) association exists.
    #[inline]
    pub(crate) fn record_store(&mut self, core: u32, addr: WordAddr, epoch: u64) {
        // Fast path: stores to never-associated addresses (the vast
        // majority) cost one probe and no mutation.
        let Some(idx) = self.find(addr) else { return };
        if self.entries[idx].versions.is_empty() {
            return;
        }
        self.tombstone_at(idx, core, epoch, false);
    }

    /// Writes a tombstone version into entry `idx`. `evicted` marks
    /// capacity evictions (vs. genuine invalidation by an uncovered
    /// store). Eviction tombstones materialise an entry for a previously
    /// unknown address (the caller uses `find_or_insert`) so a later
    /// first update can still be attributed to the eviction, while plain
    /// uncovered stores to unknown addresses stay free.
    fn tombstone_at(&mut self, idx: usize, core: u32, epoch: u64, evicted: bool) {
        let versions = &mut self.entries[idx].versions;
        match versions.last_mut() {
            Some(last) if last.assoc.is_none() => {
                // Already dead from an earlier (or equal) epoch on; a
                // later uncovered store changes nothing.
            }
            Some(last) if last.epoch == epoch => {
                // Same-epoch association superseded within the
                // interval: it can never be looked up (lookups target
                // strictly older epochs), so replace in place.
                let owner = last.core;
                last.assoc = None;
                last.core = core;
                last.evicted = evicted;
                self.live_per_core[owner as usize] -= 1;
                self.usage.tombstones += 1;
                if evicted {
                    self.usage.evicted_tombstones += 1;
                }
            }
            _ => {
                versions.push(Version {
                    epoch,
                    core,
                    assoc: None,
                    evicted,
                });
                self.usage.tombstones += 1;
                if evicted {
                    self.usage.evicted_tombstones += 1;
                }
            }
        }
    }

    /// Records an `ASSOC-ADDR`: the value stored to `addr` in `epoch` is
    /// the output of `slice` over `inputs`. Returns `false` if dropped for
    /// capacity.
    pub(crate) fn record_assoc(
        &mut self,
        core: u32,
        addr: WordAddr,
        epoch: u64,
        slice: SliceId,
        inputs: InputVals,
    ) -> bool {
        if self.live_per_core[core as usize] >= self.cfg.capacity_per_core {
            self.usage.rejected_capacity += 1;
            // The association (if any) no longer describes the new value;
            // the eviction-flagged tombstone lets a later first update be
            // attributed to the capacity limit rather than the program.
            let idx = self.find_or_insert(addr);
            self.tombstone_at(idx, core, epoch, true);
            return false;
        }
        let idx = self.find_or_insert(addr);
        let versions = &mut self.entries[idx].versions;
        let assoc = Assoc { slice, inputs };
        match versions.last_mut() {
            Some(last) if last.epoch == epoch => {
                // Supersede the same-interval version in place.
                if last.assoc.is_some() {
                    self.live_per_core[last.core as usize] -= 1;
                }
                last.core = core;
                last.assoc = Some(assoc);
                last.evicted = false;
            }
            _ => {
                versions.push(Version {
                    epoch,
                    core,
                    assoc: Some(assoc),
                    evicted: false,
                });
            }
        }
        self.live_per_core[core as usize] += 1;
        self.usage.inserted += 1;
        self.note_peak();
        true
    }

    /// The association describing the value `addr` held at checkpoint
    /// `epoch` — the latest version created strictly before `epoch`.
    /// Returns `None` if that version is a tombstone or absent.
    pub(crate) fn lookup_for_epoch(&self, addr: WordAddr, epoch: u64) -> Option<&Assoc> {
        let idx = self.find(addr)?;
        self.entries[idx]
            .versions
            .latest_before(epoch)
            .and_then(|v| v.assoc.as_ref())
    }

    /// Owning core of the association usable for `epoch`, if any.
    pub(crate) fn owner_for_epoch(&self, addr: WordAddr, epoch: u64) -> Option<u32> {
        let idx = self.find(addr)?;
        self.entries[idx]
            .versions
            .latest_before(epoch)
            .filter(|v| v.assoc.is_some())
            .map(|v| v.core)
    }

    /// Classifies what the map knows about the value `addr` held at
    /// checkpoint `epoch` — the version lookup `lookup_for_epoch`
    /// performs, with tombstones split by cause. Read-only (ledger
    /// attribution; never charges simulated time).
    pub fn classify_for_epoch(&self, addr: WordAddr, epoch: u64) -> AssocState {
        let Some(idx) = self.find(addr) else {
            return AssocState::Absent;
        };
        match self.entries[idx].versions.latest_before(epoch) {
            None => AssocState::Absent,
            Some(v) => match &v.assoc {
                Some(a) => AssocState::Live {
                    slice: a.slice,
                    core: v.core,
                },
                None if v.evicted => AssocState::Evicted,
                None => AssocState::Dead,
            },
        }
    }

    /// Prunes versions no longer reachable once epoch `sealed` is sealed:
    /// recovery can only target checkpoints `sealed` and `sealed + 1`, so
    /// per address we keep every version with `epoch >= sealed` plus the
    /// latest older one.
    pub(crate) fn prune(&mut self, sealed: u64) {
        let live = &mut self.live_per_core;
        for entry in &mut self.entries {
            let versions = &mut entry.versions;
            if versions.is_empty() {
                continue;
            }
            let mut keep_from = 0;
            for i in (0..versions.len()).rev() {
                if versions.get(i).epoch < sealed {
                    keep_from = i;
                    break;
                }
            }
            if keep_from > 0 {
                let mut i = 0;
                versions.retain(|v| {
                    let keep = i >= keep_from;
                    if !keep && v.assoc.is_some() {
                        live[v.core as usize] -= 1;
                    }
                    i += 1;
                    keep
                });
            }
            // Drop addresses whose only remaining version is an old
            // tombstone (the entry goes dead; absence and deadness are
            // indistinguishable to every reader).
            if versions.len() == 1 {
                let v = versions.get(0);
                if v.assoc.is_none() && v.epoch < sealed {
                    versions.clear();
                }
            }
        }
    }

    /// Rollback: recovery restored checkpoint `safe_epoch` for the cores
    /// in `victim_mask`; versions they created in the undone epochs
    /// (`epoch >= safe_epoch`) describe stores that never happened.
    pub(crate) fn rollback(&mut self, safe_epoch: u64, victim_mask: u64) {
        let live = &mut self.live_per_core;
        for entry in &mut self.entries {
            entry.versions.retain(|v| {
                let undone = v.epoch >= safe_epoch && victim_mask >> v.core & 1 == 1;
                if undone && v.assoc.is_some() {
                    live[v.core as usize] -= 1;
                }
                !undone
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wa(i: u64) -> WordAddr {
        WordAddr::new(i * 8)
    }

    fn iv(vals: &[u64]) -> InputVals {
        InputVals::new(vals)
    }

    fn map(cap: usize) -> AddrMap {
        AddrMap::new(
            AddrMapConfig {
                capacity_per_core: cap,
            },
            2,
        )
    }

    #[test]
    fn assoc_visible_only_for_later_epochs() {
        let mut m = map(100);
        assert!(m.record_assoc(0, wa(1), 3, SliceId(7), iv(&[10])));
        // Value stored in epoch 3 describes the state at checkpoints 4, 5…
        assert!(m.lookup_for_epoch(wa(1), 3).is_none());
        let a = m.lookup_for_epoch(wa(1), 4).unwrap();
        assert_eq!(a.slice, SliceId(7));
        assert_eq!(m.owner_for_epoch(wa(1), 4), Some(0));
    }

    #[test]
    fn tombstone_invalidates_from_its_epoch() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 3, SliceId(7), iv(&[]));
        m.record_store(1, wa(1), 5);
        // Checkpoint 4 and 5 still see the association (store was in
        // epoch 5, after checkpoints 4 and 5 were... checkpoint 5 opens
        // epoch 5, so the value at checkpoint 5 predates the store).
        assert!(m.lookup_for_epoch(wa(1), 4).is_some());
        assert!(m.lookup_for_epoch(wa(1), 5).is_some());
        // Checkpoint 6 sees the overwritten (unknown) value.
        assert!(m.lookup_for_epoch(wa(1), 6).is_none());
    }

    #[test]
    fn same_epoch_supersede_keeps_single_version() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 3, SliceId(1), iv(&[1]));
        m.record_store(0, wa(1), 3); // overwritten in the same interval
        m.record_assoc(0, wa(1), 3, SliceId(2), iv(&[2]));
        let a = m.lookup_for_epoch(wa(1), 4).unwrap();
        assert_eq!(a.slice, SliceId(2));
        assert_eq!(m.live(0), 1);
    }

    #[test]
    fn capacity_rejection_degrades_to_baseline() {
        let mut m = map(2);
        assert!(m.record_assoc(0, wa(1), 0, SliceId(1), iv(&[])));
        assert!(m.record_assoc(0, wa(2), 0, SliceId(1), iv(&[])));
        assert!(!m.record_assoc(0, wa(3), 0, SliceId(1), iv(&[])));
        assert_eq!(m.usage().rejected_capacity, 1);
        assert!(m.lookup_for_epoch(wa(3), 1).is_none());
        // Capacity is per core: core 1 still has room.
        assert!(m.record_assoc(1, wa(4), 0, SliceId(1), iv(&[])));
    }

    #[test]
    fn capacity_rejection_invalidates_stale_assoc() {
        let mut m = map(1);
        assert!(m.record_assoc(0, wa(1), 0, SliceId(1), iv(&[5])));
        // New store to the same address in a later epoch, but the map is
        // full: the old association must not survive describing the new
        // value.
        assert!(!m.record_assoc(0, wa(1), 1, SliceId(2), iv(&[6])));
        assert!(m.lookup_for_epoch(wa(1), 2).is_none());
        // The old association still describes epoch 1's opening value.
        assert!(m.lookup_for_epoch(wa(1), 1).is_some());
    }

    #[test]
    fn prune_keeps_reachable_versions() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 0, SliceId(1), iv(&[]));
        m.record_assoc(0, wa(1), 2, SliceId(2), iv(&[]));
        m.record_assoc(0, wa(2), 0, SliceId(3), iv(&[]));
        m.prune(2); // checkpoints 2 and 3 remain restorable
                    // wa(1)@epoch0 is the latest version below 2 → kept.
        assert_eq!(m.lookup_for_epoch(wa(1), 2).unwrap().slice, SliceId(1));
        assert_eq!(m.lookup_for_epoch(wa(1), 3).unwrap().slice, SliceId(2));
        assert_eq!(m.lookup_for_epoch(wa(2), 2).unwrap().slice, SliceId(3));
        assert_eq!(m.live(0), 3);
        m.prune(4);
        // Only the latest version per address survives.
        assert_eq!(m.live(0), 2);
    }

    #[test]
    fn rollback_drops_undone_victim_versions() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 1, SliceId(1), iv(&[]));
        m.record_assoc(0, wa(2), 3, SliceId(2), iv(&[]));
        m.record_assoc(1, wa(3), 3, SliceId(3), iv(&[]));
        m.rollback(2, 0b01); // core 0 rolls back to checkpoint 2
        assert!(m.lookup_for_epoch(wa(1), 2).is_some()); // epoch 1 < 2 kept
        assert!(m.lookup_for_epoch(wa(2), 4).is_none()); // undone
        assert!(m.lookup_for_epoch(wa(3), 4).is_some()); // non-victim kept
        assert_eq!(m.live(0), 1);
        assert_eq!(m.live(1), 1);
    }

    #[test]
    fn tombstone_on_unknown_address_is_free() {
        let mut m = map(100);
        m.record_store(0, wa(9), 1);
        assert_eq!(m.usage().tombstones, 0);
        assert!(m.lookup_for_epoch(wa(9), 2).is_none());
    }

    #[test]
    fn classification_splits_tombstones_by_cause() {
        let mut m = map(1);
        // Live association.
        m.record_assoc(0, wa(1), 0, SliceId(1), iv(&[4]));
        assert_eq!(
            m.classify_for_epoch(wa(1), 1),
            AssocState::Live {
                slice: SliceId(1),
                core: 0
            }
        );
        // Uncovered store kills it → Dead.
        m.record_store(0, wa(1), 1);
        assert_eq!(m.classify_for_epoch(wa(1), 2), AssocState::Dead);
        // Capacity eviction on a fresh address → Evicted (entry is
        // materialised even though the address was never associated).
        m.record_assoc(1, wa(2), 0, SliceId(1), iv(&[])); // fills core 1
        m.record_assoc(1, wa(3), 0, SliceId(2), iv(&[])); // rejected
        assert_eq!(m.classify_for_epoch(wa(3), 1), AssocState::Evicted);
        // Never-seen address → Absent.
        assert_eq!(m.classify_for_epoch(wa(9), 1), AssocState::Absent);
        let u = m.usage();
        assert_eq!(u.rejected_capacity, 1);
        assert_eq!(u.evicted_tombstones, 1);
        assert!(u.tombstones >= 2);
    }

    #[test]
    fn usage_metrics_publish_under_ckpt_addrmap_keys() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 0, SliceId(1), iv(&[]));
        m.record_store(0, wa(1), 1);
        let mut reg = acr_trace::MetricsRegistry::new();
        m.usage().metrics(&mut reg);
        assert_eq!(reg.get("ckpt.addrmap.inserted"), Some(1));
        assert_eq!(reg.get("ckpt.addrmap.tombstones"), Some(1));
        assert_eq!(reg.get("ckpt.addrmap.evicted_tombstones"), Some(0));
        assert_eq!(reg.get("ckpt.addrmap.peak_live"), Some(1));
    }

    #[test]
    fn peak_live_tracks_high_water_mark() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 0, SliceId(1), iv(&[]));
        m.record_assoc(1, wa(2), 0, SliceId(1), iv(&[]));
        assert_eq!(m.usage().peak_live, 2);
        m.prune(10);
        // Peak is sticky.
        assert_eq!(m.usage().peak_live, 2);
    }

    #[test]
    fn index_survives_growth_past_initial_capacity() {
        // Insert far more distinct addresses than INITIAL_SLOTS to force
        // several index growths, then verify every association resolves.
        let mut m = AddrMap::new(
            AddrMapConfig {
                capacity_per_core: 1 << 20,
            },
            1,
        );
        let n = 1000u64;
        for i in 0..n {
            assert!(m.record_assoc(0, wa(i), 0, SliceId(i as u32), iv(&[i])));
        }
        for i in 0..n {
            let a = m.lookup_for_epoch(wa(i), 1).unwrap();
            assert_eq!(a.slice, SliceId(i as u32));
            assert_eq!(a.inputs.as_slice(), &[i]);
        }
        assert_eq!(m.live(0), n as usize);
    }

    #[test]
    fn dead_entries_are_revived_in_place() {
        let mut m = map(100);
        m.record_assoc(0, wa(1), 0, SliceId(1), iv(&[]));
        m.record_store(0, wa(1), 1);
        m.prune(5); // the address's only version is an old tombstone → dead
        assert_eq!(m.classify_for_epoch(wa(1), 6), AssocState::Absent);
        assert_eq!(m.live(0), 0);
        // Touching the address again reuses the dead entry.
        assert!(m.record_assoc(0, wa(1), 7, SliceId(2), iv(&[3])));
        assert_eq!(m.lookup_for_epoch(wa(1), 8).unwrap().slice, SliceId(2));
        assert_eq!(m.live(0), 1);
    }

    #[test]
    fn spilled_histories_stay_ordered() {
        // More versions than the inline capacity: epochs 0..6 on one
        // address, alternating assoc/tombstone, then check every epoch's
        // view.
        let mut m = map(100);
        for e in 0..6u64 {
            if e % 2 == 0 {
                m.record_assoc(0, wa(1), e, SliceId(e as u32), iv(&[e]));
            } else {
                m.record_store(0, wa(1), e);
            }
        }
        for k in 1..=6u64 {
            let state = m.classify_for_epoch(wa(1), k);
            // Latest version before k has epoch k-1.
            if (k - 1) % 2 == 0 {
                assert_eq!(
                    state,
                    AssocState::Live {
                        slice: SliceId((k - 1) as u32),
                        core: 0
                    },
                    "epoch {k}"
                );
            } else {
                assert_eq!(state, AssocState::Dead, "epoch {k}");
            }
        }
    }
}
