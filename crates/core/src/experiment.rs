//! One-call runners for the paper's configurations.

use std::fmt;
use std::sync::Arc;

use acr_ckpt::{
    dense_fault_plan, replay_case, run_campaign_loads, shrink_case, BerConfig, BerEngine,
    BerReport, CampaignConfig, CampaignError, CampaignReport, CaseFailure, DecisionLedger,
    ErrorSchedule, NoOmission, ResilienceConfig, Scheme, SecondaryStorage, ShrinkConfig,
    ShrinkOutcome,
};
use acr_energy::{edp, EnergyBreakdown, EnergyInputs, EnergyModel};
use acr_isa::{Program, ProgramError, Slice};
use acr_mem::MemStats;
use acr_sim::{Fault, Machine, MachineConfig, NoHooks, PcProfile, SimError, SimStats};
use acr_slicer::{instrument, SliceStats, SlicerConfig};
use acr_trace::{SharedSink, WorkerLoad};

use crate::addr_map::AddrMapConfig;
use crate::policy::AcrPolicy;
use crate::stats::AcrStats;

/// Errors from the experiment API. `Eq` is withheld because campaign
/// configuration errors carry the rejected `f64` latency fraction.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// The workload program is malformed.
    Program(ProgramError),
    /// The simulator faulted (generator/pass bug).
    Sim(SimError),
    /// A fault-injection campaign could not establish its fault-free
    /// baseline.
    Campaign(CampaignError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Program(e) => write!(f, "invalid program: {e}"),
            ExperimentError::Sim(e) => write!(f, "simulation error: {e}"),
            ExperimentError::Campaign(e) => write!(f, "fault campaign error: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<ProgramError> for ExperimentError {
    fn from(e: ProgramError) -> Self {
        ExperimentError::Program(e)
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

impl From<CampaignError> for ExperimentError {
    fn from(e: CampaignError) -> Self {
        ExperimentError::Campaign(e)
    }
}

/// Everything that parameterises a run: Table I machine, BER scheme,
/// checkpoint/error schedule shape, slicer threshold, `AddrMap` sizing,
/// energy model.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Machine configuration (Table I defaults).
    pub machine: MachineConfig,
    /// Coordination scheme (global unless reproducing Fig. 13).
    pub scheme: Scheme,
    /// Checkpoints per nominal execution (the paper's default sweeps use
    /// 25; Fig. 12 sweeps 25–100).
    pub num_checkpoints: u32,
    /// Error detection latency as a fraction of the checkpoint period
    /// (must be ≤ 1; Section II-A).
    pub detection_latency_frac: f64,
    /// Compiler-pass configuration (Slice-length threshold).
    pub slicer: SlicerConfig,
    /// `AddrMap` sizing.
    pub addrmap: AddrMapConfig,
    /// Shadow-memory verification of recoveries (tests).
    pub oracle: bool,
    /// Energy model.
    pub energy: EnergyModel,
    /// Explicit checkpoint trigger points (progress units). When set,
    /// they replace the uniform schedule — the hook for
    /// recomputation-aware placement (`acr::placement`, the paper's
    /// future-work idea in Sections V-D1/V-D3).
    pub custom_triggers: Option<Vec<u64>>,
    /// Optional second level of a hierarchical checkpointing framework
    /// (Section II-A): every k-th checkpoint also streams to slower
    /// storage, whose traffic ACR's size reductions cut proportionally.
    pub secondary: Option<SecondaryStorage>,
    /// Scratchpad-based recomputation (Section II-B): overlap recovery
    /// recomputation with restore traffic instead of serializing it.
    pub scratchpad: bool,
    /// Trace sink attached to checkpointed runs (the disabled default
    /// keeps the hot path identical to an untraced build).
    pub trace: SharedSink,
    /// Metrics sampling interval in cycles for checkpointed runs
    /// (0 = off). Samples land in the run's [`BerReport::series`].
    pub sample_interval: u64,
    /// Attribution profiling: per-PC retire accounting on the machine
    /// plus the omission-decision ledger on checkpointed runs. Purely
    /// observational — enabling it never changes cycle counts or
    /// checkpoint contents (the default keeps the hot path free of it).
    pub profile: bool,
    /// Torn-recovery resilience: checkpoint generations retained as
    /// fallbacks, the re-replay retry bound, and (for tests/injection)
    /// scheduled recovery-window faults. The default (`generations: 1`,
    /// no faults) is behaviourally identical to a build without the
    /// escalation machinery.
    pub resilience: ResilienceConfig,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            machine: MachineConfig::default(),
            scheme: Scheme::GlobalCoordinated,
            num_checkpoints: 25,
            detection_latency_frac: 0.5,
            slicer: SlicerConfig::default(),
            addrmap: AddrMapConfig::default(),
            oracle: false,
            energy: EnergyModel::default(),
            custom_triggers: None,
            secondary: None,
            scratchpad: false,
            trace: SharedSink::disabled(),
            sample_interval: 0,
            profile: false,
            resilience: ResilienceConfig::default(),
        }
    }
}

impl ExperimentSpec {
    /// Sets the core count (chainable).
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.machine.num_cores = cores;
        self
    }

    /// Sets the number of checkpoints (chainable).
    pub fn with_checkpoints(mut self, n: u32) -> Self {
        self.num_checkpoints = n;
        self
    }

    /// Sets the Slice-length threshold (chainable).
    pub fn with_threshold(mut self, t: usize) -> Self {
        self.slicer.threshold = t;
        self
    }

    /// Sets the coordination scheme (chainable).
    pub fn with_scheme(mut self, s: Scheme) -> Self {
        self.scheme = s;
        self
    }

    /// Enables the recovery correctness oracle (chainable).
    pub fn with_oracle(mut self, on: bool) -> Self {
        self.oracle = on;
        self
    }

    /// Attaches a trace sink to checkpointed runs (chainable).
    pub fn with_trace(mut self, sink: SharedSink) -> Self {
        self.trace = sink;
        self
    }

    /// Enables interval metrics sampling on checkpointed runs
    /// (chainable).
    pub fn with_sample_interval(mut self, cycles: u64) -> Self {
        self.sample_interval = cycles;
        self
    }

    /// Enables attribution profiling — per-PC retire accounting and, on
    /// checkpointed runs, the omission-decision ledger (chainable).
    pub fn with_profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Sets the torn-recovery resilience configuration (chainable).
    pub fn with_resilience(mut self, r: ResilienceConfig) -> Self {
        self.resilience = r;
        self
    }
}

/// The outcome of one configuration run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Configuration label (`No_Ckpt`, `Ckpt_NE`, `ReCkpt_E`, …).
    pub label: String,
    /// Execution time in cycles.
    pub cycles: u64,
    /// Execution time in seconds at the configured frequency.
    pub seconds: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Energy-delay product (J·s).
    pub edp: f64,
    /// Instruction-mix statistics.
    pub sim: SimStats,
    /// Memory statistics.
    pub mem: MemStats,
    /// BER engine report (absent for `No_Ckpt`).
    pub report: Option<BerReport>,
    /// ACR hardware statistics (absent for non-amnesic runs).
    pub acr: Option<AcrStats>,
    /// Compiler-pass statistics (absent for non-amnesic runs).
    pub slices: Option<SliceStats>,
    /// Per-PC attribution profile (present when the spec enabled
    /// profiling).
    pub profile: Option<PcProfile>,
    /// Omission-decision ledger (present when profiling a checkpointed
    /// run).
    pub ledger: Option<DecisionLedger>,
    /// Lifetime `(logged, omitted)` word totals from the log controller
    /// (present when profiling a checkpointed run) — the right-hand side
    /// of the ledger's conservation invariant.
    pub log_totals: Option<(u64, u64)>,
}

impl RunResult {
    /// Total checkpointed bytes (0 for `No_Ckpt`).
    pub fn checkpoint_bytes(&self) -> u64 {
        self.report
            .as_ref()
            .map(BerReport::total_checkpoint_bytes)
            .unwrap_or(0)
    }

    /// Percentage execution-time overhead relative to `base`.
    pub fn time_overhead_pct(&self, base: &RunResult) -> f64 {
        100.0 * (self.cycles as f64 - base.cycles as f64) / base.cycles as f64
    }

    /// Percentage energy overhead relative to `base`.
    pub fn energy_overhead_pct(&self, base: &RunResult) -> f64 {
        let a = self.energy.total_joules();
        let b = base.energy.total_joules();
        100.0 * (a - b) / b
    }

    /// Percentage EDP reduction this run achieves versus `other`
    /// (positive when this run is better).
    pub fn edp_reduction_pct(&self, other: &RunResult) -> f64 {
        100.0 * (other.edp - self.edp) / other.edp
    }
}

/// Outcome of one fault-injection campaign (see
/// [`Experiment::run_fault_campaign`]).
#[derive(Debug, Clone)]
pub struct CampaignRunResult {
    /// Configuration label (`Inject_Ckpt` / `Inject_ReCkpt`).
    pub label: String,
    /// Per-case records and aggregate counts.
    pub report: CampaignReport,
    /// Energy attributable to recovery across all cases (J).
    pub recovery_energy_joules: f64,
    /// Wall time of the recovery stalls at the configured frequency (s).
    pub recovery_seconds: f64,
    /// Host-side per-worker loads from the campaign's parallel runner
    /// (busy wall time, cases executed). Observability only — deliberately
    /// *outside* [`CampaignRunResult::report`], which stays byte-identical
    /// across jobs values. Feeds `host.jobs.*` in run manifests.
    pub host_loads: Vec<WorkerLoad>,
}

/// Runs the paper's configurations over one workload program, caching the
/// `No_Ckpt` baseline and the instrumented binary.
pub struct Experiment {
    raw: Program,
    spec: ExperimentSpec,
    /// Instrumented binary and pass statistics, cached per threshold
    /// behind shared handles: campaign planners/shrinkers/replayers and
    /// per-case policy factories all borrow the same immutable program
    /// instead of cloning it per case.
    instrumented: Option<(usize, Arc<Program>, Arc<SliceStats>)>,
    no_ckpt: Option<RunResult>,
}

impl fmt::Debug for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Experiment")
            .field("threads", &self.raw.num_threads())
            .field("spec", &self.spec.num_checkpoints)
            .finish()
    }
}

impl Experiment {
    /// Creates an experiment over a *raw* (uninstrumented) program.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Program`] if the program fails
    /// validation, or [`ExperimentError::Campaign`] with
    /// [`acr_ckpt::CkptError::NoCores`] for a zero-thread program (which
    /// validates vacuously but would build a machine with no cores to
    /// run or fault).
    pub fn new(raw: Program, spec: ExperimentSpec) -> Result<Self, ExperimentError> {
        raw.validate()?;
        if raw.num_threads() == 0 {
            return Err(ExperimentError::Campaign(
                acr_ckpt::CkptError::NoCores.into(),
            ));
        }
        Ok(Experiment {
            raw,
            spec,
            instrumented: None,
            no_ckpt: None,
        })
    }

    /// The specification (mutable; invalidates caches where needed).
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// Replaces the spec. Clears the instrumented-binary cache if the
    /// threshold changed (the `No_Ckpt` baseline only depends on the
    /// machine, which callers must keep fixed within one experiment).
    pub fn set_spec(&mut self, spec: ExperimentSpec) {
        if let Some((t, _, _)) = &self.instrumented {
            if *t != spec.slicer.threshold {
                self.instrumented = None;
            }
        }
        self.spec = spec;
    }

    /// The raw program.
    pub fn program(&self) -> &Program {
        &self.raw
    }

    /// The instrumented program and pass statistics (cached per
    /// threshold).
    pub fn instrumented(&mut self) -> (&Program, &SliceStats) {
        self.instrumented_shared();
        let (_, p, s) = self.instrumented.as_ref().expect("just filled");
        (p, s)
    }

    /// Shared handles to the instrumented program and pass statistics —
    /// what campaign loops hand to per-case closures so no full `Program`
    /// clone ever happens per fault case.
    fn instrumented_shared(&mut self) -> (Arc<Program>, Arc<SliceStats>) {
        let threshold = self.spec.slicer.threshold;
        if self
            .instrumented
            .as_ref()
            .map(|(t, _, _)| *t != threshold)
            .unwrap_or(true)
        {
            let (p, s) = instrument(&self.raw, &self.spec.slicer);
            self.instrumented = Some((threshold, Arc::new(p), Arc::new(s)));
        }
        let (_, p, s) = self.instrumented.as_ref().expect("just filled");
        (Arc::clone(p), Arc::clone(s))
    }

    /// Total work (retired instructions) of the nominal execution — the
    /// unit checkpoint and error schedules are expressed in.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from the baseline run.
    pub fn total_work(&mut self) -> Result<u64, ExperimentError> {
        Ok(self.run_no_ckpt()?.sim.retired)
    }

    /// `No_Ckpt`: error-free execution, no checkpointing (cached).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_no_ckpt(&mut self) -> Result<RunResult, ExperimentError> {
        if let Some(r) = &self.no_ckpt {
            return Ok(r.clone());
        }
        let mut machine = Machine::new(self.spec.machine, &self.raw);
        if self.spec.profile {
            machine.enable_profiling();
        }
        machine.run(&mut NoHooks, u64::MAX)?;
        let cycles = machine.cycles();
        let sim = *machine.stats();
        let mem = *machine.mem().stats();
        let mut result = self.finish("No_Ckpt".to_owned(), cycles, sim, mem, None, None, None);
        result.profile = machine.take_profile();
        self.no_ckpt = Some(result.clone());
        Ok(result)
    }

    fn ber_config(&mut self, errors: u32) -> Result<BerConfig, ExperimentError> {
        let total = self.total_work()?;
        let schedule = if errors == 0 {
            ErrorSchedule::none()
        } else {
            ErrorSchedule::uniform(
                total,
                errors,
                self.spec.num_checkpoints,
                self.spec.detection_latency_frac,
            )
        };
        let triggers = match &self.spec.custom_triggers {
            Some(t) => t.clone(),
            None => acr_ckpt::uniform_points(total, self.spec.num_checkpoints),
        };
        Ok(BerConfig {
            scheme: self.spec.scheme,
            triggers,
            errors: schedule,
            oracle: self.spec.oracle,
            secondary: self.spec.secondary,
            faults: Vec::new(),
            resilience: self.spec.resilience.clone(),
        })
    }

    /// `Ckpt_NE` / `Ckpt_E[,Loc]`: the non-amnesic baseline with `errors`
    /// injected errors.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_ckpt(&mut self, errors: u32) -> Result<RunResult, ExperimentError> {
        let cfg = self.ber_config(errors)?;
        let mut machine = Machine::new(self.spec.machine, &self.raw);
        self.attach_observability(&mut machine);
        let mut engine = BerEngine::new(machine, NoOmission, cfg);
        if self.spec.profile {
            engine.enable_ledger();
        }
        let report = engine.run_to_completion()?;
        let label = label_for("Ckpt", errors, self.spec.scheme);
        let mut result = self.finish(
            label,
            report.cycles,
            report.sim,
            report.mem,
            Some(report),
            None,
            None,
        );
        result.profile = engine.machine_mut().take_profile();
        result.log_totals = self.spec.profile.then(|| engine.log_totals());
        result.ledger = engine.take_ledger();
        Ok(result)
    }

    /// `ReCkpt_NE` / `ReCkpt_E[,Loc]`: ACR with `errors` injected errors.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_reckpt(&mut self, errors: u32) -> Result<RunResult, ExperimentError> {
        let cfg = self.ber_config(errors)?;
        let label = label_for("ReCkpt", errors, self.spec.scheme);
        self.run_acr_engine(cfg, label)
    }

    /// ACR under *real* injected faults (state corruption, not phantom
    /// errors): the trace/metrics runner behind `acr_cli trace`. Detection
    /// follows the spec's latency fraction, the shadow-memory oracle is
    /// forced on, and every fault becomes a recovery with Slice-replay
    /// sub-spans in the trace.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_reckpt_faulted(&mut self, faults: Vec<Fault>) -> Result<RunResult, ExperimentError> {
        let total = self.total_work()?;
        let period = total / (u64::from(self.spec.num_checkpoints) + 1);
        let mut cfg = self.ber_config(0)?;
        cfg.errors = ErrorSchedule {
            occurrences: Vec::new(),
            detection_latency: (period as f64 * self.spec.detection_latency_frac) as u64,
        };
        cfg.oracle = true;
        cfg.faults = faults;
        self.run_acr_engine(cfg, "ReCkpt_F".to_owned())
    }

    fn run_acr_engine(
        &mut self,
        cfg: BerConfig,
        label: String,
    ) -> Result<RunResult, ExperimentError> {
        let spec_machine = self.spec.machine;
        let addrmap = self.spec.addrmap;
        let (program, slice_stats) = self.instrumented_shared();
        let mut machine = Machine::new(spec_machine, &program);
        self.attach_observability(&mut machine);
        let policy = AcrPolicy::new(program.slices(), addrmap, program.num_threads())
            .with_scratchpad(self.spec.scratchpad)
            .with_rejected_pcs(&slice_stats.rejected_store_pcs)
            .with_generations(cfg.resilience.generations);
        let mut engine = BerEngine::new(machine, policy, cfg);
        if self.spec.profile {
            engine.enable_ledger();
        }
        let report = engine.run_to_completion()?;
        let acr = engine.policy().stats();
        let mut result = self.finish(
            label,
            report.cycles,
            report.sim,
            report.mem,
            Some(report),
            Some(acr),
            Some((*slice_stats).clone()),
        );
        result.profile = engine.machine_mut().take_profile();
        result.log_totals = self.spec.profile.then(|| engine.log_totals());
        result.ledger = engine.take_ledger();
        Ok(result)
    }

    /// Attaches the spec's trace sink and sampling interval to a machine
    /// about to run under the BER engine. No-ops on the default spec.
    fn attach_observability(&self, machine: &mut Machine) {
        if self.spec.trace.enabled() {
            machine.set_trace_sink(self.spec.trace.clone());
        }
        if self.spec.sample_interval > 0 {
            machine.enable_sampling(self.spec.sample_interval);
        }
        if self.spec.profile {
            machine.enable_profiling();
        }
    }

    /// Runs a deterministic fault-injection campaign over this workload:
    /// one fresh machine (and, when `amnesic`, a fresh [`AcrPolicy`]) per
    /// planned fault, each recovery differentially verified against the
    /// reference interpreter. The campaign's coordination scheme follows
    /// `cfg.scheme`, not the experiment spec.
    ///
    /// # Errors
    ///
    /// Fails only when the fault-free baseline runs fail or disagree;
    /// per-fault failures are recorded in the report, never dropped.
    pub fn run_fault_campaign(
        &mut self,
        cfg: &CampaignConfig,
        amnesic: bool,
    ) -> Result<CampaignRunResult, ExperimentError> {
        let machine = self.spec.machine;
        let (label, (report, host_loads)) = if amnesic {
            let addrmap = self.spec.addrmap;
            let scratchpad = self.spec.scratchpad;
            let (program, _) = self.instrumented_shared();
            // Match the per-case engines' retention depth (nested-fault
            // campaigns force at least two generations).
            let generations = if cfg.recovery_faults {
                cfg.generations.max(2)
            } else {
                cfg.generations.max(1)
            };
            // One shared Slice table for the whole campaign; each case's
            // policy bumps a refcount instead of cloning the table.
            let slices: Arc<[Slice]> = program.slices().into();
            let num_threads = program.num_threads();
            let report = run_campaign_loads(&program, machine, cfg, || {
                AcrPolicy::new(Arc::clone(&slices), addrmap, num_threads)
                    .with_scratchpad(scratchpad)
                    .with_generations(generations)
            })?;
            ("Inject_ReCkpt", report)
        } else {
            (
                "Inject_Ckpt",
                run_campaign_loads(&self.raw, machine, cfg, || NoOmission)?,
            )
        };
        // Energy attributable to recovery alone: log reads, restore
        // writes, Slice recomputation, plus static energy over the stall
        // cycles.
        let inputs = EnergyInputs {
            log_record_reads: report.restored_records(),
            recovery_word_writes: report.restored_records() + report.recomputed_values(),
            slice_alu_ops: report.recompute_alu_ops(),
            cycles: report.recovery_stall_cycles(),
            cores: machine.num_cores,
            ..EnergyInputs::default()
        };
        let recovery_energy_joules = self.spec.energy.energy(&inputs).total_joules();
        Ok(CampaignRunResult {
            label: label.to_owned(),
            recovery_energy_joules,
            recovery_seconds: machine.cycles_to_seconds(report.recovery_stall_cycles()),
            report,
            host_loads,
        })
    }

    /// Plans one *dense* multi-fault case over this workload: the seeded
    /// plan a campaign would spread over `cfg.count` cases, taken as a
    /// single case's fault list. The program the plan targets matches
    /// the policy selection of [`Experiment::run_fault_campaign`] —
    /// the instrumented program when `amnesic`, the raw one otherwise —
    /// so the plan is directly consumable by
    /// [`Experiment::shrink_fault_case`].
    ///
    /// # Errors
    ///
    /// Fails like a campaign would: broken fault-free baseline, or no
    /// injectable fault kind for the requested set.
    pub fn plan_dense_faults(
        &mut self,
        cfg: &CampaignConfig,
        amnesic: bool,
    ) -> Result<Vec<Fault>, ExperimentError> {
        let machine = self.spec.machine;
        if amnesic {
            let (program, _) = self.instrumented_shared();
            Ok(dense_fault_plan(&program, machine, cfg)?)
        } else {
            Ok(dense_fault_plan(&self.raw, machine, cfg)?)
        }
    }

    /// Shrinks one failing fault case of this workload to a minimal
    /// reproducer with the same postmortem trigger (delta debugging; see
    /// `acr_ckpt::shrink_case`). Policy selection mirrors
    /// [`Experiment::run_fault_campaign`]: a fresh [`AcrPolicy`] per
    /// evaluation when `amnesic`, [`NoOmission`] otherwise.
    ///
    /// # Errors
    ///
    /// Fails when the baseline breaks or when the original plan does not
    /// fail at all (nothing to shrink).
    pub fn shrink_fault_case(
        &mut self,
        cfg: &CampaignConfig,
        amnesic: bool,
        case_index: usize,
        faults: &[Fault],
        shrink_cfg: &ShrinkConfig,
    ) -> Result<ShrinkOutcome, ExperimentError> {
        let machine = self.spec.machine;
        if amnesic {
            let addrmap = self.spec.addrmap;
            let scratchpad = self.spec.scratchpad;
            let (program, _) = self.instrumented_shared();
            let generations = if cfg.recovery_faults {
                cfg.generations.max(2)
            } else {
                cfg.generations.max(1)
            };
            let slices: Arc<[Slice]> = program.slices().into();
            let num_threads = program.num_threads();
            Ok(shrink_case(
                &program,
                machine,
                cfg,
                case_index,
                faults,
                shrink_cfg,
                || {
                    AcrPolicy::new(Arc::clone(&slices), addrmap, num_threads)
                        .with_scratchpad(scratchpad)
                        .with_generations(generations)
                },
            )?)
        } else {
            Ok(shrink_case(
                &self.raw,
                machine,
                cfg,
                case_index,
                faults,
                shrink_cfg,
                || NoOmission,
            )?)
        }
    }

    /// Replays one fault plan exactly once under the campaign policy
    /// selection and reports whether — and how — it fails. `Ok(None)`
    /// means the plan no longer fails (the repro is stale). This backs
    /// `acr_cli shrink --replay`.
    ///
    /// # Errors
    ///
    /// Fails on an empty plan, an out-of-range latency, or a broken
    /// fault-free baseline.
    pub fn replay_fault_case(
        &mut self,
        cfg: &CampaignConfig,
        amnesic: bool,
        case_index: usize,
        faults: &[Fault],
    ) -> Result<Option<CaseFailure>, ExperimentError> {
        let machine = self.spec.machine;
        if amnesic {
            let addrmap = self.spec.addrmap;
            let scratchpad = self.spec.scratchpad;
            let (program, _) = self.instrumented_shared();
            let generations = if cfg.recovery_faults {
                cfg.generations.max(2)
            } else {
                cfg.generations.max(1)
            };
            let slices: Arc<[Slice]> = program.slices().into();
            let num_threads = program.num_threads();
            Ok(replay_case(
                &program,
                machine,
                cfg,
                case_index,
                faults,
                || {
                    AcrPolicy::new(Arc::clone(&slices), addrmap, num_threads)
                        .with_scratchpad(scratchpad)
                        .with_generations(generations)
                },
            )?)
        } else {
            Ok(replay_case(
                &self.raw,
                machine,
                cfg,
                case_index,
                faults,
                || NoOmission,
            )?)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        label: String,
        cycles: u64,
        sim: SimStats,
        mem: MemStats,
        report: Option<BerReport>,
        acr: Option<AcrStats>,
        slices: Option<SliceStats>,
    ) -> RunResult {
        let seconds = self.spec.machine.cycles_to_seconds(cycles);
        let a = acr.unwrap_or_default();
        let inputs = EnergyInputs {
            alu_ops: sim.alu_ops,
            mul_ops: sim.mul_ops,
            div_ops: sim.div_ops,
            instructions: sim.retired + sim.assocs,
            l1d_accesses: mem.l1d_accesses(),
            l2_accesses: mem.l2_hits + mem.l2_misses,
            dram_line_reads: mem.dram_line_reads,
            dram_line_writes: mem.dram_line_writes,
            coherence_messages: mem.coherence_messages,
            c2c_transfers: mem.c2c_transfers,
            log_record_writes: mem.log_record_writes,
            log_record_reads: mem.log_record_reads,
            recovery_word_writes: mem.recovery_word_writes,
            addrmap_writes: a.addrmap_writes,
            addrmap_reads: a.addrmap_reads,
            opbuf_writes: a.opbuf_writes,
            opbuf_reads: a.opbuf_reads,
            slice_alu_ops: a.slice_alu_ops,
            cycles,
            cores: self.raw.num_threads() as u32,
        };
        let energy = self.spec.energy.energy(&inputs);
        RunResult {
            label,
            cycles,
            seconds,
            edp: edp(energy.total_joules(), seconds),
            energy,
            sim,
            mem,
            report,
            acr,
            slices,
            profile: None,
            ledger: None,
            log_totals: None,
        }
    }
}

fn label_for(base: &str, errors: u32, scheme: Scheme) -> String {
    let err = if errors == 0 { "NE" } else { "E" };
    match scheme {
        Scheme::GlobalCoordinated => format!("{base}_{err}"),
        Scheme::LocalCoordinated => format!("{base}_{err},Loc"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_isa::{AluOp, ProgramBuilder, Reg};

    /// A kernel whose stores are all recomputable (short arithmetic
    /// producers) and which re-writes the same addresses every sweep, so
    /// first updates across checkpoint intervals have recomputable old
    /// values for ACR to omit.
    fn recomputable_kernel(threads: usize, iters: u64) -> Program {
        let mut b = ProgramBuilder::new(threads);
        b.set_mem_bytes(1 << 20);
        for t in 0..threads as u32 {
            let base = u64::from(t) * 131072;
            let tb = b.thread(t);
            tb.imm(Reg(10), base);
            let outer = tb.begin_loop(Reg(8), Reg(9), 12);
            let l = tb.begin_loop(Reg(1), Reg(2), iters);
            tb.alui(AluOp::Mul, Reg(3), Reg(1), 13);
            tb.alu(AluOp::Xor, Reg(3), Reg(3), Reg(8));
            tb.alui(AluOp::Mul, Reg(4), Reg(1), 8);
            tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
            tb.store(Reg(3), Reg(5), 0);
            tb.end_loop(l);
            tb.end_loop(outer);
            tb.halt();
        }
        b.build()
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::default()
            .with_cores(2)
            .with_checkpoints(5)
            .with_oracle(true)
    }

    #[test]
    fn reckpt_reduces_checkpoint_size_with_identical_result() {
        let p = recomputable_kernel(2, 300);
        let mut exp = Experiment::new(p, spec()).unwrap();
        let ckpt = exp.run_ckpt(0).unwrap();
        let reckpt = exp.run_reckpt(0).unwrap();
        assert_eq!(ckpt.label, "Ckpt_NE");
        assert_eq!(reckpt.label, "ReCkpt_NE");
        assert!(
            reckpt.checkpoint_bytes() < ckpt.checkpoint_bytes(),
            "ACR must shrink checkpoints: {} vs {}",
            reckpt.checkpoint_bytes(),
            ckpt.checkpoint_bytes()
        );
        let r = reckpt.report.as_ref().unwrap();
        assert!(r.overall_reduction_pct() > 10.0);
        // Functionally identical to the baseline (paper's premise).
        assert_eq!(
            ckpt.sim.stores, reckpt.sim.stores,
            "instrumentation must not change store counts"
        );
    }

    #[test]
    fn reckpt_with_error_recovers_via_recomputation() {
        let p = recomputable_kernel(2, 300);
        let mut exp = Experiment::new(p, spec()).unwrap();
        let reckpt_e = exp.run_reckpt(1).unwrap();
        assert_eq!(reckpt_e.label, "ReCkpt_E");
        let report = reckpt_e.report.as_ref().unwrap();
        assert_eq!(report.errors_handled, 1);
        let rec = &report.recoveries[0];
        assert!(
            rec.recomputed_values > 0,
            "recovery must exercise recomputation"
        );
        let acr = reckpt_e.acr.as_ref().unwrap();
        assert!(acr.slice_alu_ops > 0);
        assert_eq!(acr.recomputed_values, rec.recomputed_values);
    }

    #[test]
    fn fault_campaign_recovers_and_recomputes() {
        let p = recomputable_kernel(2, 200);
        let mut exp = Experiment::new(p, spec()).unwrap();
        let cfg = CampaignConfig {
            seed: 5,
            count: 12,
            num_checkpoints: 5,
            ..CampaignConfig::default()
        };
        let acr = exp.run_fault_campaign(&cfg, true).unwrap();
        assert_eq!(acr.label, "Inject_ReCkpt");
        assert_eq!(acr.report.recovered(), 12, "{}", acr.report.summary());
        assert!(
            acr.report.recomputed_values() > 0,
            "amnesic recovery must exercise Slice re-execution"
        );
        assert!(acr.recovery_energy_joules > 0.0);
        // The non-amnesic baseline converges on the same plan.
        let base = exp.run_fault_campaign(&cfg, false).unwrap();
        assert_eq!(base.label, "Inject_Ckpt");
        assert_eq!(base.report.recovered(), 12, "{}", base.report.summary());
        assert_eq!(base.report.recomputed_values(), 0);
    }

    #[test]
    fn reckpt_survives_corrupt_replay_by_retrying_and_degrading() {
        use acr_sim::{RecoveryFault, RecoveryFaultKind};
        let p = recomputable_kernel(2, 300);
        let s = spec().with_resilience(ResilienceConfig {
            generations: 2,
            recovery_faults: vec![RecoveryFault {
                at_recovery: 0,
                kind: RecoveryFaultKind::ReplayInput { bit: 5 },
            }],
            ..ResilienceConfig::default()
        });
        let mut exp = Experiment::new(p.clone(), s).unwrap();
        let r = exp.run_reckpt(1).unwrap();
        let report = r.report.as_ref().unwrap();
        assert_eq!(report.errors_handled, 1);
        assert!(
            report.replay_retries >= 1,
            "a corrupt Slice replay must be caught by the omitted-record \
             checksum and retried"
        );
        assert_eq!(
            report.degraded_entries, 1,
            "untrustworthy replay must open a degraded full-logging window"
        );
        assert_eq!(report.divergent_words, 0);
        // The degraded window closes at the next clean commit and the run
        // converges to the same final state as an unfaulted recovery.
        let clean = Experiment::new(p, spec()).unwrap().run_reckpt(1).unwrap();
        assert_eq!(r.sim.retired, clean.sim.retired);
    }

    #[test]
    fn acr_campaign_survives_nested_recovery_faults() {
        let p = recomputable_kernel(2, 200);
        let mut exp = Experiment::new(p, spec()).unwrap();
        let cfg = CampaignConfig {
            seed: 9,
            count: 10,
            num_checkpoints: 5,
            recovery_faults: true,
            ..CampaignConfig::default()
        };
        let run = exp.run_fault_campaign(&cfg, true).unwrap();
        let r = &run.report;
        assert!(r.has_recovery_faults());
        assert_eq!(r.recovered(), 10, "{}", r.summary());
        assert_eq!(r.divergent_words(), 0);
        assert!(
            r.replay_retries() + r.generation_fallbacks() > 0,
            "{}",
            r.summary()
        );
        // Escalation work is charged, so recovery costs energy beyond the
        // clean-campaign floor.
        assert!(run.recovery_energy_joules > 0.0);
    }

    #[test]
    fn overhead_ordering_matches_paper() {
        // No_Ckpt <= ReCkpt_NE <= Ckpt_NE in time, and the E variants cost
        // more than their NE counterparts.
        let p = recomputable_kernel(2, 300);
        let mut exp = Experiment::new(p, spec()).unwrap();
        let no = exp.run_no_ckpt().unwrap();
        let ckpt_ne = exp.run_ckpt(0).unwrap();
        let reckpt_ne = exp.run_reckpt(0).unwrap();
        let ckpt_e = exp.run_ckpt(1).unwrap();
        assert!(no.cycles < reckpt_ne.cycles);
        assert!(reckpt_ne.cycles <= ckpt_ne.cycles);
        assert!(ckpt_ne.cycles < ckpt_e.cycles);
        assert!(ckpt_ne.time_overhead_pct(&no) > 0.0);
        assert!(reckpt_ne.edp_reduction_pct(&ckpt_ne) >= 0.0);
    }

    #[test]
    fn local_scheme_labels_and_runs() {
        let p = recomputable_kernel(4, 150);
        let s = spec().with_cores(4).with_scheme(Scheme::LocalCoordinated);
        let mut exp = Experiment::new(p, s).unwrap();
        let r = exp.run_ckpt(0).unwrap();
        assert_eq!(r.label, "Ckpt_NE,Loc");
        let r = exp.run_reckpt(1).unwrap();
        assert_eq!(r.label, "ReCkpt_E,Loc");
        assert_eq!(r.report.as_ref().unwrap().errors_handled, 1);
    }

    #[test]
    fn threshold_change_reinstruments() {
        let p = recomputable_kernel(1, 100);
        let mut exp = Experiment::new(p, spec().with_cores(1)).unwrap();
        let (_, s10) = exp.instrumented();
        let sliced_10 = s10.sliced_stores;
        let mut new_spec = exp.spec().clone();
        new_spec.slicer.threshold = 1;
        exp.set_spec(new_spec);
        let (_, s1) = exp.instrumented();
        assert!(s1.sliced_stores <= sliced_10);
    }

    #[test]
    fn profiled_run_is_cycle_identical_and_ledger_conserves_decisions() {
        use acr_ckpt::OmitReason;
        let p = recomputable_kernel(2, 300);
        let base = Experiment::new(p.clone(), spec())
            .unwrap()
            .run_reckpt(1)
            .unwrap();
        let mut exp = Experiment::new(p, spec().with_profile(true)).unwrap();
        let r = exp.run_reckpt(1).unwrap();
        // Observation must not perturb the run.
        assert_eq!(r.cycles, base.cycles, "profiling must not change timing");
        assert_eq!(r.checkpoint_bytes(), base.checkpoint_bytes());
        assert_eq!(r.sim.retired, base.sim.retired);
        // Conservation: every first-update decision appears in the ledger
        // under exactly one reason, and the per-reason split matches the
        // log controller's lifetime word totals.
        let ledger = r.ledger.as_ref().expect("profiled run carries ledger");
        let (logged, omitted) = r.log_totals.expect("profiled run carries totals");
        assert_eq!(ledger.total_omitted(), omitted);
        assert_eq!(ledger.total_logged(), logged);
        assert_eq!(ledger.total_decisions(), logged + omitted);
        let by_reason: u64 = OmitReason::ALL.iter().map(|r| ledger.total(*r)).sum();
        assert_eq!(by_reason, ledger.total_decisions());
        assert!(ledger.total(OmitReason::OmittedSlice) > 0);
        // Replay costs were attributed to Slices during the recovery.
        assert!(ledger.replays().next().is_some(), "error run must replay");
        // The per-PC profile is populated and internally consistent.
        let prof = r.profile.as_ref().expect("profiled run carries profile");
        assert!(prof.total_retires() > 0);
        assert_eq!(prof.tick_histogram().count(), prof.total_retires());
        assert!(prof.total_ticks() >= prof.total_retires());
    }

    #[test]
    fn energy_and_edp_populated() {
        let p = recomputable_kernel(1, 100);
        let mut exp = Experiment::new(p, spec().with_cores(1)).unwrap();
        let r = exp.run_ckpt(0).unwrap();
        assert!(r.energy.total_joules() > 0.0);
        assert!(r.edp > 0.0);
        assert!(r.seconds > 0.0);
    }
}
