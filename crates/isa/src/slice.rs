//! Recomputation Slices.
//!
//! A *Slice* (Section II-B of the paper) is a backward slice of pure
//! arithmetic/logic instructions that regenerates one stored data value. By
//! construction a Slice contains **no loads, stores or branches**: every
//! value that the original backward slice obtained from memory (or that was
//! live into the store's basic block) becomes an *input operand*, captured in
//! a small operand buffer at `ASSOC-ADDR` time and replayed at recomputation
//! time (Fig. 3(d) of the paper).

use std::fmt;

use crate::instr::AluOp;

/// Maximum number of input operands a Slice may take.
///
/// The paper argues a "small buffer would be sufficient" for Slice inputs;
/// we bound inputs so each `AddrMap` record has a fixed small footprint.
pub const MAX_SLICE_INPUTS: usize = 8;

/// Input operand values captured into the operand buffer at `ASSOC-ADDR`
/// time, in Slice input order.
///
/// Fixed-capacity so events and `AddrMap` records carrying captured inputs
/// stay `Copy` and allocation-free on the per-store hot path; at most
/// [`MAX_SLICE_INPUTS`] values. Unused slots are zero-filled so the derived
/// `PartialEq`/`Hash` only depend on the captured prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct InputVals {
    vals: [u64; MAX_SLICE_INPUTS],
    len: u8,
}

impl InputVals {
    /// Builds the capture buffer from a slice of values.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SLICE_INPUTS`] values are given; the slicer
    /// rejects such Slices before they reach any capture site.
    pub fn new(vals: &[u64]) -> Self {
        assert!(
            vals.len() <= MAX_SLICE_INPUTS,
            "at most {MAX_SLICE_INPUTS} slice inputs"
        );
        let mut out = InputVals::default();
        out.vals[..vals.len()].copy_from_slice(vals);
        out.len = vals.len() as u8;
        out
    }

    /// Appends one captured value.
    ///
    /// # Panics
    ///
    /// Panics if the buffer already holds [`MAX_SLICE_INPUTS`] values.
    #[inline]
    pub fn push(&mut self, v: u64) {
        assert!(
            (self.len as usize) < MAX_SLICE_INPUTS,
            "at most {MAX_SLICE_INPUTS} slice inputs"
        );
        self.vals[self.len as usize] = v;
        self.len += 1;
    }

    /// Number of captured values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if no values are captured.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The captured values, in Slice input order.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.vals[..self.len as usize]
    }
}

impl From<&[u64]> for InputVals {
    fn from(vals: &[u64]) -> Self {
        InputVals::new(vals)
    }
}

/// Identifier of a Slice in a program's embedded Slice table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SliceId(pub u32);

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice#{}", self.0)
    }
}

/// An operand of a [`SliceInstr`]: either a captured input, the result of an
/// earlier Slice instruction (a slice-local virtual register), or an
/// immediate baked into the Slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SliceOperand {
    /// The `k`-th captured input operand.
    Input(u8),
    /// The result of the `k`-th instruction of this Slice.
    Temp(u16),
    /// An immediate constant.
    Imm(u64),
}

/// One arithmetic instruction inside a Slice. Its result becomes
/// `Temp(index)` where `index` is its position in [`Slice::instrs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SliceInstr {
    /// The ALU operation.
    pub op: AluOp,
    /// Left operand.
    pub a: SliceOperand,
    /// Right operand.
    pub b: SliceOperand,
}

/// A memory-free backward slice regenerating a single stored value.
///
/// The value produced by the *last* instruction is the recomputed data value.
/// A Slice with an empty instruction list is not representable on purpose:
/// such a "slice" would merely buffer the stored value itself, which is
/// equivalent to checkpointing it (see `DESIGN.md`, ablation
/// `ablation_trivial_slices`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Slice {
    /// The arithmetic instructions, in dependence order.
    pub instrs: Vec<SliceInstr>,
    /// Number of captured input operands (≤ [`MAX_SLICE_INPUTS`]).
    pub num_inputs: u8,
}

/// Errors from [`Slice::validate`] and [`Slice::execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceError {
    /// The Slice has no instructions.
    Empty,
    /// The Slice declares more inputs than [`MAX_SLICE_INPUTS`].
    TooManyInputs(u8),
    /// An operand references input `k` but only `num_inputs` are declared.
    UndeclaredInput(u8),
    /// An operand references the result of instruction `k` at or after its
    /// own position (Slices are in dependence order).
    ForwardTemp(u16),
    /// `execute` was called with the wrong number of input values.
    InputArity {
        /// Number of inputs the Slice declares.
        expected: u8,
        /// Number of values supplied.
        got: usize,
    },
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::Empty => write!(f, "slice contains no instructions"),
            SliceError::TooManyInputs(n) => {
                write!(f, "slice declares {n} inputs, max is {MAX_SLICE_INPUTS}")
            }
            SliceError::UndeclaredInput(k) => write!(f, "operand references undeclared input {k}"),
            SliceError::ForwardTemp(k) => {
                write!(f, "operand references temp {k} not yet computed")
            }
            SliceError::InputArity { expected, got } => {
                write!(f, "slice expects {expected} input values, got {got}")
            }
        }
    }
}

impl std::error::Error for SliceError {}

impl Slice {
    /// Creates a Slice, validating its structure.
    ///
    /// # Errors
    ///
    /// Returns a [`SliceError`] if the slice is empty, declares too many
    /// inputs, or references undeclared inputs / forward temps.
    pub fn new(instrs: Vec<SliceInstr>, num_inputs: u8) -> Result<Self, SliceError> {
        let s = Slice { instrs, num_inputs };
        s.validate()?;
        Ok(s)
    }

    /// Number of instructions — the "Slice length" the paper's threshold
    /// parameter caps (Section V-D1).
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the Slice has no instructions (never true for a
    /// validated Slice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Checks the structural invariants described on [`Slice`].
    ///
    /// # Errors
    ///
    /// See [`SliceError`].
    pub fn validate(&self) -> Result<(), SliceError> {
        if self.instrs.is_empty() {
            return Err(SliceError::Empty);
        }
        if self.num_inputs as usize > MAX_SLICE_INPUTS {
            return Err(SliceError::TooManyInputs(self.num_inputs));
        }
        for (i, instr) in self.instrs.iter().enumerate() {
            for operand in [instr.a, instr.b] {
                match operand {
                    SliceOperand::Input(k) => {
                        if k >= self.num_inputs {
                            return Err(SliceError::UndeclaredInput(k));
                        }
                    }
                    SliceOperand::Temp(k) => {
                        if k as usize >= i {
                            return Err(SliceError::ForwardTemp(k));
                        }
                    }
                    SliceOperand::Imm(_) => {}
                }
            }
        }
        Ok(())
    }

    /// Executes the Slice over captured input values and returns the
    /// recomputed data value.
    ///
    /// This is the functional core of ACR's recovery-time recomputation;
    /// its timing/energy cost is charged by the `acr` crate's policy.
    ///
    /// ```
    /// use acr_isa::{AluOp, Slice, SliceInstr, SliceOperand};
    ///
    /// // (input0 + input1) * 3
    /// let slice = Slice::new(
    ///     vec![
    ///         SliceInstr { op: AluOp::Add, a: SliceOperand::Input(0), b: SliceOperand::Input(1) },
    ///         SliceInstr { op: AluOp::Mul, a: SliceOperand::Temp(0), b: SliceOperand::Imm(3) },
    ///     ],
    ///     2,
    /// )?;
    /// assert_eq!(slice.execute(&[4, 6])?, 30);
    /// # Ok::<(), acr_isa::SliceError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SliceError::InputArity`] if `inputs.len()` differs from the
    /// declared input count.
    pub fn execute(&self, inputs: &[u64]) -> Result<u64, SliceError> {
        if inputs.len() != self.num_inputs as usize {
            return Err(SliceError::InputArity {
                expected: self.num_inputs,
                got: inputs.len(),
            });
        }
        let mut temps = Vec::with_capacity(self.instrs.len());
        for instr in &self.instrs {
            let a = Self::read(instr.a, inputs, &temps);
            let b = Self::read(instr.b, inputs, &temps);
            temps.push(instr.op.apply(a, b));
        }
        Ok(*temps.last().expect("validated slice is non-empty"))
    }

    #[inline]
    fn read(op: SliceOperand, inputs: &[u64], temps: &[u64]) -> u64 {
        match op {
            SliceOperand::Input(k) => inputs[k as usize],
            SliceOperand::Temp(k) => temps[k as usize],
            SliceOperand::Imm(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Slice {
        // input0 + 1 + 1 + ... (n adds)
        let mut instrs = vec![SliceInstr {
            op: AluOp::Add,
            a: SliceOperand::Input(0),
            b: SliceOperand::Imm(1),
        }];
        for i in 1..n {
            instrs.push(SliceInstr {
                op: AluOp::Add,
                a: SliceOperand::Temp((i - 1) as u16),
                b: SliceOperand::Imm(1),
            });
        }
        Slice::new(instrs, 1).unwrap()
    }

    #[test]
    fn executes_dependence_chain() {
        let s = chain(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.execute(&[10]).unwrap(), 15);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Slice::new(vec![], 0), Err(SliceError::Empty));
    }

    #[test]
    fn rejects_undeclared_input() {
        let r = Slice::new(
            vec![SliceInstr {
                op: AluOp::Add,
                a: SliceOperand::Input(2),
                b: SliceOperand::Imm(0),
            }],
            1,
        );
        assert_eq!(r, Err(SliceError::UndeclaredInput(2)));
    }

    #[test]
    fn rejects_forward_temp() {
        let r = Slice::new(
            vec![SliceInstr {
                op: AluOp::Add,
                a: SliceOperand::Temp(0),
                b: SliceOperand::Imm(0),
            }],
            0,
        );
        assert_eq!(r, Err(SliceError::ForwardTemp(0)));
    }

    #[test]
    fn rejects_too_many_inputs() {
        let r = Slice::new(
            vec![SliceInstr {
                op: AluOp::Add,
                a: SliceOperand::Imm(1),
                b: SliceOperand::Imm(2),
            }],
            (MAX_SLICE_INPUTS + 1) as u8,
        );
        assert!(matches!(r, Err(SliceError::TooManyInputs(_))));
    }

    #[test]
    fn input_arity_checked() {
        let s = chain(1);
        assert!(matches!(
            s.execute(&[]),
            Err(SliceError::InputArity {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn mixed_operands() {
        // (in0 * in1) ^ (in0 >> 3)
        let s = Slice::new(
            vec![
                SliceInstr {
                    op: AluOp::Mul,
                    a: SliceOperand::Input(0),
                    b: SliceOperand::Input(1),
                },
                SliceInstr {
                    op: AluOp::Shr,
                    a: SliceOperand::Input(0),
                    b: SliceOperand::Imm(3),
                },
                SliceInstr {
                    op: AluOp::Xor,
                    a: SliceOperand::Temp(0),
                    b: SliceOperand::Temp(1),
                },
            ],
            2,
        )
        .unwrap();
        let v = s.execute(&[100, 7]).unwrap();
        assert_eq!(v, (100u64 * 7) ^ (100u64 >> 3));
    }
}
