//! # acr-isa — instruction set, programs and reference semantics
//!
//! The ACR paper evaluates on x86 binaries instrumented with Pin. This
//! reproduction instead defines a small register-machine ISA that the
//! workload generators target, the slicing compiler pass analyses, and the
//! multicore simulator executes. The ISA is deliberately minimal but
//! complete enough to express the NAS-like kernels the paper evaluates:
//!
//! * 32 general-purpose 64-bit registers per hardware thread,
//! * arithmetic/logic operations ([`AluOp`]),
//! * loads and stores with base+displacement addressing,
//! * conditional branches and unconditional jumps,
//! * the paper's `ASSOC-ADDR` instruction ([`Instr::AssocAddr`]), which
//!   associates the effective address of the immediately preceding store
//!   with a recomputation [`Slice`] embedded in the binary,
//! * `Barrier` for the coordinated checkpointing schemes, and `Halt`.
//!
//! A [`Program`] couples per-thread instruction streams with the embedded
//! Slice table produced by the compiler pass (`acr-slicer`). The
//! [`interp`] module provides a pure functional reference interpreter used
//! as the correctness oracle for the timing simulator.
//!
//! ```
//! use acr_isa::{ProgramBuilder, Reg, AluOp};
//!
//! let mut b = ProgramBuilder::new(1);
//! let t = b.thread(0);
//! t.imm(Reg(1), 21);
//! t.alu(AluOp::Add, Reg(2), Reg(1), Reg(1));
//! t.store(Reg(2), Reg(0), 0x100);
//! t.halt();
//! let program = b.build();
//! assert_eq!(program.thread(0).len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod builder;
mod instr;
pub mod interp;
mod program;
mod slice;

pub use builder::{LoopHandle, ProgramBuilder, ThreadBuilder};
pub use instr::{AluOp, BranchCond, InputRegs, Instr, Reg};
pub use program::{InstructionMix, Program, ProgramError, ThreadCode, ThreadId};
pub use slice::{
    InputVals, Slice, SliceError, SliceId, SliceInstr, SliceOperand, MAX_SLICE_INPUTS,
};

/// Size of a machine word in bytes. All memory accesses are word-sized and
/// word-aligned; this matches the 8-byte log-record granularity discussed in
/// `DESIGN.md`.
pub const WORD_BYTES: u64 = 8;

/// Number of architectural general-purpose registers per hardware thread.
pub const NUM_REGS: usize = 32;
