//! Programs: per-thread instruction streams plus the embedded Slice table.

use std::fmt;

use crate::instr::Instr;
use crate::slice::{Slice, SliceId};

/// Identifier of a hardware thread (== core in this study: the paper pins
/// one thread per core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// Thread id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The instruction stream of one thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadCode {
    instrs: Vec<Instr>,
}

impl ThreadCode {
    /// Creates thread code from raw instructions.
    pub fn new(instrs: Vec<Instr>) -> Self {
        ThreadCode { instrs }
    }

    /// Number of static instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the stream is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Fetches the instruction at `pc`, if in bounds.
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<&Instr> {
        self.instrs.get(pc as usize)
    }

    /// All instructions, for analysis passes.
    #[inline]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Mutable access for instrumentation passes (`acr-slicer`).
    #[inline]
    pub fn instrs_mut(&mut self) -> &mut Vec<Instr> {
        &mut self.instrs
    }
}

/// A complete multithreaded program: one instruction stream per thread and
/// the Slice table the compiler pass embedded into the "binary".
///
/// The Slice table is program-global (Slices are identified by [`SliceId`]);
/// Slices are confined to thread-local data per Section III-A, which the
/// slicer guarantees by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    threads: Vec<ThreadCode>,
    slices: Vec<Slice>,
    /// Size of the data memory image in bytes the program expects.
    mem_bytes: u64,
    /// Per-thread label regions: `(start_pc, label)` pairs sorted by start
    /// PC. A region covers every PC from its start up to (not including)
    /// the next region's start. Purely observational metadata — attribution
    /// exporters map PCs back to workload phases through it; execution
    /// never reads it. May be shorter than `threads` (unlabeled tail).
    labels: Vec<Vec<(u32, String)>>,
}

/// Static instruction mix of a program (see
/// [`Program::instruction_mix`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstructionMix {
    /// Arithmetic/logic/immediate instructions.
    pub arith: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Branches and jumps.
    pub branches: u64,
    /// `ASSOC-ADDR` instructions (instrumented binaries only).
    pub assocs: u64,
    /// Barriers.
    pub barriers: u64,
    /// Halts.
    pub halts: u64,
}

impl InstructionMix {
    /// Total static instructions.
    pub fn total(&self) -> u64 {
        self.arith
            + self.loads
            + self.stores
            + self.branches
            + self.assocs
            + self.barriers
            + self.halts
    }

    /// Stores as a fraction of the total (the density ACR's bookkeeping
    /// scales with).
    pub fn store_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.stores as f64 / self.total() as f64
        }
    }
}

/// Errors produced by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch or jump targets an out-of-range instruction index.
    BadTarget {
        /// Offending thread.
        thread: ThreadId,
        /// Instruction index of the branch/jump.
        pc: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// An `ASSOC-ADDR` references a Slice id missing from the table.
    UnknownSlice {
        /// Offending thread.
        thread: ThreadId,
        /// Instruction index of the `ASSOC-ADDR`.
        pc: u32,
        /// The unknown id.
        slice: SliceId,
    },
    /// An `ASSOC-ADDR` is not immediately preceded by a store.
    OrphanAssoc {
        /// Offending thread.
        thread: ThreadId,
        /// Instruction index of the `ASSOC-ADDR`.
        pc: u32,
    },
    /// An `ASSOC-ADDR` captures a different number of registers than its
    /// Slice declares inputs.
    InputArity {
        /// Offending thread.
        thread: ThreadId,
        /// Instruction index of the `ASSOC-ADDR`.
        pc: u32,
        /// Inputs the Slice declares.
        expected: u8,
        /// Registers the instruction captures.
        got: u8,
    },
    /// A thread's stream does not end with `Halt` (or is empty).
    MissingHalt {
        /// Offending thread.
        thread: ThreadId,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BadTarget { thread, pc, target } => {
                write!(f, "{thread}@{pc}: branch target {target} out of range")
            }
            ProgramError::UnknownSlice { thread, pc, slice } => {
                write!(f, "{thread}@{pc}: {slice} not in slice table")
            }
            ProgramError::OrphanAssoc { thread, pc } => {
                write!(f, "{thread}@{pc}: assoc-addr not preceded by a store")
            }
            ProgramError::InputArity {
                thread,
                pc,
                expected,
                got,
            } => write!(
                f,
                "{thread}@{pc}: assoc-addr captures {got} registers, slice expects {expected}"
            ),
            ProgramError::MissingHalt { thread } => {
                write!(f, "{thread}: instruction stream does not end with halt")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Assembles a program from parts.
    pub fn new(threads: Vec<ThreadCode>, slices: Vec<Slice>, mem_bytes: u64) -> Self {
        Program {
            threads,
            slices,
            mem_bytes,
            labels: Vec::new(),
        }
    }

    /// Installs the label regions of thread `t` as `(start_pc, label)`
    /// pairs; they are kept sorted by start PC so [`Program::label_at`]
    /// can binary-search. Replaces any previous regions for the thread.
    pub fn set_thread_labels(&mut self, t: u32, mut regions: Vec<(u32, String)>) {
        regions.sort_by_key(|(start, _)| *start);
        let idx = t as usize;
        if self.labels.len() <= idx {
            self.labels.resize_with(idx + 1, Vec::new);
        }
        self.labels[idx] = regions;
    }

    /// The label regions of thread `t` (empty when unlabeled).
    pub fn thread_labels(&self, t: u32) -> &[(u32, String)] {
        self.labels
            .get(t as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The label covering `pc` on thread `t`: the region with the largest
    /// start PC that is `<= pc`. `None` when the thread has no regions or
    /// `pc` precedes the first one.
    pub fn label_at(&self, t: u32, pc: u32) -> Option<&str> {
        let regions = self.thread_labels(t);
        let idx = regions.partition_point(|(start, _)| *start <= pc);
        idx.checked_sub(1).map(|i| regions[i].1.as_str())
    }

    /// Number of threads.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The instruction stream of thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[inline]
    pub fn thread(&self, t: u32) -> &ThreadCode {
        &self.threads[t as usize]
    }

    /// Mutable thread access for instrumentation passes.
    #[inline]
    pub fn thread_mut(&mut self, t: u32) -> &mut ThreadCode {
        &mut self.threads[t as usize]
    }

    /// All thread streams.
    #[inline]
    pub fn threads(&self) -> &[ThreadCode] {
        &self.threads
    }

    /// The embedded Slice table.
    #[inline]
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// Looks up a Slice by id.
    #[inline]
    pub fn slice(&self, id: SliceId) -> Option<&Slice> {
        self.slices.get(id.0 as usize)
    }

    /// Appends a Slice to the table, returning its id. Used by the slicer.
    pub fn push_slice(&mut self, slice: Slice) -> SliceId {
        let id = SliceId(self.slices.len() as u32);
        self.slices.push(slice);
        id
    }

    /// Replaces the entire slice table (used when re-instrumenting at a
    /// different threshold).
    pub fn set_slices(&mut self, slices: Vec<Slice>) {
        self.slices = slices;
    }

    /// Size of the data memory image the program expects, in bytes.
    #[inline]
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Total static instruction count across threads (the "binary size" the
    /// paper's footnote 4 bounds: embedded slices stay < 2 % for `is`).
    pub fn static_len(&self) -> usize {
        self.threads.iter().map(ThreadCode::len).sum()
    }

    /// Total instructions across all embedded Slices.
    pub fn slice_table_len(&self) -> usize {
        self.slices.iter().map(Slice::len).sum()
    }

    /// Static instruction mix across all threads.
    pub fn instruction_mix(&self) -> InstructionMix {
        let mut mix = InstructionMix::default();
        for code in &self.threads {
            for i in code.instrs() {
                match i {
                    Instr::Imm { .. } | Instr::Alu { .. } | Instr::AluI { .. } => {
                        mix.arith += 1;
                    }
                    Instr::Load { .. } => mix.loads += 1,
                    Instr::Store { .. } => mix.stores += 1,
                    Instr::Branch { .. } | Instr::Jump { .. } => mix.branches += 1,
                    Instr::AssocAddr { .. } => mix.assocs += 1,
                    Instr::Barrier => mix.barriers += 1,
                    Instr::Halt => mix.halts += 1,
                }
            }
        }
        mix
    }

    /// Structural validation: branch targets in range, `ASSOC-ADDR` adjacency
    /// and slice-table references, `Halt` termination, valid slices.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        for (ti, code) in self.threads.iter().enumerate() {
            let thread = ThreadId(ti as u32);
            let n = code.len() as u32;
            match code.instrs().last() {
                Some(Instr::Halt) => {}
                _ => return Err(ProgramError::MissingHalt { thread }),
            }
            for (pc, instr) in code.instrs().iter().enumerate() {
                let pc = pc as u32;
                match instr {
                    Instr::Branch { target, .. } | Instr::Jump { target } if *target >= n => {
                        return Err(ProgramError::BadTarget {
                            thread,
                            pc,
                            target: *target,
                        });
                    }
                    Instr::AssocAddr { slice, inputs } => {
                        let Some(s) = self.slice(*slice) else {
                            return Err(ProgramError::UnknownSlice {
                                thread,
                                pc,
                                slice: *slice,
                            });
                        };
                        if s.num_inputs as usize != inputs.len() {
                            return Err(ProgramError::InputArity {
                                thread,
                                pc,
                                expected: s.num_inputs,
                                got: inputs.len() as u8,
                            });
                        }
                        let prev = pc.checked_sub(1).and_then(|p| code.fetch(p));
                        if !matches!(prev, Some(Instr::Store { .. })) {
                            return Err(ProgramError::OrphanAssoc { thread, pc });
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, InputRegs, Reg};
    use crate::slice::{SliceInstr, SliceOperand};

    fn one_slice() -> Slice {
        Slice::new(
            vec![SliceInstr {
                op: AluOp::Add,
                a: SliceOperand::Input(0),
                b: SliceOperand::Imm(1),
            }],
            1,
        )
        .unwrap()
    }

    #[test]
    fn validate_accepts_well_formed() {
        let code = ThreadCode::new(vec![
            Instr::Imm { rd: Reg(1), imm: 1 },
            Instr::Store {
                rs: Reg(1),
                base: Reg(0),
                disp: 0,
            },
            Instr::AssocAddr {
                slice: SliceId(0),
                inputs: InputRegs::new(&[Reg(1)]),
            },
            Instr::Halt,
        ]);
        let p = Program::new(vec![code], vec![one_slice()], 4096);
        assert!(p.validate().is_ok());
        assert_eq!(p.static_len(), 4);
        assert_eq!(p.slice_table_len(), 1);
    }

    #[test]
    fn label_regions_cover_half_open_ranges() {
        let code = ThreadCode::new(vec![Instr::Barrier, Instr::Barrier, Instr::Halt]);
        let mut p = Program::new(vec![code], vec![], 0);
        assert_eq!(p.label_at(0, 0), None, "unlabeled program");
        // Install out of order; lookup must still see sorted regions.
        p.set_thread_labels(0, vec![(2, "phase0".to_owned()), (0, "init".to_owned())]);
        assert_eq!(p.label_at(0, 0), Some("init"));
        assert_eq!(p.label_at(0, 1), Some("init"));
        assert_eq!(p.label_at(0, 2), Some("phase0"));
        assert_eq!(p.label_at(0, 99), Some("phase0"), "last region is open");
        assert_eq!(p.label_at(1, 0), None, "missing thread is unlabeled");
        assert_eq!(p.thread_labels(0).len(), 2);
    }

    #[test]
    fn instruction_mix_counts() {
        let code = ThreadCode::new(vec![
            Instr::Imm { rd: Reg(1), imm: 1 },
            Instr::Load {
                rd: Reg(2),
                base: Reg(0),
                disp: 0,
            },
            Instr::Store {
                rs: Reg(1),
                base: Reg(0),
                disp: 8,
            },
            Instr::Jump { target: 4 },
            Instr::Barrier,
            Instr::Halt,
        ]);
        let p = Program::new(vec![code], vec![], 64);
        let mix = p.instruction_mix();
        assert_eq!(mix.arith, 1);
        assert_eq!(mix.loads, 1);
        assert_eq!(mix.stores, 1);
        assert_eq!(mix.branches, 1);
        assert_eq!(mix.barriers, 1);
        assert_eq!(mix.halts, 1);
        assert_eq!(mix.total(), 6);
        assert!((mix.store_fraction() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_orphan_assoc() {
        let code = ThreadCode::new(vec![
            Instr::AssocAddr {
                slice: SliceId(0),
                inputs: InputRegs::new(&[Reg(1)]),
            },
            Instr::Halt,
        ]);
        let p = Program::new(vec![code], vec![one_slice()], 0);
        assert!(matches!(
            p.validate(),
            Err(ProgramError::OrphanAssoc { .. })
        ));
    }

    #[test]
    fn validate_rejects_unknown_slice() {
        let code = ThreadCode::new(vec![
            Instr::Store {
                rs: Reg(1),
                base: Reg(0),
                disp: 0,
            },
            Instr::AssocAddr {
                slice: SliceId(9),
                inputs: InputRegs::new(&[]),
            },
            Instr::Halt,
        ]);
        let p = Program::new(vec![code], vec![], 0);
        assert!(matches!(
            p.validate(),
            Err(ProgramError::UnknownSlice { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_target_and_missing_halt() {
        let p = Program::new(
            vec![ThreadCode::new(vec![
                Instr::Jump { target: 5 },
                Instr::Halt,
            ])],
            vec![],
            0,
        );
        assert!(matches!(p.validate(), Err(ProgramError::BadTarget { .. })));

        let p = Program::new(vec![ThreadCode::new(vec![Instr::Barrier])], vec![], 0);
        assert!(matches!(
            p.validate(),
            Err(ProgramError::MissingHalt { .. })
        ));
    }
}
