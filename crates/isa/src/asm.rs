//! A small text assembler for the ACR ISA.
//!
//! Useful for writing kernels in tests and examples without the builder
//! API, and for round-tripping programs while debugging. The syntax is
//! line-oriented:
//!
//! ```text
//! ; kernel with one thread
//! mem 8192                 ; data image size in bytes
//! thread 0
//!   imm   r1, 42
//!   addi  r2, r1, 8
//!   mul   r3, r2, r2
//!   ld    r4, [r1+0x10]
//!   st    r3, [r1+8]
//! loop:
//!   addi  r5, r5, 1
//!   blt   r5, r2, loop
//!   barrier
//!   halt
//! ```
//!
//! Mnemonics: `imm rd, k` · three-register ALU ops (`add sub mul div rem
//! and or xor shl shr min max`) · immediate forms with an `i` suffix
//! (`addi`, `muli`, …) · `ld rd, [base+disp]` · `st rs, [base+disp]` ·
//! branches `beq bne blt bge ra, rb, label` · `jmp label` · `barrier` ·
//! `halt`. Labels are `name:` on their own line or before an instruction.
//! `ASSOC-ADDR` is deliberately not expressible: associations are the
//! compiler pass's job (`acr-slicer`), not the programmer's.

use std::collections::HashMap;
use std::fmt;

use crate::instr::{AluOp, BranchCond, Instr, Reg};
use crate::program::{Program, ThreadCode};

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    let n = t
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected register, found `{t}`")))?;
    let idx: u8 = n
        .parse()
        .map_err(|_| err(line, format!("bad register `{t}`")))?;
    if usize::from(idx) >= crate::NUM_REGS {
        return Err(err(line, format!("register {t} out of range")));
    }
    Ok(Reg(idx))
}

fn parse_imm(tok: &str, line: usize) -> Result<u64, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    let (digits, radix, neg) = if let Some(h) = t.strip_prefix("0x") {
        (h, 16, false)
    } else if let Some(h) = t.strip_prefix("-") {
        (h, 10, true)
    } else {
        (t, 10, false)
    };
    let v = u64::from_str_radix(digits, radix)
        .map_err(|_| err(line, format!("bad immediate `{t}`")))?;
    Ok(if neg { v.wrapping_neg() } else { v })
}

/// Parses `[base+disp]` (disp optional, decimal or 0x-hex).
fn parse_mem_operand(tok: &str, line: usize) -> Result<(Reg, u64), AsmError> {
    let t = tok.trim().trim_end_matches(',');
    let inner = t
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [base+disp], found `{t}`")))?;
    match inner.split_once('+') {
        Some((b, d)) => Ok((parse_reg(b, line)?, parse_imm(d, line)?)),
        None => Ok((parse_reg(inner, line)?, 0)),
    }
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "min" => AluOp::Min,
        "max" => AluOp::Max,
        _ => return None,
    })
}

fn branch_cond(mnemonic: &str) -> Option<BranchCond> {
    Some(match mnemonic {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        _ => return None,
    })
}

#[derive(Debug)]
enum Pending {
    Done(Instr),
    Branch {
        cond: BranchCond,
        ra: Reg,
        rb: Reg,
        label: String,
        line: usize,
    },
    Jump {
        label: String,
        line: usize,
    },
}

/// Assembles a program from source text. See the [module docs](self) for
/// the syntax.
///
/// ```
/// let program = acr_isa::asm::assemble(
///     "mem 4096\n\
///      thread 0\n\
///        imm r1, 21\n\
///        add r2, r1, r1\n\
///        st r2, [r0+64]\n\
///        halt",
/// )?;
/// let mut interp = acr_isa::interp::Interp::new(&program);
/// interp.run_to_completion(100)?;
/// assert_eq!(interp.mem_word(64), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered (unknown mnemonic, bad
/// operand, duplicate/undefined label, missing `thread` header…).
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut mem_bytes: u64 = 0;
    let mut threads: Vec<Vec<Pending>> = Vec::new();
    let mut labels: Vec<HashMap<String, u32>> = Vec::new();
    let mut current: Option<usize> = None;

    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let mut line = raw;
        if let Some(p) = line.find(';') {
            line = &line[..p];
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }

        // Labels (possibly followed by an instruction on the same line).
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            if head.contains(char::is_whitespace) {
                break; // not a label, e.g. an operand list
            }
            let t = current.ok_or_else(|| err(line_no, "label outside a thread"))?;
            let pc = threads[t].len() as u32;
            if labels[t].insert(head.to_owned(), pc).is_some() {
                return Err(err(line_no, format!("duplicate label `{head}`")));
            }
            rest = tail[1..].trim();
            if rest.is_empty() {
                break;
            }
        }
        if rest.is_empty() {
            continue;
        }

        let mut toks = rest.split_whitespace();
        let mnemonic = toks.next().expect("non-empty line");
        let args: Vec<&str> = toks.collect();
        let need = |n: usize| -> Result<(), AsmError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!("`{mnemonic}` expects {n} operands, found {}", args.len()),
                ))
            }
        };

        match mnemonic {
            "mem" => {
                need(1)?;
                mem_bytes = parse_imm(args[0], line_no)?;
                continue;
            }
            "thread" => {
                need(1)?;
                let idx = parse_imm(args[0], line_no)? as usize;
                while threads.len() <= idx {
                    threads.push(Vec::new());
                    labels.push(HashMap::new());
                }
                current = Some(idx);
                continue;
            }
            _ => {}
        }

        let t = current.ok_or_else(|| err(line_no, "instruction outside a thread"))?;
        let instr = match mnemonic {
            "imm" => {
                need(2)?;
                Pending::Done(Instr::Imm {
                    rd: parse_reg(args[0], line_no)?,
                    imm: parse_imm(args[1], line_no)?,
                })
            }
            "ld" => {
                need(2)?;
                let (base, disp) = parse_mem_operand(args[1], line_no)?;
                Pending::Done(Instr::Load {
                    rd: parse_reg(args[0], line_no)?,
                    base,
                    disp,
                })
            }
            "st" => {
                need(2)?;
                let (base, disp) = parse_mem_operand(args[1], line_no)?;
                Pending::Done(Instr::Store {
                    rs: parse_reg(args[0], line_no)?,
                    base,
                    disp,
                })
            }
            "jmp" => {
                need(1)?;
                Pending::Jump {
                    label: args[0].to_owned(),
                    line: line_no,
                }
            }
            "barrier" => {
                need(0)?;
                Pending::Done(Instr::Barrier)
            }
            "halt" => {
                need(0)?;
                Pending::Done(Instr::Halt)
            }
            m => {
                if let Some(cond) = branch_cond(m) {
                    need(3)?;
                    Pending::Branch {
                        cond,
                        ra: parse_reg(args[0], line_no)?,
                        rb: parse_reg(args[1], line_no)?,
                        label: args[2].to_owned(),
                        line: line_no,
                    }
                } else if let Some(op) = m.strip_suffix('i').and_then(alu_op) {
                    need(3)?;
                    Pending::Done(Instr::AluI {
                        op,
                        rd: parse_reg(args[0], line_no)?,
                        ra: parse_reg(args[1], line_no)?,
                        imm: parse_imm(args[2], line_no)?,
                    })
                } else if let Some(op) = alu_op(m) {
                    need(3)?;
                    Pending::Done(Instr::Alu {
                        op,
                        rd: parse_reg(args[0], line_no)?,
                        ra: parse_reg(args[1], line_no)?,
                        rb: parse_reg(args[2], line_no)?,
                    })
                } else {
                    return Err(err(line_no, format!("unknown mnemonic `{m}`")));
                }
            }
        };
        threads[t].push(instr);
    }

    // Resolve labels.
    let mut codes = Vec::with_capacity(threads.len());
    for (t, pendings) in threads.into_iter().enumerate() {
        let resolve = |label: &str, line: usize| -> Result<u32, AsmError> {
            labels[t]
                .get(label)
                .copied()
                .ok_or_else(|| err(line, format!("undefined label `{label}`")))
        };
        let mut instrs = Vec::with_capacity(pendings.len());
        for p in pendings {
            instrs.push(match p {
                Pending::Done(i) => i,
                Pending::Branch {
                    cond,
                    ra,
                    rb,
                    label,
                    line,
                } => Instr::Branch {
                    cond,
                    ra,
                    rb,
                    target: resolve(&label, line)?,
                },
                Pending::Jump { label, line } => Instr::Jump {
                    target: resolve(&label, line)?,
                },
            });
        }
        codes.push(ThreadCode::new(instrs));
    }
    Ok(Program::new(codes, Vec::new(), mem_bytes))
}

/// Disassembles a program back to (approximately) the assembler syntax —
/// labels are synthesized as `L<pc>` at branch targets. `ASSOC-ADDR`
/// instructions (from instrumented binaries) render as comments since
/// the assembler cannot express them.
pub fn disassemble(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "mem {}", program.mem_bytes());
    for (t, code) in program.threads().iter().enumerate() {
        let _ = writeln!(out, "thread {t}");
        let mut is_target = vec![false; code.len()];
        for instr in code.instrs() {
            if let Instr::Branch { target, .. } | Instr::Jump { target } = instr {
                if (*target as usize) < is_target.len() {
                    is_target[*target as usize] = true;
                }
            }
        }
        for (pc, instr) in code.instrs().iter().enumerate() {
            if is_target[pc] {
                let _ = writeln!(out, "L{pc}:");
            }
            let line = match instr {
                Instr::Imm { rd, imm } => format!("imm {rd}, {imm:#x}"),
                Instr::Alu { op, rd, ra, rb } => format!("{op} {rd}, {ra}, {rb}"),
                Instr::AluI { op, rd, ra, imm } => format!("{op}i {rd}, {ra}, {imm:#x}"),
                Instr::Load { rd, base, disp } => format!("ld {rd}, [{base}+{disp:#x}]"),
                Instr::Store { rs, base, disp } => format!("st {rs}, [{base}+{disp:#x}]"),
                Instr::Branch {
                    cond,
                    ra,
                    rb,
                    target,
                } => {
                    let m = match cond {
                        BranchCond::Eq => "beq",
                        BranchCond::Ne => "bne",
                        BranchCond::Lt => "blt",
                        BranchCond::Ge => "bge",
                    };
                    format!("{m} {ra}, {rb}, L{target}")
                }
                Instr::Jump { target } => format!("jmp L{target}"),
                Instr::AssocAddr { slice, .. } => format!("; assoc-addr {slice}"),
                Instr::Barrier => "barrier".to_owned(),
                Instr::Halt => "halt".to_owned(),
            };
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    const KERNEL: &str = r"
        ; sum 0..9 into mem[64]
        mem 4096
        thread 0
          imm r1, 0
          imm r2, 10
          imm r5, 0
        loop:
          bge r1, r2, done
          add r5, r5, r1
          addi r1, r1, 1
          jmp loop
        done:
          st r5, [r0+64]
          halt
    ";

    #[test]
    fn assembles_and_runs() {
        let p = assemble(KERNEL).expect("assembles");
        p.validate().expect("valid");
        let mut i = Interp::new(&p);
        i.run_to_completion(10_000).expect("runs");
        assert_eq!(i.mem_word(64), 45);
    }

    #[test]
    fn roundtrips_through_disassembler() {
        let p = assemble(KERNEL).expect("assembles");
        let text = disassemble(&p);
        let p2 = assemble(&text).expect("reassembles");
        assert_eq!(p.threads(), p2.threads());
        assert_eq!(p.mem_bytes(), p2.mem_bytes());
    }

    #[test]
    fn multithreaded_with_barrier() {
        let src = r"
            mem 4096
            thread 0
              imm r1, 7
              st r1, [r0+0]
              barrier
              halt
            thread 1
              barrier
              ld r2, [r0+0]
              st r2, [r0+8]
              halt
        ";
        let p = assemble(src).expect("assembles");
        let mut i = Interp::new(&p);
        i.run_to_completion(10_000).expect("runs");
        assert_eq!(i.mem_word(8), 7);
    }

    #[test]
    fn error_reporting() {
        let cases = [
            ("thread 0\n  bogus r1, r2", "unknown mnemonic"),
            ("thread 0\n  imm r99, 1", "out of range"),
            ("thread 0\n  jmp nowhere\n  halt", "undefined label"),
            ("  imm r1, 1", "outside a thread"),
            ("thread 0\nx:\nx:\n  halt", "duplicate label"),
            ("thread 0\n  imm r1", "expects 2 operands"),
            ("thread 0\n  ld r1, r2", "expected [base+disp]"),
        ];
        for (src, needle) in cases {
            let e = assemble(src).expect_err(src);
            assert!(
                e.to_string().contains(needle),
                "`{src}` gave `{e}`, wanted `{needle}`"
            );
        }
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("thread 0\n  imm r1, 0xff\n  addi r2, r1, -1\n  halt").unwrap();
        let mut i = Interp::new(&p);
        // mem 0 → no memory accesses allowed; arithmetic only.
        i.run_to_completion(10).unwrap();
        assert_eq!(i.reg(crate::ThreadId(0), Reg(1)), 0xff);
        assert_eq!(i.reg(crate::ThreadId(0), Reg(2)), 0xfe);
    }
}
