//! Pure functional reference interpreter.
//!
//! The interpreter executes a [`Program`] with no timing model at all. It is
//! the semantic oracle for the timing simulator in `acr-sim` (which must
//! compute the same final memory image) and for the slicer (with
//! [`Interp::verify_slices`] enabled it checks, at every `ASSOC-ADDR`, that
//! executing the associated Slice over the captured input operands
//! reproduces the value just stored).

use std::fmt;

use crate::instr::{Instr, Reg};
use crate::program::{Program, ThreadId};
use crate::{NUM_REGS, WORD_BYTES};

/// Execution errors. A well-formed workload never triggers these; they exist
/// to make generator/pass bugs loud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Memory access outside the program's declared memory image.
    OutOfBounds {
        /// Thread performing the access.
        thread: ThreadId,
        /// Faulting byte address.
        addr: u64,
    },
    /// Misaligned (non word-aligned) access.
    Misaligned {
        /// Thread performing the access.
        thread: ThreadId,
        /// Faulting byte address.
        addr: u64,
    },
    /// The step budget was exhausted before all threads halted.
    FuelExhausted,
    /// All runnable threads are blocked on a barrier that can never be
    /// released (should be impossible: halted threads count as arrived).
    BarrierDeadlock,
    /// `ASSOC-ADDR` slice verification failed (slicer bug).
    SliceMismatch {
        /// Thread executing the `ASSOC-ADDR`.
        thread: ThreadId,
        /// Program counter of the `ASSOC-ADDR`.
        pc: u32,
        /// The value the store wrote.
        stored: u64,
        /// The value the Slice recomputed.
        recomputed: u64,
    },
    /// `ASSOC-ADDR` executed without a pending store (validation should have
    /// rejected the program).
    AssocWithoutStore {
        /// Thread executing the `ASSOC-ADDR`.
        thread: ThreadId,
        /// Program counter.
        pc: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { thread, addr } => {
                write!(f, "{thread}: access at {addr:#x} out of bounds")
            }
            ExecError::Misaligned { thread, addr } => {
                write!(f, "{thread}: misaligned access at {addr:#x}")
            }
            ExecError::FuelExhausted => write!(f, "step budget exhausted"),
            ExecError::BarrierDeadlock => write!(f, "barrier deadlock"),
            ExecError::SliceMismatch {
                thread,
                pc,
                stored,
                recomputed,
            } => write!(
                f,
                "{thread}@{pc}: slice recomputed {recomputed:#x}, store wrote {stored:#x}"
            ),
            ExecError::AssocWithoutStore { thread, pc } => {
                write!(f, "{thread}@{pc}: assoc-addr without preceding store")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[derive(Debug, Clone)]
struct ThreadState {
    regs: [u64; NUM_REGS],
    pc: u32,
    halted: bool,
    at_barrier: bool,
    /// Address/value of the store executed in the previous step, consumed by
    /// a following `ASSOC-ADDR`.
    last_store: Option<(u64, u64)>,
    retired: u64,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            regs: [0; NUM_REGS],
            pc: 0,
            halted: false,
            at_barrier: false,
            last_store: None,
            retired: 0,
        }
    }
}

/// The reference interpreter. See the [module documentation](self).
#[derive(Debug, Clone)]
pub struct Interp<'p> {
    program: &'p Program,
    threads: Vec<ThreadState>,
    mem: Vec<u64>,
    verify_slices: bool,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter with zero-initialized memory and registers.
    pub fn new(program: &'p Program) -> Self {
        let words = (program.mem_bytes() / WORD_BYTES) as usize;
        Interp {
            program,
            threads: (0..program.num_threads())
                .map(|_| ThreadState::new())
                .collect(),
            mem: vec![0; words],
            verify_slices: false,
        }
    }

    /// Enables per-`ASSOC-ADDR` verification that the Slice reproduces the
    /// stored value (the slicer-correctness oracle).
    pub fn verify_slices(&mut self, on: bool) -> &mut Self {
        self.verify_slices = on;
        self
    }

    /// Reads the memory word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is misaligned or out of bounds.
    pub fn mem_word(&self, addr: u64) -> u64 {
        assert_eq!(addr % WORD_BYTES, 0, "misaligned read in test harness");
        self.mem[(addr / WORD_BYTES) as usize]
    }

    /// The full memory image, for whole-state comparison.
    pub fn mem(&self) -> &[u64] {
        &self.mem
    }

    /// Register `r` of thread `t`.
    pub fn reg(&self, t: ThreadId, r: Reg) -> u64 {
        self.threads[t.index()].regs[r.index()]
    }

    /// Dynamic (retired) instruction count per thread.
    pub fn retired(&self) -> Vec<u64> {
        self.threads.iter().map(|t| t.retired).collect()
    }

    /// Returns `true` once every thread has halted.
    pub fn all_halted(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Runs round-robin (one instruction per runnable thread per round)
    /// until all threads halt or `fuel` total instructions retire.
    ///
    /// # Errors
    ///
    /// Any [`ExecError`] encountered, including [`ExecError::FuelExhausted`].
    pub fn run_to_completion(&mut self, mut fuel: u64) -> Result<(), ExecError> {
        while !self.all_halted() {
            let mut progressed = false;
            for t in 0..self.threads.len() {
                if self.threads[t].halted || self.threads[t].at_barrier {
                    continue;
                }
                if fuel == 0 {
                    return Err(ExecError::FuelExhausted);
                }
                fuel -= 1;
                self.step(ThreadId(t as u32))?;
                progressed = true;
            }
            self.release_barrier_if_ready();
            if !progressed && !self.all_halted() && !self.barrier_released() {
                return Err(ExecError::BarrierDeadlock);
            }
        }
        Ok(())
    }

    fn barrier_released(&self) -> bool {
        self.threads.iter().any(|t| !t.halted && !t.at_barrier)
    }

    fn release_barrier_if_ready(&mut self) {
        let all_arrived = self.threads.iter().all(|t| t.halted || t.at_barrier);
        if all_arrived {
            for t in &mut self.threads {
                if t.at_barrier {
                    t.at_barrier = false;
                    t.pc += 1;
                }
            }
        }
    }

    /// Executes one instruction on thread `t`. Callers must ensure the
    /// thread is runnable (not halted, not waiting at a barrier).
    ///
    /// # Errors
    ///
    /// Any [`ExecError`] raised by the instruction.
    pub fn step(&mut self, t: ThreadId) -> Result<(), ExecError> {
        let code = self.program.thread(t.0);
        let pc = self.threads[t.index()].pc;
        let instr = *code.fetch(pc).unwrap_or(&Instr::Halt);
        let state = &mut self.threads[t.index()];
        state.retired += 1;
        // The pending-store window is exactly one instruction wide.
        let pending_store = state.last_store.take();
        match instr {
            Instr::Imm { rd, imm } => {
                state.regs[rd.index()] = imm;
                state.pc += 1;
            }
            Instr::Alu { op, rd, ra, rb } => {
                state.regs[rd.index()] = op.apply(state.regs[ra.index()], state.regs[rb.index()]);
                state.pc += 1;
            }
            Instr::AluI { op, rd, ra, imm } => {
                state.regs[rd.index()] = op.apply(state.regs[ra.index()], imm);
                state.pc += 1;
            }
            Instr::Load { rd, base, disp } => {
                let addr = state.regs[base.index()].wrapping_add(disp);
                let w = self.load_word(t, addr)?;
                self.threads[t.index()].regs[rd.index()] = w;
                self.threads[t.index()].pc += 1;
            }
            Instr::Store { rs, base, disp } => {
                let addr = state.regs[base.index()].wrapping_add(disp);
                let val = state.regs[rs.index()];
                self.store_word(t, addr, val)?;
                let st = &mut self.threads[t.index()];
                st.last_store = Some((addr, val));
                st.pc += 1;
            }
            Instr::AssocAddr { slice, inputs } => {
                let Some((_addr, stored)) = pending_store else {
                    return Err(ExecError::AssocWithoutStore { thread: t, pc });
                };
                if self.verify_slices {
                    let s = self
                        .program
                        .slice(slice)
                        .expect("validated program has the slice");
                    let vals: Vec<u64> = inputs
                        .iter()
                        .map(|r| self.threads[t.index()].regs[r.index()])
                        .collect();
                    let recomputed = s
                        .execute(&vals)
                        .expect("validated slice arity matches capture list");
                    if recomputed != stored {
                        return Err(ExecError::SliceMismatch {
                            thread: t,
                            pc,
                            stored,
                            recomputed,
                        });
                    }
                }
                self.threads[t.index()].pc += 1;
            }
            Instr::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                if cond.eval(state.regs[ra.index()], state.regs[rb.index()]) {
                    state.pc = target;
                } else {
                    state.pc += 1;
                }
            }
            Instr::Jump { target } => state.pc = target,
            Instr::Barrier => {
                state.at_barrier = true;
                // pc advanced on release.
            }
            Instr::Halt => state.halted = true,
        }
        Ok(())
    }

    fn check_addr(&self, t: ThreadId, addr: u64) -> Result<usize, ExecError> {
        if !addr.is_multiple_of(WORD_BYTES) {
            return Err(ExecError::Misaligned { thread: t, addr });
        }
        let idx = (addr / WORD_BYTES) as usize;
        if idx >= self.mem.len() {
            return Err(ExecError::OutOfBounds { thread: t, addr });
        }
        Ok(idx)
    }

    fn load_word(&self, t: ThreadId, addr: u64) -> Result<u64, ExecError> {
        Ok(self.mem[self.check_addr(t, addr)?])
    }

    fn store_word(&mut self, t: ThreadId, addr: u64, val: u64) -> Result<(), ExecError> {
        let idx = self.check_addr(t, addr)?;
        self.mem[idx] = val;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::{AluOp, InputRegs};
    use crate::slice::{Slice, SliceId, SliceInstr, SliceOperand};

    #[test]
    fn barrier_synchronizes_threads() {
        let mut b = ProgramBuilder::new(2);
        b.set_mem_bytes(4096);
        // t0: long loop, then store flag; t1 waits at barrier then reads flag.
        {
            let t = b.thread(0);
            let l = t.begin_loop(Reg(1), Reg(2), 100);
            t.alui(AluOp::Add, Reg(3), Reg(3), 1);
            t.end_loop(l);
            t.imm(Reg(4), 42);
            t.store(Reg(4), Reg(0), 0);
            t.barrier();
            t.halt();
        }
        {
            let t = b.thread(1);
            t.barrier();
            t.load(Reg(5), Reg(0), 0);
            t.store(Reg(5), Reg(0), 8);
            t.halt();
        }
        let p = b.build();
        p.validate().unwrap();
        let mut i = Interp::new(&p);
        i.run_to_completion(100_000).unwrap();
        assert_eq!(i.mem_word(8), 42);
    }

    #[test]
    fn halted_threads_release_barriers() {
        let mut b = ProgramBuilder::new(2);
        b.set_mem_bytes(64);
        b.thread(0).halt();
        b.thread(1).barrier();
        b.thread(1).halt();
        let p = b.build();
        let mut i = Interp::new(&p);
        i.run_to_completion(100).unwrap();
        assert!(i.all_halted());
    }

    #[test]
    fn oob_and_misaligned_reported() {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(64);
        b.thread(0).imm(Reg(1), 1).load(Reg(2), Reg(0), 4).halt();
        let p = b.build();
        let mut i = Interp::new(&p);
        assert!(matches!(
            i.run_to_completion(100),
            Err(ExecError::Misaligned { .. })
        ));

        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(64);
        b.thread(0).load(Reg(2), Reg(0), 1 << 20).halt();
        let p = b.build();
        let mut i = Interp::new(&p);
        assert!(matches!(
            i.run_to_completion(100),
            Err(ExecError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn fuel_exhaustion() {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(64);
        let t = b.thread(0);
        let top = t.here();
        t.raw(Instr::Jump { target: top });
        t.halt();
        let p = b.build();
        let mut i = Interp::new(&p);
        assert_eq!(i.run_to_completion(10), Err(ExecError::FuelExhausted));
    }

    #[test]
    fn slice_verification_passes_for_correct_assoc() {
        // store r3 = r1 + r2, slice: in0 + in1
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(64);
        let t = b.thread(0);
        t.imm(Reg(1), 5);
        t.imm(Reg(2), 9);
        t.alu(AluOp::Add, Reg(3), Reg(1), Reg(2));
        t.store(Reg(3), Reg(0), 16);
        t.raw(Instr::AssocAddr {
            slice: SliceId(0),
            inputs: InputRegs::new(&[Reg(1), Reg(2)]),
        });
        t.halt();
        let mut p = b.build();
        p.push_slice(
            Slice::new(
                vec![SliceInstr {
                    op: AluOp::Add,
                    a: SliceOperand::Input(0),
                    b: SliceOperand::Input(1),
                }],
                2,
            )
            .unwrap(),
        );
        p.validate().unwrap();
        let mut i = Interp::new(&p);
        i.verify_slices(true);
        i.run_to_completion(100).unwrap();
        assert_eq!(i.mem_word(16), 14);
    }

    #[test]
    fn slice_verification_catches_wrong_slice() {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(64);
        let t = b.thread(0);
        t.imm(Reg(1), 5);
        t.imm(Reg(2), 9);
        t.alu(AluOp::Add, Reg(3), Reg(1), Reg(2));
        t.store(Reg(3), Reg(0), 16);
        t.raw(Instr::AssocAddr {
            slice: SliceId(0),
            inputs: InputRegs::new(&[Reg(1), Reg(2)]),
        });
        t.halt();
        let mut p = b.build();
        p.push_slice(
            Slice::new(
                vec![SliceInstr {
                    op: AluOp::Mul, // wrong op
                    a: SliceOperand::Input(0),
                    b: SliceOperand::Input(1),
                }],
                2,
            )
            .unwrap(),
        );
        p.validate().unwrap();
        let mut i = Interp::new(&p);
        i.verify_slices(true);
        assert!(matches!(
            i.run_to_completion(100),
            Err(ExecError::SliceMismatch { .. })
        ));
    }
}
