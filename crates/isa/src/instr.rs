//! Instruction and register definitions.

use std::fmt;

use crate::slice::{SliceId, MAX_SLICE_INPUTS};

/// The register list an `ASSOC-ADDR` captures into the operand buffer as the
/// input operands of its Slice, in Slice input order.
///
/// Fixed-capacity so [`Instr`] stays `Copy`; at most [`MAX_SLICE_INPUTS`]
/// registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InputRegs {
    regs: [Reg; MAX_SLICE_INPUTS],
    len: u8,
}

impl InputRegs {
    /// Builds the capture list from a slice of registers.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SLICE_INPUTS`] registers are given; the
    /// slicer never produces such Slices (they are rejected earlier).
    pub fn new(regs: &[Reg]) -> Self {
        assert!(
            regs.len() <= MAX_SLICE_INPUTS,
            "at most {MAX_SLICE_INPUTS} slice inputs"
        );
        let mut out = InputRegs::default();
        out.regs[..regs.len()].copy_from_slice(regs);
        out.len = regs.len() as u8;
        out
    }

    /// Number of captured registers.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if no registers are captured.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The registers, in Slice input order.
    #[inline]
    pub fn as_slice(&self) -> &[Reg] {
        &self.regs[..self.len as usize]
    }

    /// Iterates over the captured registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.as_slice().iter().copied()
    }
}

/// An architectural general-purpose register index (`r0`..`r31`).
///
/// `r0` is an ordinary register by convention used as a base/zero scratch by
/// the workload generators; the ISA itself attaches no special meaning to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(pub u8);

impl Reg {
    /// Returns the register index as a `usize`, for register-file indexing.
    ///
    /// The index is masked to [`crate::NUM_REGS`] (a power of two) so the
    /// simulator's register files can be indexed without bounds checks on
    /// the hottest path. The assembler rejects out-of-range registers and
    /// every in-tree generator stays below the limit, so the mask is a
    /// no-op on any program that can actually be built or parsed.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize & (crate::NUM_REGS - 1)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Arithmetic/logic operations.
///
/// All operations are over 64-bit two's-complement words with wrapping
/// semantics, so recomputation along a Slice is bit-exact regardless of the
/// values captured in the operand buffer. `Div`/`Rem` by zero yield zero
/// (total functions keep the reference interpreter and the Slice executor
/// trivially consistent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (0 if divisor is 0).
    Div,
    /// Remainder (0 if divisor is 0).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (modulo 64).
    Shl,
    /// Logical shift right (modulo 64).
    Shr,
    /// Minimum (unsigned).
    Min,
    /// Maximum (unsigned).
    Max,
}

impl AluOp {
    /// Applies the operation to two operand words.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
        }
    }

    /// All operations, for fuzzing and workload generation.
    pub const ALL: [AluOp; 12] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Min,
        AluOp::Max,
    ];
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Min => "min",
            AluOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// Branch conditions comparing a register against another register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if `ra == rb`.
    Eq,
    /// Branch if `ra != rb`.
    Ne,
    /// Branch if `ra < rb` (unsigned).
    Lt,
    /// Branch if `ra >= rb` (unsigned).
    Ge,
}

impl BranchCond {
    /// Evaluates the condition on two operand words.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
        }
    }
}

/// A machine instruction.
///
/// Effective addresses are computed as `base + disp` (wrapping) and must be
/// word-aligned; the simulator and interpreter treat misaligned accesses as
/// program bugs and report them as execution errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `rd <- imm`.
    Imm {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// `rd <- op(ra, rb)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `rd <- op(ra, imm)`.
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Immediate operand.
        imm: u64,
    },
    /// `rd <- mem[ra + disp]`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte displacement (word aligned).
        disp: u64,
    },
    /// `mem[base + disp] <- rs`.
    Store {
        /// Source register holding the value to store.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte displacement (word aligned).
        disp: u64,
    },
    /// `ASSOC-ADDR`: associates the effective address of the *immediately
    /// preceding* store with Slice `slice`, capturing the Slice's input
    /// operands from the current register file into the operand buffer.
    ///
    /// The paper specifies that `ASSOC-ADDR` executes atomically with the
    /// corresponding store; the simulator enforces the adjacency invariant.
    AssocAddr {
        /// The Slice embedded in the binary that recomputes the stored value.
        slice: SliceId,
        /// Registers whose current values are captured into the operand
        /// buffer as the Slice's input operands. The slicer guarantees these
        /// registers still hold the Slice's input values at this point.
        inputs: InputRegs,
    },
    /// Conditional relative branch within the thread's instruction stream.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First comparand.
        ra: Reg,
        /// Second comparand.
        rb: Reg,
        /// Absolute target instruction index.
        target: u32,
    },
    /// Unconditional jump to an absolute instruction index.
    Jump {
        /// Absolute target instruction index.
        target: u32,
    },
    /// Synchronization barrier across all threads of the program.
    Barrier,
    /// Terminates the thread.
    Halt,
}

impl Instr {
    /// Returns `true` for instructions that access data memory.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// Returns `true` for arithmetic/logic register-to-register work
    /// (`Imm`, `Alu`, `AluI`) — the only instruction kinds a Slice may
    /// contain per Section II-B of the paper.
    #[inline]
    pub fn is_arith(&self) -> bool {
        matches!(
            self,
            Instr::Imm { .. } | Instr::Alu { .. } | Instr::AluI { .. }
        )
    }

    /// The destination register written by this instruction, if any.
    #[inline]
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Imm { rd, .. }
            | Instr::Alu { rd, .. }
            | Instr::AluI { rd, .. }
            | Instr::Load { rd, .. } => Some(*rd),
            _ => None,
        }
    }

    /// Source registers read by this instruction (up to 2, plus base).
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Instr::Imm { .. } => vec![],
            Instr::Alu { ra, rb, .. } => vec![*ra, *rb],
            Instr::AluI { ra, .. } => vec![*ra],
            Instr::Load { base, .. } => vec![*base],
            Instr::Store { rs, base, .. } => vec![*rs, *base],
            Instr::Branch { ra, rb, .. } => vec![*ra, *rb],
            Instr::AssocAddr { inputs, .. } => inputs.as_slice().to_vec(),
            Instr::Jump { .. } | Instr::Barrier | Instr::Halt => vec![],
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Imm { rd, imm } => write!(f, "imm   {rd}, {imm:#x}"),
            Instr::Alu { op, rd, ra, rb } => write!(f, "{op}   {rd}, {ra}, {rb}"),
            Instr::AluI { op, rd, ra, imm } => write!(f, "{op}i  {rd}, {ra}, {imm:#x}"),
            Instr::Load { rd, base, disp } => write!(f, "ld    {rd}, [{base}+{disp:#x}]"),
            Instr::Store { rs, base, disp } => write!(f, "st    {rs}, [{base}+{disp:#x}]"),
            Instr::AssocAddr { slice, inputs } => {
                write!(
                    f,
                    "assoc-addr slice#{} inputs={:?}",
                    slice.0,
                    inputs.as_slice()
                )
            }
            Instr::Branch {
                cond,
                ra,
                rb,
                target,
            } => write!(f, "b{cond:?}  {ra}, {rb} -> @{target}"),
            Instr::Jump { target } => write!(f, "jmp   @{target}"),
            Instr::Barrier => write!(f, "barrier"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_are_total() {
        for op in AluOp::ALL {
            // Division and remainder by zero must not panic.
            let _ = op.apply(u64::MAX, 0);
            let _ = op.apply(0, u64::MAX);
        }
        assert_eq!(AluOp::Div.apply(10, 0), 0);
        assert_eq!(AluOp::Rem.apply(10, 0), 0);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Mul.apply(3, 5), 15);
        assert_eq!(AluOp::Shl.apply(1, 65), 2); // shift modulo 64
        assert_eq!(AluOp::Min.apply(3, 5), 3);
        assert_eq!(AluOp::Max.apply(3, 5), 5);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.eval(4, 4));
        assert!(BranchCond::Ne.eval(4, 5));
        assert!(BranchCond::Lt.eval(4, 5));
        assert!(BranchCond::Ge.eval(5, 5));
        assert!(!BranchCond::Lt.eval(5, 4));
    }

    #[test]
    fn instr_classification() {
        let st = Instr::Store {
            rs: Reg(1),
            base: Reg(0),
            disp: 8,
        };
        assert!(st.is_mem());
        assert!(!st.is_arith());
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![Reg(1), Reg(0)]);

        let alu = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            ra: Reg(1),
            rb: Reg(2),
        };
        assert!(alu.is_arith());
        assert_eq!(alu.def(), Some(Reg(3)));
    }

    #[test]
    fn display_is_nonempty() {
        let instrs = [
            Instr::Imm { rd: Reg(1), imm: 7 },
            Instr::Barrier,
            Instr::Halt,
        ];
        for i in instrs {
            assert!(!format!("{i}").is_empty());
        }
    }
}
