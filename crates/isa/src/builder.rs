//! Ergonomic construction of multithreaded programs.

use crate::instr::{AluOp, BranchCond, Instr, Reg};
use crate::program::{Program, ThreadCode};
use crate::slice::Slice;

/// Handle returned by [`ThreadBuilder::begin_loop`], consumed by
/// [`ThreadBuilder::end_loop`].
///
/// Loops are counted: the induction register runs from 0 to `count`
/// (exclusive) in steps of 1.
#[derive(Debug)]
#[must_use = "a loop must be closed with end_loop"]
pub struct LoopHandle {
    head: u32,
    counter: Reg,
    limit: Reg,
}

/// Builds the instruction stream of one thread.
#[derive(Debug, Default)]
pub struct ThreadBuilder {
    instrs: Vec<Instr>,
}

impl ThreadBuilder {
    /// Current instruction index (the pc the *next* emitted instruction
    /// will occupy).
    #[inline]
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Emits a raw instruction.
    pub fn raw(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// `rd <- imm`.
    pub fn imm(&mut self, rd: Reg, imm: u64) -> &mut Self {
        self.raw(Instr::Imm { rd, imm })
    }

    /// `rd <- op(ra, rb)`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.raw(Instr::Alu { op, rd, ra, rb })
    }

    /// `rd <- op(ra, imm)`.
    pub fn alui(&mut self, op: AluOp, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.raw(Instr::AluI { op, rd, ra, imm })
    }

    /// `rd <- mem[base + disp]`.
    pub fn load(&mut self, rd: Reg, base: Reg, disp: u64) -> &mut Self {
        self.raw(Instr::Load { rd, base, disp })
    }

    /// `mem[base + disp] <- rs`.
    pub fn store(&mut self, rs: Reg, base: Reg, disp: u64) -> &mut Self {
        self.raw(Instr::Store { rs, base, disp })
    }

    /// Emits a synchronization barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.raw(Instr::Barrier)
    }

    /// Terminates the thread.
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Instr::Halt)
    }

    /// Opens a counted loop: `counter` runs 0..count. `limit` is clobbered
    /// to hold the loop bound. Loops with `count == 0` still execute once
    /// through the *setup* (counter/limit init) but zero body iterations.
    pub fn begin_loop(&mut self, counter: Reg, limit: Reg, count: u64) -> LoopHandle {
        self.imm(counter, 0);
        self.imm(limit, count);
        let head = self.here();
        // Placeholder branch to be patched by end_loop: if counter >= limit,
        // skip past the loop body.
        self.raw(Instr::Branch {
            cond: BranchCond::Ge,
            ra: counter,
            rb: limit,
            target: 0, // patched
        });
        LoopHandle {
            head,
            counter,
            limit,
        }
    }

    /// Closes a counted loop opened with [`begin_loop`].
    ///
    /// [`begin_loop`]: ThreadBuilder::begin_loop
    pub fn end_loop(&mut self, handle: LoopHandle) -> &mut Self {
        self.alui(AluOp::Add, handle.counter, handle.counter, 1);
        self.raw(Instr::Jump {
            target: handle.head,
        });
        let exit = self.here();
        // Patch the guard branch to exit past the back-edge.
        match &mut self.instrs[handle.head as usize] {
            Instr::Branch { target, .. } => *target = exit,
            other => unreachable!("loop head must be a branch, found {other}"),
        }
        let _ = handle.limit;
        self
    }

    /// Emits a forward conditional branch with a placeholder target; patch
    /// it with [`ThreadBuilder::patch_branch`] once the join point is
    /// known.
    pub fn branch_placeholder(&mut self, cond: BranchCond, ra: Reg, rb: Reg) -> u32 {
        let pc = self.here();
        self.raw(Instr::Branch {
            cond,
            ra,
            rb,
            target: u32::MAX,
        });
        pc
    }

    /// Patches the branch emitted at `pc` to jump to `target`.
    ///
    /// # Panics
    ///
    /// Panics if the instruction at `pc` is not a branch.
    pub fn patch_branch(&mut self, pc: u32, target: u32) {
        match &mut self.instrs[pc as usize] {
            Instr::Branch { target: t, .. } => *t = target,
            other => panic!("patch_branch at non-branch {other}"),
        }
    }

    /// Consumes the builder into thread code.
    pub fn finish(self) -> ThreadCode {
        ThreadCode::new(self.instrs)
    }
}

/// Builds a multithreaded [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder {
    threads: Vec<ThreadBuilder>,
    slices: Vec<Slice>,
    mem_bytes: u64,
}

impl ProgramBuilder {
    /// Creates a builder for a program with `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        ProgramBuilder {
            threads: (0..num_threads).map(|_| ThreadBuilder::default()).collect(),
            slices: Vec::new(),
            mem_bytes: 0,
        }
    }

    /// The builder for thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn thread(&mut self, t: u32) -> &mut ThreadBuilder {
        &mut self.threads[t as usize]
    }

    /// Declares the size of the data memory image in bytes.
    pub fn set_mem_bytes(&mut self, bytes: u64) -> &mut Self {
        self.mem_bytes = bytes;
        self
    }

    /// Finalizes the program. The result should be passed through
    /// [`Program::validate`] before simulation; the workloads crate does so
    /// in its tests.
    pub fn build(self) -> Program {
        Program::new(
            self.threads
                .into_iter()
                .map(ThreadBuilder::finish)
                .collect(),
            self.slices,
            self.mem_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    #[test]
    fn counted_loop_runs_expected_iterations() {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(4096);
        let t = b.thread(0);
        t.imm(Reg(5), 0);
        let l = t.begin_loop(Reg(1), Reg(2), 10);
        t.alui(AluOp::Add, Reg(5), Reg(5), 3);
        t.end_loop(l);
        t.store(Reg(5), Reg(0), 64);
        t.halt();
        let p = b.build();
        p.validate().unwrap();

        let mut interp = Interp::new(&p);
        interp.run_to_completion(1_000_000).unwrap();
        assert_eq!(interp.mem_word(64), 30);
    }

    #[test]
    fn zero_iteration_loop() {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(4096);
        let t = b.thread(0);
        t.imm(Reg(5), 7);
        let l = t.begin_loop(Reg(1), Reg(2), 0);
        t.imm(Reg(5), 99);
        t.end_loop(l);
        t.store(Reg(5), Reg(0), 0);
        t.halt();
        let p = b.build();
        p.validate().unwrap();
        let mut interp = Interp::new(&p);
        interp.run_to_completion(1000).unwrap();
        assert_eq!(interp.mem_word(0), 7);
    }

    #[test]
    fn nested_loops() {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(4096);
        let t = b.thread(0);
        t.imm(Reg(5), 0);
        let outer = t.begin_loop(Reg(1), Reg(2), 4);
        let inner = t.begin_loop(Reg(3), Reg(4), 5);
        t.alui(AluOp::Add, Reg(5), Reg(5), 1);
        t.end_loop(inner);
        t.end_loop(outer);
        t.store(Reg(5), Reg(0), 8);
        t.halt();
        let p = b.build();
        p.validate().unwrap();
        let mut interp = Interp::new(&p);
        interp.run_to_completion(10_000).unwrap();
        assert_eq!(interp.mem_word(8), 20);
    }
}
