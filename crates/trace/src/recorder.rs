//! Always-on flight recorder: fixed-capacity ring buffers of the last K
//! [`TraceEvent`]s.
//!
//! A campaign case cannot afford a full [`MemorySink`](crate::MemorySink)
//! (unbounded memory) but diagnosing a divergent case after the fact needs
//! the events *leading up to* the failure. The [`FlightRecorder`] is the
//! black box in between: one bounded [`Ring`] per core plus one global
//! ring (engine/memory tracks), each preallocated once and overwritten in
//! strict FIFO order, so recording an event never allocates and the
//! retained window is exactly the last K events per track group.
//!
//! ## Determinism & non-perturbation
//!
//! The recorder is a [`TraceSink`]: it sees the same event stream a
//! [`MemorySink`](crate::MemorySink) would, in the same emission order,
//! and stores [`Copy`] events verbatim. Tracing is observational (emission
//! sites charge no simulated cycles), so a recorder-backed run is
//! cycle-identical and hash-identical to an untraced one — the property
//! the postmortem pipeline relies on and CI pins.

use std::cell::RefCell;
use std::rc::Rc;

use crate::event::{SharedSink, TraceEvent, TraceSink};

/// Default per-core ring capacity (events). Sized so the window spans
/// several checkpoint intervals of low-volume span events.
pub const DEFAULT_CORE_RING: usize = 128;

/// Default global-ring capacity (events): the engine/memory tracks carry
/// the checkpoint/recovery timeline, which is the part postmortems lean
/// on most.
pub const DEFAULT_GLOBAL_RING: usize = 512;

/// A fixed-capacity FIFO ring of [`TraceEvent`]s.
///
/// The backing store is allocated once at construction; pushes overwrite
/// the oldest event deterministically (pure modular arithmetic, no
/// reallocation, no drops observable from the outside beyond the
/// [`Ring::dropped`] counter).
#[derive(Debug, Clone)]
pub struct Ring {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index the next event is written to once the ring is full.
    next: usize,
    /// Total events ever pushed (including overwritten ones).
    total: u64,
}

impl Ring {
    /// An empty ring retaining the last `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Ring {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Capacity (the K in "last K events").
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events that have been overwritten (`total - len`).
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Records one event, overwriting the oldest once full. Never
    /// allocates after construction (the buffer was reserved up front).
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// The retained events, oldest first (exactly the last
    /// `min(total, capacity)` pushes in push order).
    pub fn events_in_order(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }
}

/// The per-case black box: one [`Ring`] per core plus one global ring.
///
/// Events route by [`TraceEvent::track`]: tracks `0..num_cores` are
/// core-local (cache events, per-core recovery sub-spans), everything
/// else ([`TRACK_ENGINE`](crate::TRACK_ENGINE),
/// [`TRACK_MEM`](crate::TRACK_MEM)) lands in the global ring.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    per_core: Vec<Ring>,
    global: Ring,
}

impl FlightRecorder {
    /// A recorder for `num_cores` cores with explicit ring capacities.
    pub fn new(num_cores: usize, core_cap: usize, global_cap: usize) -> Self {
        FlightRecorder {
            per_core: (0..num_cores).map(|_| Ring::new(core_cap)).collect(),
            global: Ring::new(global_cap),
        }
    }

    /// A recorder with the default ring sizes
    /// ([`DEFAULT_CORE_RING`] / [`DEFAULT_GLOBAL_RING`]).
    pub fn with_defaults(num_cores: usize) -> Self {
        Self::new(num_cores, DEFAULT_CORE_RING, DEFAULT_GLOBAL_RING)
    }

    /// A default-sized recorder wrapped for attachment to a machine: the
    /// [`SharedSink`] handle goes to the simulator, the `Rc` stays with
    /// the caller to read the rings back after the run. Mirrors
    /// [`SharedSink::memory`].
    pub fn shared(num_cores: usize) -> (SharedSink, Rc<RefCell<FlightRecorder>>) {
        let rec = Rc::new(RefCell::new(Self::with_defaults(num_cores)));
        let dynamic: Rc<RefCell<dyn TraceSink>> = rec.clone();
        (SharedSink::from_sink(dynamic), rec)
    }

    /// Number of per-core rings.
    pub fn num_cores(&self) -> usize {
        self.per_core.len()
    }

    /// The ring for `core` (panics when out of range).
    pub fn core_ring(&self, core: usize) -> &Ring {
        &self.per_core[core]
    }

    /// The global (engine/memory track) ring.
    pub fn global_ring(&self) -> &Ring {
        &self.global
    }

    /// Total events ever recorded across all rings.
    pub fn total(&self) -> u64 {
        self.per_core.iter().map(Ring::total).sum::<u64>() + self.global.total()
    }

    /// Total events overwritten across all rings.
    pub fn dropped(&self) -> u64 {
        self.per_core.iter().map(Ring::dropped).sum::<u64>() + self.global.dropped()
    }

    /// All retained events merged into one timeline: stable-sorted by
    /// start cycle, ties broken by track then by per-ring push order —
    /// fully deterministic for a deterministic event stream.
    pub fn merged_timeline(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for ring in &self.per_core {
            all.extend(ring.events_in_order());
        }
        all.extend(self.global.events_in_order());
        all.sort_by(|a, b| a.cycle.cmp(&b.cycle).then(a.track.cmp(&b.track)));
        all
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, ev: &TraceEvent) {
        let t = ev.track as usize;
        if t < self.per_core.len() {
            self.per_core[t].push(*ev);
        } else {
            self.global.push(*ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TRACK_ENGINE, TRACK_MEM};

    fn ev(track: u32, cycle: u64) -> TraceEvent {
        TraceEvent::instant("e", "t", track, cycle)
    }

    #[test]
    fn ring_retains_everything_until_full() {
        let mut r = Ring::new(4);
        for c in 0..3 {
            r.push(ev(0, c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.events_in_order().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
    }

    #[test]
    fn ring_wraps_to_exactly_last_k_in_order() {
        let mut r = Ring::new(4);
        for c in 0..11 {
            r.push(ev(0, c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 11);
        assert_eq!(r.dropped(), 7);
        let cycles: Vec<u64> = r.events_in_order().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9, 10]);
    }

    #[test]
    fn ring_capacity_is_clamped_to_one() {
        let mut r = Ring::new(0);
        r.push(ev(0, 1));
        r.push(ev(0, 2));
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.events_in_order()[0].cycle, 2);
    }

    #[test]
    fn ring_push_never_reallocates() {
        let mut r = Ring::new(8);
        let ptr = r.buf.as_ptr();
        for c in 0..100 {
            r.push(ev(0, c));
        }
        assert_eq!(r.buf.as_ptr(), ptr, "backing store must stay in place");
    }

    #[test]
    fn recorder_routes_by_track() {
        let mut fr = FlightRecorder::new(2, 4, 4);
        fr.record(&ev(0, 1));
        fr.record(&ev(1, 2));
        fr.record(&ev(TRACK_ENGINE, 3));
        fr.record(&ev(TRACK_MEM, 4));
        assert_eq!(fr.core_ring(0).len(), 1);
        assert_eq!(fr.core_ring(1).len(), 1);
        assert_eq!(fr.global_ring().len(), 2);
        assert_eq!(fr.total(), 4);
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn shared_handle_feeds_the_recorder() {
        let (sink, rec) = FlightRecorder::shared(1);
        assert!(sink.enabled());
        assert!(!sink.detail());
        sink.emit(TraceEvent::span("ckpt", "ckpt", TRACK_ENGINE, 10, 5));
        sink.emit(ev(0, 11));
        let fr = rec.borrow();
        assert_eq!(fr.global_ring().len(), 1);
        assert_eq!(fr.global_ring().events_in_order()[0].kind, EventKind::Span);
        assert_eq!(fr.core_ring(0).len(), 1);
    }

    #[test]
    fn merged_timeline_is_cycle_ordered() {
        let mut fr = FlightRecorder::new(2, 4, 4);
        fr.record(&ev(TRACK_ENGINE, 30));
        fr.record(&ev(0, 10));
        fr.record(&ev(1, 20));
        fr.record(&ev(0, 25));
        let cycles: Vec<u64> = fr.merged_timeline().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![10, 20, 25, 30]);
    }
}
