//! The unified metrics registry, interval sampler and time series.

use std::collections::BTreeMap;

use crate::chrome::push_json_string;
use crate::hash::Fnv1a;
use crate::hist::Histogram;

/// A flat registry of named `u64` counters/gauges behind hierarchical
/// dot-separated keys (`core.0.retired`, `ckpt.records`, `mem.l1d.hits`,
/// `energy.dram.pj`). Values are integers only — cycles, events, words,
/// bytes, picojoules — so snapshots compare bit-exactly and exports are
/// byte-deterministic.
///
/// Reserved top-level namespaces, by producer: `core.*`/`mem.*`
/// (machine), `ckpt.*` (BER engine, incl. `ckpt.invariant.*`),
/// `campaign.*` (fault-injection reports), `energy.*` (energy model),
/// `host.*` (wall-clock observability — never part of a sim digest),
/// `soak.*` (soak-driver chunk/outcome counters, incl. per-combo
/// `soak.combo.<key>.cases`), and `shrink.*` (shrinker search
/// counters: original/minimal/dropped faults, rounds, evaluations,
/// narrowed fields).
///
/// Keys iterate in lexicographic order (`BTreeMap`), which fixes the
/// export order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    map: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `key` to `value` (gauge semantics; creates the key on first
    /// use).
    pub fn set(&mut self, key: &str, value: u64) {
        if let Some(slot) = self.map.get_mut(key) {
            *slot = value;
        } else {
            self.map.insert(key.to_owned(), value);
        }
    }

    /// Adds `delta` to `key` (counter semantics; creates the key at
    /// `delta` on first use).
    pub fn add(&mut self, key: &str, delta: u64) {
        if let Some(slot) = self.map.get_mut(key) {
            *slot += delta;
        } else {
            self.map.insert(key.to_owned(), delta);
        }
    }

    /// Current value of `key`.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.map.get(key).copied()
    }

    /// Key/value pairs in lexicographic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no key has been registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The histogram registered under `key`, created empty on first use.
    /// Histogram keys live in the same dot-separated namespace as counters
    /// (e.g. `profile.retire.cycles`) but in a separate map, because a
    /// histogram is a distribution, not a scalar.
    pub fn hist_mut(&mut self, key: &str) -> &mut Histogram {
        self.hists.entry(key.to_owned()).or_default()
    }

    /// Records `value` into the histogram under `key` (created on first
    /// use).
    pub fn record_hist(&mut self, key: &str, value: u64) {
        self.hist_mut(key).record(value);
    }

    /// The histogram under `key`, if one has been registered.
    pub fn hist(&self, key: &str) -> Option<&Histogram> {
        self.hists.get(key)
    }

    /// Key/histogram pairs in lexicographic key order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Folds `other` into `self` loss-freely: counters add key-by-key and
    /// histograms merge bucket-by-bucket ([`Histogram::merge`]), so
    /// per-shard registries built by parallel workers combine into exactly
    /// the registry one sequential worker would have built. Merging is
    /// associative and commutative, which makes the combined registry
    /// independent of worker count and scheduling — the property the
    /// cross-jobs equivalence tests pin.
    ///
    /// Counter merge uses *add* semantics for every key; gauge-style keys
    /// (set once per run) belong in per-run registries, not in shard
    /// accumulators that get merged.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
        for (k, h) in other.hists() {
            self.hist_mut(k).merge(h);
        }
    }

    /// An FNV-1a digest of the whole registry: every counter key/value in
    /// lexicographic order, then every histogram key with its count,
    /// p50/p90/p99 and max. Two registries digest equal iff they would
    /// export equal — the compact fingerprint run manifests carry so
    /// `acr_cli diff` can compare full metric state without embedding it.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        for (k, v) in self.iter() {
            h.write(k.as_bytes());
            h.write_byte(b'=');
            h.write_u64(v);
        }
        for (k, hist) in self.hists() {
            h.write(k.as_bytes());
            h.write_byte(b'#');
            h.write_u64(hist.count());
            let (p50, p90, p99) = hist.digest();
            h.write_u64(p50);
            h.write_u64(p90);
            h.write_u64(p99);
            h.write_u64(hist.max());
        }
        h.finish()
    }

    /// Projects every registered histogram into scalar counters —
    /// `<key>.count`, `<key>.p50`, `<key>.p90`, `<key>.p99`, `<key>.max` —
    /// so digests ride along in [`Sample`] snapshots and JSONL/Chrome
    /// counter exports. Idempotent between recordings; call before
    /// sampling or exporting.
    pub fn publish_hist_digests(&mut self) {
        let digests: Vec<(String, u64, u64, u64, u64, u64)> = self
            .hists
            .iter()
            .map(|(k, h)| {
                let (p50, p90, p99) = h.digest();
                (k.clone(), h.count(), p50, p90, p99, h.max())
            })
            .collect();
        for (k, count, p50, p90, p99, max) in digests {
            self.set(&format!("{k}.count"), count);
            self.set(&format!("{k}.p50"), p50);
            self.set(&format!("{k}.p90"), p90);
            self.set(&format!("{k}.p99"), p99);
            self.set(&format!("{k}.max"), max);
        }
    }
}

/// One snapshot of the registry at a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Simulated cycle the snapshot was taken at.
    pub cycle: u64,
    /// Key/value pairs, in lexicographic key order.
    pub values: Vec<(String, u64)>,
}

/// An in-memory time series of registry snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeSeries {
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample (callers keep cycles non-decreasing).
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// The samples in capture order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample has been captured.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Line-oriented JSONL export: one object per sample,
    /// `{"cycle":N,"metrics":{"key":value,…}}`, keys in lexicographic
    /// order. Extra top-level tags (e.g. `"workload":"cg"`) can be
    /// supplied; they render before `cycle`, in the order given.
    pub fn to_jsonl(&self, tags: &[(&str, &str)]) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push('{');
            for (k, v) in tags {
                push_json_string(&mut out, k);
                out.push(':');
                push_json_string(&mut out, v);
                out.push(',');
            }
            out.push_str("\"cycle\":");
            out.push_str(&s.cycle.to_string());
            out.push_str(",\"metrics\":{");
            for (i, (k, v)) in s.values.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, k);
                out.push(':');
                out.push_str(&v.to_string());
            }
            out.push_str("}}\n");
        }
        out
    }
}

/// Snapshots a [`MetricsRegistry`] into a [`TimeSeries`] every `every`
/// simulated cycles. The driver polls [`Sampler::due`] at its scheduling
/// granularity and calls [`Sampler::record`] when due, so sample cycles
/// land at the first observation point at-or-after each K-cycle boundary —
/// deterministic, because the observation points themselves are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sampler {
    every: u64,
    next: u64,
    series: TimeSeries,
}

impl Sampler {
    /// A sampler firing every `every` cycles (clamped to ≥ 1).
    pub fn new(every: u64) -> Self {
        let every = every.max(1);
        Sampler {
            every,
            next: every,
            series: TimeSeries::new(),
        }
    }

    /// The sampling interval in cycles.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// True when a sample is due at `cycle`.
    #[inline]
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next
    }

    /// Snapshots `reg` at `cycle` and advances the next due point to the
    /// following interval boundary.
    pub fn record(&mut self, cycle: u64, reg: &MetricsRegistry) {
        self.series.push(Sample {
            cycle,
            values: reg.iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        });
        self.next = (cycle / self.every + 1) * self.every;
    }

    /// The captured series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Takes the captured series, leaving the sampler empty (interval and
    /// phase preserved).
    pub fn take_series(&mut self) -> TimeSeries {
        std::mem::take(&mut self.series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_set_add_get() {
        let mut r = MetricsRegistry::new();
        r.set("b.gauge", 7);
        r.add("a.count", 2);
        r.add("a.count", 3);
        r.set("b.gauge", 9);
        assert_eq!(r.get("a.count"), Some(5));
        assert_eq!(r.get("b.gauge"), Some(9));
        assert_eq!(r.get("missing"), None);
        let keys: Vec<&str> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a.count", "b.gauge"], "lexicographic order");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn merge_is_loss_free_and_commutative() {
        let mut a = MetricsRegistry::new();
        a.add("c.x", 3);
        a.record_hist("h", 5);
        a.record_hist("h", 500);
        let mut b = MetricsRegistry::new();
        b.add("c.x", 4);
        b.add("c.y", 1);
        b.record_hist("h", 7);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.get("c.x"), Some(7));
        assert_eq!(ab.get("c.y"), Some(1));
        assert_eq!(ab.hist("h").expect("hist").count(), 3);

        // Shard-merge equals recording everything into one registry.
        let mut one = MetricsRegistry::new();
        one.add("c.x", 7);
        one.add("c.y", 1);
        for v in [5u64, 500, 7] {
            one.record_hist("h", v);
        }
        assert_eq!(ab, one, "merge must be loss-free");
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut full = MetricsRegistry::new();
        full.add("c.x", 3);
        full.record_hist("h", 9);
        let before = full.clone();

        // Empty into full: no change.
        full.merge(&MetricsRegistry::new());
        assert_eq!(full, before);

        // Full into empty: exact copy.
        let mut empty = MetricsRegistry::new();
        empty.merge(&before);
        assert_eq!(empty, before);

        // Empty into empty: still empty.
        let mut e = MetricsRegistry::new();
        e.merge(&MetricsRegistry::new());
        assert!(e.is_empty());
        assert_eq!(e.hists().count(), 0);
    }

    #[test]
    fn merge_of_disjoint_key_sets_is_a_union() {
        let mut a = MetricsRegistry::new();
        a.add("a.only", 1);
        a.record_hist("hist.a", 10);
        let mut b = MetricsRegistry::new();
        b.add("b.only", 2);
        b.record_hist("hist.b", 20);

        a.merge(&b);
        assert_eq!(a.get("a.only"), Some(1));
        assert_eq!(a.get("b.only"), Some(2));
        assert_eq!(a.len(), 2);
        assert_eq!(a.hist("hist.a").expect("kept").count(), 1);
        assert_eq!(a.hist("hist.b").expect("imported").count(), 1);
        let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a.only", "b.only"], "union stays sorted");
    }

    #[test]
    fn merge_of_histogram_only_registries() {
        let mut a = MetricsRegistry::new();
        a.record_hist("lat", 5);
        let mut b = MetricsRegistry::new();
        b.record_hist("lat", 50);
        b.record_hist("lat", 500);

        a.merge(&b);
        assert!(a.is_empty(), "no scalar keys may appear from a hist merge");
        let h = a.hist("lat").expect("merged");
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 500);
    }

    #[test]
    fn digest_tracks_full_registry_state() {
        let mut a = MetricsRegistry::new();
        a.add("c.x", 3);
        a.record_hist("h", 9);
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());

        // A counter change moves the digest.
        b.add("c.x", 1);
        assert_ne!(a.digest(), b.digest());

        // A histogram-only change moves the digest too.
        let mut c = a.clone();
        c.record_hist("h", 9);
        assert_ne!(a.digest(), c.digest());

        // Empty registries digest equal (and stable).
        assert_eq!(
            MetricsRegistry::new().digest(),
            MetricsRegistry::new().digest()
        );
    }

    #[test]
    fn sampler_fires_on_interval_boundaries() {
        let mut reg = MetricsRegistry::new();
        reg.set("x", 1);
        let mut s = Sampler::new(100);
        assert!(!s.due(99));
        assert!(s.due(100));
        s.record(130, &reg); // first observation after the boundary
        assert!(!s.due(199));
        assert!(s.due(200));
        reg.set("x", 2);
        s.record(200, &reg);
        assert_eq!(s.series().len(), 2);
        assert_eq!(s.series().samples()[0].cycle, 130);
        assert_eq!(s.series().samples()[1].values[0], ("x".to_owned(), 2));
    }

    #[test]
    fn jsonl_is_one_object_per_sample_with_tags() {
        let mut reg = MetricsRegistry::new();
        reg.set("m.a", 1);
        reg.set("m.b", 2);
        let mut s = Sampler::new(10);
        s.record(10, &reg);
        s.record(20, &reg);
        let text = s.series().to_jsonl(&[("workload", "cg")]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"workload\":\"cg\",\"cycle\":10,\"metrics\":{\"m.a\":1,\"m.b\":2}}"
        );
    }

    #[test]
    fn series_equality_is_exact() {
        let mut reg = MetricsRegistry::new();
        reg.set("k", 42);
        let mut a = Sampler::new(5);
        let mut b = Sampler::new(5);
        a.record(5, &reg);
        b.record(5, &reg);
        assert_eq!(a.series(), b.series());
    }
}
