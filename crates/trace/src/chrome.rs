//! Chrome `trace_event` JSON exporter (loadable in `chrome://tracing` and
//! Perfetto).

use crate::event::{EventKind, TraceEvent};
use crate::metrics::TimeSeries;

/// Appends `s` to `out` as a JSON string literal (quoted + escaped).
/// Public so downstream in-tree JSON exporters (postmortem bundles) share
/// one escaping implementation with the Chrome exporter.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_common(out: &mut String, name: &str, cat: &str, ph: char, cycle: u64, track: u32) {
    out.push_str("{\"name\":");
    push_json_string(out, name);
    out.push_str(",\"cat\":");
    push_json_string(out, cat);
    out.push_str(",\"ph\":\"");
    out.push(ph);
    out.push_str("\",\"ts\":");
    out.push_str(&cycle.to_string());
    out.push_str(",\"pid\":0,\"tid\":");
    out.push_str(&track.to_string());
}

/// Renders `events` (and, when given, counter samples from `series`) as a
/// Chrome `trace_event` JSON document:
///
/// * spans become `ph:"X"` complete events (`ts` + `dur`) — self-contained,
///   no begin/end pairing to get out of order;
/// * instants become `ph:"i"` with global scope;
/// * every key of every series sample becomes a `ph:"C"` counter event, so
///   Perfetto draws one counter track per metric key.
///
/// All timestamps are simulated core cycles (the `ts` unit Chrome assumes
/// is microseconds — irrelevant here, relative placement is what matters).
/// Output is byte-deterministic: event order is emission order, counter
/// keys are in lexicographic order, and every value is an integer.
pub fn chrome_trace_json(events: &[TraceEvent], series: Option<&TimeSeries>) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for ev in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        match ev.kind {
            EventKind::Span => {
                push_common(&mut out, ev.name, ev.cat, 'X', ev.cycle, ev.track);
                out.push_str(",\"dur\":");
                out.push_str(&ev.dur.to_string());
            }
            EventKind::Instant => {
                push_common(&mut out, ev.name, ev.cat, 'i', ev.cycle, ev.track);
                out.push_str(",\"s\":\"g\"");
            }
            EventKind::Counter => {
                push_common(&mut out, ev.name, ev.cat, 'C', ev.cycle, ev.track);
            }
        }
        let args: Vec<(&str, u64)> = ev.args.iter().filter_map(|a| *a).collect();
        if !args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, k);
                out.push(':');
                out.push_str(&v.to_string());
            }
            out.push('}');
        }
        out.push('}');
    }
    if let Some(series) = series {
        for s in series.samples() {
            for (k, v) in &s.values {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                push_common(&mut out, k, "metrics", 'C', s.cycle, 0);
                out.push_str(",\"args\":{\"value\":");
                out.push_str(&v.to_string());
                out.push_str("}}");
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRegistry, Sampler};

    #[test]
    fn escapes_json_strings() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn renders_span_instant_and_counter() {
        let events = [
            TraceEvent::span("ckpt", "ckpt", 1000, 50, 10).with_arg("epoch", 3),
            TraceEvent::instant("fault.inject", "fault", 2, 55),
        ];
        let mut reg = MetricsRegistry::new();
        reg.set("mem.l1d.hits", 9);
        let mut sampler = Sampler::new(10);
        sampler.record(60, &reg);
        let json = chrome_trace_json(&events, Some(sampler.series()));
        assert!(json.contains("\"name\":\"ckpt\",\"cat\":\"ckpt\",\"ph\":\"X\",\"ts\":50"));
        assert!(json.contains("\"dur\":10"));
        assert!(json.contains("\"args\":{\"epoch\":3}"));
        assert!(json.contains("\"ph\":\"i\",\"ts\":55"));
        assert!(json.contains("\"name\":\"mem.l1d.hits\",\"cat\":\"metrics\",\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":9}"));
    }

    #[test]
    fn renders_counter_events_with_multiple_series() {
        let events = [TraceEvent::counter("ledger.reasons", "profile", 1002, 90)
            .with_arg("omitted_slice", 5)
            .with_arg("logged_no_slice", 2)];
        let json = chrome_trace_json(&events, None);
        assert!(
            json.contains("\"name\":\"ledger.reasons\",\"cat\":\"profile\",\"ph\":\"C\",\"ts\":90")
        );
        assert!(json.contains("\"args\":{\"omitted_slice\":5,\"logged_no_slice\":2}"));
    }

    #[test]
    fn empty_trace_is_valid_shell() {
        let json = chrome_trace_json(&[], None);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn export_is_deterministic() {
        let mk = || {
            let events = [TraceEvent::span("a", "t", 0, 1, 2)];
            let mut reg = MetricsRegistry::new();
            reg.set("z", 1);
            reg.set("a", 2);
            let mut s = Sampler::new(1);
            s.record(1, &reg);
            chrome_trace_json(&events, Some(s.series()))
        };
        assert_eq!(mk(), mk());
    }
}
