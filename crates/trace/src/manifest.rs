//! Machine-readable run manifests and the manifest diff.
//!
//! A **run manifest** is one JSON document describing what a CLI run
//! computed and how fast the host computed it:
//!
//! * `config` — the sim-relevant knobs of the run (seed, fault count,
//!   workloads, …) as ordered string pairs. Execution knobs that must not
//!   change results (worker count) are deliberately excluded: they live in
//!   the host section.
//! * `sim` — the deterministic outcome: named content hashes plus a
//!   metrics digest. For a fixed config this section is **byte-identical**
//!   across invocations, machines and `--jobs` values; `acr_cli diff`
//!   compares it exactly.
//! * `host` — wall-clock phase timings, throughput, RSS and worker-load
//!   gauges from [`crate::perf`]. Never deterministic; compared with a
//!   tolerance band.
//! * `bench` — optional repetition statistics when the manifest came from
//!   `acr_cli bench` (median / MAD / min over reps).
//!
//! Serialisation uses this crate's own JSON exporter conventions and
//! [`crate::parse_json`] for the reverse direction — no external
//! dependencies. Hash values are rendered as `0x…` hex *strings*, not JSON
//! numbers, because a `u64` hash does not survive the round trip through
//! an `f64` intact.

use crate::chrome::push_json_string;
use crate::json::{parse_json, Json};
use crate::perf::WorkerLoad;

/// Manifest schema identifier (bump on breaking layout changes).
pub const MANIFEST_SCHEMA: &str = "acr-manifest-v1";

/// Repetition statistics of an `acr_cli bench` run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchStats {
    /// Untimed warmup repetitions that preceded the timed ones.
    pub warmup: u64,
    /// Wall time of each timed repetition, in order, in nanoseconds.
    pub wall_ns: Vec<u64>,
    /// Median of `wall_ns`.
    pub median_ns: u64,
    /// Median absolute deviation around the median — a robust spread
    /// measure that one outlier repetition cannot blow up.
    pub mad_ns: u64,
    /// Fastest repetition.
    pub min_ns: u64,
}

/// Median of a sample set (mean of the two middle values for even sizes;
/// 0 for an empty set).
pub fn median(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut s = samples.to_vec();
    s.sort_unstable();
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        (s[n / 2 - 1] + s[n / 2]) / 2
    }
}

impl BenchStats {
    /// Derives the summary statistics from per-repetition wall times.
    pub fn from_samples(wall_ns: &[u64], warmup: u64) -> Self {
        let med = median(wall_ns);
        let dev: Vec<u64> = wall_ns.iter().map(|&x| x.abs_diff(med)).collect();
        BenchStats {
            warmup,
            wall_ns: wall_ns.to_vec(),
            median_ns: med,
            mad_ns: median(&dev),
            min_ns: wall_ns.iter().copied().min().unwrap_or(0),
        }
    }

    /// Number of timed repetitions.
    pub fn reps(&self) -> u64 {
        self.wall_ns.len() as u64
    }
}

/// A run manifest (see the module docs for the section semantics).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// The producing subcommand (`inject`, `trace`, `profile`,
    /// `repro_all`, `bench`).
    pub command: String,
    /// Ordered sim-relevant configuration pairs.
    pub config: Vec<(String, String)>,
    /// Ordered named content hashes (per-workload hashes plus a
    /// `combined` fold). What a hash covers is the producing command's
    /// contract: campaign report hashes for `inject`/`bench`, exported
    /// artifact hashes for `trace`/`profile`/`repro_all`.
    pub sim_hashes: Vec<(String, u64)>,
    /// FNV-1a digest of the run's deterministic metrics
    /// ([`crate::MetricsRegistry::digest`] for campaigns, artifact-byte
    /// digests for exporters).
    pub metrics_digest: u64,
    /// Ordered `host.*` gauges from [`crate::HostPerf::finish`].
    pub host: Vec<(String, u64)>,
    /// Repetition statistics (bench runs only).
    pub bench: Option<BenchStats>,
}

fn push_hex(out: &mut String, v: u64) {
    out.push_str(&format!("\"{v:#018x}\""));
}

impl Manifest {
    /// The sim-deterministic section as JSON — the exact bytes embedded in
    /// [`Manifest::to_json`], exposed separately so tests and CI can
    /// assert byte-identity across invocations and `--jobs` values.
    pub fn sim_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"hashes\":{");
        for (i, (k, v)) in self.sim_hashes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            push_hex(&mut out, *v);
        }
        out.push_str("},\"metrics_digest\":");
        push_hex(&mut out, self.metrics_digest);
        out.push('}');
        out
    }

    /// Renders the manifest as a JSON document (one top-level section per
    /// line; deterministic given identical contents).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n\"schema\":");
        push_json_string(&mut out, MANIFEST_SCHEMA);
        out.push_str(",\n\"command\":");
        push_json_string(&mut out, &self.command);
        out.push_str(",\n\"config\":{");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            push_json_string(&mut out, v);
        }
        out.push_str("},\n\"sim\":");
        out.push_str(&self.sim_json());
        out.push_str(",\n\"host\":{");
        for (i, (k, v)) in self.host.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push('}');
        if let Some(b) = &self.bench {
            out.push_str(",\n\"bench\":{\"reps\":");
            out.push_str(&b.reps().to_string());
            out.push_str(",\"warmup\":");
            out.push_str(&b.warmup.to_string());
            out.push_str(",\"wall_ns\":[");
            for (i, ns) in b.wall_ns.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&ns.to_string());
            }
            out.push_str("],\"median_ns\":");
            out.push_str(&b.median_ns.to_string());
            out.push_str(",\"mad_ns\":");
            out.push_str(&b.mad_ns.to_string());
            out.push_str(",\"min_ns\":");
            out.push_str(&b.min_ns.to_string());
            out.push('}');
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a manifest produced by [`Manifest::to_json`] (key order is
    /// preserved, so parse-then-render round-trips).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or malformed field.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = parse_json(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("manifest: missing `schema`")?;
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "manifest: unsupported schema `{schema}` (want `{MANIFEST_SCHEMA}`)"
            ));
        }
        let command = doc
            .get("command")
            .and_then(Json::as_str)
            .ok_or("manifest: missing `command`")?
            .to_owned();
        let config = str_pairs(doc.get("config").ok_or("manifest: missing `config`")?)?;
        let sim = doc.get("sim").ok_or("manifest: missing `sim`")?;
        let mut sim_hashes = Vec::new();
        if let Some(Json::Obj(members)) = sim.get("hashes") {
            for (k, v) in members {
                sim_hashes.push((k.clone(), parse_hex(k, v)?));
            }
        } else {
            return Err("manifest: missing `sim.hashes`".into());
        }
        let metrics_digest = parse_hex(
            "metrics_digest",
            sim.get("metrics_digest")
                .ok_or("manifest: missing `sim.metrics_digest`")?,
        )?;
        let host = u64_pairs(doc.get("host").ok_or("manifest: missing `host`")?)?;
        let bench = match doc.get("bench") {
            None => None,
            Some(b) => {
                let field = |k: &str| -> Result<u64, String> {
                    b.get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("manifest: missing `bench.{k}`"))
                };
                let wall_ns = b
                    .get("wall_ns")
                    .and_then(Json::as_arr)
                    .ok_or("manifest: missing `bench.wall_ns`")?
                    .iter()
                    .map(|v| v.as_u64().ok_or("manifest: bad `bench.wall_ns` entry"))
                    .collect::<Result<Vec<u64>, _>>()?;
                Some(BenchStats {
                    warmup: field("warmup")?,
                    wall_ns,
                    median_ns: field("median_ns")?,
                    mad_ns: field("mad_ns")?,
                    min_ns: field("min_ns")?,
                })
            }
        };
        Ok(Manifest {
            command,
            config,
            sim_hashes,
            metrics_digest,
            host,
            bench,
        })
    }

    /// Looks up a named content hash.
    pub fn hash(&self, name: &str) -> Option<u64> {
        self.sim_hashes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a `host.*` gauge.
    pub fn host_gauge(&self, key: &str) -> Option<u64> {
        self.host.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Records worker loads into the host section the same way
    /// [`crate::HostPerf::record_jobs`] does — convenience for callers
    /// that assemble the host list by hand.
    pub fn worker_loads(loads: &[WorkerLoad]) -> Vec<(String, u64)> {
        let mut out = vec![("host.jobs.count".to_owned(), loads.len() as u64)];
        for (i, l) in loads.iter().enumerate() {
            out.push((format!("host.jobs.{i}.busy_ns"), l.busy_ns));
            out.push((format!("host.jobs.{i}.items"), l.items));
        }
        out
    }
}

fn str_pairs(v: &Json) -> Result<Vec<(String, String)>, String> {
    match v {
        Json::Obj(members) => members
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_owned()))
                    .ok_or_else(|| format!("manifest: `{k}` must be a string"))
            })
            .collect(),
        _ => Err("manifest: expected an object of strings".into()),
    }
}

fn u64_pairs(v: &Json) -> Result<Vec<(String, u64)>, String> {
    match v {
        Json::Obj(members) => members
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("manifest: `{k}` must be a non-negative integer"))
            })
            .collect(),
        _ => Err("manifest: expected an object of integers".into()),
    }
}

fn parse_hex(key: &str, v: &Json) -> Result<u64, String> {
    let s = v
        .as_str()
        .ok_or_else(|| format!("manifest: hash `{key}` must be a hex string"))?;
    u64::from_str_radix(s.trim_start_matches("0x"), 16)
        .map_err(|e| format!("manifest: hash `{key}`: {e}"))
}

/// How [`diff_manifests`] compares two manifests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Allowed host-timing growth (or, under [`Self::gate_tput`],
    /// throughput drop) in percent before the candidate counts as a
    /// regression (the band absorbs normal host noise).
    pub tolerance_pct: f64,
    /// Whether a host-timing regression fails the diff. Off in CI, where
    /// shared runners make wall time report-only; on for local gating.
    pub gate_host: bool,
    /// Whether a `host.tput.cycles_per_sec` drop beyond the tolerance
    /// fails the diff. Unlike wall time, simulated-cycles-per-host-second
    /// normalises away campaign length, so it is the gauge perf gates
    /// pin (`--host-gate tput`). A missing gauge on either side fails a
    /// gated diff: a perf gate that cannot measure must not pass.
    pub gate_tput: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tolerance_pct: 20.0,
            gate_host: true,
            gate_tput: false,
        }
    }
}

/// The outcome of comparing a candidate manifest against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Human-readable findings, one per line, mismatches first.
    pub lines: Vec<String>,
    /// A sim-deterministic field differed (hash, digest, config or
    /// command) — always a failure: determinism never has a tolerance
    /// band.
    pub sim_mismatch: bool,
    /// The gated host timing exceeded the tolerance band.
    pub host_regression: bool,
    /// Whether host regressions were gated when the diff ran.
    pub host_gated: bool,
    /// The candidate's `host.tput.cycles_per_sec` fell more than the
    /// tolerance below the baseline's (or the gauge was missing while
    /// gated).
    pub tput_regression: bool,
    /// Whether throughput regressions were gated when the diff ran.
    pub tput_gated: bool,
}

impl DiffReport {
    /// Whether the comparison should fail the invoking process.
    pub fn failed(&self) -> bool {
        self.sim_mismatch
            || (self.host_gated && self.host_regression)
            || (self.tput_gated && self.tput_regression)
    }

    /// The findings as one printable block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

/// First-occurrence union of two key sequences, order-preserving.
fn union_keys<'a>(
    a: impl Iterator<Item = &'a str>,
    b: impl Iterator<Item = &'a str>,
) -> Vec<&'a str> {
    let mut out: Vec<&str> = Vec::new();
    for k in a.chain(b) {
        if !out.contains(&k) {
            out.push(k);
        }
    }
    out
}

/// The timing gauge a diff gates on: the bench median when both manifests
/// carry repetition statistics (robust), otherwise the total wall time.
fn gate_timing(m: &Manifest) -> Option<(&'static str, u64)> {
    if let Some(b) = &m.bench {
        return Some(("bench.median_ns", b.median_ns));
    }
    m.host_gauge("host.wall_ns").map(|v| ("host.wall_ns", v))
}

/// Compares `candidate` against `baseline`: byte-exact on the
/// sim-deterministic sections (command, config, hashes, metrics digest),
/// tolerance-banded on host timings. See [`DiffReport::failed`] for the
/// pass/fail rule.
pub fn diff_manifests(baseline: &Manifest, candidate: &Manifest, opts: &DiffOptions) -> DiffReport {
    let mut r = DiffReport {
        host_gated: opts.gate_host,
        tput_gated: opts.gate_tput,
        ..DiffReport::default()
    };
    if baseline.command != candidate.command {
        r.sim_mismatch = true;
        r.lines.push(format!(
            "FAIL command: baseline `{}` vs candidate `{}`",
            baseline.command, candidate.command
        ));
    }
    // Config: the union of keys must agree pairwise — comparing runs of
    // different campaigns is a user error the diff surfaces, not masks.
    let keys = union_keys(
        baseline.config.iter().map(|(k, _)| k.as_str()),
        candidate.config.iter().map(|(k, _)| k.as_str()),
    );
    for key in keys {
        let b = baseline
            .config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v);
        let c = candidate
            .config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v);
        if b != c {
            r.sim_mismatch = true;
            r.lines.push(format!(
                "FAIL config.{key}: baseline {} vs candidate {}",
                b.map_or("<absent>", |v| v),
                c.map_or("<absent>", |v| v),
            ));
        }
    }
    // Sim hashes: exact, over the union of names.
    let names = union_keys(
        baseline.sim_hashes.iter().map(|(k, _)| k.as_str()),
        candidate.sim_hashes.iter().map(|(k, _)| k.as_str()),
    );
    let mut hashes_ok = 0usize;
    for name in names {
        match (baseline.hash(name), candidate.hash(name)) {
            (Some(b), Some(c)) if b == c => hashes_ok += 1,
            (b, c) => {
                r.sim_mismatch = true;
                r.lines.push(format!(
                    "FAIL sim.hashes.{name}: baseline {} vs candidate {}",
                    b.map_or("<absent>".to_owned(), |v| format!("{v:#018x}")),
                    c.map_or("<absent>".to_owned(), |v| format!("{v:#018x}")),
                ));
            }
        }
    }
    if baseline.metrics_digest != candidate.metrics_digest {
        r.sim_mismatch = true;
        r.lines.push(format!(
            "FAIL sim.metrics_digest: baseline {:#018x} vs candidate {:#018x}",
            baseline.metrics_digest, candidate.metrics_digest
        ));
    } else if !r.sim_mismatch {
        r.lines.push(format!(
            "ok   sim: {hashes_ok} hashes and the metrics digest match byte-exactly"
        ));
    }
    // Host: tolerance band on the gate timing; RSS is report-only.
    match (gate_timing(baseline), gate_timing(candidate)) {
        (Some((key, b)), Some((_, c))) if b > 0 => {
            let delta_pct = 100.0 * (c as f64 - b as f64) / b as f64;
            let limit = opts.tolerance_pct;
            if delta_pct > limit {
                r.host_regression = true;
                r.lines.push(format!(
                    "{} {key}: {:.3} ms -> {:.3} ms ({delta_pct:+.1}%, tolerance +{limit:.0}%)",
                    if opts.gate_host { "FAIL" } else { "warn" },
                    b as f64 / 1e6,
                    c as f64 / 1e6,
                ));
            } else {
                r.lines.push(format!(
                    "ok   {key}: {:.3} ms -> {:.3} ms ({delta_pct:+.1}%, tolerance +{limit:.0}%)",
                    b as f64 / 1e6,
                    c as f64 / 1e6,
                ));
            }
        }
        _ => r
            .lines
            .push("warn host: no comparable timing gauge on both sides".to_owned()),
    }
    // Throughput: simulated cycles per host second, higher is better. A
    // drop beyond the tolerance is the regression; growth never fails.
    match (
        baseline.host_gauge("host.tput.cycles_per_sec"),
        candidate.host_gauge("host.tput.cycles_per_sec"),
    ) {
        (Some(b), Some(c)) if b > 0 => {
            let delta_pct = 100.0 * (c as f64 - b as f64) / b as f64;
            let limit = opts.tolerance_pct;
            if delta_pct < -limit {
                r.tput_regression = true;
                r.lines.push(format!(
                    "{} host.tput.cycles_per_sec: {b} -> {c} ({delta_pct:+.1}%, \
                     tolerance -{limit:.0}%)",
                    if opts.gate_tput { "FAIL" } else { "warn" },
                ));
            } else {
                r.lines.push(format!(
                    "ok   host.tput.cycles_per_sec: {b} -> {c} ({delta_pct:+.1}%, \
                     tolerance -{limit:.0}%)",
                ));
            }
        }
        _ if opts.gate_tput => {
            r.tput_regression = true;
            r.lines.push(
                "FAIL host.tput.cycles_per_sec: gauge missing on one side \
                 (a gated throughput diff must be able to measure)"
                    .to_owned(),
            );
        }
        _ => {}
    }
    if let (Some(b), Some(c)) = (
        baseline.host_gauge("host.rss.peak_bytes"),
        candidate.host_gauge("host.rss.peak_bytes"),
    ) {
        if b > 0 && c > 0 {
            r.lines.push(format!(
                "info host.rss.peak_bytes: {:.1} MiB -> {:.1} MiB (report-only)",
                b as f64 / (1 << 20) as f64,
                c as f64 / (1 << 20) as f64,
            ));
        }
    }
    // Mismatches first, then ok/info lines, preserving relative order.
    r.lines.sort_by_key(|l| !l.starts_with("FAIL"));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            command: "bench".to_owned(),
            config: vec![
                ("seed".to_owned(), "42".to_owned()),
                ("faults".to_owned(), "200".to_owned()),
            ],
            sim_hashes: vec![
                ("is".to_owned(), 0x06521c827f174fec),
                ("combined".to_owned(), 0xbc40ca2ec6d2d9bd),
            ],
            metrics_digest: 0xdead_beef_cafe_f00d,
            host: vec![
                ("host.wall_ns".to_owned(), 1_000_000),
                ("host.tput.cycles_per_sec".to_owned(), 30_000_000),
                ("host.rss.peak_bytes".to_owned(), 10 << 20),
            ],
            bench: Some(BenchStats::from_samples(&[90, 100, 110], 1)),
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let m = sample();
        let json = m.to_json();
        let back = Manifest::parse(&json).expect("parses");
        assert_eq!(back, m);
        // Render → parse → render is a fixed point.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn median_and_mad_are_robust() {
        assert_eq!(median(&[]), 0);
        assert_eq!(median(&[7]), 7);
        assert_eq!(median(&[1, 9]), 5);
        let b = BenchStats::from_samples(&[100, 90, 5000, 110, 95], 2);
        assert_eq!(b.median_ns, 100, "outlier must not move the median");
        assert_eq!(b.min_ns, 90);
        // Deviations from 100 are 0, 10, 4900, 10, 5 -> median 10.
        assert_eq!(b.mad_ns, 10);
        assert_eq!(b.reps(), 5);
    }

    #[test]
    fn identical_manifests_pass() {
        let r = diff_manifests(&sample(), &sample(), &DiffOptions::default());
        assert!(!r.failed(), "{}", r.render());
        assert!(!r.sim_mismatch && !r.host_regression);
    }

    #[test]
    fn perturbed_hash_is_a_hard_failure() {
        let mut c = sample();
        c.sim_hashes[1].1 ^= 1;
        let r = diff_manifests(&sample(), &c, &DiffOptions::default());
        assert!(r.sim_mismatch && r.failed());
        assert!(r.lines[0].contains("sim.hashes.combined"), "{}", r.render());
        // Host gating off must not rescue a sim mismatch.
        let r = diff_manifests(
            &sample(),
            &c,
            &DiffOptions {
                gate_host: false,
                ..DiffOptions::default()
            },
        );
        assert!(r.failed());
    }

    #[test]
    fn timing_regression_respects_tolerance_and_gate() {
        let mut c = sample();
        let b = c.bench.as_mut().expect("bench stats");
        b.median_ns = 150; // +50% over the baseline median of 100
        let r = diff_manifests(&sample(), &c, &DiffOptions::default());
        assert!(r.host_regression && r.failed(), "{}", r.render());
        // Within the band: passes.
        c.bench.as_mut().expect("bench stats").median_ns = 115;
        let r = diff_manifests(&sample(), &c, &DiffOptions::default());
        assert!(!r.failed(), "{}", r.render());
        // Report-only mode: regression noted, diff passes.
        c.bench.as_mut().expect("bench stats").median_ns = 150;
        let r = diff_manifests(
            &sample(),
            &c,
            &DiffOptions {
                gate_host: false,
                ..DiffOptions::default()
            },
        );
        assert!(r.host_regression && !r.failed());
    }

    #[test]
    fn tput_gate_fails_on_throughput_drop() {
        let tput_only = DiffOptions {
            gate_host: false,
            gate_tput: true,
            ..DiffOptions::default()
        };
        // -50% throughput: report-only by default, fails the tput gate.
        let mut c = sample();
        c.host[1].1 = 15_000_000;
        let r = diff_manifests(&sample(), &c, &DiffOptions::default());
        assert!(r.tput_regression && !r.failed(), "{}", r.render());
        let r = diff_manifests(&sample(), &c, &tput_only);
        assert!(r.tput_regression && r.failed(), "{}", r.render());
        assert!(r.lines[0].contains("host.tput.cycles_per_sec"));
        // Throughput growth never fails, no matter how large.
        c.host[1].1 = 300_000_000;
        let r = diff_manifests(&sample(), &c, &tput_only);
        assert!(!r.failed(), "{}", r.render());
        // Within the band: passes.
        c.host[1].1 = 27_000_000; // -10% under the default 20% tolerance
        let r = diff_manifests(&sample(), &c, &tput_only);
        assert!(!r.failed(), "{}", r.render());
        // A gated diff that cannot measure must fail, not silently pass.
        c.host.remove(1);
        let r = diff_manifests(&sample(), &c, &tput_only);
        assert!(r.tput_regression && r.failed(), "{}", r.render());
        assert!(
            !diff_manifests(&sample(), &c, &DiffOptions::default()).failed(),
            "ungated diff tolerates the missing gauge"
        );
    }

    #[test]
    fn config_drift_is_a_hard_failure() {
        let mut c = sample();
        c.config[1].1 = "1000".to_owned();
        let r = diff_manifests(&sample(), &c, &DiffOptions::default());
        assert!(r.sim_mismatch);
        assert!(r.lines[0].contains("config.faults"), "{}", r.render());
        // A key present on only one side also fails.
        let mut c = sample();
        c.config.push(("scheme".to_owned(), "local".to_owned()));
        assert!(diff_manifests(&sample(), &c, &DiffOptions::default()).sim_mismatch);
    }

    #[test]
    fn sim_json_is_embedded_in_the_document() {
        let m = sample();
        assert!(m.to_json().contains(&m.sim_json()));
        assert!(m.sim_json().contains("0x06521c827f174fec"));
    }
}
