//! Trace events, the sink trait, and the shareable sink handle.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Maximum number of key/value arguments one event carries (fixed-size so
/// [`TraceEvent`] stays `Copy` and emission never allocates).
pub const MAX_ARGS: usize = 4;

/// Track (Chrome `tid`) used for engine-level events (checkpoints,
/// recoveries, fault injections). Core-local events use the core index as
/// their track, so engine tracks start well above any plausible core count.
pub const TRACK_ENGINE: u32 = 1000;

/// Track (Chrome `tid`) used for memory-system events (flushes, coherence).
pub const TRACK_MEM: u32 = 1001;

/// What shape an event has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: `[cycle, cycle + dur]` (Chrome `ph:"X"`).
    Span,
    /// A point in time (Chrome `ph:"i"`; `dur` is ignored).
    Instant,
    /// A counter sample (Chrome/Perfetto `ph:"C"`): each argument renders
    /// as one series on the event's counter track; `dur` is ignored.
    Counter,
}

/// One cycle-stamped event. Names and categories are `'static` string
/// literals from the emission sites and argument values are plain `u64`,
/// so recording an event allocates nothing and the event is `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span or instant.
    pub kind: EventKind,
    /// Event name (Chrome `name`), e.g. `"ckpt"` or `"recovery.replay"`.
    pub name: &'static str,
    /// Category (Chrome `cat`), e.g. `"ckpt"`, `"recovery"`, `"mem"`.
    pub cat: &'static str,
    /// Track the event renders on (Chrome `tid`): a core index or one of
    /// [`TRACK_ENGINE`] / [`TRACK_MEM`].
    pub track: u32,
    /// Start time in simulated core cycles (Chrome `ts`).
    pub cycle: u64,
    /// Duration in simulated core cycles (spans only).
    pub dur: u64,
    /// Up to [`MAX_ARGS`] key/value arguments; `None` slots are unused.
    pub args: [Option<(&'static str, u64)>; MAX_ARGS],
}

impl TraceEvent {
    /// A span covering `[cycle, cycle + dur]` on `track`.
    pub fn span(name: &'static str, cat: &'static str, track: u32, cycle: u64, dur: u64) -> Self {
        TraceEvent {
            kind: EventKind::Span,
            name,
            cat,
            track,
            cycle,
            dur,
            args: [None; MAX_ARGS],
        }
    }

    /// An instant at `cycle` on `track`.
    pub fn instant(name: &'static str, cat: &'static str, track: u32, cycle: u64) -> Self {
        TraceEvent {
            kind: EventKind::Instant,
            name,
            cat,
            track,
            cycle,
            dur: 0,
            args: [None; MAX_ARGS],
        }
    }

    /// A counter sample at `cycle` on `track`; attach up to [`MAX_ARGS`]
    /// series with [`TraceEvent::with_arg`]. Renders as a Perfetto/Chrome
    /// counter track (`ph:"C"`).
    pub fn counter(name: &'static str, cat: &'static str, track: u32, cycle: u64) -> Self {
        TraceEvent {
            kind: EventKind::Counter,
            name,
            cat,
            track,
            cycle,
            dur: 0,
            args: [None; MAX_ARGS],
        }
    }

    /// Attaches an argument in the first free slot (silently dropped when
    /// all [`MAX_ARGS`] slots are taken — arguments are best-effort
    /// annotations, never load-bearing data).
    pub fn with_arg(mut self, key: &'static str, value: u64) -> Self {
        if let Some(slot) = self.args.iter_mut().find(|a| a.is_none()) {
            *slot = Some((key, value));
        }
        self
    }

    /// End of the span (`cycle + dur`, saturating).
    pub fn end_cycle(&self) -> u64 {
        self.cycle.saturating_add(self.dur)
    }
}

/// Where emitted events go. Implementations must be deterministic: event
/// order is emission order and carries meaning for the exporters.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, ev: &TraceEvent);
}

/// A sink that buffers every event in memory, in emission order.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorded events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Takes the recorded events, leaving the sink empty.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// A cheaply clonable handle to one shared sink, threaded through the
/// simulator, memory system and checkpoint engine so they all emit into
/// the same event stream. The default handle is *disabled*: `emit` is a
/// no-op and `enabled()` is `false`, which emission sites use to skip any
/// per-event work entirely.
///
/// The simulation is single-threaded, so the handle is `Rc<RefCell<…>>`,
/// not a lock.
#[derive(Clone, Default)]
pub struct SharedSink {
    inner: Option<Rc<RefCell<dyn TraceSink>>>,
    detail: bool,
}

impl fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedSink")
            .field("enabled", &self.enabled())
            .field("detail", &self.detail)
            .finish()
    }
}

impl SharedSink {
    /// The disabled handle: records nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A handle over a fresh [`MemorySink`], plus the owning reference the
    /// caller keeps to read the events back after the run.
    pub fn memory() -> (Self, Rc<RefCell<MemorySink>>) {
        let sink = Rc::new(RefCell::new(MemorySink::new()));
        let dynamic: Rc<RefCell<dyn TraceSink>> = sink.clone();
        (
            SharedSink {
                inner: Some(dynamic),
                detail: false,
            },
            sink,
        )
    }

    /// A handle over an arbitrary sink implementation.
    pub fn from_sink(sink: Rc<RefCell<dyn TraceSink>>) -> Self {
        SharedSink {
            inner: Some(sink),
            detail: false,
        }
    }

    /// True when events are being recorded. Emission sites check this
    /// before constructing events, keeping the disabled path to one branch.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when *high-volume* detail events (per-store, per-assoc,
    /// per-coherence-transfer instants) should be emitted too. Off by
    /// default even on an enabled sink — real workloads retire millions of
    /// stores and the low-volume spans plus counter samples already tell
    /// the timeline story.
    #[inline]
    pub fn detail(&self) -> bool {
        self.detail
    }

    /// Enables or disables high-volume detail events (chainable).
    pub fn with_detail(mut self, on: bool) -> Self {
        self.detail = on;
        self
    }

    /// Records `ev` if the handle is enabled.
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        if let Some(s) = &self.inner {
            s.borrow_mut().record(&ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let s = SharedSink::disabled();
        assert!(!s.enabled());
        s.emit(TraceEvent::instant("x", "t", 0, 1)); // no-op, no panic
    }

    #[test]
    fn memory_sink_records_in_order() {
        let (s, h) = SharedSink::memory();
        assert!(s.enabled());
        assert!(!s.detail());
        s.emit(TraceEvent::span("a", "t", 0, 10, 5).with_arg("k", 1));
        s.emit(TraceEvent::instant("b", "t", 1, 12));
        let sink = h.borrow();
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[0].name, "a");
        assert_eq!(sink.events()[0].args[0], Some(("k", 1)));
        assert_eq!(sink.events()[0].end_cycle(), 15);
        assert_eq!(sink.events()[1].kind, EventKind::Instant);
    }

    #[test]
    fn clones_share_one_stream() {
        let (s, h) = SharedSink::memory();
        let s2 = s.clone();
        s.emit(TraceEvent::instant("a", "t", 0, 1));
        s2.emit(TraceEvent::instant("b", "t", 0, 2));
        assert_eq!(h.borrow().len(), 2);
    }

    #[test]
    fn args_overflow_is_dropped() {
        let mut ev = TraceEvent::span("a", "t", 0, 0, 1);
        for i in 0..(MAX_ARGS as u64 + 2) {
            ev = ev.with_arg("k", i);
        }
        assert_eq!(ev.args.len(), MAX_ARGS);
        assert_eq!(ev.args[MAX_ARGS - 1], Some(("k", MAX_ARGS as u64 - 1)));
    }
}
