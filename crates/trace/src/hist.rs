//! Log-bucketed integer histogram with deterministic merge and digests.
//!
//! An HdrHistogram-style fixed-shape histogram: values are bucketed by
//! magnitude with [`SUB_BITS`] bits of sub-bucket resolution, so relative
//! quantization error is bounded by `2^-SUB_BITS` while the whole `u64`
//! range is representable. Everything is integer arithmetic over a fixed
//! bucket layout, so two histograms built from the same value stream are
//! bit-identical, [`Histogram::merge`] is associative and commutative, and
//! percentile digests are byte-deterministic across runs and platforms.

/// Sub-bucket resolution bits: each power-of-two magnitude range is split
/// into `2^SUB_BITS` equal sub-buckets (values below `2^SUB_BITS` are
/// recorded exactly).
pub const SUB_BITS: u32 = 4;

/// Number of sub-buckets per magnitude range.
const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total number of buckets: one exact bucket per value below `2^SUB_BITS`,
/// then `SUB_COUNT` buckets per remaining magnitude (64 − SUB_BITS of them).
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT;

/// Bucket index for `v`. Values below `2^SUB_BITS` map to themselves;
/// larger values map by (magnitude, top `SUB_BITS` mantissa bits).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = ((v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
        (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub
    }
}

/// Highest value that maps into bucket `i` — the representative value
/// reported by percentile queries (conservative: never under-reports).
#[inline]
fn bucket_high(i: usize) -> u64 {
    if i < SUB_COUNT {
        i as u64
    } else {
        let major = (i >> SUB_BITS) as u32; // >= 1
        let sub = (i & (SUB_COUNT - 1)) as u64;
        let msb = major + SUB_BITS - 1;
        let step = 1u64 << (msb - SUB_BITS);
        let low = (1u64 << msb) + sub * step;
        low + (step - 1)
    }
}

/// A deterministic log-bucketed `u64` histogram.
///
/// Records integer observations (cycles, bytes, lengths, …) into a fixed
/// bucket layout. Supports exact count/sum/min/max, bounded-error
/// percentiles, and a merge that is associative, commutative and loss-free
/// (bucket counts add), so per-shard histograms combine into exactly the
/// histogram of the combined stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value` (no-op when `n == 0`).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds `other` into `self` bucket-by-bucket. Merging is associative
    /// and commutative and equals recording both streams into one
    /// histogram, so shard-then-merge is exact.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Value at percentile `pct` (clamped to 0..=100): the upper bound of
    /// the bucket holding the observation of rank `ceil(count·pct/100)`.
    /// Monotone non-decreasing in `pct`; returns 0 on an empty histogram
    /// and never exceeds the bucket bound above [`Histogram::max`].
    pub fn percentile(&self, pct: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = u64::from(pct.min(100));
        // Rank of the target observation, 1-based; pct == 0 reads rank 1.
        let rank = ((self.count * pct).div_ceil(100)).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i);
            }
        }
        bucket_high(NUM_BUCKETS - 1)
    }

    /// The standard digest: `(p50, p90, p99)`.
    pub fn digest(&self) -> (u64, u64, u64) {
        (
            self.percentile(50),
            self.percentile(90),
            self.percentile(99),
        )
    }

    /// Non-empty buckets as `(bucket_upper_bound, count)`, in ascending
    /// value order — the stable export form.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_high(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..(1 << SUB_BITS) {
            h.record(v);
            assert_eq!(bucket_high(bucket_of(v)), v, "value {v} must be exact");
        }
        assert_eq!(h.count(), 1 << SUB_BITS);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), (1 << SUB_BITS) - 1);
    }

    #[test]
    fn bucket_bound_error_is_within_one_sub_bucket() {
        for &v in &[16u64, 17, 100, 1000, 65_535, 1 << 40, u64::MAX] {
            let hi = bucket_high(bucket_of(v));
            assert!(hi >= v, "bucket bound {hi} under-reports {v}");
            // Relative error bounded by 2^-SUB_BITS.
            assert!(
                hi - v <= v >> SUB_BITS,
                "bucket bound {hi} too far from {v}"
            );
        }
    }

    #[test]
    fn percentiles_on_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p90, p99) = h.digest();
        assert!((480..=540).contains(&p50), "p50 was {p50}");
        assert!((880..=960).contains(&p90), "p90 was {p90}");
        assert!((980..=1060).contains(&p99), "p99 was {p99}");
        assert_eq!(h.percentile(100), bucket_high(bucket_of(1000)));
        assert!(h.percentile(100) >= p99);
        assert_eq!(h.mean(), 500);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(50), 0);
        assert!(h.is_empty());
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 99, 1 << 20, 7, 7, 12_345] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 500, 1 << 33] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
