//! Host-side performance observability: wall-clock phase timers,
//! throughput derivation, peak-RSS sampling and per-worker load counters.
//!
//! Everything else in this crate measures *simulated* time and is bound by
//! the determinism contract. This module is the one deliberate exception:
//! it measures the *host* — how fast the simulator itself runs — and its
//! numbers legitimately vary between machines, runs and worker counts.
//! The two worlds stay separated by key prefix: host measurements live
//! under `host.*` keys, are reported in run manifests next to (never
//! inside) the sim-deterministic section, and are compared with tolerance
//! bands by `acr_cli diff`, not byte-exactly.

use std::time::Instant;

/// One worker's share of a parallel run: how long it was busy inside work
/// items and how many items the dynamic handout gave it. Produced by
/// `ParallelRunner` in `acr-ckpt`; published under `host.jobs.*`.
///
/// Load data is host-side observability only: which cases land on which
/// worker depends on scheduling, so these counters are *not*
/// jobs-invariant and never enter content hashes or report equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Nanoseconds spent executing work items.
    pub busy_ns: u64,
    /// Work items executed.
    pub items: u64,
}

/// Merges per-worker loads index-by-index (worker 0 with worker 0, …),
/// padding `into` as needed — how multi-workload runs combine the loads
/// of consecutive parallel sections into one per-worker view.
pub fn merge_loads(into: &mut Vec<WorkerLoad>, from: &[WorkerLoad]) {
    if into.len() < from.len() {
        into.resize(from.len(), WorkerLoad::default());
    }
    for (slot, load) in into.iter_mut().zip(from) {
        slot.busy_ns += load.busy_ns;
        slot.items += load.items;
    }
}

/// A monotonic wall-clock stopwatch — the one sanctioned way to time host
/// work in this workspace (replaces ad-hoc `Instant::now()` pairs).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds elapsed since start (saturating at `u64::MAX`, which
    /// is ~584 years).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since start.
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Peak resident set size of the current process in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns 0 where the proc filesystem is
/// unavailable (non-Linux hosts) — manifests record the 0 rather than
/// omitting the key, so diffs stay structural.
pub fn peak_rss_bytes() -> u64 {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Events (or cycles, or instructions) per host second, as an integer
/// rate. Returns 0 when no time elapsed.
pub fn per_second(amount: u64, wall_ns: u64) -> u64 {
    if wall_ns == 0 {
        return 0;
    }
    ((amount as u128) * 1_000_000_000 / (wall_ns as u128)) as u64
}

/// Collects one run's host-side measurements: named phase timings, derived
/// throughput, worker loads and arbitrary `host.*` gauges, rendered as an
/// ordered `host.*` key list for the run manifest.
///
/// Keys come out in a fixed layout — `host.wall_ns` first, then
/// `host.phase.*` in first-use order, then every extra in first-use order,
/// then `host.rss.peak_bytes` — so two manifests from the same code path
/// always have the same key set and order even though the values differ.
#[derive(Debug)]
pub struct HostPerf {
    start: Stopwatch,
    phases: Vec<(String, u64)>,
    extra: Vec<(String, u64)>,
}

impl HostPerf {
    /// Starts the run clock.
    pub fn start() -> Self {
        HostPerf {
            start: Stopwatch::start(),
            phases: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Times `f` and charges its wall time to `phase` (accumulating onto
    /// any previous time under the same name).
    pub fn time<R>(&mut self, phase: &str, f: impl FnOnce() -> R) -> R {
        let sw = Stopwatch::start();
        let out = f();
        self.add_phase_ns(phase, sw.elapsed_ns());
        out
    }

    /// Adds `ns` to `phase` (created on first use, keeping first-use
    /// order).
    pub fn add_phase_ns(&mut self, phase: &str, ns: u64) {
        if let Some((_, slot)) = self.phases.iter_mut().find(|(p, _)| p == phase) {
            *slot += ns;
        } else {
            self.phases.push((phase.to_owned(), ns));
        }
    }

    /// Sets an extra gauge under `host.<key>` (overwriting; first-use
    /// order).
    pub fn set(&mut self, key: &str, value: u64) {
        if let Some((_, slot)) = self.extra.iter_mut().find(|(k, _)| k == key) {
            *slot = value;
        } else {
            self.extra.push((key.to_owned(), value));
        }
    }

    /// Derives throughput gauges from simulated totals over `wall_ns`:
    /// `host.tput.cycles_per_sec` and `host.tput.instr_per_sec` — the
    /// "simulated time per host time" rates the ROADMAP's speed goal is
    /// judged by.
    pub fn record_throughput(&mut self, sim_cycles: u64, retired: u64, wall_ns: u64) {
        self.set("tput.cycles_per_sec", per_second(sim_cycles, wall_ns));
        self.set("tput.instr_per_sec", per_second(retired, wall_ns));
    }

    /// Publishes worker utilization under `host.jobs.*`: the requested and
    /// resolved worker counts, per-worker busy time and item counts, and a
    /// load-imbalance gauge (`100 * max_busy / mean_busy - 100`, 0 for a
    /// perfectly balanced pool).
    pub fn record_jobs(&mut self, requested: u64, resolved: u64, loads: &[WorkerLoad]) {
        self.set("jobs.requested", requested);
        self.set("jobs.resolved", resolved);
        self.set("jobs.count", loads.len() as u64);
        for (i, load) in loads.iter().enumerate() {
            self.set(&format!("jobs.{i}.busy_ns"), load.busy_ns);
            self.set(&format!("jobs.{i}.items"), load.items);
        }
        let busy: Vec<u64> = loads.iter().map(|l| l.busy_ns).collect();
        let sum: u64 = busy.iter().sum();
        if !busy.is_empty() && sum > 0 {
            let mean = sum / busy.len() as u64;
            let max = *busy.iter().max().expect("non-empty");
            self.set(
                "jobs.imbalance_pct",
                (max * 100 / mean.max(1)).saturating_sub(100),
            );
        }
    }

    /// Nanoseconds since the run clock started.
    pub fn wall_ns(&self) -> u64 {
        self.start.elapsed_ns()
    }

    /// Renders the collected measurements as an ordered `host.*` key list
    /// (stamping the total wall time and peak RSS at this moment).
    pub fn finish(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(2 + self.phases.len() + self.extra.len());
        out.push(("host.wall_ns".to_owned(), self.wall_ns()));
        for (p, ns) in &self.phases {
            out.push((format!("host.phase.{p}.ns"), *ns));
        }
        for (k, v) in &self.extra {
            out.push((format!("host.{k}"), *v));
        }
        out.push(("host.rss.peak_bytes".to_owned(), peak_rss_bytes()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_first_use_order() {
        let mut p = HostPerf::start();
        p.add_phase_ns("run", 10);
        p.add_phase_ns("build", 5);
        p.add_phase_ns("run", 7);
        let keys: Vec<(String, u64)> = p
            .finish()
            .into_iter()
            .filter(|(k, _)| k.starts_with("host.phase."))
            .collect();
        assert_eq!(
            keys,
            [
                ("host.phase.run.ns".to_owned(), 17),
                ("host.phase.build.ns".to_owned(), 5)
            ]
        );
    }

    #[test]
    fn time_charges_the_closure_and_returns_its_value() {
        let mut p = HostPerf::start();
        let v = p.time("work", || 41 + 1);
        assert_eq!(v, 42);
        let report = p.finish();
        let (_, ns) = report
            .iter()
            .find(|(k, _)| k == "host.phase.work.ns")
            .expect("phase recorded");
        // Can't assert a wall-clock value, only that one was recorded and
        // that the layout starts with the total.
        assert!(report[0].0 == "host.wall_ns" && report[0].1 >= *ns);
    }

    #[test]
    fn jobs_metrics_cover_every_worker() {
        let mut p = HostPerf::start();
        p.record_jobs(
            0,
            2,
            &[
                WorkerLoad {
                    busy_ns: 300,
                    items: 3,
                },
                WorkerLoad {
                    busy_ns: 100,
                    items: 1,
                },
            ],
        );
        let report = p.finish();
        let get = |k: &str| report.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("host.jobs.resolved"), Some(2));
        assert_eq!(get("host.jobs.count"), Some(2));
        assert_eq!(get("host.jobs.0.busy_ns"), Some(300));
        assert_eq!(get("host.jobs.1.items"), Some(1));
        // mean busy = 200, max = 300 -> 50% imbalance.
        assert_eq!(get("host.jobs.imbalance_pct"), Some(50));
    }

    #[test]
    fn merge_loads_is_index_wise_and_pads() {
        let mut a = vec![WorkerLoad {
            busy_ns: 5,
            items: 1,
        }];
        merge_loads(
            &mut a,
            &[
                WorkerLoad {
                    busy_ns: 10,
                    items: 2,
                },
                WorkerLoad {
                    busy_ns: 20,
                    items: 3,
                },
            ],
        );
        assert_eq!(
            a,
            [
                WorkerLoad {
                    busy_ns: 15,
                    items: 3
                },
                WorkerLoad {
                    busy_ns: 20,
                    items: 3
                }
            ]
        );
    }

    #[test]
    fn per_second_handles_edges() {
        assert_eq!(per_second(100, 0), 0);
        assert_eq!(per_second(1_000, 1_000_000_000), 1_000);
        assert_eq!(per_second(3, 2_000_000_000), 1, "integer floor");
    }

    #[test]
    fn peak_rss_is_nonzero_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes() > 0);
        }
    }
}
