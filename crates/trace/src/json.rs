//! A minimal JSON parser (no external dependencies) plus a Chrome
//! `trace_event` validator — the round-trip half of the exporter tests and
//! the CI trace check.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (held as `f64`; every number this repo emits is an
    /// integer well inside `f64`'s exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Maximum nesting depth accepted (defence against pathological input; the
/// traces this repo emits nest three levels deep).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad \\u digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?);
                            continue; // hex4 advanced pos past the escape
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the first
/// syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// What [`validate_chrome_trace`] found in a well-formed trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeSummary {
    /// `ph:"X"` complete events.
    pub spans: usize,
    /// `ph:"i"` instant events.
    pub instants: usize,
    /// `ph:"C"` counter events.
    pub counters: usize,
    /// Event count per event name.
    pub names: BTreeMap<String, usize>,
}

impl ChromeSummary {
    /// Events recorded under `name`.
    pub fn count(&self, name: &str) -> usize {
        self.names.get(name).copied().unwrap_or(0)
    }
}

/// Parses `text` as Chrome `trace_event` JSON and checks its structural
/// invariants:
///
/// * top level is an object with a `traceEvents` array;
/// * every event has a string `name`/`ph` and integer `ts`; `X` events
///   also carry an integer `dur`;
/// * per track (`tid`), `X` spans nest properly — sorted by start (ties:
///   longest first), every span is either disjoint from or fully contained
///   in the enclosing span.
///
/// # Errors
///
/// Returns the first violated invariant as a message.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeSummary, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut summary = ChromeSummary::default();
    // (tid, ts, dur, name) for the nesting check.
    let mut spans: Vec<(u64, u64, u64, String)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `name`"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i} ({name}): missing integer `ts`"))?;
        *summary.names.entry(name.to_owned()).or_insert(0) += 1;
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("event {i} ({name}): X without integer `dur`"))?;
                let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
                spans.push((tid, ts, dur, name.to_owned()));
                summary.spans += 1;
            }
            "i" | "I" => summary.instants += 1,
            "C" => summary.counters += 1,
            other => return Err(format!("event {i} ({name}): unsupported ph `{other}`")),
        }
    }
    // Nesting: per tid, spans must form a forest under containment.
    spans.sort_by(|a, b| {
        (a.0, a.1, std::cmp::Reverse(a.2)).cmp(&(b.0, b.1, std::cmp::Reverse(b.2)))
    });
    let mut stack: Vec<(u64, u64, String)> = Vec::new(); // (end, tid, name)
    let mut cur_tid = None;
    for (tid, ts, dur, name) in &spans {
        if cur_tid != Some(*tid) {
            stack.clear();
            cur_tid = Some(*tid);
        }
        while matches!(stack.last(), Some((end, _, _)) if *end <= *ts) {
            stack.pop();
        }
        if let Some((end, _, parent)) = stack.last() {
            if ts + dur > *end {
                return Err(format!(
                    "span `{name}` [{ts}, {}) on track {tid} partially overlaps `{parent}` \
                     ending at {end}",
                    ts + dur
                ));
            }
        }
        stack.push((ts + dur, *tid, name.clone()));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::chrome_trace_json;
    use crate::event::TraceEvent;

    #[test]
    fn parses_scalars_arrays_objects() {
        let v = parse_json(r#"{"a":[1,-2.5,true,null,"x\nA"],"b":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4].as_str(), Some("x\nA"));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"abc").is_err());
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("tru").is_err());
    }

    #[test]
    fn decodes_escape_sequences() {
        let v = parse_json(r#""a\"b\\c\/d\b\f\n\r\t""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/d\u{8}\u{c}\n\r\t"));
        // \u escapes: ASCII, BMP, a surrogate pair, and an escaped NUL.
        let v = parse_json("\"\\u0041\\u00e9\\u2603\\ud83d\\ude00\\u0000\"").unwrap();
        assert_eq!(v.as_str(), Some("A\u{e9}\u{2603}\u{1f600}\u{0}"));
        // Raw (unescaped) UTF-8 passes through untouched.
        let v = parse_json("\"é☃😀\"").unwrap();
        assert_eq!(v.as_str(), Some("é☃😀"));
        // Malformed escapes are rejected, not mangled.
        assert!(parse_json(r#""\q""#).is_err(), "unknown escape");
        assert!(parse_json(r#""\u12""#).is_err(), "truncated \\u");
        assert!(parse_json(r#""\u12g4""#).is_err(), "non-hex \\u digit");
        assert!(parse_json(r#""\ud800""#).is_err(), "lone high surrogate");
        assert!(parse_json("\"\\").is_err(), "escape at end of input");
    }

    #[test]
    fn deeply_nested_arrays_hit_the_depth_limit() {
        // Exactly at the limit: parses.
        // The outermost value parses at depth 0, so MAX_DEPTH+1 nested
        // arrays still parse; one more trips the guard.
        let ok_depth = 129;
        let ok = format!("{}{}", "[".repeat(ok_depth), "]".repeat(ok_depth));
        assert!(parse_json(&ok).is_ok(), "depth {ok_depth} must parse");
        // One past: rejected with the depth message, not a stack overflow.
        let too_deep = format!("{}{}", "[".repeat(ok_depth + 1), "]".repeat(ok_depth + 1));
        let err = parse_json(&too_deep).unwrap_err();
        assert!(err.contains("nesting too deep"), "{err}");
        // Same guard for objects.
        let mut obj = String::new();
        for _ in 0..(ok_depth + 1) {
            obj.push_str("{\"k\":");
        }
        obj.push('0');
        obj.push_str(&"}".repeat(ok_depth + 1));
        let err = parse_json(&obj).unwrap_err();
        assert!(err.contains("nesting too deep"), "{err}");
    }

    #[test]
    fn exporter_output_round_trips() {
        let events = [
            TraceEvent::span("recovery", "recovery", 1000, 100, 50).with_arg("safe_epoch", 2),
            TraceEvent::span("recovery.replay", "recovery", 1000, 110, 20),
            TraceEvent::instant("fault.inject", "fault", 3, 90),
        ];
        let json = chrome_trace_json(&events, None);
        let summary = validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.count("recovery"), 1);
        assert_eq!(summary.count("recovery.replay"), 1);
    }

    #[test]
    fn partial_overlap_is_rejected() {
        let json = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":10,"tid":1},
            {"name":"b","ph":"X","ts":5,"dur":10,"tid":1}
        ]}"#;
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
        // Same shapes on different tracks are fine.
        let json = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":10,"tid":1},
            {"name":"b","ph":"X","ts":5,"dur":10,"tid":2}
        ]}"#;
        assert!(validate_chrome_trace(json).is_ok());
    }

    #[test]
    fn containment_and_adjacency_pass() {
        let json = r#"{"traceEvents":[
            {"name":"parent","ph":"X","ts":0,"dur":100,"tid":1},
            {"name":"child","ph":"X","ts":10,"dur":20,"tid":1},
            {"name":"sibling","ph":"X","ts":30,"dur":70,"tid":1},
            {"name":"next","ph":"X","ts":100,"dur":5,"tid":1}
        ]}"#;
        let s = validate_chrome_trace(json).unwrap();
        assert_eq!(s.spans, 4);
    }
}
