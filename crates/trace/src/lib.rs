//! # acr-trace — deterministic cycle-stamped tracing & unified metrics
//!
//! The observability substrate of the ACR reproduction: what Sniper+McPAT's
//! built-in instrumentation gave the paper's authors for free. The crate is
//! dependency-free (pure `std`) so every other layer — `acr-mem`,
//! `acr-sim`, `acr-ckpt`, `acr-energy`, `acr` — can depend on it without
//! cycles.
//!
//! ## Determinism contract
//!
//! Every timestamp is a **simulated core cycle** — no wall clock, no host
//! randomness, no hash-map iteration order. Two runs with the same seed
//! produce byte-identical trace and metrics exports. Exporters therefore
//! use only [`u64`] metric values and `BTreeMap`-ordered keys.
//!
//! The one deliberate exception is the host-performance module
//! ([`Stopwatch`], [`HostPerf`], [`WorkerLoad`]): it measures how fast the
//! simulator itself runs on the host, publishes under `host.*` keys only,
//! and its numbers never enter content hashes or sim-deterministic
//! exports. Run manifests ([`Manifest`]) carry both worlds side by side —
//! byte-exact sim sections, tolerance-banded host sections — and
//! [`diff_manifests`] compares them accordingly.
//!
//! ## Zero cost when disabled
//!
//! The default [`SharedSink::disabled`] records nothing and every emission
//! site guards on a cached `enabled()` bool; tracing is purely
//! observational (hooks charge no simulated cycles), so an untraced run is
//! cycle-for-cycle and hash-for-hash identical to a traced one.
//!
//! ## Event taxonomy
//!
//! * **Spans** (`ph:"X"` in Chrome terms) — durations: checkpoint commits,
//!   checkpoint intervals, recoveries with restore/slice-replay sub-spans,
//!   cache flushes.
//! * **Instants** (`ph:"i"`) — points: fault injections, barrier releases,
//!   detail-gated store/assoc/coherence events.
//! * **Counter samples** (`ph:"C"`) — the [`MetricsRegistry`] snapshotted
//!   by a [`Sampler`] every K cycles into a [`TimeSeries`].
//!
//! ```
//! use acr_trace::{chrome_trace_json, MetricsRegistry, Sampler, SharedSink, TraceEvent};
//!
//! let (sink, handle) = SharedSink::memory();
//! sink.emit(TraceEvent::span("ckpt", "ckpt", acr_trace::TRACK_ENGINE, 100, 40));
//! let mut reg = MetricsRegistry::new();
//! reg.set("mem.l1d.hits", 17);
//! let mut sampler = Sampler::new(50);
//! sampler.record(100, &reg);
//! let json = chrome_trace_json(handle.borrow().events(), Some(sampler.series()));
//! assert!(json.contains("\"ph\":\"X\""));
//! assert!(json.contains("mem.l1d.hits"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod chrome;
mod event;
mod hash;
mod hist;
mod json;
mod manifest;
mod metrics;
mod perf;
mod recorder;

pub use chrome::{chrome_trace_json, push_json_string};
pub use event::{
    EventKind, MemorySink, SharedSink, TraceEvent, TraceSink, MAX_ARGS, TRACK_ENGINE, TRACK_MEM,
};
pub use hash::{fnv1a, Fnv1a, FNV_OFFSET, FNV_PRIME};
pub use hist::{Histogram, NUM_BUCKETS, SUB_BITS};
pub use json::{parse_json, validate_chrome_trace, ChromeSummary, Json};
pub use manifest::{
    diff_manifests, median, BenchStats, DiffOptions, DiffReport, Manifest, MANIFEST_SCHEMA,
};
pub use metrics::{MetricsRegistry, Sample, Sampler, TimeSeries};
pub use perf::{merge_loads, peak_rss_bytes, per_second, HostPerf, Stopwatch, WorkerLoad};
pub use recorder::{FlightRecorder, Ring, DEFAULT_CORE_RING, DEFAULT_GLOBAL_RING};
