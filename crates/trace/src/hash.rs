//! Shared FNV-1a (64-bit) hashing.
//!
//! Every content hash in the workspace — campaign report hashes, log-record
//! and checkpoint integrity checksums, the CLI's combined hash, metrics
//! digests — is the same FNV-1a fold over little-endian bytes. The
//! algorithm used to be duplicated at each site; this module is the single
//! definition, and the golden-hash tests (`tests/golden_hashes.rs`) pin
//! that consolidating it changed no produced value.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher.
///
/// ```
/// use acr_trace::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"acr");
/// assert_eq!(h.finish(), acr_trace::fnv1a(b"acr"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher at the offset basis.
    #[inline]
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds one byte.
    #[inline]
    pub fn write_byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Folds a byte slice.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_byte(b);
        }
    }

    /// Folds a `u64` as its little-endian bytes — the convention every
    /// checksum in the workspace uses for word-sized data.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"split");
        h.write(b" input");
        assert_eq!(h.finish(), fnv1a(b"split input"));
    }

    #[test]
    fn write_u64_is_le_byte_fold() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }
}
