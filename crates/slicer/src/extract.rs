//! Backward slice extraction for a single store.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use acr_isa::{Instr, Reg, Slice, SliceInstr, SliceOperand, ThreadCode, MAX_SLICE_INPUTS};

use crate::block::{basic_blocks, block_of};

/// Why a store could not be given a Slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RejectReason {
    /// The stored value involves no arithmetic (a pure copy of a load or a
    /// live-in): buffering its inputs would be equivalent to checkpointing
    /// the value itself, so recomputation cannot win.
    NoArith,
    /// The Slice exceeds the configured length threshold (applied by the
    /// pass, recorded here when an explicit cap is used).
    TooLong,
    /// More inputs than the operand buffer can capture.
    TooManyInputs,
    /// An input register is overwritten between its producing point and
    /// the `ASSOC-ADDR`, so its value cannot be captured from the register
    /// file (Section II-B discusses scratchpad alternatives; we model the
    /// simple register-file capture).
    InputClobbered,
    /// The instruction at the given pc is not a store.
    NotAStore,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::NoArith => "no arithmetic in producer chain",
            RejectReason::TooLong => "slice exceeds length threshold",
            RejectReason::TooManyInputs => "too many input operands",
            RejectReason::InputClobbered => "input register clobbered before assoc",
            RejectReason::NotAStore => "not a store instruction",
        };
        f.write_str(s)
    }
}

/// A successfully extracted Slice for one static store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedSlice {
    /// The Slice (validated).
    pub slice: Slice,
    /// Registers to capture as inputs, in Slice input order.
    pub input_regs: Vec<Reg>,
    /// The store's instruction index.
    pub store_pc: u32,
}

/// Hard cap on extracted slice length; Table II sweeps thresholds up to
/// 50, so anything beyond this is never useful.
const HARD_LEN_CAP: usize = 256;

/// How the backward walk resolved a demanded register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolution {
    /// Constant-folded immediate.
    Imm(u64),
    /// Slice input (load result or block live-in), resolved at `def_pc`
    /// (`None` for live-ins, conceptually resolved at block entry).
    Input { def_pc: Option<u32> },
    /// An included arithmetic instruction at `pc`.
    Arith { pc: u32 },
}

/// Extracts the backward slice for the store at `store_pc` of thread
/// `code`.
///
/// # Errors
///
/// Returns the [`RejectReason`] making the store unsliceable.
pub fn extract_store_slice(
    code: &ThreadCode,
    store_pc: u32,
) -> Result<ExtractedSlice, RejectReason> {
    let blocks = basic_blocks(code);
    extract_in_blocks(code, &blocks, store_pc)
}

/// As [`extract_store_slice`] but with precomputed basic blocks (the pass
/// calls this in a loop).
pub(crate) fn extract_in_blocks(
    code: &ThreadCode,
    blocks: &[(u32, u32)],
    store_pc: u32,
) -> Result<ExtractedSlice, RejectReason> {
    let Some(Instr::Store { rs, .. }) = code.fetch(store_pc) else {
        return Err(RejectReason::NotAStore);
    };
    let rs = *rs;
    let (bs, _be) = block_of(blocks, store_pc);

    // Backward demand-driven walk.
    let mut demands: BTreeSet<Reg> = BTreeSet::new();
    demands.insert(rs);
    // Resolution per (pc) for included/resolver defs, and per live-in reg.
    let mut resolved_at: BTreeMap<u32, (Reg, Resolution)> = BTreeMap::new();
    let mut included = 0usize;
    for q in (bs..store_pc).rev() {
        let instr = &code.instrs()[q as usize];
        let Some(rd) = instr.def() else { continue };
        if !demands.remove(&rd) {
            continue;
        }
        match instr {
            Instr::Imm { imm, .. } => {
                resolved_at.insert(q, (rd, Resolution::Imm(*imm)));
            }
            Instr::Load { .. } => {
                resolved_at.insert(q, (rd, Resolution::Input { def_pc: Some(q) }));
            }
            Instr::Alu { ra, rb, .. } => {
                included += 1;
                if included > HARD_LEN_CAP {
                    return Err(RejectReason::TooLong);
                }
                resolved_at.insert(q, (rd, Resolution::Arith { pc: q }));
                demands.insert(*ra);
                demands.insert(*rb);
            }
            Instr::AluI { ra, .. } => {
                included += 1;
                if included > HARD_LEN_CAP {
                    return Err(RejectReason::TooLong);
                }
                resolved_at.insert(q, (rd, Resolution::Arith { pc: q }));
                demands.insert(*ra);
            }
            _ => unreachable!("def() only for Imm/Alu/AluI/Load"),
        }
    }
    // Remaining demands are block live-ins → inputs.
    let live_ins: Vec<Reg> = demands.iter().copied().collect();

    // Assign input slots in deterministic order: live-ins first (by reg),
    // then load-resolved inputs by position.
    let mut input_regs: Vec<Reg> = Vec::new();
    let mut input_of: BTreeMap<(Option<u32>, Reg), u8> = BTreeMap::new();
    for r in &live_ins {
        input_of.insert((None, *r), input_regs.len() as u8);
        input_regs.push(*r);
    }
    for (&q, &(rd, res)) in &resolved_at {
        if matches!(res, Resolution::Input { .. }) {
            input_of.insert((Some(q), rd), input_regs.len() as u8);
            input_regs.push(rd);
        }
    }
    if input_regs.len() > MAX_SLICE_INPUTS {
        return Err(RejectReason::TooManyInputs);
    }

    // Capture validity: an input register must not be redefined between
    // its resolver and the store (the ASSOC-ADDR reads the register file).
    for &(def_pc, r) in input_of.keys() {
        let from = def_pc.map_or(bs, |q| q + 1);
        for q in from..store_pc {
            if code.instrs()[q as usize].def() == Some(r) {
                // The resolver itself is at def_pc (excluded by `from`).
                return Err(RejectReason::InputClobbered);
            }
        }
    }

    // Forward pass: build Slice instructions in dependence order.
    let mut cur: BTreeMap<Reg, SliceOperand> = BTreeMap::new();
    for r in &live_ins {
        cur.insert(*r, SliceOperand::Input(input_of[&(None, *r)]));
    }
    let mut instrs: Vec<SliceInstr> = Vec::new();
    for q in bs..store_pc {
        let instr = &code.instrs()[q as usize];
        match resolved_at.get(&q) {
            Some(&(rd, Resolution::Imm(v))) => {
                cur.insert(rd, SliceOperand::Imm(v));
            }
            Some(&(rd, Resolution::Input { def_pc })) => {
                cur.insert(rd, SliceOperand::Input(input_of[&(def_pc, rd)]));
            }
            Some(&(rd, Resolution::Arith { .. })) => {
                let (op, a, b) = match instr {
                    Instr::Alu { op, ra, rb, .. } => (*op, cur[ra], cur[rb]),
                    Instr::AluI { op, ra, imm, .. } => (*op, cur[ra], SliceOperand::Imm(*imm)),
                    _ => unreachable!("arith resolution on non-arith"),
                };
                let idx = instrs.len() as u16;
                instrs.push(SliceInstr { op, a, b });
                cur.insert(rd, SliceOperand::Temp(idx));
            }
            None => {
                // A def not in the slice kills any stale mapping.
                if let Some(rd) = instr.def() {
                    cur.remove(&rd);
                }
            }
        }
    }

    // The stored value.
    let result = cur.get(&rs).copied();
    match result {
        Some(SliceOperand::Temp(t)) if t as usize == instrs.len() - 1 => {}
        Some(SliceOperand::Imm(v)) => {
            // Store of a constant: a one-instruction Slice regenerates it.
            debug_assert!(instrs.is_empty() || result.is_some());
            instrs.push(SliceInstr {
                op: acr_isa::AluOp::Add,
                a: SliceOperand::Imm(v),
                b: SliceOperand::Imm(0),
            });
        }
        Some(SliceOperand::Input(_)) | None => {
            // Pure copy of a load/live-in, or unresolved: recomputation
            // cannot beat checkpointing.
            return Err(RejectReason::NoArith);
        }
        Some(SliceOperand::Temp(t)) => {
            // The final value is an intermediate temp (later slice instrs
            // were for other registers — possible when rd chains diverge).
            // Append a copy so the last instruction produces the value.
            instrs.push(SliceInstr {
                op: acr_isa::AluOp::Add,
                a: SliceOperand::Temp(t),
                b: SliceOperand::Imm(0),
            });
        }
    }

    // Drop inputs that ended up unused (their uses were all resolved to
    // later defs)? They were demanded, so they are used by construction.
    let slice = Slice::new(instrs, input_regs.len() as u8).map_err(|_| RejectReason::NoArith)?;
    Ok(ExtractedSlice {
        slice,
        input_regs,
        store_pc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_isa::{AluOp, ProgramBuilder};

    fn code_of(build: impl FnOnce(&mut acr_isa::ThreadBuilder)) -> acr_isa::Program {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(4096);
        build(b.thread(0));
        b.build()
    }

    #[test]
    fn expression_tree_extracted() {
        // r3 = (r1 + r2) * r1, store r3. r1, r2 live-in.
        let p = code_of(|t| {
            t.alu(AluOp::Add, Reg(3), Reg(1), Reg(2));
            t.alu(AluOp::Mul, Reg(3), Reg(3), Reg(1));
            t.store(Reg(3), Reg(0), 0);
            t.halt();
        });
        let e = extract_store_slice(p.thread(0), 2).unwrap();
        assert_eq!(e.slice.len(), 2);
        assert_eq!(e.input_regs, vec![Reg(1), Reg(2)]);
        // Verify semantics: inputs r1=5, r2=7 → (5+7)*5 = 60.
        assert_eq!(e.slice.execute(&[5, 7]).unwrap(), 60);
    }

    #[test]
    fn loads_become_inputs() {
        // Fig 3(d): loads feed the slice through the operand buffer.
        let p = code_of(|t| {
            t.load(Reg(1), Reg(0), 8);
            t.load(Reg(2), Reg(0), 16);
            t.alu(AluOp::Add, Reg(3), Reg(1), Reg(2));
            t.store(Reg(3), Reg(0), 24);
            t.halt();
        });
        let e = extract_store_slice(p.thread(0), 3).unwrap();
        assert_eq!(e.slice.len(), 1);
        assert_eq!(e.slice.num_inputs, 2);
        assert_eq!(e.slice.execute(&[3, 4]).unwrap(), 7);
    }

    #[test]
    fn immediates_fold_into_operands() {
        let p = code_of(|t| {
            t.imm(Reg(1), 100);
            t.alui(AluOp::Add, Reg(2), Reg(1), 23);
            t.store(Reg(2), Reg(0), 0);
            t.halt();
        });
        let e = extract_store_slice(p.thread(0), 2).unwrap();
        assert_eq!(e.slice.len(), 1);
        assert_eq!(e.slice.num_inputs, 0);
        assert_eq!(e.slice.execute(&[]).unwrap(), 123);
    }

    #[test]
    fn constant_store_gets_unit_slice() {
        let p = code_of(|t| {
            t.imm(Reg(1), 55);
            t.store(Reg(1), Reg(0), 0);
            t.halt();
        });
        let e = extract_store_slice(p.thread(0), 1).unwrap();
        assert_eq!(e.slice.len(), 1);
        assert_eq!(e.slice.execute(&[]).unwrap(), 55);
    }

    #[test]
    fn pure_copy_rejected() {
        let p = code_of(|t| {
            t.load(Reg(1), Reg(0), 8);
            t.store(Reg(1), Reg(0), 16);
            t.halt();
        });
        assert_eq!(
            extract_store_slice(p.thread(0), 1),
            Err(RejectReason::NoArith)
        );
    }

    #[test]
    fn clobbered_input_rejected() {
        // r1 loaded, used, then r1 reloaded before the store: the first
        // load's value cannot be captured at the assoc.
        let p = code_of(|t| {
            t.load(Reg(1), Reg(0), 8);
            t.alu(AluOp::Add, Reg(3), Reg(1), Reg(1));
            t.load(Reg(1), Reg(0), 16); // clobbers input r1
            t.alu(AluOp::Add, Reg(4), Reg(3), Reg(3));
            t.store(Reg(4), Reg(0), 24);
            t.halt();
        });
        assert_eq!(
            extract_store_slice(p.thread(0), 4),
            Err(RejectReason::InputClobbered)
        );
    }

    #[test]
    fn redefined_register_resolves_to_nearest_def() {
        // r1 = in + in; r2 = r1 * 3; r1 = 7 (imm); r3 = r2 + r1; store r3.
        let p = code_of(|t| {
            t.alu(AluOp::Add, Reg(1), Reg(5), Reg(5));
            t.alui(AluOp::Mul, Reg(2), Reg(1), 3);
            t.imm(Reg(1), 7);
            t.alu(AluOp::Add, Reg(3), Reg(2), Reg(1));
            t.store(Reg(3), Reg(0), 0);
            t.halt();
        });
        let e = extract_store_slice(p.thread(0), 4).unwrap();
        // r5 live-in; (r5+r5)*3 + 7
        assert_eq!(e.input_regs, vec![Reg(5)]);
        assert_eq!(e.slice.execute(&[2]).unwrap(), (2 + 2) * 3 + 7);
    }

    #[test]
    fn slice_confined_to_basic_block() {
        // The producing arithmetic sits before a loop; the store is inside
        // the loop body, in a different block: the value is a live-in.
        let p = code_of(|t| {
            t.alu(AluOp::Add, Reg(6), Reg(1), Reg(2));
            let l = t.begin_loop(Reg(3), Reg(4), 2);
            t.store(Reg(6), Reg(0), 0);
            t.end_loop(l);
            t.halt();
        });
        // store is at pc 4 (0 add, 1-2 loop imms, 3 branch, 4 store).
        assert_eq!(
            extract_store_slice(p.thread(0), 4),
            Err(RejectReason::NoArith)
        );
    }

    #[test]
    fn too_many_inputs_rejected() {
        // Nine distinct loads feed the stored value: one more input than
        // the operand buffer captures.
        let p = code_of(|t| {
            for j in 0..9u8 {
                t.load(Reg(16 + j), Reg(0), u64::from(j) * 8);
            }
            t.alu(AluOp::Add, Reg(28), Reg(16), Reg(17));
            for j in 2..9u8 {
                t.alu(AluOp::Add, Reg(28), Reg(28), Reg(16 + j));
            }
            t.store(Reg(28), Reg(0), 128);
            t.halt();
        });
        assert_eq!(
            extract_store_slice(p.thread(0), 17),
            Err(RejectReason::TooManyInputs)
        );
    }

    #[test]
    fn eight_inputs_accepted() {
        let p = code_of(|t| {
            for j in 0..8u8 {
                t.load(Reg(16 + j), Reg(0), u64::from(j) * 8);
            }
            t.alu(AluOp::Add, Reg(28), Reg(16), Reg(17));
            for j in 2..8u8 {
                t.alu(AluOp::Add, Reg(28), Reg(28), Reg(16 + j));
            }
            t.store(Reg(28), Reg(0), 128);
            t.halt();
        });
        let e = extract_store_slice(p.thread(0), 15).unwrap();
        assert_eq!(e.slice.num_inputs, 8);
        assert_eq!(e.slice.execute(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap(), 36);
    }

    #[test]
    fn not_a_store_rejected() {
        let p = code_of(|t| {
            t.imm(Reg(1), 1);
            t.halt();
        });
        assert_eq!(
            extract_store_slice(p.thread(0), 0),
            Err(RejectReason::NotAStore)
        );
    }

    #[test]
    fn long_dependence_chain_counts_length() {
        let p = code_of(|t| {
            t.alu(AluOp::Add, Reg(1), Reg(2), Reg(3));
            for _ in 0..20 {
                t.alui(AluOp::Add, Reg(1), Reg(1), 1);
            }
            t.store(Reg(1), Reg(0), 0);
            t.halt();
        });
        let e = extract_store_slice(p.thread(0), 21).unwrap();
        assert_eq!(e.slice.len(), 21);
        assert_eq!(e.slice.execute(&[10, 5]).unwrap(), 35);
    }
}
