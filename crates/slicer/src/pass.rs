//! The instrumentation pass: filter extracted Slices and embed
//! `ASSOC-ADDR` instructions into the binary.

use std::collections::{BTreeMap, HashMap};

use acr_isa::{InputRegs, Instr, Program, Slice, SliceId, ThreadCode};

use crate::block::basic_blocks;
use crate::extract::{extract_in_blocks, RejectReason};

/// Pass configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicerConfig {
    /// Maximum Slice length in instructions (Section V-D1; the paper's
    /// default threshold is 10, reduced to 5 for `is`).
    pub threshold: usize,
}

impl Default for SlicerConfig {
    fn default() -> Self {
        SlicerConfig { threshold: 10 }
    }
}

/// Pass statistics: static coverage and rejection breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SliceStats {
    /// Static stores examined.
    pub static_stores: u64,
    /// Stores instrumented with an `ASSOC-ADDR`.
    pub sliced_stores: u64,
    /// Extracted but dropped: longer than the threshold. Counts every
    /// length-based drop, whether the extractor bailed out early or the
    /// finished slice failed the threshold filter (see
    /// [`SliceStats::rejected_threshold_filter`] for the latter alone).
    pub rejected_too_long: u64,
    /// Subset of [`SliceStats::rejected_too_long`]: slices that extracted
    /// successfully but were dropped by the `cfg.threshold` length filter.
    /// Distinct so the runtime ledger's `logged:slice-too-long` reason can
    /// be cross-checked against the compiler pass.
    pub rejected_threshold_filter: u64,
    /// Post-instrumentation `(thread, pc)` of every store whose slice was
    /// dropped for length — the static anchor for the runtime ledger's
    /// `logged:slice-too-long` classification.
    pub rejected_store_pcs: Vec<(u32, u32)>,
    /// No arithmetic in the producer chain.
    pub rejected_no_arith: u64,
    /// More inputs than the operand buffer captures.
    pub rejected_too_many_inputs: u64,
    /// Input register clobbered before the association point.
    pub rejected_input_clobbered: u64,
    /// Histogram of *accepted* Slice lengths.
    pub length_histogram: BTreeMap<usize, u64>,
    /// Unique Slices in the embedded table (duplicates are shared).
    pub unique_slices: u64,
    /// Total instructions across the embedded Slice table — the paper's
    /// binary-size overhead metric (footnote 4: < 2 % for `is`).
    pub embedded_slice_instrs: u64,
}

impl SliceStats {
    /// Fraction of static stores that received a Slice.
    pub fn static_coverage(&self) -> f64 {
        if self.static_stores == 0 {
            0.0
        } else {
            self.sliced_stores as f64 / self.static_stores as f64
        }
    }

    /// Binary-size overhead of the embedded Slices relative to `static_len`
    /// program instructions.
    pub fn binary_overhead(&self, static_len: usize) -> f64 {
        if static_len == 0 {
            0.0
        } else {
            self.embedded_slice_instrs as f64 / static_len as f64
        }
    }
}

/// Runs the compiler pass: extracts a Slice for every static store of
/// every thread, filters by `cfg.threshold`, and returns the instrumented
/// program (with `ASSOC-ADDR`s and an embedded, deduplicated Slice table)
/// plus coverage statistics.
///
/// ```
/// use acr_isa::{AluOp, ProgramBuilder, Reg};
/// use acr_slicer::{instrument, SlicerConfig};
///
/// let mut b = ProgramBuilder::new(1);
/// b.set_mem_bytes(4096);
/// let t = b.thread(0);
/// t.imm(Reg(1), 5);
/// t.alui(AluOp::Mul, Reg(2), Reg(1), 9);
/// t.store(Reg(2), Reg(0), 64);
/// t.halt();
/// let program = b.build();
///
/// let (instrumented, stats) = instrument(&program, &SlicerConfig::default());
/// assert_eq!(stats.sliced_stores, 1);
/// assert_eq!(instrumented.slices().len(), 1);
/// // The binary gained exactly one ASSOC-ADDR.
/// assert_eq!(instrumented.static_len(), program.static_len() + 1);
/// ```
///
/// # Panics
///
/// Panics if `program` is already instrumented (contains `ASSOC-ADDR`
/// instructions); re-instrumentation must start from the raw program.
pub fn instrument(program: &Program, cfg: &SlicerConfig) -> (Program, SliceStats) {
    for code in program.threads() {
        assert!(
            !code
                .instrs()
                .iter()
                .any(|i| matches!(i, Instr::AssocAddr { .. })),
            "instrument() requires an uninstrumented program"
        );
    }
    let mut stats = SliceStats::default();
    let mut slice_table: Vec<Slice> = Vec::new();
    let mut dedup: HashMap<Slice, SliceId> = HashMap::new();
    let mut new_threads: Vec<ThreadCode> = Vec::with_capacity(program.num_threads());
    let mut thread_positions: Vec<Vec<u32>> = Vec::with_capacity(program.num_threads());

    for (ti, code) in program.threads().iter().enumerate() {
        let blocks = basic_blocks(code);
        // pc of store → AssocAddr instruction to insert after it.
        let mut insertions: BTreeMap<u32, Instr> = BTreeMap::new();
        // Pre-shift pcs of stores whose slice was dropped for length.
        let mut too_long_pcs: Vec<u32> = Vec::new();
        for (pc, instr) in code.instrs().iter().enumerate() {
            if !matches!(instr, Instr::Store { .. }) {
                continue;
            }
            stats.static_stores += 1;
            let pc = pc as u32;
            match extract_in_blocks(code, &blocks, pc) {
                Ok(ex) => {
                    if ex.slice.len() > cfg.threshold {
                        stats.rejected_too_long += 1;
                        stats.rejected_threshold_filter += 1;
                        too_long_pcs.push(pc);
                        continue;
                    }
                    stats.sliced_stores += 1;
                    *stats.length_histogram.entry(ex.slice.len()).or_insert(0) += 1;
                    let id = *dedup.entry(ex.slice.clone()).or_insert_with(|| {
                        let id = SliceId(slice_table.len() as u32);
                        slice_table.push(ex.slice.clone());
                        id
                    });
                    insertions.insert(
                        pc,
                        Instr::AssocAddr {
                            slice: id,
                            inputs: InputRegs::new(&ex.input_regs),
                        },
                    );
                }
                Err(RejectReason::NoArith) => stats.rejected_no_arith += 1,
                Err(RejectReason::TooLong) => {
                    stats.rejected_too_long += 1;
                    too_long_pcs.push(pc);
                }
                Err(RejectReason::TooManyInputs) => stats.rejected_too_many_inputs += 1,
                Err(RejectReason::InputClobbered) => stats.rejected_input_clobbered += 1,
                Err(RejectReason::NotAStore) => unreachable!("filtered above"),
            }
        }
        // Record length-rejected store pcs in *post-instrumentation*
        // coordinates, applying the same shift the rebuild applies to
        // branch targets.
        let positions: Vec<u32> = insertions.keys().copied().collect();
        for pc in too_long_pcs {
            let shift = positions.partition_point(|&q| q < pc) as u32;
            stats.rejected_store_pcs.push((ti as u32, pc + shift));
        }
        new_threads.push(rebuild_with_insertions(code, &insertions));
        thread_positions.push(positions);
    }

    stats.unique_slices = slice_table.len() as u64;
    stats.embedded_slice_instrs = slice_table.iter().map(|s| s.len() as u64).sum();
    let mut instrumented = Program::new(new_threads, slice_table, program.mem_bytes());
    // Carry label regions over, shifting each region start past the
    // ASSOC-ADDRs inserted below it (same mapping as branch targets).
    for (ti, positions) in thread_positions.iter().enumerate() {
        let regions: Vec<(u32, String)> = program
            .thread_labels(ti as u32)
            .iter()
            .map(|(start, label)| {
                let shift = positions.partition_point(|&q| q < *start) as u32;
                (start + shift, label.clone())
            })
            .collect();
        if !regions.is_empty() {
            instrumented.set_thread_labels(ti as u32, regions);
        }
    }
    debug_assert_eq!(instrumented.validate(), Ok(()));
    (instrumented, stats)
}

/// Rebuilds a thread's stream with `ASSOC-ADDR`s inserted after the given
/// store pcs, remapping branch/jump targets.
fn rebuild_with_insertions(code: &ThreadCode, insertions: &BTreeMap<u32, Instr>) -> ThreadCode {
    let positions: Vec<u32> = insertions.keys().copied().collect();
    // shift(t) = number of insertion positions strictly below t.
    let shift = |t: u32| positions.partition_point(|&q| q < t) as u32;
    let mut out = Vec::with_capacity(code.len() + insertions.len());
    for (pc, instr) in code.instrs().iter().enumerate() {
        let pc = pc as u32;
        let remapped = match *instr {
            Instr::Branch {
                cond,
                ra,
                rb,
                target,
            } => Instr::Branch {
                cond,
                ra,
                rb,
                target: target + shift(target),
            },
            Instr::Jump { target } => Instr::Jump {
                target: target + shift(target),
            },
            other => other,
        };
        out.push(remapped);
        if let Some(assoc) = insertions.get(&pc) {
            out.push(*assoc);
        }
    }
    ThreadCode::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_isa::interp::Interp;
    use acr_isa::{AluOp, ProgramBuilder, Reg};

    /// A looped kernel exercising branch-target remapping and dynamic
    /// slice verification.
    fn looped_program() -> Program {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(1 << 16);
        let t = b.thread(0);
        t.imm(Reg(10), 4096); // output base
        let l = t.begin_loop(Reg(1), Reg(2), 50);
        // value = (i * 3) + 7
        t.alui(AluOp::Mul, Reg(3), Reg(1), 3);
        t.alui(AluOp::Add, Reg(3), Reg(3), 7);
        // addr = base + i*8
        t.alui(AluOp::Mul, Reg(4), Reg(1), 8);
        t.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
        t.store(Reg(3), Reg(5), 0);
        t.end_loop(l);
        t.halt();
        b.build()
    }

    #[test]
    fn instrumented_program_behaves_identically_and_slices_verify() {
        let p = looped_program();
        p.validate().unwrap();
        let (ip, stats) = instrument(&p, &SlicerConfig::default());
        ip.validate().unwrap();
        assert_eq!(stats.static_stores, 1);
        assert_eq!(stats.sliced_stores, 1);

        // Reference semantics unchanged.
        let mut a = Interp::new(&p);
        a.run_to_completion(1_000_000).unwrap();
        let mut b = Interp::new(&ip);
        b.verify_slices(true); // every assoc checks slice == stored value
        b.run_to_completion(1_000_000).unwrap();
        assert_eq!(a.mem(), b.mem());
    }

    #[test]
    fn threshold_filters_long_slices() {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(4096);
        let t = b.thread(0);
        t.alu(AluOp::Add, Reg(1), Reg(2), Reg(3));
        for _ in 0..15 {
            t.alui(AluOp::Add, Reg(1), Reg(1), 1);
        }
        t.store(Reg(1), Reg(0), 0);
        t.halt();
        let p = b.build();

        let (_, s10) = instrument(&p, &SlicerConfig { threshold: 10 });
        assert_eq!(s10.sliced_stores, 0);
        assert_eq!(s10.rejected_too_long, 1);
        assert_eq!(
            s10.rejected_threshold_filter, 1,
            "post-extraction threshold drops are counted distinctly"
        );
        // No insertions in this program, so the rejected store pc is the
        // store's own pc (16 instructions precede it).
        assert_eq!(s10.rejected_store_pcs, vec![(0, 16)]);

        let (_, s20) = instrument(&p, &SlicerConfig { threshold: 20 });
        assert_eq!(s20.sliced_stores, 1);
        assert_eq!(s20.rejected_threshold_filter, 0);
        assert!(s20.rejected_store_pcs.is_empty());
        assert_eq!(*s20.length_histogram.get(&16).unwrap(), 1);
    }

    #[test]
    fn labels_shift_with_insertions() {
        let p = looped_program();
        let mut p = p;
        // Label the loop body start: pc 1 (after the imm) and the store
        // region further down.
        p.set_thread_labels(0, vec![(0, "setup".to_owned()), (5, "body".to_owned())]);
        let (ip, stats) = instrument(&p, &SlicerConfig::default());
        assert_eq!(stats.sliced_stores, 1);
        // One ASSOC-ADDR inserted after the store at pc 5; a region start
        // at or below the store pc is unshifted, anything past it moves.
        assert_eq!(ip.thread_labels(0)[0], (0, "setup".to_owned()));
        assert_eq!(ip.thread_labels(0)[1], (5, "body".to_owned()));
        // The label over the store covers the inserted ASSOC-ADDR too.
        assert_eq!(ip.label_at(0, 6), Some("body"));
    }

    #[test]
    fn rejected_store_pcs_are_post_instrumentation_coordinates() {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(4096);
        let t = b.thread(0);
        // First store: short slice, accepted (gets an ASSOC-ADDR).
        t.alui(AluOp::Add, Reg(1), Reg(0), 5);
        t.store(Reg(1), Reg(0), 0); // pc 1
                                    // Second store: long slice, rejected at threshold 10.
        t.alu(AluOp::Add, Reg(2), Reg(0), Reg(1));
        for _ in 0..15 {
            t.alui(AluOp::Add, Reg(2), Reg(2), 1);
        }
        t.store(Reg(2), Reg(0), 8); // pc 18 pre-shift
        t.halt();
        let p = b.build();
        let (ip, stats) = instrument(&p, &SlicerConfig { threshold: 10 });
        assert_eq!(stats.sliced_stores, 1);
        assert_eq!(stats.rejected_threshold_filter, 1);
        // The accepted store's ASSOC-ADDR sits at pc 2, shifting the
        // rejected store from 18 to 19.
        assert_eq!(stats.rejected_store_pcs, vec![(0, 19)]);
        assert!(matches!(
            ip.thread(0).fetch(19),
            Some(acr_isa::Instr::Store { .. })
        ));
    }

    #[test]
    fn duplicate_slices_share_table_entries() {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(4096);
        let t = b.thread(0);
        for k in 0..4 {
            t.alu(AluOp::Add, Reg(1), Reg(2), Reg(3));
            t.store(Reg(1), Reg(0), k * 8);
        }
        t.halt();
        let p = b.build();
        let (ip, stats) = instrument(&p, &SlicerConfig::default());
        assert_eq!(stats.sliced_stores, 4);
        assert_eq!(stats.unique_slices, 1);
        assert_eq!(ip.slices().len(), 1);
    }

    #[test]
    fn multithreaded_instrumentation() {
        let mut b = ProgramBuilder::new(3);
        b.set_mem_bytes(1 << 16);
        for i in 0..3 {
            let t = b.thread(i);
            t.imm(Reg(9), u64::from(i) * 1024);
            t.alui(AluOp::Add, Reg(1), Reg(9), 5);
            t.store(Reg(1), Reg(9), 0);
            t.halt();
        }
        let p = b.build();
        let (ip, stats) = instrument(&p, &SlicerConfig::default());
        assert_eq!(stats.static_stores, 3);
        assert_eq!(stats.sliced_stores, 3);
        ip.validate().unwrap();
        let mut interp = Interp::new(&ip);
        interp.verify_slices(true);
        interp.run_to_completion(10_000).unwrap();
    }

    #[test]
    fn coverage_and_overhead_metrics() {
        let p = looped_program();
        let (ip, stats) = instrument(&p, &SlicerConfig::default());
        assert!((stats.static_coverage() - 1.0).abs() < 1e-12);
        let ov = stats.binary_overhead(ip.static_len());
        assert!(ov > 0.0 && ov < 1.0);
    }

    #[test]
    #[should_panic(expected = "uninstrumented")]
    fn double_instrumentation_panics() {
        let p = looped_program();
        let (ip, _) = instrument(&p, &SlicerConfig::default());
        let _ = instrument(&ip, &SlicerConfig::default());
    }
}
