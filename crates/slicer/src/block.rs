//! Basic-block discovery.

use acr_isa::{Instr, ThreadCode};

/// Returns the half-open `[start, end)` index ranges of the basic blocks of
/// a thread's instruction stream, in program order.
///
/// Leaders are instruction 0, every branch/jump target, and every
/// instruction following a branch or jump. Barriers, stores and
/// `ASSOC-ADDR`s do not end blocks (they do not affect thread-local
/// register dataflow, which is all the slicer reasons about).
pub fn basic_blocks(code: &ThreadCode) -> Vec<(u32, u32)> {
    let n = code.len() as u32;
    if n == 0 {
        return Vec::new();
    }
    let mut leader = vec![false; n as usize];
    leader[0] = true;
    for (pc, instr) in code.instrs().iter().enumerate() {
        match instr {
            Instr::Branch { target, .. } | Instr::Jump { target } => {
                if (*target as usize) < leader.len() {
                    leader[*target as usize] = true;
                }
                if pc + 1 < leader.len() {
                    leader[pc + 1] = true;
                }
            }
            _ => {}
        }
    }
    let mut blocks = Vec::new();
    let mut start = 0u32;
    for pc in 1..n {
        if leader[pc as usize] {
            blocks.push((start, pc));
            start = pc;
        }
    }
    blocks.push((start, n));
    blocks
}

/// Finds the basic block containing `pc`.
pub(crate) fn block_of(blocks: &[(u32, u32)], pc: u32) -> (u32, u32) {
    let idx = blocks
        .partition_point(|&(s, _)| s <= pc)
        .checked_sub(1)
        .expect("pc inside some block");
    blocks[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_isa::{AluOp, ProgramBuilder, Reg};

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new(1);
        let t = b.thread(0);
        t.imm(Reg(1), 1);
        t.alu(AluOp::Add, Reg(2), Reg(1), Reg(1));
        t.store(Reg(2), Reg(0), 0);
        t.halt();
        let p = b.build();
        assert_eq!(basic_blocks(p.thread(0)), vec![(0, 4)]);
    }

    #[test]
    fn loop_splits_blocks() {
        let mut b = ProgramBuilder::new(1);
        let t = b.thread(0);
        t.imm(Reg(5), 0); // 0
        let l = t.begin_loop(Reg(1), Reg(2), 3); // 1,2 imm; 3 branch
        t.alui(AluOp::Add, Reg(5), Reg(5), 1); // 4 body
        t.end_loop(l); // 5 add, 6 jump
        t.halt(); // 7
        let p = b.build();
        let blocks = basic_blocks(p.thread(0));
        // Leaders: 0; 3 (branch target via jump@6 -> 3, and after-branch 4);
        // 4; 7 (after jump, branch target).
        assert!(blocks.contains(&(0, 3)));
        assert!(blocks.contains(&(3, 4)));
        assert!(blocks.contains(&(4, 7)));
        assert!(blocks.contains(&(7, 8)));
    }

    #[test]
    fn block_of_locates() {
        let blocks = vec![(0u32, 3u32), (3, 6), (6, 10)];
        assert_eq!(block_of(&blocks, 0), (0, 3));
        assert_eq!(block_of(&blocks, 4), (3, 6));
        assert_eq!(block_of(&blocks, 9), (6, 10));
    }
}
