//! # acr-slicer — the ACR compiler pass (Pin-tool substitute)
//!
//! The paper implements ACR's compiler pass as a Pin tool that extracts
//! backward slices for stored values and embeds them into the binary
//! (Sections III-A and IV). This crate is the equivalent pass over our IR:
//!
//! 1. **Backward slicing** ([`extract_store_slice`]): for every static
//!    store, walk the data-dependence chain backwards within the store's
//!    basic block. Arithmetic producers become Slice instructions; loads
//!    and block-live-in registers are *cut* and become Slice inputs
//!    (Fig. 3(d) of the paper — inputs come from the operand buffer, never
//!    memory); immediates are constant-folded into operands.
//! 2. **Filtering** ([`SlicerConfig`]): Slices longer than the threshold
//!    (Section V-D1; default 10) are dropped, as are Slices with zero
//!    arithmetic instructions (buffering the inputs would be equivalent to
//!    checkpointing the value itself) and Slices needing more inputs than
//!    the operand buffer provides.
//! 3. **Capture validity**: an input register must still hold the input
//!    value when the `ASSOC-ADDR` executes; stores whose inputs are
//!    clobbered before the association point are rejected.
//! 4. **Embedding** ([`instrument`]): an `ASSOC-ADDR` is inserted
//!    immediately after every sliceable store (the paper executes the pair
//!    atomically); duplicate Slices are shared through the program's Slice
//!    table, keeping the binary-size overhead small (the paper reports
//!    < 2 % even for `is`).
//!
//! The reference interpreter's `verify_slices` mode checks, at every
//! executed `ASSOC-ADDR`, that the embedded Slice reproduces the stored
//! value — the end-to-end correctness oracle for this pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod extract;
mod pass;

pub use block::basic_blocks;
pub use extract::{extract_store_slice, ExtractedSlice, RejectReason};
pub use pass::{instrument, SliceStats, SlicerConfig};
