//! Self-contained deterministic random numbers for the ACR reproduction.
//!
//! The build must work with no registry access, so this crate replaces the
//! `rand` dependency with a drop-in [`SmallRng`] that is **bit-exact** with
//! `rand 0.8`'s 64-bit `SmallRng` (xoshiro256++ seeded via SplitMix64, with
//! Lemire widening-multiply range rejection). Bit-exactness matters: the
//! workload generators draw their instruction mixes from this stream, and
//! the calibration tests pin the statistical shape of those workloads — a
//! different stream would silently re-roll every benchmark.
//!
//! The [`check`] module is a miniature property-test harness (seeded cases,
//! replayable failures) standing in for `proptest`, which is equally
//! unavailable offline.

pub mod check;

/// A small, fast, deterministic PRNG: xoshiro256++, stream-compatible with
/// `rand 0.8`'s `SmallRng` on 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Seeds via SplitMix64 exactly as `rand 0.8`'s
    /// `Xoshiro256PlusPlus::seed_from_u64` does.
    pub fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }

    /// Seeds from raw state bytes (little-endian). An all-zero seed is
    /// remapped through `seed_from_u64(0)`, matching upstream.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        if seed.iter().all(|&b| b == 0) {
            return Self::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        SmallRng { s }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Upper half of `next_u64` — the low bits of xoshiro have weak linear
    /// structure, so `rand` discards them and so do we.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from a `Range` or `RangeInclusive`, reproducing
    /// `rand 0.8`'s `Rng::gen_range` (single-sample Lemire rejection).
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `rand`-compatible `Standard` bool (most-significant bit of a u32).
    #[inline]
    pub fn gen_bool(&mut self) -> bool {
        self.next_u32() & (1 << 31) != 0
    }

    /// Uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.gen_range(0..items.len())]
    }
}

/// Range types usable with [`SmallRng::gen_range`], yielding `T`.
pub trait SampleRange<T> {
    fn sample_single(self, rng: &mut SmallRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single(self, rng: &mut SmallRng) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single(self, rng: &mut SmallRng) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: low > high");
        T::sample_inclusive(rng, low, high)
    }
}

/// Integer types uniformly sampleable by [`SmallRng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_inclusive(rng: &mut SmallRng, low: Self, high: Self) -> Self;
    /// `self - 1`, used to reduce an exclusive bound to an inclusive one.
    fn dec(self) -> Self;
}

/// Widening multiply: returns (high, low) halves of the full product.
macro_rules! wmul {
    ($ty:ty, $wide:ty, $a:expr, $b:expr) => {{
        let tmp = (($a) as $wide) * (($b) as $wide);
        ((tmp >> (<$ty>::BITS)) as $ty, tmp as $ty)
    }};
}

/// `rand 0.8` samples i8/u8/i16/u16 through a u32 "large type" with a
/// modulus-derived rejection zone; u32 and wider use their own width with
/// the leading-zeros zone approximation. Both variants are reproduced here
/// exactly so the sampled streams match upstream bit for bit.
macro_rules! uniform_impl_small {
    ($ty:ty) => {
        impl SampleUniform for $ty {
            fn sample_inclusive(rng: &mut SmallRng, low: $ty, high: $ty) -> $ty {
                let range = u32::from(high.wrapping_sub(low).wrapping_add(1));
                if range == 0 {
                    // Full integer range.
                    return rng.next_u32() as $ty;
                }
                let ints_to_reject = (u32::MAX - range + 1) % range;
                let zone = u32::MAX - ints_to_reject;
                loop {
                    let v = rng.next_u32();
                    let (hi, lo) = wmul!(u32, u64, v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
            fn dec(self) -> $ty {
                self - 1
            }
        }
    };
}

macro_rules! uniform_impl_large {
    ($ty:ty, $uns:ty, $wide:ty, $next:ident) => {
        impl SampleUniform for $ty {
            #[allow(clippy::unnecessary_cast)]
            fn sample_inclusive(rng: &mut SmallRng, low: $ty, high: $ty) -> $ty {
                let range = high.wrapping_sub(low).wrapping_add(1) as $uns;
                if range == 0 {
                    // Full integer range.
                    return rng.$next() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$next() as $uns;
                    let (hi, lo) = wmul!($uns, $wide, v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
            fn dec(self) -> $ty {
                self - 1
            }
        }
    };
}

uniform_impl_small!(u8);
uniform_impl_small!(u16);
uniform_impl_large!(u32, u32, u64, next_u32);
uniform_impl_large!(u64, u64, u128, next_u64);
// `rand 0.8` samples usize at its native width; this simulator only
// targets 64-bit hosts (the memory model itself assumes it).
uniform_impl_large!(usize, u64, u128, next_u64);

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference output of xoshiro256++ with state [1, 2, 3, 4], from the
    /// published reference implementation (same vector `rand 0.8` pins).
    #[test]
    fn xoshiro_reference_vector() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    /// SplitMix64(0) must produce the published reference stream as the
    /// seeded state words.
    #[test]
    fn splitmix_seed_vector() {
        let rng = SmallRng::seed_from_u64(0);
        assert_eq!(
            rng.s,
            [
                0xe220a8397b1dcdaf,
                0x6e789e6aa1b965f4,
                0x06c45d188009454f,
                0xf88bb8a8724c81ec
            ]
        );
    }

    #[test]
    fn all_zero_seed_remaps() {
        assert_eq!(SmallRng::from_seed([0u8; 32]), SmallRng::seed_from_u64(0));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let a = rng.gen_range(3..=61u64);
            assert!((3..=61).contains(&a));
            let b = rng.gen_range(0..8u32);
            assert!(b < 8);
            let c = rng.gen_range(2..=4u8);
            assert!((2..=4).contains(&c));
            let d = rng.gen_range(0..3usize);
            assert!(d < 3);
        }
    }

    #[test]
    fn full_u8_range_hits_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[rng.gen_range(0..=255u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let items = [10u32, 20, 30];
        let mut rng = SmallRng::seed_from_u64(3);
        let mut hits = [0u32; 3];
        for _ in 0..300 {
            let v = *rng.choose(&items);
            hits[(v / 10 - 1) as usize] += 1;
        }
        assert!(hits.iter().all(|&h| h > 0));
    }
}
