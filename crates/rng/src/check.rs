//! Miniature deterministic property-test harness.
//!
//! Replaces `proptest` for this repo's offline builds: every property runs
//! a fixed number of seeded cases, each with an independent [`SmallRng`]
//! derived from the base seed. There is no shrinking, but failures print
//! the case index and the exact case seed, so a failing case replays with
//! [`replay`] (or by temporarily pinning `forall`'s seed) — the generator
//! code path is identical.

use crate::SmallRng;

/// Golden-ratio multiplier used to spread case indices across seeds.
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

/// Derives the per-case seed for `forall(name, _, seed, ..)` at `case`.
#[must_use]
pub fn case_seed(seed: u64, case: u32) -> u64 {
    seed ^ u64::from(case + 1).wrapping_mul(PHI)
}

/// Runs `prop` for `cases` independent seeded cases. On panic, the failing
/// case index and seed are reported on stderr before the panic propagates,
/// so the case can be replayed exactly.
pub fn forall(name: &str, cases: u32, seed: u64, mut prop: impl FnMut(&mut SmallRng)) {
    for case in 0..cases {
        let cs = case_seed(seed, case);
        let guard = FailureReport { name, case, cs };
        let mut rng = SmallRng::seed_from_u64(cs);
        prop(&mut rng);
        // Reached only on success; the Drop impl only reports during an
        // unwind, so dropping the guard here is silent.
        drop(guard);
    }
}

/// Re-runs a single failing case by its reported seed.
pub fn replay(cs: u64, mut prop: impl FnMut(&mut SmallRng)) {
    let mut rng = SmallRng::seed_from_u64(cs);
    prop(&mut rng);
}

struct FailureReport<'a> {
    name: &'a str,
    case: u32,
    cs: u64,
}

impl Drop for FailureReport<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "property `{}` failed at case {} — replay with acr_rng::check::replay({:#018x}, ..)",
                self.name, self.case, self.cs
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_runs_all_cases_with_distinct_streams() {
        let mut seen = Vec::new();
        forall("distinct", 16, 99, |rng| seen.push(rng.next_u64()));
        assert_eq!(seen.len(), 16);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "case streams must be independent");
    }

    #[test]
    fn replay_reproduces_case() {
        let mut from_forall = Vec::new();
        forall("replay", 4, 5, |rng| from_forall.push(rng.next_u64()));
        let mut replayed = 0;
        replay(case_seed(5, 2), |rng| replayed = rng.next_u64());
        assert_eq!(replayed, from_forall[2]);
    }
}
