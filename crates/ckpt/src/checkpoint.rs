//! Retained checkpoint records.

use acr_sim::CoreSnapshot;
use acr_trace::Fnv1a;

/// One established checkpoint: the state needed to restore execution to
/// the instant the checkpoint was taken. The initial program state is
/// represented as checkpoint 0.
#[derive(Debug, Clone)]
pub struct CheckpointRecord {
    /// The log epoch this checkpoint *opens* (restoring this checkpoint
    /// means rolling the log back to the start of `begins_epoch`).
    pub begins_epoch: u64,
    /// Progress (total retired instructions) at establishment.
    pub progress: u64,
    /// Machine time (cycles) at establishment, for waste accounting.
    pub cycles: u64,
    /// Architectural state of every core.
    pub arch: Vec<CoreSnapshot>,
    /// Checkpoint-group masks of the *preceding* interval (local scheme);
    /// a single full mask under the global scheme.
    pub groups: Vec<u64>,
    /// Shadow copy of functional memory (oracle only; zero simulated
    /// cost).
    pub shadow_mem: Option<Vec<u64>>,
    /// Integrity checksum over the architectural snapshot and epoch
    /// binding, sealed when the commit completes. A crash inside the
    /// commit window leaves a generation whose stored checksum no longer
    /// matches — a *torn commit* — which recovery detects with
    /// [`CheckpointRecord::verify`] before trusting the generation.
    pub check: u64,
}

impl CheckpointRecord {
    /// Computes the integrity checksum of the checkpoint's restorable
    /// content: FNV-1a over `begins_epoch`, `progress` and every core's
    /// architectural snapshot. The shadow memory is oracle-only state and
    /// deliberately excluded.
    pub fn compute_check(begins_epoch: u64, progress: u64, arch: &[CoreSnapshot]) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(begins_epoch);
        h.write_u64(progress);
        for snap in arch {
            for &r in &snap.regs {
                h.write_u64(r);
            }
            h.write_u64(u64::from(snap.pc));
            h.write_u64(u64::from(snap.halted) | u64::from(snap.at_barrier) << 1);
            h.write_u64(snap.retired);
        }
        h.finish()
    }

    /// Seals the commit: stamps the checksum over the current content.
    pub fn seal(&mut self) {
        self.check = Self::compute_check(self.begins_epoch, self.progress, &self.arch);
    }

    /// Whether the generation's content still matches the checksum sealed
    /// at commit time. `false` means the commit was torn (or the snapshot
    /// corrupted after the fact) and the generation must not be restored.
    pub fn verify(&self) -> bool {
        self.check == Self::compute_check(self.begins_epoch, self.progress, &self.arch)
    }

    /// Bytes of architectural state this checkpoint recorded (register
    /// files + pc words of the cores in `mask`).
    pub fn arch_bytes(mask: u64, num_cores: usize) -> u64 {
        let cores = (0..num_cores).filter(|i| mask >> i & 1 == 1).count() as u64;
        cores * CoreSnapshot::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_bytes_counts_masked_cores() {
        assert_eq!(
            CheckpointRecord::arch_bytes(0b1011, 4),
            3 * CoreSnapshot::BYTES
        );
        assert_eq!(CheckpointRecord::arch_bytes(0, 4), 0);
    }

    #[test]
    fn sealed_checkpoint_verifies_until_torn() {
        let snap = CoreSnapshot {
            regs: [0; acr_isa::NUM_REGS],
            pc: 0,
            halted: false,
            at_barrier: false,
            retired: 0,
        };
        let mut ckpt = CheckpointRecord {
            begins_epoch: 3,
            progress: 1000,
            cycles: 5000,
            arch: vec![snap.clone(), snap],
            groups: vec![u64::MAX],
            shadow_mem: None,
            check: 0,
        };
        ckpt.seal();
        assert!(ckpt.verify());
        // Shadow memory is oracle-only: attaching it does not invalidate.
        ckpt.shadow_mem = Some(vec![1, 2, 3]);
        assert!(ckpt.verify());
        // A torn commit leaves arch state inconsistent with the checksum.
        ckpt.arch[1].regs[7] ^= 1 << 42;
        assert!(!ckpt.verify());
    }
}
