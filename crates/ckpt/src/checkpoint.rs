//! Retained checkpoint records.

use acr_sim::CoreSnapshot;

/// One established checkpoint: the state needed to restore execution to
/// the instant the checkpoint was taken. The initial program state is
/// represented as checkpoint 0.
#[derive(Debug, Clone)]
pub struct CheckpointRecord {
    /// The log epoch this checkpoint *opens* (restoring this checkpoint
    /// means rolling the log back to the start of `begins_epoch`).
    pub begins_epoch: u64,
    /// Progress (total retired instructions) at establishment.
    pub progress: u64,
    /// Machine time (cycles) at establishment, for waste accounting.
    pub cycles: u64,
    /// Architectural state of every core.
    pub arch: Vec<CoreSnapshot>,
    /// Checkpoint-group masks of the *preceding* interval (local scheme);
    /// a single full mask under the global scheme.
    pub groups: Vec<u64>,
    /// Shadow copy of functional memory (oracle only; zero simulated
    /// cost).
    pub shadow_mem: Option<Vec<u64>>,
}

impl CheckpointRecord {
    /// Bytes of architectural state this checkpoint recorded (register
    /// files + pc words of the cores in `mask`).
    pub fn arch_bytes(mask: u64, num_cores: usize) -> u64 {
        let cores = (0..num_cores).filter(|i| mask >> i & 1 == 1).count() as u64;
        cores * CoreSnapshot::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_bytes_counts_masked_cores() {
        assert_eq!(
            CheckpointRecord::arch_bytes(0b1011, 4),
            3 * CoreSnapshot::BYTES
        );
        assert_eq!(CheckpointRecord::arch_bytes(0, 4), 0);
    }
}
