//! Checkpoint-frequency selection under an expected error rate.
//!
//! Section IV of the paper: "We adjust the checkpointing frequency based
//! on expected error rates and the execution times of the applications."
//! This module provides the classic machinery for doing that: the
//! Young/Daly optimal checkpoint interval, plus a helper that converts a
//! measured per-checkpoint cost and an expected error rate into a
//! checkpoint count for a run of known length.
//!
//! ACR shifts the optimum: because it shrinks `o_wr,chk`, the optimal
//! interval shortens (checkpoints become affordable more often), which in
//! turn shrinks `o_waste` per recovery — a second-order benefit on top of
//! the direct overhead reduction.

/// Young's first-order optimal checkpoint interval:
/// `T_opt = sqrt(2 · C · MTBF)` where `C` is the time to take one
/// checkpoint and `MTBF` the mean time between failures (same units).
///
/// ```
/// let t = acr_ckpt::frequency::young_interval(1.0, 800.0);
/// assert!((t - 40.0).abs() < 1e-9);
/// ```
pub fn young_interval(checkpoint_cost: f64, mtbf: f64) -> f64 {
    (2.0 * checkpoint_cost * mtbf).sqrt()
}

/// Daly's higher-order refinement of [`young_interval`], more accurate
/// when the checkpoint cost is not small relative to the MTBF:
/// `T_opt = sqrt(2 C M) · (1 + (1/3)·sqrt(C/(2M)) + (1/9)·(C/(2M))) − C`.
pub fn daly_interval(checkpoint_cost: f64, mtbf: f64) -> f64 {
    let c = checkpoint_cost;
    let m = mtbf;
    if c >= 2.0 * m {
        // Degenerate regime: checkpointing costs as much as failures.
        return m;
    }
    let x = (c / (2.0 * m)).sqrt();
    ((2.0 * c * m).sqrt() * (1.0 + x / 3.0 + x * x / 9.0) - c).max(c)
}

/// Recommends a checkpoint count for an execution of `exec_cycles`,
/// given the measured per-checkpoint stall (`checkpoint_cost_cycles`)
/// and the expected number of errors during the execution.
///
/// Returns at least 1 checkpoint whenever an error is expected at all,
/// and never more than one per cycle (the interval is clamped to a
/// cycle). The division is carried out in 32.32 fixed point so the count
/// stays exact even when `exec_cycles` exceeds 2^53 — a plain
/// `exec_cycles as f64 / t` round-trip loses whole cycles up there, and
/// the old `as u32` conversion silently saturated long runs at
/// `u32::MAX`.
///
/// ```
/// // A 10M-cycle run expecting 2 errors with 10k-cycle checkpoints:
/// let n = acr_ckpt::frequency::recommended_checkpoints(10_000_000, 10_000, 2.0);
/// assert!((20..=60).contains(&n), "n = {n}");
/// ```
pub fn recommended_checkpoints(
    exec_cycles: u64,
    checkpoint_cost_cycles: u64,
    expected_errors: f64,
) -> u64 {
    if expected_errors <= 0.0 || exec_cycles == 0 {
        return 0;
    }
    let mtbf = exec_cycles as f64 / expected_errors;
    let t = daly_interval(checkpoint_cost_cycles.max(1) as f64, mtbf)
        // Degenerate MTBFs below one cycle would otherwise recommend
        // more checkpoints than there are cycles to take them in.
        .max(1.0);
    // Round-to-nearest `exec_cycles / t` in integer space: `t` scaled to
    // 32.32 fixed point (t >= 1 so the divisor is >= 2^32, and the
    // quotient fits u64; t <= mtbf + interval terms keeps t_fp within
    // u128). Only `t`'s own f64 representation is approximated.
    let t_fp = (t * (1u64 << 32) as f64) as u128;
    let num = (exec_cycles as u128) << 32;
    let n = ((num + t_fp / 2) / t_fp) as u64;
    n.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_matches_closed_form() {
        assert!((young_interval(2.0, 100.0) - 20.0).abs() < 1e-9);
        // Interval grows with MTBF and with checkpoint cost.
        assert!(young_interval(1.0, 400.0) > young_interval(1.0, 100.0));
        assert!(young_interval(4.0, 100.0) > young_interval(1.0, 100.0));
    }

    #[test]
    fn daly_close_to_young_for_cheap_checkpoints() {
        let y = young_interval(0.01, 1000.0);
        let d = daly_interval(0.01, 1000.0);
        assert!((d - y).abs() / y < 0.05, "daly {d} vs young {y}");
    }

    #[test]
    fn daly_degenerate_regime_bounded() {
        let d = daly_interval(500.0, 100.0);
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn cheaper_checkpoints_mean_more_of_them() {
        // ACR's effect: reducing per-checkpoint cost raises the
        // recommended frequency.
        let plain = recommended_checkpoints(50_000_000, 40_000, 3.0);
        let acr = recommended_checkpoints(50_000_000, 25_000, 3.0);
        assert!(
            acr > plain,
            "acr {acr} checkpoints should exceed plain {plain}"
        );
    }

    #[test]
    fn no_errors_no_checkpoints() {
        assert_eq!(recommended_checkpoints(1_000_000, 1_000, 0.0), 0);
        assert_eq!(recommended_checkpoints(0, 1_000, 2.0), 0);
    }

    #[test]
    fn counts_above_u32_are_not_saturated() {
        // 2^40 expected errors over 2^60 cycles with cycle-scale
        // checkpoints: the recommendation is far above u32::MAX, which
        // the old `as u32` conversion silently clamped to 4294967295.
        let n = recommended_checkpoints(1 << 60, 1, (1u64 << 40) as f64);
        assert!(
            n > u64::from(u32::MAX),
            "n = {n} should exceed u32::MAX, not saturate at it"
        );
    }

    #[test]
    fn exact_above_f64_integer_range() {
        // Above 2^53 an f64 cannot represent every u64, so the old
        // float round-trip drifted by whole checkpoints. The fixed-point
        // division must stay exact: with a degenerate sub-cycle MTBF the
        // interval clamps to one cycle and the count is exec_cycles
        // itself, bit for bit.
        let exec = (1u64 << 53) + 1;
        let n = recommended_checkpoints(exec, 1, 1e30);
        assert_eq!(n, exec);
    }

    #[test]
    fn boundary_cases_stay_sane() {
        // Huge run, vanishing error expectation: the interval overflows
        // to infinity and the recommendation floors at one checkpoint.
        assert_eq!(recommended_checkpoints(u64::MAX, 1, 1e-300), 1);
        // Full-range exec_cycles with a modest rate neither panics nor
        // saturates.
        let n = recommended_checkpoints(u64::MAX, 1 << 20, 100.0);
        assert!(n >= 1);
    }
}
