//! Deterministic fault-injection campaigns with a differential oracle.
//!
//! A campaign turns the BER engine's *phantom* error schedule into real
//! state corruption and then proves (or disproves) that recovery works:
//!
//! 1. a seeded [`FaultPlan`] picks injection points, target cores and
//!    corruption kinds — no wall clock, no OS randomness, so the same
//!    seed always produces the same campaign;
//! 2. every planned fault becomes one *independent* run: a fresh
//!    [`Machine`] plus a fresh omission policy executes under the
//!    checkpointing engine, the fault is applied in flight, and the
//!    engine detects it (by its scheduled latency, or immediately when
//!    the corruption traps the simulator) and rolls back;
//! 3. a **differential oracle** compares the recovered execution against
//!    the `acr-isa` reference interpreter word for word: final memory
//!    image, total progress, and — for single-threaded programs — the
//!    architectural register file.
//!
//! Register/pc flips and crashes corrupt only state a checkpoint fully
//! re-creates, so those cases must always converge ([`CaseOutcome::Recovered`]).
//! Memory flips can land on words the incremental log no longer covers
//! and are classified [`CaseOutcome::Diverged`] when they defeat the log
//! — a campaign never reports a silently wrong recovery.

use std::fmt;

use acr_isa::interp::{ExecError, Interp};
use acr_isa::{Program, Reg, ThreadId, NUM_REGS};
use acr_sim::{
    Fault, FaultKind, FaultKindSet, FaultPlan, FaultPlanConfig, FaultStorm, Machine, MachineConfig,
    RecoveryFault, RecoveryFaultKind, SimError, StoreCensus,
};

use acr_trace::{FlightRecorder, Fnv1a, MetricsRegistry, TimeSeries, WorkerLoad};

use crate::engine::{BerConfig, BerEngine, ResilienceConfig, Scheme};
use crate::errors::CkptError;
use crate::parallel::ParallelRunner;
use crate::policy::OmissionPolicy;
use crate::postmortem::PostmortemBundle;
use crate::schedule::{uniform_points, ErrorSchedule};

/// Recovery-fault kind labels, in rendering order (escalation histogram).
const RECOVERY_FAULT_LABELS: [&str; 5] = [
    "replay-input",
    "restored-word",
    "torn-record",
    "crash-mid-restore",
    "torn-commit",
];

/// Campaign parameters. Everything that affects the outcome is in here —
/// two campaigns with equal configs over the same program are
/// byte-identical.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Plan seed.
    pub seed: u64,
    /// Number of faults (= independent runs).
    pub count: u32,
    /// Corruption kinds to draw from.
    pub kinds: FaultKindSet,
    /// Checkpoints per nominal execution.
    pub num_checkpoints: u32,
    /// Detection latency as a fraction of the checkpoint period.
    pub detection_latency_frac: f64,
    /// Coordination scheme.
    pub scheme: Scheme,
    /// Instruction budget for the reference-interpreter run.
    pub interp_fuel: u64,
    /// Metrics sampling interval in cycles for the fault-free baseline
    /// run (0 = sampling off). The sampled series is purely observational:
    /// it never changes case outcomes or the campaign content hash.
    pub sample_interval: u64,
    /// Nested-fault mode: additionally strike each case's first recovery
    /// with a deterministic recovery-window fault
    /// ([`RecoveryFault::planned`]) and record the engine's escalation
    /// response. Extends the content hash with the per-case escalation
    /// data; plain campaigns hash exactly as before.
    pub recovery_faults: bool,
    /// Checkpoint generations the engine retains as fallbacks (≥ 1).
    /// Raised to at least 2 automatically in nested-fault mode so a
    /// torn-commit case has a generation to fall back to.
    pub generations: u32,
    /// Worker threads sharding the per-case loop (0 = auto:
    /// [`crate::parallel::available_jobs`]). Purely an execution knob:
    /// the report — cases, CSVs, metrics, content hash — is byte-identical
    /// for every value, because results merge in case-index order.
    /// Defaults to 1 so library callers stay sequential unless they opt
    /// in.
    pub jobs: usize,
    /// Collect a one-line-per-case progress log into
    /// [`CampaignReport::case_log`]. Lines are buffered per shard and
    /// flushed in case order at merge, so the log is jobs-invariant; it
    /// never enters the content hash.
    pub progress: bool,
    /// Attach an always-on [`FlightRecorder`] to every case's machine
    /// (default). The recorder is a fixed-capacity ring sink — purely
    /// observational, so recorder-on campaigns are cycle- and
    /// hash-identical to recorder-off ones — and its event tails feed the
    /// [`PostmortemBundle`]s of failed cases. Disable only to measure the
    /// recorder's host-time cost (`acr_cli bench` does).
    pub recorder: bool,
    /// Temporal fault-storm clustering of the plan's injection points
    /// (see [`FaultStorm`]). `None` (the default) draws points uniformly,
    /// exactly as historical plans did — pinned campaign hashes depend on
    /// it.
    pub storm: Option<FaultStorm>,
    /// Recovery-watchdog escalation budget in stall cycles, passed to
    /// every case's [`ResilienceConfig`]. `0` (the default) disables the
    /// watchdog; when set, a case whose recovery escalation burns through
    /// the budget while still failing is aborted as a hang
    /// ([`FaultCaseRecord::hung`], outcome class `hang`).
    pub watchdog_budget_cycles: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            count: 100,
            kinds: FaultKindSet::default(),
            num_checkpoints: 12,
            detection_latency_frac: 0.5,
            scheme: Scheme::GlobalCoordinated,
            interp_fuel: 1 << 32,
            sample_interval: 0,
            recovery_faults: false,
            generations: 1,
            jobs: 1,
            progress: false,
            recorder: true,
            storm: None,
            watchdog_budget_cycles: 0,
        }
    }
}

/// Why a campaign could not even start (per-case failures never abort the
/// campaign — they are recorded as [`CaseOutcome::Aborted`]).
/// `Eq` is withheld because [`CkptError::InvalidLatency`] carries the
/// rejected `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The fault-free timing run failed: the workload itself is broken.
    Sim(SimError),
    /// The fault-free reference interpretation failed.
    Reference(ExecError),
    /// Timing simulator and reference interpreter disagree on the
    /// *fault-free* execution — the differential baseline is invalid.
    ReferenceMismatch {
        /// Number of differing memory words.
        words: u64,
    },
    /// The campaign configuration is malformed (user-reachable: CLI flags
    /// map straight onto [`CampaignConfig`]).
    Config(CkptError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Sim(e) => write!(f, "fault-free run failed: {e}"),
            CampaignError::Reference(e) => write!(f, "reference run failed: {e}"),
            CampaignError::ReferenceMismatch { words } => write!(
                f,
                "fault-free run disagrees with the reference interpreter on {words} words"
            ),
            CampaignError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<CkptError> for CampaignError {
    fn from(e: CkptError) -> Self {
        CampaignError::Config(e)
    }
}

/// How one injected fault ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// Recovery converged: final architectural state is word-for-word
    /// identical to the fault-free reference.
    Recovered,
    /// The run completed but its final state differs from the reference
    /// (possible only for memory flips, which the log may not cover).
    Diverged,
    /// The engine could not finish the run at all.
    Aborted,
}

impl CaseOutcome {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CaseOutcome::Recovered => "recovered",
            CaseOutcome::Diverged => "diverged",
            CaseOutcome::Aborted => "aborted",
        }
    }
}

/// One fault, one verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCaseRecord {
    /// Case index within the campaign.
    pub case: u32,
    /// The injected fault.
    pub fault: Fault,
    /// Recoveries the engine performed.
    pub recoveries: u64,
    /// Recoveries triggered by a simulator trap instead of the scheduled
    /// detection latency.
    pub exception_detections: u64,
    /// Words differing from the safe checkpoint's shadow right after
    /// rollback (the engine-internal oracle).
    pub shadow_divergence: u64,
    /// Final memory words differing from the reference interpreter.
    pub mem_divergence: u64,
    /// Final registers differing from the reference interpreter
    /// (single-threaded programs only; 0 otherwise).
    pub reg_divergence: u64,
    /// Total retired instructions of the recovered run (must equal the
    /// fault-free total when recovery converges).
    pub final_retired: u64,
    /// Log records restored across all recoveries.
    pub restored_records: u64,
    /// Values regenerated by Slice re-execution across all recoveries.
    pub recomputed_values: u64,
    /// Slice instructions executed while recomputing.
    pub recompute_alu_ops: u64,
    /// Cycles stalled in recovery.
    pub recovery_stall_cycles: u64,
    /// Useful cycles thrown away and re-executed.
    pub waste_cycles: u64,
    /// Total execution cycles of the faulted run.
    pub cycles: u64,
    /// Machine cycle at which the fault landed on the machine state (0 if
    /// the case aborted before injection). Deliberately excluded from
    /// [`CampaignReport::csv`] so the pinned campaign content hash stays
    /// stable across releases; the CLI prints it per diverged case.
    pub landing_cycle: u64,
    /// The recovery-window fault injected into this case's first recovery
    /// (nested-fault mode only). Hashes through the escalation section,
    /// never [`CampaignReport::csv`], so plain campaign hashes are
    /// untouched.
    pub recovery_fault: Option<RecoveryFaultKind>,
    /// Recovery re-replay attempts across the case's recoveries.
    pub replay_retries: u64,
    /// Checkpoint-generation fallbacks across the case's recoveries.
    pub generation_fallbacks: u64,
    /// Times the case's engine entered degraded full-logging mode.
    pub degraded_entries: u64,
    /// The recovery watchdog aborted this case's escalation as hung
    /// (implies [`CaseOutcome::Aborted`]; refines the outcome class to
    /// `hang`). Never set unless a watchdog budget was configured.
    pub hung: bool,
    /// Verdict.
    pub outcome: CaseOutcome,
}

impl FaultCaseRecord {
    /// Soak-matrix outcome class, the taxonomy the soak driver and the
    /// CSV class column share:
    ///
    /// * `recovered` — converged to the reference state;
    /// * `due` — a *detected* unrecoverable error (the engine saw the
    ///   fault — it recovered, trapped, or aborted — but the final state
    ///   is wrong or the run could not finish);
    /// * `sdc` — silent data corruption: the final state diverged and the
    ///   engine never noticed anything (no recovery, no exception);
    /// * `hang` — the recovery watchdog aborted a hung escalation.
    pub fn outcome_class(&self) -> &'static str {
        if self.hung {
            return "hang";
        }
        match self.outcome {
            CaseOutcome::Recovered => "recovered",
            CaseOutcome::Aborted => "due",
            CaseOutcome::Diverged => {
                if self.recoveries > 0 || self.exception_detections > 0 {
                    "due"
                } else {
                    "sdc"
                }
            }
        }
    }
}

pub(crate) fn fault_detail(kind: FaultKind) -> String {
    match kind {
        FaultKind::RegBitFlip { reg, bit } => format!("r{reg}b{bit}"),
        FaultKind::PcBitFlip { bit } => format!("b{bit}"),
        FaultKind::MemBitFlip { addr, bit } => {
            format!("0x{:x}b{bit}", addr.byte())
        }
        FaultKind::MemBurst { addr, bit, span } => {
            format!("0x{:x}b{bit}s{span}", addr.byte())
        }
        FaultKind::StuckAt {
            addr,
            bit,
            stuck_one,
        } => format!("0x{:x}b{bit}={}", addr.byte(), u8::from(stuck_one)),
        FaultKind::Crash => "-".to_string(),
    }
}

/// Aggregate result of one campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Plan seed.
    pub seed: u64,
    /// Total retired instructions of the fault-free run (the progress
    /// axis faults were drawn from).
    pub total_progress: u64,
    /// Cores of the simulated machine.
    pub num_cores: u32,
    /// Every case, in plan order.
    pub cases: Vec<FaultCaseRecord>,
    /// Interval-sampled metrics of the fault-free baseline run (empty
    /// unless [`CampaignConfig::sample_interval`] > 0). Observational
    /// only: excluded from [`CampaignReport::content_hash`].
    pub baseline_series: TimeSeries,
    /// Campaign-wide counters and histograms (case outcomes, recovery
    /// costs, escalation rungs), accumulated per worker shard and folded
    /// with the loss-free [`MetricsRegistry::merge`] — identical for
    /// every [`CampaignConfig::jobs`] value. Observational only: excluded
    /// from [`CampaignReport::content_hash`].
    pub metrics: MetricsRegistry,
    /// One line per case in case order when [`CampaignConfig::progress`]
    /// is set (empty otherwise). Buffered per shard, flushed at merge, so
    /// the text never interleaves across workers. Excluded from
    /// [`CampaignReport::content_hash`].
    pub case_log: String,
    /// Forensic bundles of every *failed* case (diverged, aborted,
    /// escalation-exhausted or invariant-breached), in case order —
    /// jobs-invariant like everything else in the report. Observational
    /// only: excluded from [`CampaignReport::content_hash`],
    /// [`CampaignReport::csv`] and [`CampaignReport::summary`], so pinned
    /// campaign hashes are untouched.
    pub postmortems: Vec<PostmortemBundle>,
}

impl CampaignReport {
    /// Faults injected (every planned case injects exactly one).
    pub fn injected(&self) -> u64 {
        self.cases.len() as u64
    }

    /// Cases in which the engine detected the fault and recovered at
    /// least once.
    pub fn detected(&self) -> u64 {
        self.cases.iter().filter(|c| c.recoveries > 0).count() as u64
    }

    /// Cases that converged to the reference state.
    pub fn recovered(&self) -> u64 {
        self.outcome_count(CaseOutcome::Recovered)
    }

    /// Cases whose final state diverged from the reference.
    pub fn diverged(&self) -> u64 {
        self.outcome_count(CaseOutcome::Diverged)
    }

    /// Cases the engine could not finish.
    pub fn aborted(&self) -> u64 {
        self.outcome_count(CaseOutcome::Aborted)
    }

    fn outcome_count(&self, o: CaseOutcome) -> u64 {
        self.cases.iter().filter(|c| c.outcome == o).count() as u64
    }

    /// Recoveries triggered by simulator traps.
    pub fn exception_detections(&self) -> u64 {
        self.cases.iter().map(|c| c.exception_detections).sum()
    }

    /// Final memory words differing from the reference, summed.
    pub fn divergent_words(&self) -> u64 {
        self.cases
            .iter()
            .map(|c| c.mem_divergence + c.reg_divergence)
            .sum()
    }

    /// Cycles stalled in recovery, summed.
    pub fn recovery_stall_cycles(&self) -> u64 {
        self.cases.iter().map(|c| c.recovery_stall_cycles).sum()
    }

    /// Wasted (re-executed) cycles, summed.
    pub fn waste_cycles(&self) -> u64 {
        self.cases.iter().map(|c| c.waste_cycles).sum()
    }

    /// Log records restored, summed (energy accounting input).
    pub fn restored_records(&self) -> u64 {
        self.cases.iter().map(|c| c.restored_records).sum()
    }

    /// Values recomputed by Slices, summed (energy accounting input).
    pub fn recomputed_values(&self) -> u64 {
        self.cases.iter().map(|c| c.recomputed_values).sum()
    }

    /// Slice instructions executed while recomputing, summed.
    pub fn recompute_alu_ops(&self) -> u64 {
        self.cases.iter().map(|c| c.recompute_alu_ops).sum()
    }

    /// Recovery re-replay attempts, summed (escalation rung 1).
    pub fn replay_retries(&self) -> u64 {
        self.cases.iter().map(|c| c.replay_retries).sum()
    }

    /// Checkpoint-generation fallbacks, summed (escalation rung 2).
    pub fn generation_fallbacks(&self) -> u64 {
        self.cases.iter().map(|c| c.generation_fallbacks).sum()
    }

    /// Degraded full-logging entries, summed (escalation rung 3).
    pub fn degraded_entries(&self) -> u64 {
        self.cases.iter().map(|c| c.degraded_entries).sum()
    }

    /// Whether any case carried a recovery-window fault (nested-fault
    /// mode).
    pub fn has_recovery_faults(&self) -> bool {
        self.cases.iter().any(|c| c.recovery_fault.is_some())
    }

    /// Per-case escalation CSV (nested-fault mode; header included).
    /// Appended to the content hash only when recovery faults were
    /// injected, so plain campaign hashes are bit-identical to releases
    /// without this section.
    pub fn escalation_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("case,recovery_fault,replay_retries,generation_fallbacks,degraded\n");
        for c in &self.cases {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                c.case,
                c.recovery_fault.map_or("-", |k| k.label()),
                c.replay_retries,
                c.generation_fallbacks,
                c.degraded_entries,
            );
        }
        out
    }

    /// Per-case CSV (header included). Ends with the `class` column — the
    /// soak-matrix outcome class ([`FaultCaseRecord::outcome_class`]); the
    /// historical 18-column prefix is byte-identical to [`csv_v1`] and is
    /// what [`CampaignReport::content_hash`] covers.
    ///
    /// [`csv_v1`]: CampaignReport::content_hash
    pub fn csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "case,at_progress,core,kind,detail,recoveries,exception_detections,\
             shadow_divergence,mem_divergence,reg_divergence,final_retired,\
             restored_records,recomputed_values,recompute_alu_ops,\
             recovery_stall_cycles,waste_cycles,cycles,outcome,class\n",
        );
        for c in &self.cases {
            let _ = writeln!(out, "{},{}", Self::csv_row(c), c.outcome_class());
        }
        out
    }

    /// Historical 18-column per-case CSV, byte-for-byte what every release
    /// before the `class` column emitted. Exists solely so
    /// [`CampaignReport::content_hash`] — and the golden hashes pinned on
    /// it — never move when presentation columns are appended to
    /// [`CampaignReport::csv`].
    fn csv_v1(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "case,at_progress,core,kind,detail,recoveries,exception_detections,\
             shadow_divergence,mem_divergence,reg_divergence,final_retired,\
             restored_records,recomputed_values,recompute_alu_ops,\
             recovery_stall_cycles,waste_cycles,cycles,outcome\n",
        );
        for c in &self.cases {
            let _ = writeln!(out, "{}", Self::csv_row(c));
        }
        out
    }

    /// The shared 18 leading CSV fields of one case.
    fn csv_row(c: &FaultCaseRecord) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            c.case,
            c.fault.at_progress,
            c.fault.core.0,
            c.fault.kind.label(),
            fault_detail(c.fault.kind),
            c.recoveries,
            c.exception_detections,
            c.shadow_divergence,
            c.mem_divergence,
            c.reg_divergence,
            c.final_retired,
            c.restored_records,
            c.recomputed_values,
            c.recompute_alu_ops,
            c.recovery_stall_cycles,
            c.waste_cycles,
            c.cycles,
            c.outcome.label(),
        )
    }

    /// Cases per soak-matrix outcome class:
    /// `(recovered, due, sdc, hang)`.
    pub fn class_counts(&self) -> (u64, u64, u64, u64) {
        let mut counts = (0u64, 0u64, 0u64, 0u64);
        for c in &self.cases {
            match c.outcome_class() {
                "recovered" => counts.0 += 1,
                "due" => counts.1 += 1,
                "sdc" => counts.2 += 1,
                _ => counts.3 += 1,
            }
        }
        counts
    }

    /// FNV-1a hash of every campaign datum — two campaigns are equal iff
    /// their hashes are (the determinism check `tests/determinism.rs`
    /// pins). Covers the historical 18-column CSV, so appending
    /// presentation columns to [`CampaignReport::csv`] cannot move pinned
    /// hashes.
    pub fn content_hash(&self) -> u64 {
        let head = format!("{},{},{}\n", self.seed, self.total_progress, self.num_cores);
        let esc = if self.has_recovery_faults() {
            self.escalation_csv()
        } else {
            String::new()
        };
        let mut h = Fnv1a::new();
        h.write(head.as_bytes());
        h.write(self.csv_v1().as_bytes());
        h.write(esc.as_bytes());
        h.finish()
    }

    /// Cases and convergences for one fault-kind label.
    pub fn kind_counts(&self, label: &str) -> (u64, u64) {
        let total = self
            .cases
            .iter()
            .filter(|c| c.fault.kind.label() == label)
            .count() as u64;
        let ok = self
            .cases
            .iter()
            .filter(|c| c.fault.kind.label() == label && c.outcome == CaseOutcome::Recovered)
            .count() as u64;
        (total, ok)
    }

    /// Human-readable campaign summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fault campaign: seed={} cases={} cores={} total_work={}",
            self.seed,
            self.cases.len(),
            self.num_cores,
            self.total_progress
        );
        let _ = writeln!(
            out,
            "  injected {}  detected {}  (via exception: {})",
            self.injected(),
            self.detected(),
            self.exception_detections()
        );
        let _ = writeln!(
            out,
            "  recovered {}  diverged {}  aborted {}  divergent_words {}",
            self.recovered(),
            self.diverged(),
            self.aborted(),
            self.divergent_words()
        );
        let (cls_rec, cls_due, cls_sdc, cls_hang) = self.class_counts();
        let _ = writeln!(
            out,
            "  classes: recovered {cls_rec}  due {cls_due}  sdc {cls_sdc}  hang {cls_hang}",
        );
        let mix: Vec<String> = ["reg", "pc", "mem", "burst", "stuck", "crash"]
            .iter()
            .filter_map(|label| {
                let (total, _) = self.kind_counts(label);
                (total > 0).then(|| format!("{label} {total}"))
            })
            .collect();
        let _ = writeln!(out, "  kind mix: {}", mix.join("  "));
        let _ = writeln!(
            out,
            "  recovery cost: stall_cycles {}  waste_cycles {}  restored {}  recomputed {}",
            self.recovery_stall_cycles(),
            self.waste_cycles(),
            self.restored_records(),
            self.recomputed_values()
        );
        for label in ["reg", "pc", "mem", "burst", "stuck", "crash"] {
            let (total, ok) = self.kind_counts(label);
            if total > 0 {
                let _ = writeln!(out, "  {label}: {ok}/{total} recovered");
            }
        }
        if self.has_recovery_faults() {
            let _ = writeln!(
                out,
                "  escalation: replay_retries {}  generation_fallbacks {}  degraded_entries {}",
                self.replay_retries(),
                self.generation_fallbacks(),
                self.degraded_entries()
            );
            for label in RECOVERY_FAULT_LABELS {
                let total = self
                    .cases
                    .iter()
                    .filter(|c| c.recovery_fault.map(|k| k.label()) == Some(label))
                    .count() as u64;
                let ok = self
                    .cases
                    .iter()
                    .filter(|c| {
                        c.recovery_fault.map(|k| k.label()) == Some(label)
                            && c.outcome == CaseOutcome::Recovered
                    })
                    .count() as u64;
                if total > 0 {
                    let _ = writeln!(out, "  recovery-fault {label}: {ok}/{total} recovered");
                }
            }
        }
        let _ = writeln!(out, "  content_hash {:#018x}", self.content_hash());
        out
    }
}

/// Everything one fault case needs, shared read-only across workers.
/// Only plain data and the `Sync` policy factory cross the thread
/// boundary; each worker builds its own `Machine`/`BerEngine` (which are
/// `!Send` by design — their trace sink is `Rc`-based).
pub(crate) struct CaseCtx<'a, F> {
    pub(crate) program: &'a Program,
    pub(crate) machine: MachineConfig,
    pub(crate) cfg: &'a CampaignConfig,
    pub(crate) total: u64,
    pub(crate) detection_latency: u64,
    pub(crate) reference_mem: &'a [u64],
    /// Reference register file (single-threaded programs only).
    pub(crate) reference_regs: Option<&'a [u64]>,
    pub(crate) policy: &'a F,
}

/// Runs one case — one *or more* planned faults in a single engine run —
/// to its verdict: fresh machine, fresh policy, engine run, differential
/// compare. Pure in `(ctx, i, faults)`, which is what makes the campaign
/// jobs-invariant. Campaigns always pass a single fault; the shrinker
/// passes the (shrinking) multi-fault plan of one failing case. Failed
/// cases additionally yield a [`PostmortemBundle`] drained from the
/// case's flight recorder. The record's `fault` field carries the first
/// planned fault.
pub(crate) fn run_fault_case<P, F>(
    ctx: &CaseCtx<'_, F>,
    i: usize,
    faults: &[Fault],
) -> (FaultCaseRecord, Option<PostmortemBundle>)
where
    P: OmissionPolicy,
    F: Fn() -> P,
{
    let cfg = ctx.cfg;
    let total = ctx.total;
    let fault = faults[0];
    let resilience = if cfg.recovery_faults {
        ResilienceConfig {
            generations: cfg.generations.max(2),
            recovery_faults: RecoveryFault::planned(cfg.seed, i as u32),
            watchdog_budget_cycles: cfg.watchdog_budget_cycles,
            ..Default::default()
        }
    } else {
        ResilienceConfig {
            generations: cfg.generations.max(1),
            watchdog_budget_cycles: cfg.watchdog_budget_cycles,
            ..Default::default()
        }
    };
    let recovery_fault = resilience.recovery_faults.first().map(|f| f.kind);
    let ber = BerConfig {
        scheme: cfg.scheme,
        triggers: uniform_points(total, cfg.num_checkpoints),
        errors: ErrorSchedule {
            occurrences: Vec::new(),
            detection_latency: ctx.detection_latency,
        },
        oracle: true,
        secondary: None,
        faults: faults.to_vec(),
        resilience,
    };
    let mut m = Machine::new(ctx.machine, ctx.program);
    // The always-on flight recorder: a fixed-capacity ring sink, so a
    // recorder-backed case stays cycle- and hash-identical (tracing is
    // observational) while failed cases keep their event tails.
    let recorder = if cfg.recorder {
        let (sink, rec) = FlightRecorder::shared(ctx.machine.num_cores as usize);
        m.set_trace_sink(sink);
        Some(rec)
    } else {
        None
    };
    let mut engine = BerEngine::new(m, (ctx.policy)(), ber);
    match engine.run_to_completion() {
        Ok(report) => {
            let m = engine.machine();
            let mem_divergence = m
                .mem()
                .image()
                .words()
                .iter()
                .zip(ctx.reference_mem)
                .filter(|(a, b)| a != b)
                .count() as u64;
            let reg_divergence = ctx.reference_regs.map_or(0, |refs| {
                (0..NUM_REGS)
                    .filter(|&r| m.cores()[0].reg(Reg(r as u8)) != refs[r])
                    .count() as u64
            });
            let final_retired = m.total_retired();
            let converged = mem_divergence == 0
                && reg_divergence == 0
                && final_retired == total
                && m.all_halted();
            let record = FaultCaseRecord {
                case: i as u32,
                fault,
                recoveries: report.recoveries.len() as u64,
                exception_detections: report.exception_detections,
                shadow_divergence: report.divergent_words,
                mem_divergence,
                reg_divergence,
                final_retired,
                restored_records: report.recoveries.iter().map(|r| r.restored_records).sum(),
                recomputed_values: report.recoveries.iter().map(|r| r.recomputed_values).sum(),
                recompute_alu_ops: report.recoveries.iter().map(|r| r.recompute_alu_ops).sum(),
                recovery_stall_cycles: report.recovery_stall_cycles,
                waste_cycles: report.recoveries.iter().map(|r| r.waste_cycles).sum(),
                cycles: report.cycles,
                landing_cycle: report.fault_landing_cycles.first().copied().unwrap_or(0),
                recovery_fault,
                replay_retries: report.replay_retries,
                generation_fallbacks: report.generation_fallbacks,
                degraded_entries: report.degraded_entries,
                hung: false,
                outcome: if converged {
                    CaseOutcome::Recovered
                } else {
                    CaseOutcome::Diverged
                },
            };
            let trigger = if record.outcome == CaseOutcome::Diverged {
                Some("divergence")
            } else if report.invariants.total_breaches() > 0 {
                Some("invariant-breach")
            } else if report.escalation_exhausted > 0 {
                Some("escalation-exhaustion")
            } else {
                None
            };
            let bundle = trigger.map(|t| {
                PostmortemBundle::capture(
                    t,
                    cfg.seed,
                    &record,
                    &report,
                    m.mem().image().words(),
                    engine.log_totals(),
                    recorder.as_ref().map(|r| r.borrow()).as_deref(),
                    None,
                )
            });
            (record, bundle)
        }
        Err(err) => {
            let hung = matches!(err, SimError::RecoveryHang { .. });
            let record = FaultCaseRecord {
                case: i as u32,
                fault,
                recoveries: 0,
                exception_detections: 0,
                shadow_divergence: 0,
                mem_divergence: 0,
                reg_divergence: 0,
                final_retired: 0,
                restored_records: 0,
                recomputed_values: 0,
                recompute_alu_ops: 0,
                recovery_stall_cycles: 0,
                waste_cycles: 0,
                cycles: 0,
                landing_cycle: 0,
                recovery_fault,
                replay_retries: 0,
                generation_fallbacks: 0,
                degraded_entries: 0,
                hung,
                outcome: CaseOutcome::Aborted,
            };
            let bundle = PostmortemBundle::capture(
                if hung { "hang" } else { "abort" },
                cfg.seed,
                &record,
                engine.partial_report(),
                engine.machine().mem().image().words(),
                engine.log_totals(),
                recorder.as_ref().map(|r| r.borrow()).as_deref(),
                Some(&err.to_string()),
            );
            (record, Some(bundle))
        }
    }
}

/// One progress-log line for a finished case (deterministic: record data
/// only, no timestamps, no worker identity).
fn case_log_line(c: &FaultCaseRecord) -> String {
    format!(
        "case {:04} {}:{} core{} at {} -> {} (recoveries {}, cycles {})",
        c.case,
        c.fault.kind.label(),
        fault_detail(c.fault.kind),
        c.fault.core.0,
        c.fault.at_progress,
        c.outcome.label(),
        c.recoveries,
        c.cycles,
    )
}

/// Folds one finished case into a shard's metrics registry. Add-only
/// counters and histograms, so shard merge order cannot change the
/// result.
fn record_case_metrics(reg: &mut MetricsRegistry, c: &FaultCaseRecord) {
    reg.add("campaign.cases", 1);
    let outcome_key = match c.outcome {
        CaseOutcome::Recovered => "campaign.recovered",
        CaseOutcome::Diverged => "campaign.diverged",
        CaseOutcome::Aborted => "campaign.aborted",
    };
    reg.add(outcome_key, 1);
    reg.add(&format!("campaign.class.{}", c.outcome_class()), 1);
    reg.add("campaign.recoveries", c.recoveries);
    reg.add("campaign.exception_detections", c.exception_detections);
    reg.add(
        "campaign.divergent_words",
        c.mem_divergence + c.reg_divergence,
    );
    reg.add("campaign.restored_records", c.restored_records);
    reg.add("campaign.recomputed_values", c.recomputed_values);
    reg.add("campaign.recompute_alu_ops", c.recompute_alu_ops);
    reg.add("campaign.replay_retries", c.replay_retries);
    reg.add("campaign.generation_fallbacks", c.generation_fallbacks);
    reg.add("campaign.degraded_entries", c.degraded_entries);
    if let Some(k) = c.recovery_fault {
        reg.add(&format!("campaign.recovery_fault.{}", k.label()), 1);
    }
    reg.record_hist("campaign.case.cycles", c.cycles);
    reg.record_hist(
        "campaign.case.recovery_stall_cycles",
        c.recovery_stall_cycles,
    );
    reg.record_hist("campaign.case.waste_cycles", c.waste_cycles);
}

/// Fault-free reference state shared by campaigns, the soak driver and
/// the shrinker: interpreter run, timing run, differential cross-check,
/// and the written working set memory corruption targets.
pub(crate) struct CampaignBaseline {
    /// Total retired instructions (the progress axis).
    pub(crate) total: u64,
    /// Reference final memory image (words).
    pub(crate) reference_mem: Vec<u64>,
    /// Reference register file (single-threaded programs only).
    pub(crate) reference_regs: Option<Vec<u64>>,
    /// Written working set (memory-fault targets).
    pub(crate) mem_targets: Vec<acr_mem::WordAddr>,
    /// Interval-sampled metrics of the fault-free timing run (empty
    /// unless sampling was requested).
    pub(crate) baseline_series: TimeSeries,
}

/// Runs the two fault-free reference executions (ISA interpreter and
/// timing simulator), cross-checks them word for word, and returns the
/// shared baseline every fault case is compared against.
///
/// # Errors
///
/// Fails if either reference run fails, if the two disagree
/// ([`CampaignError::ReferenceMismatch`]), or if the program is too short
/// to draw injection points from.
pub(crate) fn fault_free_baseline(
    program: &Program,
    machine: MachineConfig,
    interp_fuel: u64,
    sample_interval: u64,
) -> Result<CampaignBaseline, CampaignError> {
    // Fault-free reference: the ISA interpreter, an implementation
    // independent of the timing simulator.
    let mut interp = Interp::new(program);
    interp
        .run_to_completion(interp_fuel)
        .map_err(CampaignError::Reference)?;

    // Fault-free timing run: yields the progress axis and the written
    // working set memory corruption targets.
    let mut census = StoreCensus::new();
    let mut base = Machine::new(machine, program);
    if sample_interval > 0 {
        base.enable_sampling(sample_interval);
    }
    base.run(&mut census, u64::MAX)
        .map_err(CampaignError::Sim)?;
    let baseline_series = if sample_interval > 0 {
        base.force_sample();
        base.take_series()
    } else {
        TimeSeries::default()
    };
    let baseline_mismatch = base
        .mem()
        .image()
        .words()
        .iter()
        .zip(interp.mem())
        .filter(|(a, b)| a != b)
        .count() as u64;
    if baseline_mismatch > 0 {
        return Err(CampaignError::ReferenceMismatch {
            words: baseline_mismatch,
        });
    }
    let total = base.total_retired();
    if total < 2 {
        return Err(CkptError::ProgramTooShort { total }.into());
    }
    // Precompute the reference register file so workers share a plain
    // slice instead of the interpreter itself.
    let reference_regs: Option<Vec<u64>> = (program.num_threads() == 1).then(|| {
        (0..NUM_REGS)
            .map(|r| interp.reg(ThreadId(0), Reg(r as u8)))
            .collect()
    });
    Ok(CampaignBaseline {
        total,
        reference_mem: interp.mem().to_vec(),
        reference_regs,
        mem_targets: census.into_targets(),
        baseline_series,
    })
}

/// Runs a fault campaign over `program`: one fresh machine + policy per
/// planned fault, differentially verified against the reference
/// interpreter. `policy` is a factory — campaigns over ACR use it to
/// build a fresh `AcrPolicy` per case. With [`CampaignConfig::jobs`] > 1
/// the cases shard across worker threads; the report is byte-identical
/// for every jobs value (see [`crate::parallel`]).
///
/// # Errors
///
/// Fails only if the *fault-free* runs fail or disagree with each other
/// (see [`CampaignError`]); faulted cases that cannot finish are recorded
/// as [`CaseOutcome::Aborted`], never dropped.
pub fn run_campaign<P, F>(
    program: &Program,
    machine: MachineConfig,
    cfg: &CampaignConfig,
    policy: F,
) -> Result<CampaignReport, CampaignError>
where
    P: OmissionPolicy,
    F: Fn() -> P + Sync,
{
    run_campaign_loads(program, machine, cfg, policy).map(|(report, _loads)| report)
}

/// Like [`run_campaign`], but additionally returns each worker's
/// host-side load (busy wall time and cases executed, from
/// [`ParallelRunner::run_sharded_loads`]).
///
/// The loads are returned *next to* the report, never inside it: a
/// [`CampaignReport`] compares byte-identically across jobs values while
/// worker loads, by nature, do not. Callers feed them to the `host.jobs.*`
/// section of run manifests.
///
/// # Errors
///
/// Identical to [`run_campaign`].
pub fn run_campaign_loads<P, F>(
    program: &Program,
    machine: MachineConfig,
    cfg: &CampaignConfig,
    policy: F,
) -> Result<(CampaignReport, Vec<WorkerLoad>), CampaignError>
where
    P: OmissionPolicy,
    F: Fn() -> P + Sync,
{
    // Malformed configurations get typed errors before any work runs.
    if program.num_threads() == 0 {
        return Err(CkptError::NoCores.into());
    }
    if cfg.count == 0 {
        return Err(CkptError::EmptyCampaign.into());
    }
    if !(0.0..=1.0).contains(&cfg.detection_latency_frac) {
        return Err(CkptError::InvalidLatency {
            frac: cfg.detection_latency_frac,
        }
        .into());
    }
    if cfg.recovery_faults && cfg.scheme != Scheme::GlobalCoordinated {
        return Err(CkptError::Unsupported {
            what: "recovery faults require the global coordinated scheme \
                   (per-group rollback has no single safe generation to tear)"
                .to_string(),
        }
        .into());
    }

    let base = fault_free_baseline(program, machine, cfg.interp_fuel, cfg.sample_interval)?;
    let total = base.total;
    let num_cores = machine.num_cores;
    let mem_targets = base.mem_targets;
    // Mirror the plan generator's injectability rules with a typed error:
    // memory corruption (flips, bursts, stuck cells) needs a non-empty
    // written working set to land on.
    let injectable = cfg.kinds.reg
        || cfg.kinds.pc
        || cfg.kinds.crash
        || ((cfg.kinds.mem || cfg.kinds.burst || cfg.kinds.stuck) && !mem_targets.is_empty());
    if !injectable {
        let mut requested: Vec<&str> = Vec::new();
        if cfg.kinds.reg {
            requested.push("reg");
        }
        if cfg.kinds.pc {
            requested.push("pc");
        }
        if cfg.kinds.mem {
            requested.push("mem");
        }
        if cfg.kinds.burst {
            requested.push("burst");
        }
        if cfg.kinds.stuck {
            requested.push("stuck");
        }
        if cfg.kinds.crash {
            requested.push("crash");
        }
        return Err(CkptError::NoInjectableKind {
            requested: requested.join(","),
        }
        .into());
    }

    let plan = FaultPlan::generate(&FaultPlanConfig {
        seed: cfg.seed,
        count: cfg.count,
        kinds: cfg.kinds,
        total_progress: total,
        cores: num_cores,
        mem_targets,
        storm: cfg.storm,
    });

    let period = total / (u64::from(cfg.num_checkpoints) + 1);
    let detection_latency = (period as f64 * cfg.detection_latency_frac) as u64;

    let ctx = CaseCtx {
        program,
        machine,
        cfg,
        total,
        detection_latency,
        reference_mem: &base.reference_mem,
        reference_regs: base.reference_regs.as_deref(),
        policy: &policy,
    };

    // Dynamic work handout, static (case-index-ordered) result placement:
    // the merged report is identical for every jobs value.
    let runner = ParallelRunner::new(cfg.jobs);
    let (results, shards, loads) = runner.run_sharded_loads(
        plan.faults.len(),
        MetricsRegistry::new,
        |i, shard: &mut MetricsRegistry| {
            let (rec, bundle) = run_fault_case(&ctx, i, std::slice::from_ref(&plan.faults[i]));
            record_case_metrics(shard, &rec);
            let line = cfg.progress.then(|| case_log_line(&rec));
            (rec, line, bundle)
        },
    );

    let mut metrics = MetricsRegistry::new();
    for shard in &shards {
        metrics.merge(shard);
    }
    metrics.publish_hist_digests();

    let mut cases = Vec::with_capacity(results.len());
    let mut case_log = String::new();
    let mut postmortems = Vec::new();
    for (rec, line, bundle) in results {
        if let Some(line) = line {
            case_log.push_str(&line);
            case_log.push('\n');
        }
        if let Some(b) = bundle {
            postmortems.push(b);
        }
        cases.push(rec);
    }

    Ok((
        CampaignReport {
            seed: cfg.seed,
            total_progress: total,
            num_cores,
            cases,
            baseline_series: base.baseline_series,
            metrics,
            case_log,
            postmortems,
        },
        loads,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NoOmission;
    use acr_isa::{AluOp, ProgramBuilder, Reg};

    fn kernel(threads: usize, iters: u64) -> Program {
        let mut b = ProgramBuilder::new(threads);
        b.set_mem_bytes(1 << 18);
        for t in 0..threads as u32 {
            let base = u64::from(t) * 32768;
            let tb = b.thread(t);
            tb.imm(Reg(10), base);
            let outer = tb.begin_loop(Reg(8), Reg(9), 4);
            let l = tb.begin_loop(Reg(1), Reg(2), iters);
            tb.alui(AluOp::Mul, Reg(3), Reg(1), 13);
            tb.alu(AluOp::Xor, Reg(3), Reg(3), Reg(8));
            tb.alui(AluOp::Mul, Reg(4), Reg(1), 8);
            tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
            tb.store(Reg(3), Reg(5), 0);
            tb.end_loop(l);
            tb.end_loop(outer);
            tb.halt();
        }
        b.build()
    }

    fn campaign(count: u32, kinds: FaultKindSet, seed: u64) -> CampaignReport {
        let p = kernel(2, 60);
        let cfg = CampaignConfig {
            seed,
            count,
            kinds,
            num_checkpoints: 5,
            ..CampaignConfig::default()
        };
        run_campaign(&p, MachineConfig::with_cores(2), &cfg, || NoOmission).expect("campaign runs")
    }

    #[test]
    fn recoverable_kinds_always_converge() {
        let r = campaign(25, FaultKindSet::recoverable(), 7);
        assert_eq!(r.injected(), 25);
        assert_eq!(r.detected(), 25, "{}", r.summary());
        assert_eq!(r.recovered(), 25, "{}", r.summary());
        assert_eq!(r.divergent_words(), 0);
        assert_eq!(r.aborted(), 0);
    }

    #[test]
    fn mem_faults_are_classified_never_silent() {
        let r = campaign(25, FaultKindSet::all(), 11);
        assert_eq!(r.injected(), 25);
        assert_eq!(r.aborted(), 0, "{}", r.summary());
        // Every diverged case must carry visible evidence.
        for c in &r.cases {
            if c.outcome == CaseOutcome::Diverged {
                assert_eq!(c.fault.kind.label(), "mem", "{c:?}");
                assert!(
                    c.mem_divergence + c.shadow_divergence > 0
                        || c.final_retired != r.total_progress,
                    "diverged without evidence: {c:?}"
                );
            }
            if c.fault.kind.guaranteed_recoverable() {
                assert_eq!(c.outcome, CaseOutcome::Recovered, "{c:?}");
            }
        }
    }

    #[test]
    fn same_seed_same_campaign() {
        let a = campaign(15, FaultKindSet::all(), 42);
        let b = campaign(15, FaultKindSet::all(), 42);
        assert_eq!(a, b);
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(a.csv(), b.csv());
        let c = campaign(15, FaultKindSet::all(), 43);
        assert_ne!(a.content_hash(), c.content_hash());
    }

    /// The tentpole guarantee at unit scale: the full report — cases,
    /// CSV, content hash, merged metrics, ordered case log — is
    /// byte-identical for every jobs value.
    #[test]
    fn campaign_is_jobs_invariant() {
        let p = kernel(2, 60);
        let m = MachineConfig::with_cores(2);
        let base = CampaignConfig {
            seed: 42,
            count: 20,
            kinds: FaultKindSet::all(),
            num_checkpoints: 5,
            progress: true,
            ..CampaignConfig::default()
        };
        let seq = run_campaign(&p, m, &base, || NoOmission).expect("campaign runs");
        for jobs in [2usize, 4, 8] {
            let cfg = CampaignConfig {
                jobs,
                ..base.clone()
            };
            let par = run_campaign(&p, m, &cfg, || NoOmission).expect("campaign runs");
            assert_eq!(seq, par, "jobs={jobs}");
            assert_eq!(seq.content_hash(), par.content_hash(), "jobs={jobs}");
            assert_eq!(seq.csv(), par.csv(), "jobs={jobs}");
            assert_eq!(seq.case_log, par.case_log, "jobs={jobs}");
            assert_eq!(seq.metrics, par.metrics, "jobs={jobs}");
        }
    }

    /// The shard-merged registry agrees with the report's own aggregates
    /// and carries published histogram digests.
    #[test]
    fn campaign_metrics_match_report_aggregates() {
        let r = campaign(25, FaultKindSet::recoverable(), 7);
        assert_eq!(r.metrics.get("campaign.cases"), Some(25));
        assert_eq!(r.metrics.get("campaign.recovered"), Some(r.recovered()));
        assert_eq!(
            r.metrics.get("campaign.recoveries"),
            Some(r.cases.iter().map(|c| c.recoveries).sum())
        );
        assert_eq!(
            r.metrics.get("campaign.restored_records"),
            Some(r.restored_records())
        );
        let h = r.metrics.hist("campaign.case.cycles").expect("cycles hist");
        assert_eq!(h.count(), 25);
        assert!(r.metrics.get("campaign.case.cycles.p50").is_some());
    }

    /// Progress logging emits exactly one line per case, in case order,
    /// and stays out of the content hash.
    #[test]
    fn case_log_is_ordered_and_hash_neutral() {
        let p = kernel(2, 60);
        let m = MachineConfig::with_cores(2);
        let cfg = CampaignConfig {
            seed: 11,
            count: 10,
            kinds: FaultKindSet::recoverable(),
            num_checkpoints: 5,
            progress: true,
            jobs: 4,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&p, m, &cfg, || NoOmission).expect("campaign runs");
        let lines: Vec<&str> = r.case_log.lines().collect();
        assert_eq!(lines.len(), 10);
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.starts_with(&format!("case {i:04} ")),
                "line {i}: {line}"
            );
        }
        let quiet = CampaignConfig {
            progress: false,
            jobs: 1,
            ..cfg
        };
        let q = run_campaign(&p, m, &quiet, || NoOmission).expect("campaign runs");
        assert!(q.case_log.is_empty());
        assert_eq!(q.content_hash(), r.content_hash());
    }

    #[test]
    fn malformed_configs_get_typed_errors() {
        let p = kernel(1, 60);
        let m = MachineConfig::with_cores(1);

        let cfg = CampaignConfig {
            count: 0,
            ..CampaignConfig::default()
        };
        let err = run_campaign(&p, m, &cfg, || NoOmission).unwrap_err();
        assert!(matches!(
            err,
            CampaignError::Config(CkptError::EmptyCampaign)
        ));

        let cfg = CampaignConfig {
            detection_latency_frac: 1.5,
            ..CampaignConfig::default()
        };
        let err = run_campaign(&p, m, &cfg, || NoOmission).unwrap_err();
        assert!(matches!(
            err,
            CampaignError::Config(CkptError::InvalidLatency { .. })
        ));

        let cfg = CampaignConfig {
            recovery_faults: true,
            scheme: Scheme::LocalCoordinated,
            ..CampaignConfig::default()
        };
        let err = run_campaign(&p, m, &cfg, || NoOmission).unwrap_err();
        assert!(matches!(
            err,
            CampaignError::Config(CkptError::Unsupported { .. })
        ));
        // Typed errors render as messages, never panic backtraces.
        assert!(err.to_string().contains("global coordinated"));
    }

    #[test]
    fn zero_thread_program_gets_typed_error() {
        // A zero-thread program validates vacuously but yields a machine
        // with no cores; error placement takes indices modulo the core
        // count, so this used to die on remainder-by-zero inside engine
        // construction instead of reporting a config error.
        let mut b = ProgramBuilder::new(0);
        b.set_mem_bytes(1 << 12);
        let p = b.build();
        p.validate().expect("vacuously valid");
        let err = run_campaign(
            &p,
            MachineConfig::with_cores(1),
            &CampaignConfig::default(),
            || NoOmission,
        )
        .unwrap_err();
        assert!(matches!(err, CampaignError::Config(CkptError::NoCores)));
        assert!(err.to_string().contains("no threads"));
    }

    #[test]
    fn storeless_program_cannot_take_mem_faults() {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(1 << 12);
        let tb = b.thread(0);
        let l = tb.begin_loop(Reg(1), Reg(2), 50);
        tb.alui(AluOp::Add, Reg(3), Reg(1), 1);
        tb.end_loop(l);
        tb.halt();
        let p = b.build();
        let cfg = CampaignConfig {
            count: 5,
            kinds: FaultKindSet {
                reg: false,
                pc: false,
                mem: true,
                burst: false,
                stuck: false,
                crash: false,
            },
            ..CampaignConfig::default()
        };
        let err = run_campaign(&p, MachineConfig::with_cores(1), &cfg, || NoOmission).unwrap_err();
        match err {
            CampaignError::Config(CkptError::NoInjectableKind { requested }) => {
                assert_eq!(requested, "mem");
            }
            other => panic!("expected NoInjectableKind, got {other:?}"),
        }
    }

    #[test]
    fn recovery_fault_campaign_recovers_and_hashes_deterministically() {
        let p = kernel(2, 60);
        let m = MachineConfig::with_cores(2);
        let cfg = CampaignConfig {
            seed: 42,
            count: 12,
            kinds: FaultKindSet::recoverable(),
            num_checkpoints: 5,
            recovery_faults: true,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&p, m, &cfg, || NoOmission).expect("campaign runs");
        assert!(a.has_recovery_faults());
        assert_eq!(a.recovered(), 12, "{}", a.summary());
        assert_eq!(a.divergent_words(), 0);
        assert_eq!(a.aborted(), 0);
        // The nested faults actually bit: escalation is visible, not silent.
        assert!(
            a.replay_retries() + a.generation_fallbacks() > 0,
            "{}",
            a.summary()
        );
        let b = run_campaign(&p, m, &cfg, || NoOmission).expect("campaign runs");
        assert_eq!(a, b);
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(a.escalation_csv(), b.escalation_csv());
        // The escalation section extends the hash relative to a plain
        // campaign over the same seed.
        let plain_cfg = CampaignConfig {
            recovery_faults: false,
            ..cfg.clone()
        };
        let plain = run_campaign(&p, m, &plain_cfg, || NoOmission).expect("campaign runs");
        assert!(!plain.has_recovery_faults());
        assert_ne!(a.content_hash(), plain.content_hash());
    }

    /// Every failed case yields exactly one postmortem bundle, in case
    /// order, with recorder rings and a non-empty probable cause — and
    /// the bundles are byte-identical across runs and jobs values.
    #[test]
    fn failed_cases_carry_deterministic_postmortems() {
        let p = kernel(2, 60);
        let m = MachineConfig::with_cores(2);
        let mem_only = FaultKindSet {
            reg: false,
            pc: false,
            mem: true,
            burst: false,
            stuck: false,
            crash: false,
        };
        let cfg = CampaignConfig {
            seed: 42,
            count: 25,
            kinds: mem_only,
            num_checkpoints: 5,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&p, m, &cfg, || NoOmission).expect("campaign runs");
        assert!(a.diverged() > 0, "{}", a.summary());
        assert_eq!(a.postmortems.len() as u64, a.diverged() + a.aborted());
        let failed: Vec<u32> = a
            .cases
            .iter()
            .filter(|c| c.outcome != CaseOutcome::Recovered)
            .map(|c| c.case)
            .collect();
        assert_eq!(
            a.postmortems.iter().map(|b| b.case).collect::<Vec<_>>(),
            failed,
            "bundles in case order"
        );
        for b in &a.postmortems {
            assert_eq!(b.trigger, "divergence");
            assert_eq!(b.seed, 42);
            assert!(!b.probable_cause.is_empty());
            assert_eq!(b.rings.len(), 3, "2 core rings + global");
            assert!(b.rings.iter().any(|r| !r.events.is_empty()));
        }
        let b = run_campaign(&p, m, &cfg, || NoOmission).expect("campaign runs");
        assert_eq!(a.postmortems, b.postmortems);
        for jobs in [2usize, 4] {
            let par_cfg = CampaignConfig {
                jobs,
                ..cfg.clone()
            };
            let par = run_campaign(&p, m, &par_cfg, || NoOmission).expect("campaign runs");
            assert_eq!(a.postmortems, par.postmortems, "jobs={jobs}");
            for (x, y) in a.postmortems.iter().zip(&par.postmortems) {
                assert_eq!(x.to_json(), y.to_json(), "jobs={jobs}");
            }
        }
    }

    /// The recorder knob changes nothing observable except ring capture:
    /// same cases, same hash, just no event tails in the bundles.
    #[test]
    fn recorder_off_is_hash_identical_and_ringless() {
        let p = kernel(2, 60);
        let m = MachineConfig::with_cores(2);
        let mem_only = FaultKindSet {
            reg: false,
            pc: false,
            mem: true,
            burst: false,
            stuck: false,
            crash: false,
        };
        let on = CampaignConfig {
            seed: 11,
            count: 15,
            kinds: mem_only,
            num_checkpoints: 5,
            ..CampaignConfig::default()
        };
        let off = CampaignConfig {
            recorder: false,
            ..on.clone()
        };
        let a = run_campaign(&p, m, &on, || NoOmission).expect("campaign runs");
        let b = run_campaign(&p, m, &off, || NoOmission).expect("campaign runs");
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.content_hash(), b.content_hash());
        assert!(a.postmortems.iter().all(|bu| !bu.rings.is_empty()));
        assert!(b.postmortems.iter().all(|bu| bu.rings.is_empty()));
        assert_eq!(a.postmortems.len(), b.postmortems.len());
    }

    /// Clean recoverable campaigns sample the invariant monitors at every
    /// commit without a single breach — and produce no bundles.
    #[test]
    fn clean_campaign_has_checks_but_no_postmortems() {
        let r = campaign(10, FaultKindSet::recoverable(), 7);
        assert_eq!(r.recovered(), 10, "{}", r.summary());
        assert!(r.postmortems.is_empty());
    }

    #[test]
    fn single_thread_campaign_checks_registers() {
        let p = kernel(1, 60);
        let cfg = CampaignConfig {
            seed: 3,
            count: 10,
            kinds: FaultKindSet::recoverable(),
            num_checkpoints: 5,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&p, MachineConfig::with_cores(1), &cfg, || NoOmission)
            .expect("campaign runs");
        assert_eq!(r.recovered(), 10, "{}", r.summary());
    }

    /// Adversarial campaigns (bursts + stuck-at cells in the mix) never
    /// produce silent corruption: the scheduled detection sees every
    /// case, so divergence is always a DUE, and the new kinds show up in
    /// the CSV class column and the kind-mix summary line.
    #[test]
    fn adversarial_campaigns_classify_without_sdc() {
        let r = campaign(30, FaultKindSet::adversarial(), 23);
        assert_eq!(r.injected(), 30);
        assert_eq!(r.aborted(), 0, "{}", r.summary());
        let (burst_total, _) = r.kind_counts("burst");
        let (stuck_total, _) = r.kind_counts("stuck");
        assert!(burst_total > 0 && stuck_total > 0, "{}", r.summary());
        for c in &r.cases {
            assert_ne!(c.outcome_class(), "sdc", "{c:?}");
            assert_ne!(c.outcome_class(), "hang", "{c:?}");
        }
        let (cls_rec, cls_due, cls_sdc, cls_hang) = r.class_counts();
        assert_eq!(cls_rec + cls_due + cls_sdc + cls_hang, 30);
        assert_eq!(cls_sdc + cls_hang, 0);
        let csv = r.csv();
        assert!(csv.lines().next().unwrap().ends_with(",class"));
        assert!(csv
            .lines()
            .skip(1)
            .all(|l| { l.ends_with(",recovered") || l.ends_with(",due") || l.ends_with(",sdc") }));
        assert!(r.summary().contains("kind mix:"), "{}", r.summary());
        assert!(r.summary().contains("classes:"), "{}", r.summary());
    }

    /// The `class` column is presentation-only: a campaign's content hash
    /// is pinned on the historical 18-column CSV, so two reports with the
    /// same cases hash identically no matter how they are rendered.
    #[test]
    fn class_column_is_hash_neutral() {
        let a = campaign(15, FaultKindSet::all(), 11);
        let b = campaign(15, FaultKindSet::all(), 11);
        assert_eq!(a.content_hash(), b.content_hash());
        // The public CSV has exactly one extra trailing column per line.
        for (full, v1) in a.csv().lines().zip(a.csv_v1().lines()) {
            assert!(full.starts_with(v1), "{full} vs {v1}");
            assert_eq!(full.split(',').count(), v1.split(',').count() + 1);
        }
    }

    /// Storm-clustered campaigns are seed-deterministic and draw a
    /// different (clustered) injection schedule than the uniform default.
    #[test]
    fn storm_campaigns_are_deterministic_and_distinct() {
        let p = kernel(2, 60);
        let mk = |storm| {
            let cfg = CampaignConfig {
                seed: 5,
                count: 20,
                kinds: FaultKindSet::all(),
                num_checkpoints: 5,
                storm,
                ..CampaignConfig::default()
            };
            run_campaign(&p, MachineConfig::with_cores(2), &cfg, || NoOmission)
                .expect("campaign runs")
        };
        let a = mk(Some(FaultStorm::default()));
        let b = mk(Some(FaultStorm::default()));
        assert_eq!(a.content_hash(), b.content_hash());
        let plain = mk(None);
        assert_ne!(a.content_hash(), plain.content_hash());
    }

    /// A 1-cycle watchdog budget turns every still-failing escalation
    /// into a hang: aborted case, `hang` class, `hang`-triggered bundle.
    #[test]
    fn tight_watchdog_turns_failing_escalations_into_hangs() {
        let p = kernel(2, 60);
        let cfg = CampaignConfig {
            seed: 9,
            count: 12,
            kinds: FaultKindSet::recoverable(),
            num_checkpoints: 5,
            recovery_faults: true,
            generations: 2,
            watchdog_budget_cycles: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&p, MachineConfig::with_cores(2), &cfg, || NoOmission)
            .expect("campaign runs");
        let hangs: Vec<_> = r.cases.iter().filter(|c| c.hung).collect();
        assert!(!hangs.is_empty(), "{}", r.summary());
        for c in &hangs {
            assert_eq!(c.outcome, CaseOutcome::Aborted);
            assert_eq!(c.outcome_class(), "hang");
            let bundle = r
                .postmortems
                .iter()
                .find(|b| b.case == c.case)
                .expect("hung case carries a bundle");
            assert_eq!(bundle.trigger, "hang");
            assert!(bundle.probable_cause.contains("watchdog"), "{bundle:?}");
        }
        assert_eq!(r.class_counts().3, hangs.len() as u64);
        assert!(r.metrics.get("campaign.class.hang").unwrap_or(0) == hangs.len() as u64);
    }
}
