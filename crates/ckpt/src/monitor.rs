//! Runtime invariant monitors, sampled at epoch-commit boundaries.
//!
//! Every committed checkpoint is a natural quiescent point: the epoch is
//! sealed, the record deque is clean (torn generations are truncated by
//! recovery before the next commit), and the log controller's lifetime
//! tallies are stable. The engine samples five cheap structural
//! invariants there:
//!
//! * **log conservation** — interval record/omit sums never exceed the
//!   [`LogController`](acr_mem::LogController) lifetime totals, the
//!   lifetime totals are monotone, and (when a decision ledger is
//!   attached) ledger decisions equal `lifetime_logged +
//!   lifetime_omitted` exactly;
//! * **epoch monotonicity** — retained checkpoint records carry strictly
//!   increasing `begins_epoch` and non-decreasing progress/cycles;
//! * **AddrMap occupancy** — the policy's bounded association storage
//!   reports `live ≤ capacity` ([`OmissionPolicy::occupancy`]);
//! * **checksum spot-check** — the oldest and newest retained checkpoint
//!   records still pass [`CheckpointRecord::verify`];
//! * **machine audit** — `Machine::audit` reports zero architectural
//!   violations (pc in bounds or halted, flags consistent).
//!
//! Monitoring is purely observational: it reads engine state, charges no
//! simulated cycles, and publishes only `ckpt.invariant.*` gauges — a
//! monitored run is cycle- and hash-identical by construction. A breach
//! increments the monitor's counter, records the first offending
//! `(epoch, cycle, detail)`, and marks the case for postmortem capture.
//!
//! [`OmissionPolicy::occupancy`]: crate::OmissionPolicy::occupancy
//! [`CheckpointRecord::verify`]: crate::CheckpointRecord::verify

use acr_trace::MetricsRegistry;

/// Check/breach tallies for one monitor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorCounters {
    /// Times the invariant was evaluated.
    pub checks: u64,
    /// Times it did not hold.
    pub breaches: u64,
}

impl MonitorCounters {
    /// Records one evaluation; `breach` is an optional violation detail.
    fn observe(&mut self, breach: bool) {
        self.checks += 1;
        if breach {
            self.breaches += 1;
        }
    }
}

/// The first invariant breach of a run, for postmortem triage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreachRecord {
    /// Monitor name (`log_conservation`, `epoch_monotonic`,
    /// `addrmap_occupancy`, `checksum_spot`, `machine_audit`).
    pub monitor: &'static str,
    /// Epoch sealed by the commit that sampled the breach.
    pub epoch: u64,
    /// Machine cycle at the sampling point.
    pub cycle: u64,
    /// Human-readable violation detail.
    pub detail: String,
}

/// Per-monitor sampling summary carried in the
/// [`BerReport`](crate::BerReport).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvariantSummary {
    /// Log-bit / ledger conservation vs `LogController::lifetime_*`.
    pub log_conservation: MonitorCounters,
    /// Retained-checkpoint epoch/progress/cycle monotonicity.
    pub epoch_monotonic: MonitorCounters,
    /// Policy association-storage occupancy bound.
    pub addrmap_occupancy: MonitorCounters,
    /// Spot re-verification of retained checkpoint checksums.
    pub checksum_spot: MonitorCounters,
    /// Machine architectural-state audit.
    pub machine_audit: MonitorCounters,
    /// The first breach observed, if any.
    pub first_breach: Option<BreachRecord>,
}

impl InvariantSummary {
    /// `(name, counters)` pairs in a fixed, documented order.
    pub fn monitors(&self) -> [(&'static str, MonitorCounters); 5] {
        [
            ("log_conservation", self.log_conservation),
            ("epoch_monotonic", self.epoch_monotonic),
            ("addrmap_occupancy", self.addrmap_occupancy),
            ("checksum_spot", self.checksum_spot),
            ("machine_audit", self.machine_audit),
        ]
    }

    /// Total evaluations across all monitors.
    pub fn total_checks(&self) -> u64 {
        self.monitors().iter().map(|(_, c)| c.checks).sum()
    }

    /// Total violations across all monitors.
    pub fn total_breaches(&self) -> u64 {
        self.monitors().iter().map(|(_, c)| c.breaches).sum()
    }

    /// Records one evaluation of `monitor`; a `Some(detail)` outcome is a
    /// breach and captures the first-breach record.
    pub(crate) fn observe(
        &mut self,
        monitor: &'static str,
        epoch: u64,
        cycle: u64,
        outcome: Option<String>,
    ) {
        let breach = outcome.is_some();
        let counters = match monitor {
            "log_conservation" => &mut self.log_conservation,
            "epoch_monotonic" => &mut self.epoch_monotonic,
            "addrmap_occupancy" => &mut self.addrmap_occupancy,
            "checksum_spot" => &mut self.checksum_spot,
            "machine_audit" => &mut self.machine_audit,
            other => unreachable!("unknown invariant monitor {other}"),
        };
        counters.observe(breach);
        if let (Some(detail), None) = (outcome, &self.first_breach) {
            self.first_breach = Some(BreachRecord {
                monitor,
                epoch,
                cycle,
                detail,
            });
        }
    }

    /// Publishes `ckpt.invariant.<monitor>.checks` / `.breaches` gauges
    /// plus the `ckpt.invariant.breaches` total (set-semantics, so
    /// refreshes are idempotent).
    pub fn publish(&self, reg: &mut MetricsRegistry) {
        for (name, c) in self.monitors() {
            reg.set(&format!("ckpt.invariant.{name}.checks"), c.checks);
            reg.set(&format!("ckpt.invariant.{name}.breaches"), c.breaches);
        }
        reg.set("ckpt.invariant.breaches", self.total_breaches());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_observations_count_checks_only() {
        let mut s = InvariantSummary::default();
        s.observe("log_conservation", 1, 100, None);
        s.observe("machine_audit", 1, 100, None);
        assert_eq!(s.total_checks(), 2);
        assert_eq!(s.total_breaches(), 0);
        assert!(s.first_breach.is_none());
    }

    #[test]
    fn first_breach_is_sticky() {
        let mut s = InvariantSummary::default();
        s.observe("checksum_spot", 3, 500, Some("record 2 failed".into()));
        s.observe("checksum_spot", 4, 600, Some("record 3 failed".into()));
        assert_eq!(s.checksum_spot.breaches, 2);
        let b = s.first_breach.as_ref().unwrap();
        assert_eq!(b.monitor, "checksum_spot");
        assert_eq!(b.epoch, 3);
        assert_eq!(b.cycle, 500);
        assert_eq!(b.detail, "record 2 failed");
    }

    #[test]
    fn publish_emits_per_monitor_and_total_gauges() {
        let mut s = InvariantSummary::default();
        s.observe("epoch_monotonic", 2, 10, None);
        s.observe("addrmap_occupancy", 2, 10, Some("live 5 > cap 4".into()));
        let mut reg = MetricsRegistry::new();
        s.publish(&mut reg);
        assert_eq!(reg.get("ckpt.invariant.epoch_monotonic.checks"), Some(1));
        assert_eq!(reg.get("ckpt.invariant.epoch_monotonic.breaches"), Some(0));
        assert_eq!(
            reg.get("ckpt.invariant.addrmap_occupancy.breaches"),
            Some(1)
        );
        assert_eq!(reg.get("ckpt.invariant.breaches"), Some(1));
        assert_eq!(reg.get("ckpt.invariant.machine_audit.checks"), Some(0));
    }
}
