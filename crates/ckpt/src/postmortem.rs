//! Postmortem bundles: self-contained forensic snapshots of failed cases.
//!
//! A fault-injection campaign normally compresses each case into one
//! [`FaultCaseRecord`] row. When a case *fails* — its final state diverges
//! from the reference, the engine aborts, the recovery-escalation ladder
//! is exhausted, or an invariant monitor fires — that row is not enough to
//! triage from. The [`PostmortemBundle`] captures everything the engine
//! knew at the end of the case:
//!
//! * a machine-state digest (cycles, retired work, an FNV-1a hash of the
//!   final memory image, divergence counts),
//! * the tail of the flight-recorder rings (last K events per core plus
//!   the engine/memory timeline), with overwrite counts,
//! * the log-controller lifetime totals and the tail of the sealed
//!   intervals (the record/omit ledger the recovery would have replayed),
//! * the full escalation history and the invariant-monitor summary,
//! * a stored `probable_cause` narrative chaining the trigger back
//!   through the escalation rungs.
//!
//! Bundles are plain data (`Eq`, no floats, no wall-clock), so two runs of
//! the same seed produce *byte-identical* JSON — `acr_cli` pins this in
//! CI by double-running a forced-divergence campaign and comparing the
//! bundle files. [`PostmortemBundle::to_json`] emits the `acr.postmortem.v1`
//! schema that `acr_cli explain` renders.

use acr_trace::{push_json_string, EventKind, FlightRecorder, Fnv1a, Ring, TraceEvent};

use crate::inject::{fault_detail, FaultCaseRecord};
use crate::monitor::InvariantSummary;
use crate::report::{BerReport, IntervalRecord};

/// Schema tag of [`PostmortemBundle::to_json`] documents.
pub const POSTMORTEM_SCHEMA: &str = "acr.postmortem.v1";

/// Sealed intervals retained in the bundle's ledger tail.
const INTERVAL_TAIL: usize = 8;

/// One flight-recorder event, owned (no `'static` borrows) so bundles can
/// outlive the recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event shape: `"span"`, `"instant"` or `"counter"`.
    pub kind: &'static str,
    /// Event name, e.g. `"ckpt"` or `"recovery.replay"`.
    pub name: String,
    /// Category, e.g. `"ckpt"`, `"recovery"`, `"mem"`.
    pub cat: String,
    /// Track the event was emitted on (core index or engine/mem track).
    pub track: u32,
    /// Start cycle.
    pub cycle: u64,
    /// Duration in cycles (spans only).
    pub dur: u64,
    /// Key/value arguments, in slot order.
    pub args: Vec<(String, u64)>,
}

impl EventRecord {
    fn from_event(ev: &TraceEvent) -> Self {
        EventRecord {
            kind: match ev.kind {
                EventKind::Span => "span",
                EventKind::Instant => "instant",
                EventKind::Counter => "counter",
            },
            name: ev.name.to_string(),
            cat: ev.cat.to_string(),
            track: ev.track,
            cycle: ev.cycle,
            dur: ev.dur,
            args: ev
                .args
                .iter()
                .flatten()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }
}

/// The drained contents of one flight-recorder ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingDigest {
    /// Ring label: `"core<i>"` or `"global"`.
    pub track: String,
    /// Ring capacity (the K in "last K events").
    pub capacity: u64,
    /// Total events ever recorded on this ring.
    pub total: u64,
    /// Events overwritten before capture.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<EventRecord>,
}

impl RingDigest {
    fn from_ring(track: String, ring: &Ring) -> Self {
        RingDigest {
            track,
            capacity: ring.capacity() as u64,
            total: ring.total(),
            dropped: ring.dropped(),
            events: ring
                .events_in_order()
                .iter()
                .map(EventRecord::from_event)
                .collect(),
        }
    }
}

/// One recovery of the failed case, reduced to its escalation-relevant
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscalationStep {
    /// Machine cycle at detection.
    pub detected_at_cycles: u64,
    /// Epoch the engine rolled back to.
    pub safe_epoch: u64,
    /// Re-replay attempts beyond the first (rung 1).
    pub replay_retries: u32,
    /// Checkpoint generations skipped on checksum failure (rung 2).
    pub generation_fallbacks: u32,
    /// Whether the recovery escalated into degraded full logging (rung 3).
    pub degraded_entered: bool,
}

/// A self-contained forensic snapshot of one failed campaign case.
///
/// Everything is integral and deterministic, so equal seeds produce equal
/// bundles (`Eq` holds field-for-field) and [`PostmortemBundle::to_json`]
/// is byte-stable. The `workload` and `repro` fields are empty when the
/// bundle leaves the campaign; the CLI stamps them before writing so the
/// JSON carries the exact reproduction command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostmortemBundle {
    /// What tripped the capture: `"divergence"`, `"abort"`, `"hang"`
    /// (recovery-watchdog budget exhausted), `"escalation-exhaustion"` or
    /// `"invariant-breach"`.
    pub trigger: &'static str,
    /// Workload label (stamped by the CLI; empty from the library).
    pub workload: String,
    /// Exact reproduction command line (stamped by the CLI).
    pub repro: String,
    /// Campaign plan seed.
    pub seed: u64,
    /// Case index within the campaign.
    pub case: u32,
    /// Injected fault kind label (`reg`/`pc`/`mem`/`crash`).
    pub fault_kind: &'static str,
    /// Kind-specific fault coordinates (register/bit, address/bit, …).
    pub fault_detail: String,
    /// Target core of the fault.
    pub fault_core: u32,
    /// Injection point in retired instructions.
    pub fault_at_progress: u64,
    /// Machine cycle at which the fault landed (0 when it never landed).
    pub landing_cycle: u64,
    /// Nested recovery-window fault label, when one was injected.
    pub recovery_fault: Option<&'static str>,
    /// Case verdict label (`recovered`/`diverged`/`aborted`).
    pub outcome: &'static str,
    /// Final execution cycles of the case.
    pub cycles: u64,
    /// Total retired instructions at the end of the case.
    pub final_retired: u64,
    /// FNV-1a hash over the final memory image.
    pub mem_fnv: u64,
    /// Final memory words differing from the reference.
    pub mem_divergence: u64,
    /// Final registers differing from the reference.
    pub reg_divergence: u64,
    /// Shadow-oracle divergent words right after rollback.
    pub shadow_divergence: u64,
    /// Log-controller lifetime old-value records.
    pub lifetime_logged: u64,
    /// Log-controller lifetime omitted first updates.
    pub lifetime_omitted: u64,
    /// Tail of the sealed intervals (up to `INTERVAL_TAIL`), oldest
    /// first — the record/omit ledger the recovery drew from.
    pub intervals_tail: Vec<IntervalRecord>,
    /// Sealed intervals dropped from the tail.
    pub intervals_dropped: u64,
    /// Every recovery of the case, in execution order.
    pub escalation: Vec<EscalationStep>,
    /// Recoveries whose escalation ladder was exhausted.
    pub escalation_exhausted: u64,
    /// Invariant-monitor tallies and first breach.
    pub invariants: InvariantSummary,
    /// Flight-recorder rings (`core0..coreN`, then `global`), empty when
    /// the recorder was disabled.
    pub rings: Vec<RingDigest>,
    /// Probable-cause narrative chaining trigger back through escalation.
    pub probable_cause: String,
}

impl PostmortemBundle {
    /// Captures a bundle at the end of a failed case. `mem_words` is the
    /// final memory image, `log_totals` the `(logged, omitted)` lifetime
    /// pair, `abort_detail` the engine error for aborted cases.
    #[allow(clippy::too_many_arguments)] // one seam, one call site, plain data
    pub fn capture(
        trigger: &'static str,
        seed: u64,
        rec: &FaultCaseRecord,
        report: &BerReport,
        mem_words: &[u64],
        log_totals: (u64, u64),
        recorder: Option<&FlightRecorder>,
        abort_detail: Option<&str>,
    ) -> Self {
        let mut h = Fnv1a::new();
        for w in mem_words {
            h.write(&w.to_le_bytes());
        }
        let tail_start = report.intervals.len().saturating_sub(INTERVAL_TAIL);
        let mut rings = Vec::new();
        if let Some(fr) = recorder {
            for core in 0..fr.num_cores() {
                rings.push(RingDigest::from_ring(
                    format!("core{core}"),
                    fr.core_ring(core),
                ));
            }
            rings.push(RingDigest::from_ring(
                "global".to_string(),
                fr.global_ring(),
            ));
        }
        let probable_cause = probable_cause(trigger, rec, report, abort_detail);
        PostmortemBundle {
            trigger,
            workload: String::new(),
            repro: String::new(),
            seed,
            case: rec.case,
            fault_kind: rec.fault.kind.label(),
            fault_detail: fault_detail(rec.fault.kind),
            fault_core: rec.fault.core.0,
            fault_at_progress: rec.fault.at_progress,
            landing_cycle: rec.landing_cycle,
            recovery_fault: rec.recovery_fault.map(|k| k.label()),
            outcome: rec.outcome.label(),
            cycles: rec.cycles,
            final_retired: rec.final_retired,
            mem_fnv: h.finish(),
            mem_divergence: rec.mem_divergence,
            reg_divergence: rec.reg_divergence,
            shadow_divergence: rec.shadow_divergence,
            lifetime_logged: log_totals.0,
            lifetime_omitted: log_totals.1,
            intervals_tail: report.intervals[tail_start..].to_vec(),
            intervals_dropped: tail_start as u64,
            escalation: report
                .recoveries
                .iter()
                .map(|r| EscalationStep {
                    detected_at_cycles: r.detected_at_cycles,
                    safe_epoch: r.safe_epoch,
                    replay_retries: r.replay_retries,
                    generation_fallbacks: r.generation_fallbacks,
                    degraded_entered: r.degraded_entered,
                })
                .collect(),
            escalation_exhausted: report.escalation_exhausted,
            invariants: report.invariants.clone(),
            rings,
            probable_cause,
        }
    }

    /// Serialises the bundle as deterministic `acr.postmortem.v1` JSON
    /// (fixed key order, integers only, `mem_fnv` as a hex string so it
    /// survives `f64` parsers, trailing newline).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::with_capacity(4096);
        o.push_str("{\n");
        let _ = write!(o, "  \"schema\": ");
        push_json_string(&mut o, POSTMORTEM_SCHEMA);
        let _ = write!(o, ",\n  \"trigger\": ");
        push_json_string(&mut o, self.trigger);
        let _ = write!(o, ",\n  \"workload\": ");
        push_json_string(&mut o, &self.workload);
        let _ = write!(o, ",\n  \"repro\": ");
        push_json_string(&mut o, &self.repro);
        let _ = write!(
            o,
            ",\n  \"seed\": {},\n  \"case\": {},",
            self.seed, self.case
        );
        let _ = write!(o, "\n  \"fault\": {{\"kind\": ");
        push_json_string(&mut o, self.fault_kind);
        let _ = write!(o, ", \"detail\": ");
        push_json_string(&mut o, &self.fault_detail);
        let _ = write!(
            o,
            ", \"core\": {}, \"at_progress\": {}, \"landing_cycle\": {}}},",
            self.fault_core, self.fault_at_progress, self.landing_cycle
        );
        let _ = write!(o, "\n  \"recovery_fault\": ");
        match self.recovery_fault {
            Some(label) => push_json_string(&mut o, label),
            None => o.push_str("null"),
        }
        let _ = write!(o, ",\n  \"outcome\": ");
        push_json_string(&mut o, self.outcome);
        let _ = write!(
            o,
            ",\n  \"machine\": {{\"cycles\": {}, \"final_retired\": {}, \"mem_fnv\": \"{:#018x}\", \
             \"mem_divergence\": {}, \"reg_divergence\": {}, \"shadow_divergence\": {}}},",
            self.cycles,
            self.final_retired,
            self.mem_fnv,
            self.mem_divergence,
            self.reg_divergence,
            self.shadow_divergence
        );
        let _ = write!(
            o,
            "\n  \"log\": {{\"lifetime_logged\": {}, \"lifetime_omitted\": {}, \
             \"intervals_dropped\": {}, \"intervals_tail\": [",
            self.lifetime_logged, self.lifetime_omitted, self.intervals_dropped
        );
        for (i, iv) in self.intervals_tail.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            let _ = write!(
                o,
                "{{\"epoch\": {}, \"progress\": {}, \"records\": {}, \"omitted\": {}, \
                 \"bytes\": {}, \"stall_cycles\": {}}}",
                iv.epoch, iv.progress, iv.records, iv.omitted, iv.bytes, iv.stall_cycles
            );
        }
        o.push_str("]},");
        let _ = write!(
            o,
            "\n  \"escalation\": {{\"exhausted\": {}, \"steps\": [",
            self.escalation_exhausted
        );
        for (i, s) in self.escalation.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            let _ = write!(
                o,
                "{{\"detected_at_cycles\": {}, \"safe_epoch\": {}, \"replay_retries\": {}, \
                 \"generation_fallbacks\": {}, \"degraded_entered\": {}}}",
                s.detected_at_cycles,
                s.safe_epoch,
                s.replay_retries,
                s.generation_fallbacks,
                s.degraded_entered
            );
        }
        o.push_str("]},");
        let _ = write!(
            o,
            "\n  \"invariants\": {{\"breaches\": {}, \"monitors\": {{",
            self.invariants.total_breaches()
        );
        for (i, (name, c)) in self.invariants.monitors().iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            push_json_string(&mut o, name);
            let _ = write!(
                o,
                ": {{\"checks\": {}, \"breaches\": {}}}",
                c.checks, c.breaches
            );
        }
        o.push_str("}, \"first_breach\": ");
        match &self.invariants.first_breach {
            Some(b) => {
                o.push_str("{\"monitor\": ");
                push_json_string(&mut o, b.monitor);
                let _ = write!(
                    o,
                    ", \"epoch\": {}, \"cycle\": {}, \"detail\": ",
                    b.epoch, b.cycle
                );
                push_json_string(&mut o, &b.detail);
                o.push('}');
            }
            None => o.push_str("null"),
        }
        o.push_str("},");
        o.push_str("\n  \"rings\": [");
        for (i, r) in self.rings.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n    {\"track\": ");
            push_json_string(&mut o, &r.track);
            let _ = write!(
                o,
                ", \"capacity\": {}, \"total\": {}, \"dropped\": {}, \"events\": [",
                r.capacity, r.total, r.dropped
            );
            for (j, ev) in r.events.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                o.push_str("\n      {\"kind\": ");
                push_json_string(&mut o, ev.kind);
                o.push_str(", \"name\": ");
                push_json_string(&mut o, &ev.name);
                o.push_str(", \"cat\": ");
                push_json_string(&mut o, &ev.cat);
                let _ = write!(
                    o,
                    ", \"track\": {}, \"cycle\": {}, \"dur\": {}, \"args\": {{",
                    ev.track, ev.cycle, ev.dur
                );
                for (k, (key, val)) in ev.args.iter().enumerate() {
                    if k > 0 {
                        o.push_str(", ");
                    }
                    push_json_string(&mut o, key);
                    let _ = write!(o, ": {val}");
                }
                o.push_str("}}");
            }
            if !r.events.is_empty() {
                o.push_str("\n    ");
            }
            o.push_str("]}");
        }
        if !self.rings.is_empty() {
            o.push_str("\n  ");
        }
        o.push_str("],");
        o.push_str("\n  \"probable_cause\": ");
        push_json_string(&mut o, &self.probable_cause);
        o.push_str("\n}\n");
        o
    }
}

/// Builds the probable-cause narrative: first breach wins, otherwise the
/// trigger is chained back through the escalation rungs the case climbed.
fn probable_cause(
    trigger: &str,
    rec: &FaultCaseRecord,
    report: &BerReport,
    abort_detail: Option<&str>,
) -> String {
    if let Some(b) = &report.invariants.first_breach {
        return format!(
            "invariant breach ({}) at epoch {} cycle {}: {}",
            b.monitor, b.epoch, b.cycle, b.detail
        );
    }
    let mut cause = if rec.landing_cycle > 0 {
        format!(
            "{} fault ({}) landed at cycle {}",
            rec.fault.kind.label(),
            fault_detail(rec.fault.kind),
            rec.landing_cycle
        )
    } else {
        format!(
            "{} fault ({}) planned at progress {}",
            rec.fault.kind.label(),
            fault_detail(rec.fault.kind),
            rec.fault.at_progress
        )
    };
    if let Some(rf) = rec.recovery_fault {
        cause.push_str(&format!(" -> {} during recovery", rf.label()));
    }
    if rec.replay_retries > 0 {
        cause.push_str(&format!(" -> {} re-replay attempts", rec.replay_retries));
    }
    if rec.generation_fallbacks > 0 {
        cause.push_str(&format!(
            " -> generation fallback x{}",
            rec.generation_fallbacks
        ));
    }
    if rec.degraded_entries > 0 {
        cause.push_str(" -> degraded full-logging entry");
    }
    match trigger {
        "abort" => {
            cause.push_str(" -> engine abort");
            if let Some(d) = abort_detail {
                cause.push_str(&format!(" ({d})"));
            }
        }
        "hang" => {
            cause.push_str(" -> recovery watchdog abort");
            if let Some(d) = abort_detail {
                cause.push_str(&format!(" ({d})"));
            }
        }
        "escalation-exhaustion" => {
            cause.push_str(&format!(
                " -> escalation ladder exhausted ({} recovery)",
                plural(report.escalation_exhausted, "time", "times")
            ));
            cause.push_str(" -> best-effort image");
        }
        _ => {
            if rec.fault.kind.label() == "mem" {
                cause.push_str(
                    " -> flip outside the incremental log window -> old value unrecoverable \
                     -> divergence from reference",
                );
            } else {
                cause.push_str(&format!(
                    " -> final state differs from reference ({} mem, {} reg words) -> divergence",
                    rec.mem_divergence, rec.reg_divergence
                ));
            }
        }
    }
    cause
}

fn plural(n: u64, one: &str, many: &str) -> String {
    if n == 1 {
        format!("{n} {one}")
    } else {
        format!("{n} {many}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::CaseOutcome;
    use acr_sim::{Fault, FaultKind};
    use acr_trace::parse_json;

    fn record(outcome: CaseOutcome) -> FaultCaseRecord {
        FaultCaseRecord {
            case: 3,
            fault: Fault {
                at_progress: 500,
                core: acr_mem::CoreId(1),
                kind: FaultKind::MemBitFlip {
                    addr: acr_mem::WordAddr::new(64),
                    bit: 5,
                },
            },
            recoveries: 1,
            exception_detections: 0,
            shadow_divergence: 0,
            mem_divergence: 2,
            reg_divergence: 0,
            final_retired: 1000,
            restored_records: 10,
            recomputed_values: 0,
            recompute_alu_ops: 0,
            recovery_stall_cycles: 40,
            waste_cycles: 80,
            cycles: 4000,
            landing_cycle: 2000,
            recovery_fault: None,
            replay_retries: 0,
            generation_fallbacks: 0,
            degraded_entries: 0,
            hung: false,
            outcome,
        }
    }

    #[test]
    fn bundle_json_is_deterministic_and_parses() {
        let rec = record(CaseOutcome::Diverged);
        let report = BerReport::default();
        let words = [1u64, 2, 3];
        let a =
            PostmortemBundle::capture("divergence", 42, &rec, &report, &words, (7, 3), None, None);
        let b =
            PostmortemBundle::capture("divergence", 42, &rec, &report, &words, (7, 3), None, None);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        let doc = parse_json(&a.to_json()).expect("bundle JSON parses");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(POSTMORTEM_SCHEMA)
        );
        assert_eq!(
            doc.get("trigger").and_then(|v| v.as_str()),
            Some("divergence")
        );
        assert_eq!(doc.get("seed").and_then(|v| v.as_u64()), Some(42));
        let cause = doc.get("probable_cause").and_then(|v| v.as_str()).unwrap();
        assert!(cause.contains("mem fault"), "{cause}");
        assert!(cause.contains("divergence"), "{cause}");
    }

    #[test]
    fn invariant_breach_dominates_the_narrative() {
        let rec = record(CaseOutcome::Recovered);
        let mut report = BerReport::default();
        report.invariants.observe(
            "checksum_spot",
            4,
            900,
            Some("record 2 failed verify".into()),
        );
        let b = PostmortemBundle::capture(
            "invariant-breach",
            42,
            &rec,
            &report,
            &[0u64],
            (0, 0),
            None,
            None,
        );
        assert!(b
            .probable_cause
            .starts_with("invariant breach (checksum_spot)"));
        assert!(b.probable_cause.contains("epoch 4"));
        let doc = parse_json(&b.to_json()).unwrap();
        let inv = doc.get("invariants").unwrap();
        assert_eq!(inv.get("breaches").and_then(|v| v.as_u64()), Some(1));
        assert!(inv.get("first_breach").unwrap().get("monitor").is_some());
    }

    #[test]
    fn rings_serialize_with_drop_counts() {
        let rec = record(CaseOutcome::Diverged);
        let report = BerReport::default();
        let mut fr = FlightRecorder::new(1, 2, 2);
        use acr_trace::{TraceEvent, TraceSink, TRACK_ENGINE};
        for c in 0..5 {
            fr.record(&TraceEvent::instant("ckpt", "ckpt", TRACK_ENGINE, c).with_arg("epoch", c));
        }
        fr.record(&TraceEvent::span("flush", "mem", 0, 10, 4));
        let b = PostmortemBundle::capture(
            "divergence",
            1,
            &rec,
            &report,
            &[0u64],
            (0, 0),
            Some(&fr),
            None,
        );
        assert_eq!(b.rings.len(), 2);
        assert_eq!(b.rings[1].track, "global");
        assert_eq!(b.rings[1].dropped, 3);
        assert_eq!(b.rings[1].events.len(), 2);
        let doc = parse_json(&b.to_json()).unwrap();
        let rings = doc.get("rings").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(rings.len(), 2);
        assert_eq!(
            rings[1].get("dropped").and_then(|v| v.as_u64()),
            Some(3),
            "{}",
            b.to_json()
        );
    }
}
