//! The BER engine: drives the machine between checkpoints and errors.

use std::collections::VecDeque;

use acr_mem::{CoreId, LogController, LogEpoch, WordAddr, LOG_RECORD_BYTES};
use acr_sim::{
    AssocEvent, ExecHooks, Fault, FaultKind, Machine, RecoveryFault, RecoveryFaultKind, RunOutcome,
    SimError, StoreEvent, TICKS_PER_CYCLE,
};
use acr_trace::{TraceEvent, TRACK_ENGINE};

use crate::checkpoint::CheckpointRecord;
use crate::ledger::DecisionLedger;
use crate::monitor::InvariantSummary;
use crate::policy::OmissionPolicy;
use crate::report::{BerReport, IntervalRecord, RecoveryRecord};
use crate::schedule::ErrorSchedule;

/// Coordination scheme (Sections II-A and V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// All cores checkpoint (and roll back) together.
    #[default]
    GlobalCoordinated,
    /// Only cores that communicated within the interval coordinate; each
    /// connected component of the communication graph checkpoints (and
    /// rolls back) independently.
    LocalCoordinated,
}

/// Second-level checkpoint destination for hierarchical checkpointing.
///
/// Section II-A notes that in-memory checkpointing "may … represent the
/// first level in a hierarchical checkpointing framework". This models
/// the second level: every `every`-th established checkpoint is also
/// streamed to slower storage (e.g. NVM/SSD), whose cost scales with the
/// checkpoint's size — so ACR's size reductions cut level-2 traffic too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondaryStorage {
    /// Stream every `every`-th checkpoint to the second level (≥ 1).
    pub every: u32,
    /// Sustained secondary bandwidth in bytes per core cycle (e.g. a
    /// 1 GB/s device at 1.09 GHz ≈ 0.92 B/cycle).
    pub bytes_per_cycle: f64,
    /// Fixed per-checkpoint latency (device + software stack), cycles.
    pub latency_cycles: u64,
}

impl Default for SecondaryStorage {
    fn default() -> Self {
        SecondaryStorage {
            every: 5,
            bytes_per_cycle: 0.92,
            latency_cycles: 20_000,
        }
    }
}

/// Torn-recovery resilience configuration: checkpoint generations
/// retained as fallbacks, the replay-retry bound, and the
/// recovery-window fault plan.
///
/// The escalation ladder on an integrity failure during recovery is:
///
/// 1. **re-replay** — restore and recomputation are repeatable, so a
///    transient corruption (a flipped restored word, a corrupted Slice
///    input) is retried up to [`max_replay_retries`] times; a torn log
///    record is repaired from the redundant mirror copy first;
/// 2. **generation fallback** — a checkpoint generation whose integrity
///    checksum fails verification (torn commit) is never restored; the
///    engine falls back to the previous retained generation;
/// 3. **degraded full logging** — after a replay-integrity failure, a
///    generation fallback, or retry exhaustion, the engine stops
///    omitting values ([`crate::OmitReason::LoggedDegraded`]) until the
///    next clean checkpoint commits.
///
/// The default (`generations = 1`, empty fault plan) is byte-identical
/// to the engine without this machinery.
///
/// [`max_replay_retries`]: ResilienceConfig::max_replay_retries
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Checkpoint generations restorable beyond the paper's two-deep
    /// retention (≥ 1). Generation `g` needs the log epochs back to its
    /// begin, so the log controller retains `1 + generations` completed
    /// epochs and the engine `2 + generations` checkpoint records.
    pub generations: u32,
    /// Re-replay attempts after a failed restore before the engine gives
    /// up and proceeds best-effort (divergence is still counted by the
    /// oracle, never silent).
    pub max_replay_retries: u32,
    /// Faults injected *inside* recovery windows, matched by recovery
    /// ordinal. Requires [`Scheme::GlobalCoordinated`].
    pub recovery_faults: Vec<RecoveryFault>,
    /// Recovery watchdog: abort an escalation that is still failing after
    /// spending this many stall cycles, surfacing
    /// [`acr_sim::SimError::RecoveryHang`] instead of looping or silently
    /// proceeding best-effort. `0` (the default) disables the watchdog —
    /// byte-identical to the engine without it.
    pub watchdog_budget_cycles: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            generations: 1,
            max_replay_retries: 2,
            recovery_faults: Vec::new(),
            watchdog_budget_cycles: 0,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct BerConfig {
    /// Coordination scheme.
    pub scheme: Scheme,
    /// Checkpoint trigger points, ascending, in progress units (total
    /// retired instructions); see [`crate::uniform_points`].
    pub triggers: Vec<u64>,
    /// Error schedule.
    pub errors: ErrorSchedule,
    /// Shadow-memory verification of every recovery (tests; off in
    /// benchmark sweeps to save host memory).
    pub oracle: bool,
    /// Optional second-level checkpoint destination.
    pub secondary: Option<SecondaryStorage>,
    /// Real state corruptions to inject. When empty, the error schedule
    /// is *phantom* (schedule-only, no corruption — the mode every
    /// overhead experiment uses). When non-empty, the faults **define**
    /// the error schedule: each fault is one error occurring at its
    /// `at_progress` on its target core, and
    /// [`ErrorSchedule::occurrences`] is ignored (only
    /// `detection_latency` is still read; crashes are detected
    /// immediately regardless). In fault mode the recovery oracle records
    /// shadow divergence in the report instead of asserting, because
    /// memory faults can legitimately defeat the log.
    pub faults: Vec<Fault>,
    /// Torn-recovery resilience: retained generations, replay-retry
    /// bound, recovery-window fault plan.
    pub resilience: ResilienceConfig,
}

#[derive(Debug, Clone, Copy)]
struct ErrState {
    occur: u64,
    core: u32,
    /// Corruption applied at occurrence (`None` = phantom error).
    kind: Option<FaultKind>,
    /// Per-error detection latency (crashes are never silent: 0).
    latency: u64,
    occurred: bool,
    handled: bool,
}

/// The store/assoc instrumentation the engine attaches to the machine.
struct CkptHooks<P> {
    logctl: LogController,
    policy: P,
    /// `AddrMap` lookups performed by the omission check (energy).
    omission_lookups: u64,
    /// Optional omission-decision ledger (observational; `None` keeps the
    /// hot path to one branch).
    ledger: Option<Box<DecisionLedger>>,
    /// Degraded full-logging mode: set by a recovery escalation, cleared
    /// by the next clean checkpoint commit. While set, omission is
    /// suspended and every first update is logged.
    degraded: bool,
}

impl<P: OmissionPolicy> ExecHooks for CkptHooks<P> {
    fn on_store(&mut self, ev: StoreEvent) -> u64 {
        let epoch = self.logctl.current().index;
        self.policy.on_store(ev.core.0, ev.addr, epoch);
        if !self.logctl.is_logged(ev.addr) {
            if self.degraded {
                // Degraded mode skips the omission lookup entirely (no
                // `AddrMap` energy) and logs unconditionally; the policy
                // still saw the store above so its state stays coherent
                // for the epochs after omission resumes.
                self.logctl.log_value(ev.addr, ev.old, ev.core.0);
                if let Some(led) = &mut self.ledger {
                    led.record(ev.addr, crate::ledger::OmitReason::LoggedDegraded, None);
                }
                return 0;
            }
            self.omission_lookups += 1;
            let omitted = if let Some(owner) = self.policy.try_omit(ev.core.0, ev.addr, epoch) {
                self.logctl.omit_value(ev.addr, ev.old, owner);
                true
            } else {
                self.logctl.log_value(ev.addr, ev.old, ev.core.0);
                false
            };
            if let Some(led) = &mut self.ledger {
                let (reason, slice) = self
                    .policy
                    .classify(ev.core.0, ev.pc, ev.addr, epoch, omitted);
                led.record(ev.addr, reason, slice);
            }
        }
        0
    }

    fn on_assoc(&mut self, ev: AssocEvent) -> u64 {
        let epoch = self.logctl.current().index;
        self.policy.on_assoc(&ev, epoch)
    }
}

/// Backward-error-recovery engine over a simulated machine.
///
/// See the [crate documentation](crate) for the execution model. The type
/// parameter `P` selects the baseline ([`crate::NoOmission`]) or ACR
/// (`acr::AcrPolicy`).
///
/// ```
/// use acr_ckpt::{BerConfig, BerEngine, ErrorSchedule, NoOmission, ResilienceConfig, Scheme};
/// use acr_isa::{AluOp, ProgramBuilder, Reg};
/// use acr_sim::{Machine, MachineConfig};
///
/// // A loop storing i*3 to 64 words, checkpointed 4 times with 1 error.
/// let mut b = ProgramBuilder::new(1);
/// b.set_mem_bytes(4096);
/// let t = b.thread(0);
/// t.imm(Reg(10), 1024);
/// let l = t.begin_loop(Reg(1), Reg(2), 64);
/// t.alui(AluOp::Mul, Reg(3), Reg(1), 3);
/// t.alui(AluOp::Mul, Reg(4), Reg(1), 8);
/// t.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
/// t.store(Reg(3), Reg(5), 0);
/// t.end_loop(l);
/// t.halt();
/// let program = b.build();
///
/// let total = 64 * 6 + 10; // roughly the retired-instruction count
/// let cfg = BerConfig {
///     scheme: Scheme::GlobalCoordinated,
///     triggers: acr_ckpt::uniform_points(total, 4),
///     errors: ErrorSchedule::uniform(total, 1, 4, 0.5),
///     oracle: true, // verify the recovery against a shadow snapshot
///     secondary: None,
///     faults: Vec::new(), // phantom errors: schedule only, no corruption
///     resilience: ResilienceConfig::default(),
/// };
/// let machine = Machine::new(MachineConfig::with_cores(1), &program);
/// let mut engine = BerEngine::new(machine, NoOmission, cfg);
/// let report = engine.run_to_completion()?;
/// assert!(report.checkpoints_taken >= 4);
/// assert_eq!(report.errors_handled, 1);
/// # Ok::<(), acr_sim::SimError>(())
/// ```
pub struct BerEngine<'p, P: OmissionPolicy> {
    machine: Machine<'p>,
    cfg: BerConfig,
    hooks: CkptHooks<P>,
    checkpoints: VecDeque<CheckpointRecord>,
    /// Checkpoint records retained: start + most recent + fallback
    /// generations (`2 + generations`; 3 with the default single
    /// generation — start + the two most recent).
    retained_checkpoints: usize,
    /// Recovery-window faults not yet consumed.
    pending_recovery_faults: Vec<RecoveryFault>,
    errors: Vec<ErrState>,
    report: BerReport,
}

impl<'p, P: OmissionPolicy> BerEngine<'p, P> {
    /// Creates an engine over `machine` with omission policy `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the machine has no cores, if `cfg.resilience` plans
    /// recovery faults under the local scheme (unsupported: per-group
    /// rollback has no single safe generation to tear), or retains zero
    /// generations. User-reachable paths reject these combinations with
    /// [`crate::CkptError`] before constructing an engine
    /// ([`crate::CkptError::NoCores`] for the first).
    pub fn new(mut machine: Machine<'p>, policy: P, cfg: BerConfig) -> Self {
        assert!(
            !machine.cores().is_empty(),
            "engine needs at least one core (error placement takes \
             indices modulo the core count)"
        );
        assert!(
            cfg.resilience.generations >= 1,
            "must retain at least one checkpoint generation"
        );
        assert!(
            cfg.resilience.recovery_faults.is_empty() || cfg.scheme == Scheme::GlobalCoordinated,
            "recovery faults require the global coordinated scheme"
        );
        if cfg.scheme == Scheme::LocalCoordinated {
            machine.mem_mut().enable_sharing();
        }
        let retained_checkpoints = 2 + cfg.resilience.generations as usize;
        let logctl = LogController::with_retention(
            machine.mem().image().num_words(),
            1 + cfg.resilience.generations as usize,
        );
        let num_cores = machine.cores().len() as u32;
        let errors: Vec<ErrState> = if cfg.faults.is_empty() {
            cfg.errors
                .occurrences
                .iter()
                .enumerate()
                .map(|(i, &occur)| ErrState {
                    occur,
                    core: i as u32 % num_cores,
                    kind: None,
                    latency: cfg.errors.detection_latency,
                    occurred: false,
                    handled: false,
                })
                .collect()
        } else {
            cfg.faults
                .iter()
                .map(|f| ErrState {
                    occur: f.at_progress,
                    core: f.core.0 % num_cores,
                    kind: Some(f.kind),
                    latency: match f.kind {
                        FaultKind::Crash => 0,
                        _ => cfg.errors.detection_latency,
                    },
                    occurred: false,
                    handled: false,
                })
                .collect()
        };
        let mut initial = CheckpointRecord {
            begins_epoch: 0,
            progress: 0,
            cycles: 0,
            check: 0,
            arch: machine.snapshot_arch(),
            groups: vec![machine.all_mask()],
            shadow_mem: cfg.oracle.then(|| machine.mem().image().snapshot()),
        };
        initial.seal();
        let mut checkpoints = VecDeque::with_capacity(retained_checkpoints + 1);
        checkpoints.push_back(initial);
        let pending_recovery_faults = cfg.resilience.recovery_faults.clone();
        BerEngine {
            machine,
            cfg,
            hooks: CkptHooks {
                logctl,
                policy,
                omission_lookups: 0,
                ledger: None,
                degraded: false,
            },
            errors,
            checkpoints,
            retained_checkpoints,
            pending_recovery_faults,
            report: BerReport::default(),
        }
    }

    /// The machine, for inspection after the run.
    pub fn machine(&self) -> &Machine<'p> {
        &self.machine
    }

    /// Mutable machine access (extracting observational state — the
    /// attribution profile, sampled series — after the run).
    pub fn machine_mut(&mut self) -> &mut Machine<'p> {
        &mut self.machine
    }

    /// The omission policy, for ACR statistics extraction.
    pub fn policy(&self) -> &P {
        &self.hooks.policy
    }

    /// `AddrMap` lookups issued by the first-update omission check.
    pub fn omission_lookups(&self) -> u64 {
        self.hooks.omission_lookups
    }

    /// Attaches an omission-decision ledger: from now on every
    /// first-update decision is classified (via
    /// [`OmissionPolicy::classify`]) and aggregated. Observational only —
    /// simulated time and results are unchanged.
    pub fn enable_ledger(&mut self) {
        self.hooks.ledger = Some(Box::default());
    }

    /// The attached ledger (None unless [`Self::enable_ledger`] was
    /// called).
    pub fn ledger(&self) -> Option<&DecisionLedger> {
        self.hooks.ledger.as_deref()
    }

    /// Takes the ledger, leaving decision tracking disabled.
    pub fn take_ledger(&mut self) -> Option<DecisionLedger> {
        self.hooks.ledger.take().map(|b| *b)
    }

    /// Lifetime `(logged, omitted)` first-update totals from the log
    /// controller — the independent tally the ledger's conservation
    /// invariant is checked against.
    pub fn log_totals(&self) -> (u64, u64) {
        (
            self.hooks.logctl.lifetime_logged(),
            self.hooks.logctl.lifetime_omitted(),
        )
    }

    /// Invariant-monitor tallies accumulated so far. The completed run's
    /// copy travels in [`BerReport::invariants`]; this accessor serves the
    /// abort path, where no report is ever produced.
    pub fn invariants(&self) -> &InvariantSummary {
        &self.report.invariants
    }

    /// The in-progress report. Complete only after
    /// [`Self::run_to_completion`] returns `Ok` (which *takes* it); the
    /// abort path reads escalation history and counters through this.
    pub fn partial_report(&self) -> &BerReport {
        &self.report
    }

    fn next_stop(&self) -> u64 {
        let last_ckpt = self.checkpoints.back().map(|c| c.progress).unwrap_or(0);
        let trig = self
            .cfg
            .triggers
            .iter()
            .copied()
            .find(|&t| t > last_ckpt)
            .unwrap_or(u64::MAX);
        let occur = self
            .errors
            .iter()
            .filter(|e| !e.occurred)
            .map(|e| e.occur)
            .min()
            .unwrap_or(u64::MAX);
        let detect = self
            .errors
            .iter()
            .filter(|e| e.occurred && !e.handled)
            .map(|e| e.occur + e.latency)
            .min()
            .unwrap_or(u64::MAX);
        trig.min(occur).min(detect)
    }

    /// Runs to completion, handling every checkpoint and error.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulator.
    pub fn run_to_completion(&mut self) -> Result<BerReport, SimError> {
        loop {
            let stop = self.next_stop();
            let out = match self.machine.run(&mut self.hooks, stop) {
                Ok(out) => out,
                Err(SimError::FuelExhausted) => return Err(SimError::FuelExhausted),
                Err(trap) => {
                    // A corrupted register or pc drove a core into an
                    // illegal access. If an injected error is pending, the
                    // exception *is* the detection (ahead of its scheduled
                    // latency); recover and resume. Otherwise it is a
                    // genuine program bug — propagate.
                    self.mark_occurrences();
                    if let Some(ei) = self.errors.iter().position(|e| e.occurred && !e.handled) {
                        self.report.exception_detections += 1;
                        self.do_recovery(ei)?;
                        continue;
                    }
                    return Err(trap);
                }
            };
            self.mark_occurrences();
            // Process due events in ascending threshold order; recovery
            // rewinds progress, so re-evaluate after each.
            loop {
                let progress = self.machine.total_retired();
                let last_ckpt = self.checkpoints.back().map(|c| c.progress).unwrap_or(0);
                let trig = self
                    .cfg
                    .triggers
                    .iter()
                    .copied()
                    .find(|&t| t > last_ckpt && t <= progress);
                let detect = self
                    .errors
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.occurred && !e.handled && e.occur + e.latency <= progress)
                    .min_by_key(|(_, e)| e.occur)
                    .map(|(i, e)| (i, e.occur + e.latency));
                match (trig, detect) {
                    (Some(t), Some((ei, d))) => {
                        if t <= d {
                            self.do_checkpoint();
                        } else {
                            self.do_recovery(ei)?;
                        }
                    }
                    (Some(_), None) => self.do_checkpoint(),
                    (None, Some((ei, _))) => self.do_recovery(ei)?,
                    (None, None) => break,
                }
                self.mark_occurrences();
            }
            if out == RunOutcome::AllHalted && self.machine.all_halted() {
                // Force-detect any straggling errors at end of execution.
                if let Some(ei) = self.errors.iter().position(|e| e.occurred && !e.handled) {
                    self.do_recovery(ei)?;
                    continue;
                }
                break;
            }
        }
        // Final sample so short runs with a coarse interval still carry at
        // least one counter snapshot.
        self.publish_ckpt_metrics();
        self.machine.force_sample();
        let mut report = std::mem::take(&mut self.report);
        report.cycles = self.machine.cycles();
        report.sim = *self.machine.stats();
        report.mem = *self.machine.mem().stats();
        report.series = self.machine.take_series();
        Ok(report)
    }

    /// Refreshes the engine-owned `ckpt.*` keys in the machine's unified
    /// metrics registry (all values cumulative over the run):
    ///
    /// * `ckpt.taken` — checkpoints established (count);
    /// * `ckpt.records` — old-value log records written (records);
    /// * `ckpt.omitted` — first updates omitted by the policy (records);
    /// * `ckpt.bytes` — checkpoint bytes written (bytes);
    /// * `ckpt.stall_cycles` — checkpoint stalls (cycles);
    /// * `ckpt.recoveries` — recoveries performed (count);
    /// * `ckpt.recovery_stall_cycles` — recovery stalls (cycles);
    /// * `ckpt.faults_injected` — state corruptions applied (count);
    /// * `ckpt.replay_retries` — recovery re-replay attempts (count);
    /// * `ckpt.generation_fallbacks` — torn generations skipped (count);
    /// * `ckpt.degraded.entries` — degraded-mode entries (count);
    /// * `ckpt.degraded.active` — 1 while degraded full logging is on;
    /// * `ckpt.invariant.*` — invariant-monitor check/breach tallies (see
    ///   [`crate::monitor::InvariantSummary::publish`]).
    fn publish_ckpt_metrics(&mut self) {
        let r = &self.report;
        let taken = r.checkpoints_taken;
        let records: u64 = r.intervals.iter().map(|i| i.records).sum();
        let omitted: u64 = r.intervals.iter().map(|i| i.omitted).sum();
        let bytes = r.total_checkpoint_bytes();
        let stall = r.checkpoint_stall_cycles;
        let recoveries = r.recoveries.len() as u64;
        let rec_stall = r.recovery_stall_cycles;
        let faults = r.faults_injected;
        let retries = r.replay_retries;
        let fallbacks = r.generation_fallbacks;
        let degraded_entries = r.degraded_entries;
        let degraded_active = u64::from(self.hooks.degraded);
        let reg = self.machine.metrics_mut();
        reg.set("ckpt.taken", taken);
        reg.set("ckpt.records", records);
        reg.set("ckpt.omitted", omitted);
        reg.set("ckpt.bytes", bytes);
        reg.set("ckpt.stall_cycles", stall);
        reg.set("ckpt.recoveries", recoveries);
        reg.set("ckpt.recovery_stall_cycles", rec_stall);
        reg.set("ckpt.faults_injected", faults);
        reg.set("ckpt.replay_retries", retries);
        reg.set("ckpt.generation_fallbacks", fallbacks);
        reg.set("ckpt.degraded.entries", degraded_entries);
        reg.set("ckpt.degraded.active", degraded_active);
        if r.recovery_hangs > 0 {
            // Gated on >0 so sampled key sets stay byte-identical for
            // every run predating the watchdog.
            reg.set("ckpt.recovery_hangs", r.recovery_hangs);
        }
        // Ledger gauges (cumulative decisions per reason code; words).
        if let Some(led) = &self.hooks.ledger {
            for reason in crate::ledger::OmitReason::ALL {
                let key = format!("ckpt.ledger.{}", reason.code().replace([':', '-'], "_"));
                reg.set(&key, led.total(reason));
            }
        }
        self.report.invariants.publish(reg);
        self.hooks.policy.publish_metrics(reg);
    }

    /// Samples the runtime invariant monitors at an epoch-commit boundary
    /// (see [`crate::monitor`]). Purely observational: reads engine state,
    /// charges no simulated cycles.
    fn run_invariant_monitors(&mut self, sealed_index: u64) {
        let cycle = self.machine.cycles();

        // Log-bit / ledger conservation vs the controller's lifetime
        // tallies. Sealed-interval sums can lag the lifetime totals
        // (epochs undone before sealing, the just-opened epoch) but can
        // never exceed them; with a ledger attached the decision count
        // must match the controller's first-update total exactly.
        let logged = self.hooks.logctl.lifetime_logged();
        let omitted = self.hooks.logctl.lifetime_omitted();
        let int_records: u64 = self.report.intervals.iter().map(|i| i.records).sum();
        let int_omitted: u64 = self.report.intervals.iter().map(|i| i.omitted).sum();
        let mut log_breach = None;
        if int_records > logged || int_omitted > omitted {
            log_breach = Some(format!(
                "sealed interval sums ({int_records} logged, {int_omitted} omitted) \
                 exceed lifetime totals ({logged}, {omitted})"
            ));
        } else if let Some(led) = &self.hooks.ledger {
            let decisions = led.total_decisions();
            if decisions != logged + omitted {
                log_breach = Some(format!(
                    "ledger decisions {decisions} != lifetime logged {logged} + omitted {omitted}"
                ));
            }
        }
        self.report
            .invariants
            .observe("log_conservation", sealed_index, cycle, log_breach);

        // Retained-checkpoint monotonicity: strictly increasing epochs,
        // non-decreasing progress and commit cycles.
        let mut mono_breach = None;
        for pair in self.checkpoints.iter().zip(self.checkpoints.iter().skip(1)) {
            let (a, b) = pair;
            if b.begins_epoch <= a.begins_epoch || b.progress < a.progress || b.cycles < a.cycles {
                mono_breach = Some(format!(
                    "checkpoint order violated: epoch {} (progress {}, cycle {}) \
                     followed by epoch {} (progress {}, cycle {})",
                    a.begins_epoch, a.progress, a.cycles, b.begins_epoch, b.progress, b.cycles
                ));
                break;
            }
        }
        self.report
            .invariants
            .observe("epoch_monotonic", sealed_index, cycle, mono_breach);

        // Policy association-storage occupancy bound (skipped entirely for
        // policies without bounded storage, e.g. the baseline).
        if let Some((live, cap)) = self.hooks.policy.occupancy() {
            let breach = (live > cap).then(|| {
                format!("association storage holds {live} live entries over its bound {cap}")
            });
            self.report
                .invariants
                .observe("addrmap_occupancy", sealed_index, cycle, breach);
        }

        // Checksum spot-check: the oldest and newest retained records must
        // still verify (torn generations are truncated by recovery before
        // the next commit, so the deque is clean here).
        let mut check_breach = None;
        for rec in [self.checkpoints.front(), self.checkpoints.back()]
            .into_iter()
            .flatten()
        {
            if !rec.verify() {
                check_breach = Some(format!(
                    "retained checkpoint for epoch {} fails checksum verification",
                    rec.begins_epoch
                ));
                break;
            }
        }
        self.report
            .invariants
            .observe("checksum_spot", sealed_index, cycle, check_breach);

        // Machine architectural-state audit.
        let violations = self.machine.audit();
        let audit_breach =
            (violations > 0).then(|| format!("machine audit found {violations} violations"));
        self.report
            .invariants
            .observe("machine_audit", sealed_index, cycle, audit_breach);
    }

    fn mark_occurrences(&mut self) {
        let progress = self.machine.total_retired();
        // Checkpoint-first tie-break: a *real* fault whose occurrence
        // point coincides exactly with a still-pending checkpoint trigger
        // is deferred until that checkpoint commits, so the corruption is
        // attributed to the epoch the checkpoint opens and never
        // snapshots into the generation it lands beside. (Phantom errors
        // corrupt nothing; their timing is left untouched so schedules
        // derived by integer division keep their pinned results.)
        let last_ckpt = self.checkpoints.back().map(|c| c.progress).unwrap_or(0);
        let pending_trigger = self
            .cfg
            .triggers
            .iter()
            .copied()
            .find(|&t| t > last_ckpt && t <= progress);
        for i in 0..self.errors.len() {
            let e = self.errors[i];
            if !e.occurred && e.occur <= progress {
                if e.kind.is_some() && pending_trigger == Some(e.occur) {
                    continue;
                }
                self.errors[i].occurred = true;
                if let Some(kind) = e.kind {
                    let _ = self.machine.apply_fault(CoreId(e.core), kind);
                    self.report.faults_injected += 1;
                    let landing = self.machine.cycles();
                    self.report.fault_landing_cycles.push(landing);
                    if self.machine.trace().enabled() {
                        self.machine.trace().emit(
                            TraceEvent::instant("fault.inject", "fault", TRACK_ENGINE, landing)
                                .with_arg("core", u64::from(e.core))
                                .with_arg("at_progress", e.occur),
                        );
                    }
                }
            }
        }
        // Armed stuck-at cells re-corrupt whatever the program wrote over
        // them since the last stop. Gated so fault-free runs (and every
        // pinned golden hash) never touch the pin machinery.
        if self.machine.has_stuck_cells() {
            self.machine.reassert_stuck_cells();
        }
    }

    /// Establishes a coordinated checkpoint (global or per-group local).
    fn do_checkpoint(&mut self) {
        let all = self.machine.all_mask();
        let groups: Vec<u64> = match self.cfg.scheme {
            Scheme::GlobalCoordinated => vec![all],
            Scheme::LocalCoordinated => self
                .machine
                .mem()
                .sharing()
                .expect("sharing enabled for local scheme")
                .groups(),
        };
        let sealed_index;
        let (records, omitted, per_core_records) = {
            let sealed = self.hooks.logctl.seal_epoch();
            sealed_index = sealed.index;
            let mut per_core = vec![0u64; self.machine.cores().len()];
            for r in &sealed.records {
                per_core[r.core as usize] += 1;
            }
            (
                sealed.records.len() as u64,
                sealed.omitted.len() as u64,
                per_core,
            )
        };
        let num_cores = self.machine.cores().len();
        let prev_ckpt_cycles = self.checkpoints.back().map(|c| c.cycles).unwrap_or(0);
        let mut max_stall = 0u64;
        let mut lines_total = 0u64;
        for &g in &groups {
            let participants = (g & all).count_ones();
            let arrival = self.machine.mask_ticks(g);
            let flush = self.machine.mem_mut().flush_dirty(g);
            let group_records: u64 = (0..num_cores)
                .filter(|i| g >> i & 1 == 1)
                .map(|i| per_core_records[i])
                .sum();
            // Each log record costs an old-value read (8 B) before the
            // flush overwrites it, plus the 16 B record write.
            let bytes =
                group_records * (LOG_RECORD_BYTES + 8) + CheckpointRecord::arch_bytes(g, num_cores);
            let log_stall = self.machine.mem().log_write_stall(bytes);
            let coord = self
                .machine
                .config()
                .checkpoint_coordination_cycles(participants);
            let stall = coord + flush.stall_cycles + log_stall;
            self.machine
                .stall_cores(g, arrival + stall * TICKS_PER_CYCLE);
            max_stall = max_stall.max(stall);
            lines_total += flush.lines_flushed;
            if self.machine.trace().enabled() {
                // A lone (global) group renders on the engine track; local
                // groups land on their lowest core's track so concurrent
                // group checkpoints never partially overlap one track.
                let track = if groups.len() == 1 {
                    TRACK_ENGINE
                } else {
                    g.trailing_zeros()
                };
                self.machine.trace().emit(
                    TraceEvent::span("ckpt", "ckpt", track, arrival / TICKS_PER_CYCLE, stall)
                        .with_arg("epoch", sealed_index + 1)
                        .with_arg("records", group_records)
                        .with_arg("lines_flushed", flush.lines_flushed)
                        .with_arg("group", g),
                );
            }
        }
        if self.machine.trace().enabled() {
            // The interval this checkpoint seals, as a span from the
            // previous checkpoint's commit point to this one's arrival.
            let now = self.machine.cycles();
            self.machine.trace().emit(
                TraceEvent::span(
                    "ckpt.interval",
                    "ckpt",
                    TRACK_ENGINE,
                    prev_ckpt_cycles,
                    now.saturating_sub(prev_ckpt_cycles),
                )
                .with_arg("epoch", sealed_index)
                .with_arg("records", records)
                .with_arg("omitted", omitted),
            );
        }
        let arch_bytes = CheckpointRecord::arch_bytes(all, num_cores);
        let mem = self.machine.mem_mut().stats_mut();
        mem.log_record_writes += records + arch_bytes / LOG_RECORD_BYTES;

        let progress = self.machine.total_retired();
        let mut record = CheckpointRecord {
            begins_epoch: sealed_index + 1,
            progress,
            cycles: self.machine.cycles(),
            check: 0,
            arch: self.machine.snapshot_arch(),
            groups: groups.clone(),
            shadow_mem: self
                .cfg
                .oracle
                .then(|| self.machine.mem().image().snapshot()),
        };
        record.seal();
        self.checkpoints.push_back(record);
        while self.checkpoints.len() > self.retained_checkpoints {
            self.checkpoints.pop_front();
        }
        self.hooks.policy.on_checkpoint(sealed_index);
        self.machine.mem_mut().sharing_new_interval();
        // A clean commit closes any degraded window: the new generation's
        // integrity is sealed, so omission may resume.
        self.hooks.degraded = false;

        self.report.intervals.push(IntervalRecord {
            epoch: sealed_index,
            progress,
            records,
            omitted,
            bytes: records * LOG_RECORD_BYTES + arch_bytes,
            baseline_bytes: (records + omitted) * LOG_RECORD_BYTES + arch_bytes,
            stall_cycles: max_stall,
            lines_flushed: lines_total,
        });
        self.report.checkpoints_taken += 1;
        self.report.checkpoint_stall_cycles += max_stall;
        self.run_invariant_monitors(sealed_index);

        // Hierarchical level 2: stream every k-th checkpoint out.
        if let Some(sec) = self.cfg.secondary {
            if self
                .report
                .checkpoints_taken
                .is_multiple_of(u64::from(sec.every.max(1)))
            {
                let bytes = records * LOG_RECORD_BYTES + arch_bytes;
                let stall = sec.latency_cycles + (bytes as f64 / sec.bytes_per_cycle).ceil() as u64;
                let arrival = self.machine.mask_ticks(all);
                self.machine
                    .stall_cores(all, arrival + stall * TICKS_PER_CYCLE);
                self.report.secondary_checkpoints += 1;
                self.report.secondary_bytes += bytes;
                self.report.secondary_stall_cycles += stall;
            }
        }
        self.publish_ckpt_metrics();
    }

    /// Handles the detection of error `ei`: roll back to the most recent
    /// checkpoint established before the error occurred, recompute omitted
    /// values, restore logged values and architectural state, and resume.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RecoveryHang`] when a non-zero
    /// [`ResilienceConfig::watchdog_budget_cycles`] budget is exceeded by
    /// a still-failing escalation (the watchdog aborting a hung recovery).
    fn do_recovery(&mut self, ei: usize) -> Result<(), SimError> {
        let err = self.errors[ei];
        let all = self.machine.all_mask();
        let num_cores = self.machine.cores().len();
        let detected_at_progress = self.machine.total_retired();
        let detected_at_cycles = self.machine.cycles();

        // Recovery-window faults due in *this* recovery (matched by
        // recovery ordinal, consumed exactly once).
        let ordinal = self.report.recoveries.len() as u32;
        let mut due: Vec<RecoveryFaultKind> = Vec::new();
        self.pending_recovery_faults.retain(|f| {
            if f.at_recovery == ordinal {
                due.push(f.kind);
                false
            } else {
                true
            }
        });

        // Safe checkpoint: the most recent one provably taken before the
        // error occurred (with detection latency ≤ the checkpoint period
        // this is the most recent or second most recent — Fig. 2).
        let mut safe_idx = self
            .checkpoints
            .iter()
            .rposition(|c| c.progress <= err.occur)
            .expect("a safe checkpoint is always retained");
        // A due torn-commit fault models a crash inside the safe
        // generation's commit window: its integrity checksum no longer
        // verifies. The start checkpoint (progress 0) has no commit
        // window and is never torn.
        if due.contains(&RecoveryFaultKind::TornCommit) && safe_idx > 0 {
            self.checkpoints[safe_idx].check ^= 1;
        }
        // Integrity gate: a generation that fails verification is never
        // restored — fall back to the previous retained generation. The
        // undo log holds every epoch back to the oldest retained
        // checkpoint, so older generations stay restorable.
        let mut generation_fallbacks = 0u32;
        while !self.checkpoints[safe_idx].verify() && safe_idx > 0 {
            safe_idx -= 1;
            generation_fallbacks += 1;
        }
        let safe = self.checkpoints[safe_idx].clone();

        // Victim set.
        let victim_mask = match self.cfg.scheme {
            Scheme::GlobalCoordinated => all,
            Scheme::LocalCoordinated => {
                let mut victims = 1u64 << err.core;
                // Union communicating groups over the undone intervals and
                // the current one, to a fixpoint.
                let mut group_sets: Vec<u64> = self
                    .checkpoints
                    .iter()
                    .filter(|c| c.begins_epoch > safe.begins_epoch)
                    .flat_map(|c| c.groups.iter().copied())
                    .collect();
                if let Some(t) = self.machine.mem().sharing() {
                    group_sets.extend(t.groups());
                }
                loop {
                    let before = victims;
                    for &g in &group_sets {
                        if g & victims != 0 {
                            victims |= g;
                        }
                    }
                    if victims == before {
                        break;
                    }
                }
                victims & all
            }
        };

        // Roll the log back and collect the epochs to undo (newest first).
        let undone: Vec<LogEpoch> = match self.cfg.scheme {
            Scheme::GlobalCoordinated => self.hooks.logctl.rollback_to(safe.begins_epoch),
            Scheme::LocalCoordinated => self
                .hooks
                .logctl
                .rollback_victims(safe.begins_epoch, victim_mask),
        };

        // The pristine `undone` epochs double as the redundant mirror
        // copy; `working` is the primary copy recovery reads, which
        // recovery-window faults may corrupt. A due torn-record fault is
        // *persistent*: the corrupted record keeps failing its checksum
        // until the primary is repaired from the mirror.
        let mut working = undone.clone();
        if let Some(bit) = due.iter().find_map(|k| match k {
            RecoveryFaultKind::TornRecord { bit } => Some(*bit),
            _ => None,
        }) {
            if let Some(rec) = working.iter_mut().flat_map(|e| e.records.iter_mut()).next() {
                rec.old_value ^= 1 << (bit % 64);
            }
        }
        let replay_corrupt_bit = due.iter().find_map(|k| match k {
            RecoveryFaultKind::ReplayInput { bit } => Some(*bit),
            _ => None,
        });
        let restored_flip_bit = due.iter().find_map(|k| match k {
            RecoveryFaultKind::RestoredWordFlip { bit } => Some(*bit),
            _ => None,
        });
        let crash_mid_restore = due.contains(&RecoveryFaultKind::CrashMidRestore);
        let total_entries: u64 = working
            .iter()
            .map(|e| (e.records.len() + e.omitted.len()) as u64)
            .sum();

        // Restore memory: newest epoch first, oldest last (the oldest —
        // the safe epoch — holds the values at the safe checkpoint).
        // Restore and recomputation are repeatable, so a detected
        // integrity failure (torn record, read-back mismatch, recomputed
        // value failing the omitted record's checksum, crash mid-restore)
        // escalates to a bounded re-replay; costs accumulate across
        // attempts so each escalation rung's time and energy are charged.
        let arch_bytes = CheckpointRecord::arch_bytes(victim_mask, num_cores);
        let max_attempts = 1 + self.cfg.resilience.max_replay_retries;
        let mut attempt = 0u32;
        let mut attempt_ok;
        let mut replay_integrity_failed = false;
        let mut mirror_repairs = 0u64;
        let mut restored_records = 0u64;
        let mut recomputed_values = 0u64;
        let mut recompute_alu = 0u64;
        let mut opbuf_reads = 0u64;
        let mut restore_recompute_total = 0u64;
        let mut bytes_moved = 0u64;
        let mut first_transfer = 0u64;
        let mut first_rc_stall = 0u64;
        let mut restored_words: Vec<WordAddr> = Vec::new();
        loop {
            attempt += 1;
            let first = attempt == 1;
            attempt_ok = true;
            let mut torn_detected = false;
            let mut att_restored = 0u64;
            let mut att_recomputed = 0u64;
            let mut recompute_cycles_per_core = vec![0u64; num_cores];
            let mut applied = 0u64;
            let mut flip_pending = if first { restored_flip_bit } else { None };
            let mut replay_pending = if first { replay_corrupt_bit } else { None };
            restored_words.clear();
            'apply: for epoch in &working {
                for rec in &epoch.records {
                    if first && crash_mid_restore && applied * 2 >= total_entries {
                        attempt_ok = false;
                        break 'apply;
                    }
                    if !rec.verify() {
                        // Torn log record: abort the pass and repair the
                        // primary from the mirror before retrying.
                        torn_detected = true;
                        attempt_ok = false;
                        break 'apply;
                    }
                    let mut value = rec.old_value;
                    if let Some(bit) = flip_pending.take() {
                        value ^= 1 << (bit % 64);
                    }
                    self.machine.mem_mut().image_mut().write(rec.addr, value);
                    if self.machine.has_stuck_cells() {
                        // A pinned cell fires once more on the restore
                        // write — the read-back below catches it — and the
                        // line is then remapped, scrubbing the defect.
                        self.machine.stuck_scrub(rec.addr);
                    }
                    att_restored += 1;
                    applied += 1;
                    // Read-back verification against the checksummed
                    // record catches a flip between write and read.
                    if self.machine.mem().image().read(rec.addr) != rec.old_value {
                        attempt_ok = false;
                    }
                    if self.cfg.oracle {
                        restored_words.push(rec.addr);
                    }
                }
                for om in &epoch.omitted {
                    if first && crash_mid_restore && applied * 2 >= total_entries {
                        attempt_ok = false;
                        break 'apply;
                    }
                    let rc = self
                        .hooks
                        .policy
                        .recompute(om.addr, epoch.index)
                        .expect("every omitted value must be recomputable");
                    let mut value = rc.value;
                    if let Some(bit) = replay_pending.take() {
                        value ^= 1 << (bit % 64);
                    }
                    // The omitted record's checksum verifies the
                    // recomputed word without ever having stored it.
                    if !om.verify_recomputed(value) {
                        attempt_ok = false;
                        replay_integrity_failed = true;
                    }
                    self.machine.mem_mut().image_mut().write(om.addr, value);
                    if self.machine.has_stuck_cells() && self.machine.stuck_scrub(om.addr) {
                        // No stored value to read back against, so the
                        // corrupted recomputed word forces a retry itself.
                        attempt_ok = false;
                    }
                    att_recomputed += 1;
                    applied += 1;
                    recompute_alu += rc.alu_ops;
                    opbuf_reads += rc.opbuf_reads;
                    recompute_cycles_per_core[om.core as usize] += rc.cycles;
                    if let Some(led) = &mut self.hooks.ledger {
                        led.record_replay(rc.slice, rc.cycles, rc.alu_ops, rc.opbuf_reads);
                    }
                    if self.cfg.oracle {
                        restored_words.push(om.addr);
                    }
                }
            }
            restored_records += att_restored;
            recomputed_values += att_recomputed;
            let exiting = attempt_ok || attempt >= max_attempts;
            // Per-attempt data movement; the register-file restore is
            // charged once, on the attempt that completes recovery.
            let att_bytes = att_restored * LOG_RECORD_BYTES
                + (att_restored + att_recomputed) * 8
                + if exiting { arch_bytes } else { 0 };
            bytes_moved += att_bytes;
            let att_transfer = self.machine.mem().log_write_stall(att_bytes);
            let att_rc_stall = recompute_cycles_per_core.iter().copied().max().unwrap_or(0);
            let att_rr = if self.hooks.policy.overlaps_restore() {
                att_transfer.max(att_rc_stall)
            } else {
                att_transfer + att_rc_stall
            };
            restore_recompute_total += att_rr;
            if first {
                first_transfer = att_transfer;
                first_rc_stall = att_rc_stall;
            } else if self.machine.trace().enabled() {
                self.machine.trace().emit(
                    TraceEvent::span(
                        "recovery.retry",
                        "recovery",
                        TRACK_ENGINE,
                        detected_at_cycles,
                        att_rr,
                    )
                    .with_arg("attempt", u64::from(attempt))
                    .with_arg("restored", att_restored)
                    .with_arg("recomputed", att_recomputed),
                );
            }
            // Watchdog: a still-failing escalation that has burned through
            // its cycle budget is a hung recovery — abort it instead of
            // looping or silently proceeding best-effort. A *successful*
            // final attempt is never aborted, however late.
            let budget = self.cfg.resilience.watchdog_budget_cycles;
            if budget > 0 && !attempt_ok && restore_recompute_total > budget {
                self.report.recovery_hangs += 1;
                return Err(SimError::RecoveryHang {
                    budget_cycles: budget,
                    spent_cycles: restore_recompute_total,
                });
            }
            if exiting {
                break;
            }
            if torn_detected {
                // Repair the primary from the mirror: one full re-read of
                // the retained log, charged like the restore traffic.
                working = undone.clone();
                mirror_repairs += 1;
                let repair_bytes: u64 = undone
                    .iter()
                    .map(|e| e.records.len() as u64 * LOG_RECORD_BYTES)
                    .sum();
                bytes_moved += repair_bytes;
                restore_recompute_total += self.machine.mem().log_write_stall(repair_bytes);
            }
        }
        let replay_retries = attempt - 1;
        let exhausted = !attempt_ok;
        if exhausted {
            self.report.escalation_exhausted += 1;
        }

        // Oracle: restored state must match the safe checkpoint's shadow.
        // Phantom errors corrupt nothing, so any mismatch is an engine bug
        // and panics. Injected faults can legitimately defeat the log (a
        // memory flip in a word the undone epochs never covered), and an
        // exhausted recovery-fault escalation leaves the image best-effort,
        // so in either fault mode divergence is counted and reported.
        let fault_mode =
            !self.cfg.faults.is_empty() || !self.cfg.resilience.recovery_faults.is_empty();
        let mut shadow_divergence = 0u64;
        if let Some(shadow) = &safe.shadow_mem {
            match self.cfg.scheme {
                Scheme::GlobalCoordinated => {
                    if fault_mode {
                        shadow_divergence = self
                            .machine
                            .mem()
                            .image()
                            .words()
                            .iter()
                            .zip(shadow.iter())
                            .filter(|(got, want)| got != want)
                            .count() as u64;
                    } else {
                        assert_eq!(
                            self.machine.mem().image().words(),
                            shadow.as_slice(),
                            "recovered memory image differs from the safe checkpoint"
                        );
                    }
                }
                Scheme::LocalCoordinated => {
                    for w in &restored_words {
                        let got = self.machine.mem().image().read(*w);
                        let want = shadow[w.word_index()];
                        if got != want {
                            assert!(
                                fault_mode,
                                "restored word {w} differs from the safe checkpoint"
                            );
                            shadow_divergence += 1;
                        }
                    }
                }
            }
        }

        // Costs. Restore traffic and recomputation were charged per
        // attempt (scratchpad-based recomputation overlaps the restore
        // traffic within an attempt, Section II-B; attempts serialize).
        let dram = self.machine.config().mem.dram.latency_cycles;
        let coord = self
            .machine
            .config()
            .checkpoint_coordination_cycles(victim_mask.count_ones());
        let stall = dram + restore_recompute_total + coord;
        {
            let mem = self.machine.mem_mut().stats_mut();
            mem.log_record_reads += restored_records;
            mem.recovery_word_writes += restored_records + recomputed_values + arch_bytes / 8;
        }
        if self.machine.trace().enabled() {
            let trace = self.machine.trace();
            trace.emit(
                TraceEvent::span(
                    "recovery",
                    "recovery",
                    TRACK_ENGINE,
                    detected_at_cycles,
                    stall,
                )
                .with_arg("safe_epoch", safe.begins_epoch)
                .with_arg("restored", restored_records)
                .with_arg("recomputed", recomputed_values)
                .with_arg("victims", victim_mask),
            );
            // Sub-spans: log restore traffic, then Slice re-execution —
            // concurrent with the restore under a scratchpad policy,
            // serialized after it otherwise. Both nest inside "recovery"
            // and cover the first attempt; retries appear as their own
            // "recovery.retry" spans.
            let restore_start = detected_at_cycles + dram;
            trace.emit(
                TraceEvent::span(
                    "recovery.restore",
                    "recovery",
                    TRACK_ENGINE,
                    restore_start,
                    first_transfer,
                )
                .with_arg("records", restored_records)
                .with_arg("bytes", bytes_moved),
            );
            let replay_start = if self.hooks.policy.overlaps_restore() {
                restore_start
            } else {
                restore_start + first_transfer
            };
            trace.emit(
                TraceEvent::span(
                    "recovery.replay",
                    "recovery",
                    TRACK_ENGINE,
                    replay_start,
                    first_rc_stall,
                )
                .with_arg("slices", recomputed_values)
                .with_arg("alu_ops", recompute_alu),
            );
        }

        // Restore architectural state and resume the victims.
        let t_d = self.machine.mask_ticks(victim_mask);
        self.machine
            .restore_arch(&safe.arch, victim_mask, t_d + stall * TICKS_PER_CYCLE);
        match self.cfg.scheme {
            Scheme::GlobalCoordinated => self.machine.mem_mut().invalidate_all(),
            Scheme::LocalCoordinated => self.machine.mem_mut().invalidate_cores(victim_mask),
        }
        self.hooks
            .policy
            .on_rollback(safe.begins_epoch, victim_mask);

        // Checkpoints newer than the safe one are gone (global): their
        // epochs were undone and will be re-established.
        if self.cfg.scheme == Scheme::GlobalCoordinated {
            self.checkpoints.truncate(safe_idx + 1);
        }

        // The handled error, plus any other occurred-but-undetected error
        // whose corruption the rollback just erased, are done.
        let mut newly_handled = 0u64;
        for e in &mut self.errors {
            if e.occurred
                && !e.handled
                && e.occur >= safe.progress
                && victim_mask >> e.core & 1 == 1
            {
                e.handled = true;
                newly_handled += 1;
            }
        }
        if !self.errors[ei].handled {
            self.errors[ei].handled = true;
            newly_handled += 1;
        }

        // Degraded full-logging entry: a replay-integrity failure means a
        // recomputed value cannot be trusted, a generation fallback means
        // a commit tore, and retry exhaustion means the log itself is
        // suspect — in all three cases omission is suspended until the
        // next clean checkpoint commits.
        let degraded_entered = replay_integrity_failed || generation_fallbacks > 0 || exhausted;
        if degraded_entered {
            if !self.hooks.degraded {
                self.report.degraded_entries += 1;
            }
            self.hooks.degraded = true;
        }

        self.report.recoveries.push(RecoveryRecord {
            detected_at_progress,
            detected_at_cycles,
            safe_epoch: safe.begins_epoch,
            restored_records,
            recomputed_values,
            recompute_alu_ops: recompute_alu,
            stall_cycles: stall,
            waste_cycles: detected_at_cycles.saturating_sub(safe.cycles),
            victim_mask,
            shadow_divergence,
            replay_retries,
            generation_fallbacks,
            degraded_entered,
        });
        self.report.divergent_words += shadow_divergence;
        self.report.errors_handled += newly_handled;
        self.report.recovery_stall_cycles += stall;
        self.report.replay_retries += u64::from(replay_retries);
        self.report.generation_fallbacks += u64::from(generation_fallbacks);
        self.publish_ckpt_metrics();
        let _ = opbuf_reads; // charged by the policy's own statistics
        let _ = mirror_repairs; // charged in bytes_moved and the stall
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NoOmission;
    use crate::schedule::{uniform_points, ErrorSchedule};
    use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
    use acr_sim::{MachineConfig, NoHooks};

    /// A two-phase kernel per thread: fill a private region, then reduce.
    fn kernel(threads: usize, iters: u64) -> Program {
        let mut b = ProgramBuilder::new(threads);
        b.set_mem_bytes(1 << 20);
        for t in 0..threads as u32 {
            let base = u64::from(t) * 131072;
            let tb = b.thread(t);
            tb.imm(Reg(10), base);
            let l = tb.begin_loop(Reg(1), Reg(2), iters);
            tb.alui(AluOp::Mul, Reg(3), Reg(1), 17);
            tb.alui(AluOp::Add, Reg(3), Reg(3), 5);
            tb.alui(AluOp::Mul, Reg(4), Reg(1), 8);
            tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
            tb.store(Reg(3), Reg(5), 0);
            tb.end_loop(l);
            // Reduction pass re-writes word 0 of the region repeatedly.
            tb.imm(Reg(6), 0);
            let l = tb.begin_loop(Reg(1), Reg(2), iters);
            tb.alui(AluOp::Mul, Reg(4), Reg(1), 8);
            tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
            tb.load(Reg(7), Reg(5), 0);
            tb.alu(AluOp::Add, Reg(6), Reg(6), Reg(7));
            tb.store(Reg(6), Reg(10), 0);
            tb.end_loop(l);
            tb.halt();
        }
        let p = b.build();
        p.validate().unwrap();
        p
    }

    fn reference_mem(p: &Program, cores: u32) -> Vec<u64> {
        let mut m = Machine::new(MachineConfig::with_cores(cores), p);
        m.run(&mut NoHooks, u64::MAX).unwrap();
        m.mem().image().words().to_vec()
    }

    #[test]
    fn checkpointing_only_overhead_and_identical_result() {
        let p = kernel(2, 150);
        let reference = reference_mem(&p, 2);

        let m = Machine::new(MachineConfig::with_cores(2), &p);
        let total = reference_total(&p, 2);
        let cfg = BerConfig {
            scheme: Scheme::GlobalCoordinated,
            triggers: uniform_points(total, 5),
            errors: ErrorSchedule::none(),
            oracle: true,
            secondary: None,
            faults: Vec::new(),
            resilience: ResilienceConfig::default(),
        };
        let mut engine = BerEngine::new(m, NoOmission, cfg);
        let report = engine.run_to_completion().unwrap();
        assert_eq!(report.checkpoints_taken, 5);
        assert_eq!(report.errors_handled, 0);
        assert!(report.checkpoint_stall_cycles > 0);
        assert_eq!(engine.machine().mem().image().words(), reference);

        // Checkpointing must cost time vs No_Ckpt.
        let mut plain = Machine::new(MachineConfig::with_cores(2), &p);
        plain.run(&mut NoHooks, u64::MAX).unwrap();
        assert!(report.cycles > plain.cycles());
    }

    fn reference_total(p: &Program, cores: u32) -> u64 {
        let mut m = Machine::new(MachineConfig::with_cores(cores), p);
        m.run(&mut NoHooks, u64::MAX).unwrap();
        m.total_retired()
    }

    #[test]
    fn recovery_restores_and_reexecutes_to_same_result() {
        let p = kernel(2, 150);
        let reference = reference_mem(&p, 2);
        let total = reference_total(&p, 2);

        let m = Machine::new(MachineConfig::with_cores(2), &p);
        let cfg = BerConfig {
            scheme: Scheme::GlobalCoordinated,
            triggers: uniform_points(total, 5),
            errors: ErrorSchedule::uniform(total, 1, 5, 0.5),
            oracle: true,
            secondary: None,
            faults: Vec::new(),
            resilience: ResilienceConfig::default(),
        };
        let mut engine = BerEngine::new(m, NoOmission, cfg);
        let report = engine.run_to_completion().unwrap();
        assert_eq!(report.errors_handled, 1);
        assert_eq!(report.recoveries.len(), 1);
        let rec = &report.recoveries[0];
        assert!(rec.restored_records > 0);
        assert_eq!(rec.recomputed_values, 0); // NoOmission
        assert!(rec.waste_cycles > 0);
        assert_eq!(engine.machine().mem().image().words(), reference);
        // Extra checkpoints were re-established after rollback.
        assert!(report.checkpoints_taken >= 5);
    }

    #[test]
    fn multiple_errors_all_handled() {
        let p = kernel(2, 120);
        let reference = reference_mem(&p, 2);
        let total = reference_total(&p, 2);
        for n_err in [2u32, 4] {
            let m = Machine::new(MachineConfig::with_cores(2), &p);
            let cfg = BerConfig {
                scheme: Scheme::GlobalCoordinated,
                triggers: uniform_points(total, 8),
                errors: ErrorSchedule::uniform(total, n_err, 8, 0.4),
                oracle: true,
                secondary: None,
                faults: Vec::new(),
                resilience: ResilienceConfig::default(),
            };
            let mut engine = BerEngine::new(m, NoOmission, cfg);
            let report = engine.run_to_completion().unwrap();
            assert!(report.errors_handled >= u64::from(n_err).min(1));
            assert_eq!(engine.machine().mem().image().words(), reference);
        }
    }

    #[test]
    fn error_overhead_exceeds_error_free() {
        let p = kernel(2, 150);
        let total = reference_total(&p, 2);
        let run = |errors: ErrorSchedule| {
            let m = Machine::new(MachineConfig::with_cores(2), &p);
            let cfg = BerConfig {
                scheme: Scheme::GlobalCoordinated,
                triggers: uniform_points(total, 5),
                errors,
                oracle: false,
                secondary: None,
                faults: Vec::new(),
                resilience: ResilienceConfig::default(),
            };
            BerEngine::new(m, NoOmission, cfg)
                .run_to_completion()
                .unwrap()
        };
        let ne = run(ErrorSchedule::none());
        let e = run(ErrorSchedule::uniform(total, 1, 5, 0.5));
        assert!(e.cycles > ne.cycles, "recovery must add time");
    }

    #[test]
    fn local_scheme_runs_and_matches_reference_without_errors() {
        let p = kernel(4, 100);
        let reference = reference_mem(&p, 4);
        let total = reference_total(&p, 4);
        let m = Machine::new(MachineConfig::with_cores(4), &p);
        let cfg = BerConfig {
            scheme: Scheme::LocalCoordinated,
            triggers: uniform_points(total, 5),
            errors: ErrorSchedule::none(),
            oracle: true,
            secondary: None,
            faults: Vec::new(),
            resilience: ResilienceConfig::default(),
        };
        let mut engine = BerEngine::new(m, NoOmission, cfg);
        let report = engine.run_to_completion().unwrap();
        assert_eq!(report.checkpoints_taken, 5);
        assert_eq!(engine.machine().mem().image().words(), reference);
    }

    #[test]
    fn local_scheme_recovers_single_error() {
        let p = kernel(4, 100);
        let reference = reference_mem(&p, 4);
        let total = reference_total(&p, 4);
        let m = Machine::new(MachineConfig::with_cores(4), &p);
        let cfg = BerConfig {
            scheme: Scheme::LocalCoordinated,
            triggers: uniform_points(total, 5),
            errors: ErrorSchedule::uniform(total, 1, 5, 0.3),
            oracle: true,
            secondary: None,
            faults: Vec::new(),
            resilience: ResilienceConfig::default(),
        };
        let mut engine = BerEngine::new(m, NoOmission, cfg);
        let report = engine.run_to_completion().unwrap();
        assert_eq!(report.errors_handled, 1);
        // Threads are independent here, so the victim set stays small and
        // the final state still matches.
        assert!(report.recoveries[0].victim_mask.count_ones() <= 4);
        assert_eq!(engine.machine().mem().image().words(), reference);
    }

    #[test]
    fn interval_records_track_first_updates() {
        let p = kernel(1, 200);
        let total = reference_total(&p, 1);
        let m = Machine::new(MachineConfig::with_cores(1), &p);
        let cfg = BerConfig {
            scheme: Scheme::GlobalCoordinated,
            triggers: uniform_points(total, 4),
            errors: ErrorSchedule::none(),
            oracle: false,
            secondary: None,
            faults: Vec::new(),
            resilience: ResilienceConfig::default(),
        };
        let mut engine = BerEngine::new(m, NoOmission, cfg);
        let report = engine.run_to_completion().unwrap();
        assert_eq!(report.intervals.len(), 4);
        assert!(report.intervals.iter().any(|i| i.records > 0));
        assert!(report.total_checkpoint_bytes() >= report.intervals.len() as u64);
        // Without omission, baseline == actual.
        assert_eq!(
            report.total_checkpoint_bytes(),
            report.total_baseline_bytes()
        );
    }
}

#[cfg(test)]
mod secondary_tests {
    use super::*;
    use crate::policy::NoOmission;
    use crate::schedule::{uniform_points, ErrorSchedule};
    use acr_isa::{AluOp, ProgramBuilder, Reg};
    use acr_sim::MachineConfig;

    fn program() -> acr_isa::Program {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(1 << 18);
        let t = b.thread(0);
        t.imm(Reg(10), 4096);
        let outer = t.begin_loop(Reg(8), Reg(9), 6);
        let l = t.begin_loop(Reg(1), Reg(2), 256);
        t.alui(AluOp::Mul, Reg(3), Reg(1), 11);
        t.alu(AluOp::Xor, Reg(3), Reg(3), Reg(8));
        t.alui(AluOp::Mul, Reg(4), Reg(1), 8);
        t.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
        t.store(Reg(3), Reg(5), 0);
        t.end_loop(l);
        t.end_loop(outer);
        t.halt();
        b.build()
    }

    fn run(secondary: Option<SecondaryStorage>) -> BerReport {
        let p = program();
        let total = {
            let mut m = Machine::new(MachineConfig::with_cores(1), &p);
            m.run(&mut acr_sim::NoHooks, u64::MAX).unwrap();
            m.total_retired()
        };
        let m = Machine::new(MachineConfig::with_cores(1), &p);
        let cfg = BerConfig {
            scheme: Scheme::GlobalCoordinated,
            triggers: uniform_points(total, 10),
            errors: ErrorSchedule::none(),
            oracle: false,
            secondary,
            faults: Vec::new(),
            resilience: ResilienceConfig::default(),
        };
        BerEngine::new(m, NoOmission, cfg)
            .run_to_completion()
            .unwrap()
    }

    #[test]
    fn secondary_streams_every_kth_checkpoint() {
        let rep = run(Some(SecondaryStorage {
            every: 3,
            ..Default::default()
        }));
        assert_eq!(rep.checkpoints_taken, 10);
        assert_eq!(rep.secondary_checkpoints, 3); // checkpoints 3, 6, 9
        assert!(rep.secondary_bytes > 0);
        assert!(rep.secondary_stall_cycles > 0);
    }

    #[test]
    fn secondary_costs_time() {
        let without = run(None);
        let with = run(Some(SecondaryStorage::default()));
        assert_eq!(without.secondary_checkpoints, 0);
        assert!(with.cycles > without.cycles);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::policy::NoOmission;
    use crate::schedule::{uniform_points, ErrorSchedule};
    use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
    use acr_sim::{MachineConfig, NoHooks};

    fn program() -> Program {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(1 << 16);
        let t = b.thread(0);
        t.imm(Reg(10), 4096);
        let l = t.begin_loop(Reg(1), Reg(2), 400);
        t.alui(AluOp::Mul, Reg(3), Reg(1), 7);
        t.alui(AluOp::And, Reg(4), Reg(1), 63);
        t.alui(AluOp::Mul, Reg(4), Reg(4), 8);
        t.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
        t.store(Reg(3), Reg(5), 0);
        t.end_loop(l);
        t.halt();
        b.build()
    }

    fn reference(p: &Program) -> (u64, Vec<u64>) {
        let mut m = Machine::new(MachineConfig::with_cores(1), p);
        m.run(&mut NoHooks, u64::MAX).unwrap();
        (m.total_retired(), m.mem().image().words().to_vec())
    }

    fn engine_with(
        p: &Program,
        triggers: Vec<u64>,
        errors: ErrorSchedule,
    ) -> BerEngine<'_, NoOmission> {
        let m = Machine::new(MachineConfig::with_cores(1), p);
        BerEngine::new(
            m,
            NoOmission,
            BerConfig {
                scheme: Scheme::GlobalCoordinated,
                triggers,
                errors,
                oracle: true,
                secondary: None,
                faults: Vec::new(),
                resilience: ResilienceConfig::default(),
            },
        )
    }

    #[test]
    fn error_before_first_checkpoint_rolls_to_start() {
        let p = program();
        let (total, want) = reference(&p);
        // Error very early, detected before the first trigger.
        let errors = ErrorSchedule {
            occurrences: vec![total / 50],
            detection_latency: total / 50,
        };
        let mut e = engine_with(&p, uniform_points(total, 4), errors);
        let rep = e.run_to_completion().unwrap();
        assert_eq!(rep.errors_handled, 1);
        assert_eq!(rep.recoveries[0].safe_epoch, 0, "must restore the start");
        assert_eq!(e.machine().mem().image().words(), want);
    }

    #[test]
    fn error_detected_only_at_halt_is_forced() {
        let p = program();
        let (total, want) = reference(&p);
        // Occurs just before the end; detection point lies beyond the end
        // of execution, so the engine must force-handle it at halt.
        let errors = ErrorSchedule {
            occurrences: vec![total - total / 100],
            detection_latency: total / 4,
        };
        let mut e = engine_with(&p, uniform_points(total, 4), errors);
        let rep = e.run_to_completion().unwrap();
        assert_eq!(rep.errors_handled, 1);
        assert_eq!(e.machine().mem().image().words(), want);
    }

    #[test]
    fn second_error_erased_by_first_rollback_is_not_recovered_twice() {
        let p = program();
        let (total, want) = reference(&p);
        // Two errors in quick succession: the rollback for the first also
        // undoes the second's corruption (occur >= safe progress), so only
        // one recovery happens but both count as handled.
        let errors = ErrorSchedule {
            occurrences: vec![total / 2, total / 2 + total / 100],
            detection_latency: total / 10,
        };
        let mut e = engine_with(&p, uniform_points(total, 8), errors);
        let rep = e.run_to_completion().unwrap();
        assert_eq!(rep.errors_handled, 2);
        assert_eq!(rep.recoveries.len(), 1, "one rollback covers both");
        assert_eq!(e.machine().mem().image().words(), want);
    }

    #[test]
    fn corrupted_checkpoint_is_skipped() {
        let p = program();
        let (total, want) = reference(&p);
        // Fig 2: the error occurs just before a checkpoint and is detected
        // after it — the engine must roll back PAST that checkpoint.
        let trigger = total / 2;
        let errors = ErrorSchedule {
            occurrences: vec![trigger - total / 200],
            detection_latency: total / 50,
        };
        let mut e = engine_with(&p, vec![total / 4, trigger, 3 * total / 4], errors);
        let rep = e.run_to_completion().unwrap();
        assert_eq!(rep.errors_handled, 1);
        // Safe epoch is the one opened by the total/4 checkpoint (epoch 1),
        // not the corrupted total/2 one (epoch 2).
        assert_eq!(rep.recoveries[0].safe_epoch, 1);
        assert_eq!(e.machine().mem().image().words(), want);
    }

    #[test]
    fn zero_triggers_still_recovers_to_start() {
        let p = program();
        let (total, want) = reference(&p);
        let errors = ErrorSchedule {
            occurrences: vec![total / 3],
            detection_latency: total / 10,
        };
        let mut e = engine_with(&p, Vec::new(), errors);
        let rep = e.run_to_completion().unwrap();
        assert_eq!(rep.checkpoints_taken, 0);
        assert_eq!(rep.errors_handled, 1);
        assert_eq!(rep.recoveries[0].safe_epoch, 0);
        assert_eq!(e.machine().mem().image().words(), want);
    }
}

#[cfg(test)]
mod resilience_tests {
    use super::*;
    use crate::policy::NoOmission;
    use crate::schedule::{uniform_points, ErrorSchedule};
    use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
    use acr_mem::CoreId;
    use acr_sim::{MachineConfig, NoHooks};

    fn program() -> Program {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(1 << 16);
        let t = b.thread(0);
        t.imm(Reg(10), 4096);
        let l = t.begin_loop(Reg(1), Reg(2), 400);
        t.alui(AluOp::Mul, Reg(3), Reg(1), 7);
        t.alui(AluOp::And, Reg(4), Reg(1), 63);
        t.alui(AluOp::Mul, Reg(4), Reg(4), 8);
        t.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
        t.store(Reg(3), Reg(5), 0);
        t.end_loop(l);
        t.halt();
        b.build()
    }

    fn reference(p: &Program) -> (u64, Vec<u64>) {
        let mut m = Machine::new(MachineConfig::with_cores(1), p);
        m.run(&mut NoHooks, u64::MAX).unwrap();
        (m.total_retired(), m.mem().image().words().to_vec())
    }

    fn run_with(
        p: &Program,
        total: u64,
        resilience: ResilienceConfig,
    ) -> (BerReport, Vec<u64>, bool) {
        let errors = ErrorSchedule {
            occurrences: vec![total / 2 + total / 20],
            detection_latency: total / 20,
        };
        let m = Machine::new(MachineConfig::with_cores(1), p);
        let mut e = BerEngine::new(
            m,
            NoOmission,
            BerConfig {
                scheme: Scheme::GlobalCoordinated,
                triggers: uniform_points(total, 6),
                errors,
                oracle: true,
                secondary: None,
                faults: Vec::new(),
                resilience,
            },
        );
        e.enable_ledger();
        let rep = e.run_to_completion().unwrap();
        let degraded_decisions = e
            .ledger()
            .map(|l| l.total(crate::ledger::OmitReason::LoggedDegraded) > 0)
            .unwrap_or(false);
        let mem = e.machine().mem().image().words().to_vec();
        (rep, mem, degraded_decisions)
    }

    fn fault_plan(kind: RecoveryFaultKind) -> Vec<RecoveryFault> {
        vec![RecoveryFault {
            at_recovery: 0,
            kind,
        }]
    }

    #[test]
    fn restored_word_flip_detected_and_repaired_by_retry() {
        let p = program();
        let (total, want) = reference(&p);
        let (rep, mem, _) = run_with(
            &p,
            total,
            ResilienceConfig {
                recovery_faults: fault_plan(RecoveryFaultKind::RestoredWordFlip { bit: 5 }),
                ..Default::default()
            },
        );
        assert_eq!(rep.recoveries.len(), 1);
        assert_eq!(rep.recoveries[0].replay_retries, 1);
        assert_eq!(rep.recoveries[0].generation_fallbacks, 0);
        assert!(!rep.recoveries[0].degraded_entered);
        assert_eq!(rep.divergent_words, 0);
        assert_eq!(mem, want);
    }

    #[test]
    fn torn_record_repaired_from_mirror() {
        let p = program();
        let (total, want) = reference(&p);
        let (rep, mem, _) = run_with(
            &p,
            total,
            ResilienceConfig {
                recovery_faults: fault_plan(RecoveryFaultKind::TornRecord { bit: 3 }),
                ..Default::default()
            },
        );
        assert_eq!(rep.recoveries[0].replay_retries, 1);
        assert_eq!(rep.divergent_words, 0);
        assert_eq!(mem, want);
        // The tear hits the very first record, so the aborted pass restores
        // nothing before detection — the total equals the clean run's —
        // but the mirror repair and the retried pass cost extra stall.
        let (clean, _, _) = run_with(&p, total, ResilienceConfig::default());
        assert_eq!(
            rep.recoveries[0].restored_records,
            clean.recoveries[0].restored_records
        );
        assert!(rep.recoveries[0].stall_cycles > clean.recoveries[0].stall_cycles);
    }

    #[test]
    fn crash_mid_restore_is_idempotent_under_retry() {
        let p = program();
        let (total, want) = reference(&p);
        let (rep, mem, _) = run_with(
            &p,
            total,
            ResilienceConfig {
                recovery_faults: fault_plan(RecoveryFaultKind::CrashMidRestore),
                ..Default::default()
            },
        );
        assert_eq!(rep.recoveries[0].replay_retries, 1);
        assert!(!rep.recoveries[0].degraded_entered);
        assert_eq!(rep.divergent_words, 0);
        assert_eq!(mem, want);
    }

    #[test]
    fn torn_commit_falls_back_a_generation_and_degrades() {
        let p = program();
        let (total, want) = reference(&p);
        let (rep, mem, degraded_decisions) = run_with(
            &p,
            total,
            ResilienceConfig {
                generations: 2,
                recovery_faults: fault_plan(RecoveryFaultKind::TornCommit),
                ..Default::default()
            },
        );
        assert_eq!(rep.recoveries[0].generation_fallbacks, 1);
        assert!(rep.recoveries[0].degraded_entered);
        assert_eq!(rep.degraded_entries, 1);
        assert_eq!(rep.divergent_words, 0);
        assert_eq!(mem, want);
        // The degraded window logged unconditionally until the next clean
        // commit, and the ledger attributed those decisions.
        assert!(degraded_decisions);
        // Fallback restores one generation further back than the clean run.
        let (clean, _, _) = run_with(
            &p,
            total,
            ResilienceConfig {
                generations: 2,
                ..Default::default()
            },
        );
        assert_eq!(
            rep.recoveries[0].safe_epoch + 1,
            clean.recoveries[0].safe_epoch
        );
    }

    #[test]
    fn watchdog_aborts_a_still_failing_escalation_over_budget() {
        let p = program();
        let (total, _) = reference(&p);
        let m = Machine::new(MachineConfig::with_cores(1), &p);
        let mut e = BerEngine::new(
            m,
            NoOmission,
            BerConfig {
                scheme: Scheme::GlobalCoordinated,
                triggers: uniform_points(total, 6),
                errors: ErrorSchedule {
                    occurrences: vec![total / 2 + total / 20],
                    detection_latency: total / 20,
                },
                oracle: true,
                secondary: None,
                faults: Vec::new(),
                resilience: ResilienceConfig {
                    // The flip corrupts the first restore pass; a 1-cycle
                    // budget is exhausted before the retry can repair it.
                    recovery_faults: fault_plan(RecoveryFaultKind::RestoredWordFlip { bit: 5 }),
                    watchdog_budget_cycles: 1,
                    ..Default::default()
                },
            },
        );
        let err = e.run_to_completion().unwrap_err();
        assert!(
            matches!(err, SimError::RecoveryHang { budget_cycles: 1, spent_cycles } if spent_cycles > 1),
            "{err}"
        );
        assert_eq!(e.partial_report().recovery_hangs, 1);
    }

    #[test]
    fn generous_watchdog_budget_is_inert() {
        let p = program();
        let (total, want) = reference(&p);
        // A failing first attempt *under* budget must escalate normally:
        // the watchdog only aborts, it never changes a surviving run.
        let (rep, mem, _) = run_with(
            &p,
            total,
            ResilienceConfig {
                recovery_faults: fault_plan(RecoveryFaultKind::RestoredWordFlip { bit: 5 }),
                watchdog_budget_cycles: u64::MAX,
                ..Default::default()
            },
        );
        let (base, mem2, _) = run_with(
            &p,
            total,
            ResilienceConfig {
                recovery_faults: fault_plan(RecoveryFaultKind::RestoredWordFlip { bit: 5 }),
                ..Default::default()
            },
        );
        assert_eq!(rep.cycles, base.cycles);
        assert_eq!(rep.recovery_hangs, 0);
        assert_eq!(mem, mem2);
        assert_eq!(mem, want);
    }

    #[test]
    fn default_resilience_is_inert() {
        let p = program();
        let (total, _) = reference(&p);
        let (rep, mem, degraded) = run_with(&p, total, ResilienceConfig::default());
        let (rep2, mem2, degraded2) = run_with(&p, total, ResilienceConfig::default());
        assert_eq!(rep.cycles, rep2.cycles);
        assert_eq!(mem, mem2);
        assert_eq!(rep.recoveries[0].replay_retries, 0);
        assert_eq!(rep.recoveries[0].generation_fallbacks, 0);
        assert_eq!(rep.replay_retries, 0);
        assert_eq!(rep.degraded_entries, 0);
        assert!(!degraded && !degraded2);
    }

    /// A real fault landing on the exact cycle a checkpoint commits:
    /// the commit wins the tie. The corruption is deferred until the
    /// checkpoint has sealed its epoch and snapshotted clean state, so it
    /// is attributed to the epoch the checkpoint *opens* — the snapshot
    /// never captures it, and recovery restores a clean image.
    #[test]
    fn fault_on_commit_cycle_is_attributed_to_the_opened_epoch() {
        let p = program();
        let (total, want) = reference(&p);
        let trigger = total / 2;
        let m = Machine::new(MachineConfig::with_cores(1), &p);
        let mut e = BerEngine::new(
            m,
            NoOmission,
            BerConfig {
                scheme: Scheme::GlobalCoordinated,
                triggers: vec![trigger],
                errors: ErrorSchedule {
                    occurrences: Vec::new(),
                    detection_latency: total / 20,
                },
                oracle: true,
                secondary: None,
                faults: vec![Fault {
                    at_progress: trigger,
                    core: CoreId(0),
                    kind: FaultKind::Crash,
                }],
                resilience: ResilienceConfig::default(),
            },
        );
        let rep = e.run_to_completion().unwrap();
        assert_eq!(rep.errors_handled, 1);
        assert_eq!(rep.faults_injected, 1);
        assert_eq!(rep.divergent_words, 0);
        assert_eq!(e.machine().mem().image().words(), want);
        // Deterministic epoch attribution: when the machine stops exactly
        // on the trigger, the commit point equals the fault's occurrence
        // and recovery rolls back only to the just-committed checkpoint
        // (epoch 1) — never past it, and never to a snapshot containing
        // the corruption. If the stop overshot the trigger, the occurrence
        // predates the commit and the start checkpoint is the safe one.
        let commit_progress = rep.intervals[0].progress;
        let expected_safe = u64::from(commit_progress == trigger);
        assert_eq!(rep.recoveries[0].safe_epoch, expected_safe);
    }
}
