//! The BER engine: drives the machine between checkpoints and errors.

use std::collections::VecDeque;

use acr_mem::{CoreId, LogController, LogEpoch, WordAddr, LOG_RECORD_BYTES};
use acr_sim::{
    AssocEvent, ExecHooks, Fault, FaultKind, Machine, RunOutcome, SimError, StoreEvent,
    TICKS_PER_CYCLE,
};
use acr_trace::{TraceEvent, TRACK_ENGINE};

use crate::checkpoint::CheckpointRecord;
use crate::ledger::DecisionLedger;
use crate::policy::OmissionPolicy;
use crate::report::{BerReport, IntervalRecord, RecoveryRecord};
use crate::schedule::ErrorSchedule;

/// Coordination scheme (Sections II-A and V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// All cores checkpoint (and roll back) together.
    #[default]
    GlobalCoordinated,
    /// Only cores that communicated within the interval coordinate; each
    /// connected component of the communication graph checkpoints (and
    /// rolls back) independently.
    LocalCoordinated,
}

/// Second-level checkpoint destination for hierarchical checkpointing.
///
/// Section II-A notes that in-memory checkpointing "may … represent the
/// first level in a hierarchical checkpointing framework". This models
/// the second level: every `every`-th established checkpoint is also
/// streamed to slower storage (e.g. NVM/SSD), whose cost scales with the
/// checkpoint's size — so ACR's size reductions cut level-2 traffic too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondaryStorage {
    /// Stream every `every`-th checkpoint to the second level (≥ 1).
    pub every: u32,
    /// Sustained secondary bandwidth in bytes per core cycle (e.g. a
    /// 1 GB/s device at 1.09 GHz ≈ 0.92 B/cycle).
    pub bytes_per_cycle: f64,
    /// Fixed per-checkpoint latency (device + software stack), cycles.
    pub latency_cycles: u64,
}

impl Default for SecondaryStorage {
    fn default() -> Self {
        SecondaryStorage {
            every: 5,
            bytes_per_cycle: 0.92,
            latency_cycles: 20_000,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct BerConfig {
    /// Coordination scheme.
    pub scheme: Scheme,
    /// Checkpoint trigger points, ascending, in progress units (total
    /// retired instructions); see [`crate::uniform_points`].
    pub triggers: Vec<u64>,
    /// Error schedule.
    pub errors: ErrorSchedule,
    /// Shadow-memory verification of every recovery (tests; off in
    /// benchmark sweeps to save host memory).
    pub oracle: bool,
    /// Optional second-level checkpoint destination.
    pub secondary: Option<SecondaryStorage>,
    /// Real state corruptions to inject. When empty, the error schedule
    /// is *phantom* (schedule-only, no corruption — the mode every
    /// overhead experiment uses). When non-empty, the faults **define**
    /// the error schedule: each fault is one error occurring at its
    /// `at_progress` on its target core, and
    /// [`ErrorSchedule::occurrences`] is ignored (only
    /// `detection_latency` is still read; crashes are detected
    /// immediately regardless). In fault mode the recovery oracle records
    /// shadow divergence in the report instead of asserting, because
    /// memory faults can legitimately defeat the log.
    pub faults: Vec<Fault>,
}

#[derive(Debug, Clone, Copy)]
struct ErrState {
    occur: u64,
    core: u32,
    /// Corruption applied at occurrence (`None` = phantom error).
    kind: Option<FaultKind>,
    /// Per-error detection latency (crashes are never silent: 0).
    latency: u64,
    occurred: bool,
    handled: bool,
}

/// The store/assoc instrumentation the engine attaches to the machine.
struct CkptHooks<P> {
    logctl: LogController,
    policy: P,
    /// `AddrMap` lookups performed by the omission check (energy).
    omission_lookups: u64,
    /// Optional omission-decision ledger (observational; `None` keeps the
    /// hot path to one branch).
    ledger: Option<Box<DecisionLedger>>,
}

impl<P: OmissionPolicy> ExecHooks for CkptHooks<P> {
    fn on_store(&mut self, ev: StoreEvent) -> u64 {
        let epoch = self.logctl.current().index;
        self.policy.on_store(ev.core.0, ev.addr, epoch);
        if !self.logctl.is_logged(ev.addr) {
            self.omission_lookups += 1;
            let omitted = if let Some(owner) = self.policy.try_omit(ev.core.0, ev.addr, epoch) {
                self.logctl.omit_value(ev.addr, owner);
                true
            } else {
                self.logctl.log_value(ev.addr, ev.old, ev.core.0);
                false
            };
            if let Some(led) = &mut self.ledger {
                let (reason, slice) = self
                    .policy
                    .classify(ev.core.0, ev.pc, ev.addr, epoch, omitted);
                led.record(ev.addr, reason, slice);
            }
        }
        0
    }

    fn on_assoc(&mut self, ev: AssocEvent) -> u64 {
        let epoch = self.logctl.current().index;
        self.policy.on_assoc(&ev, epoch)
    }
}

/// Backward-error-recovery engine over a simulated machine.
///
/// See the [crate documentation](crate) for the execution model. The type
/// parameter `P` selects the baseline ([`crate::NoOmission`]) or ACR
/// (`acr::AcrPolicy`).
///
/// ```
/// use acr_ckpt::{BerConfig, BerEngine, ErrorSchedule, NoOmission, Scheme};
/// use acr_isa::{AluOp, ProgramBuilder, Reg};
/// use acr_sim::{Machine, MachineConfig};
///
/// // A loop storing i*3 to 64 words, checkpointed 4 times with 1 error.
/// let mut b = ProgramBuilder::new(1);
/// b.set_mem_bytes(4096);
/// let t = b.thread(0);
/// t.imm(Reg(10), 1024);
/// let l = t.begin_loop(Reg(1), Reg(2), 64);
/// t.alui(AluOp::Mul, Reg(3), Reg(1), 3);
/// t.alui(AluOp::Mul, Reg(4), Reg(1), 8);
/// t.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
/// t.store(Reg(3), Reg(5), 0);
/// t.end_loop(l);
/// t.halt();
/// let program = b.build();
///
/// let total = 64 * 6 + 10; // roughly the retired-instruction count
/// let cfg = BerConfig {
///     scheme: Scheme::GlobalCoordinated,
///     triggers: acr_ckpt::uniform_points(total, 4),
///     errors: ErrorSchedule::uniform(total, 1, 4, 0.5),
///     oracle: true, // verify the recovery against a shadow snapshot
///     secondary: None,
///     faults: Vec::new(), // phantom errors: schedule only, no corruption
/// };
/// let machine = Machine::new(MachineConfig::with_cores(1), &program);
/// let mut engine = BerEngine::new(machine, NoOmission, cfg);
/// let report = engine.run_to_completion()?;
/// assert!(report.checkpoints_taken >= 4);
/// assert_eq!(report.errors_handled, 1);
/// # Ok::<(), acr_sim::SimError>(())
/// ```
pub struct BerEngine<'p, P: OmissionPolicy> {
    machine: Machine<'p>,
    cfg: BerConfig,
    hooks: CkptHooks<P>,
    checkpoints: VecDeque<CheckpointRecord>,
    errors: Vec<ErrState>,
    report: BerReport,
}

/// Checkpoint records retained (start + the two most recent).
const RETAINED_CHECKPOINTS: usize = 3;

impl<'p, P: OmissionPolicy> BerEngine<'p, P> {
    /// Creates an engine over `machine` with omission policy `policy`.
    pub fn new(mut machine: Machine<'p>, policy: P, cfg: BerConfig) -> Self {
        if cfg.scheme == Scheme::LocalCoordinated {
            machine.mem_mut().enable_sharing();
        }
        let logctl = LogController::new(machine.mem().image().num_words());
        let num_cores = machine.cores().len() as u32;
        let errors: Vec<ErrState> = if cfg.faults.is_empty() {
            cfg.errors
                .occurrences
                .iter()
                .enumerate()
                .map(|(i, &occur)| ErrState {
                    occur,
                    core: i as u32 % num_cores,
                    kind: None,
                    latency: cfg.errors.detection_latency,
                    occurred: false,
                    handled: false,
                })
                .collect()
        } else {
            cfg.faults
                .iter()
                .map(|f| ErrState {
                    occur: f.at_progress,
                    core: f.core.0 % num_cores,
                    kind: Some(f.kind),
                    latency: match f.kind {
                        FaultKind::Crash => 0,
                        _ => cfg.errors.detection_latency,
                    },
                    occurred: false,
                    handled: false,
                })
                .collect()
        };
        let initial = CheckpointRecord {
            begins_epoch: 0,
            progress: 0,
            cycles: 0,
            arch: machine.snapshot_arch(),
            groups: vec![machine.all_mask()],
            shadow_mem: cfg.oracle.then(|| machine.mem().image().snapshot()),
        };
        let mut checkpoints = VecDeque::with_capacity(RETAINED_CHECKPOINTS + 1);
        checkpoints.push_back(initial);
        BerEngine {
            machine,
            cfg,
            hooks: CkptHooks {
                logctl,
                policy,
                omission_lookups: 0,
                ledger: None,
            },
            errors,
            checkpoints,
            report: BerReport::default(),
        }
    }

    /// The machine, for inspection after the run.
    pub fn machine(&self) -> &Machine<'p> {
        &self.machine
    }

    /// Mutable machine access (extracting observational state — the
    /// attribution profile, sampled series — after the run).
    pub fn machine_mut(&mut self) -> &mut Machine<'p> {
        &mut self.machine
    }

    /// The omission policy, for ACR statistics extraction.
    pub fn policy(&self) -> &P {
        &self.hooks.policy
    }

    /// `AddrMap` lookups issued by the first-update omission check.
    pub fn omission_lookups(&self) -> u64 {
        self.hooks.omission_lookups
    }

    /// Attaches an omission-decision ledger: from now on every
    /// first-update decision is classified (via
    /// [`OmissionPolicy::classify`]) and aggregated. Observational only —
    /// simulated time and results are unchanged.
    pub fn enable_ledger(&mut self) {
        self.hooks.ledger = Some(Box::default());
    }

    /// The attached ledger (None unless [`Self::enable_ledger`] was
    /// called).
    pub fn ledger(&self) -> Option<&DecisionLedger> {
        self.hooks.ledger.as_deref()
    }

    /// Takes the ledger, leaving decision tracking disabled.
    pub fn take_ledger(&mut self) -> Option<DecisionLedger> {
        self.hooks.ledger.take().map(|b| *b)
    }

    /// Lifetime `(logged, omitted)` first-update totals from the log
    /// controller — the independent tally the ledger's conservation
    /// invariant is checked against.
    pub fn log_totals(&self) -> (u64, u64) {
        (
            self.hooks.logctl.lifetime_logged(),
            self.hooks.logctl.lifetime_omitted(),
        )
    }

    fn next_stop(&self) -> u64 {
        let last_ckpt = self.checkpoints.back().map(|c| c.progress).unwrap_or(0);
        let trig = self
            .cfg
            .triggers
            .iter()
            .copied()
            .find(|&t| t > last_ckpt)
            .unwrap_or(u64::MAX);
        let occur = self
            .errors
            .iter()
            .filter(|e| !e.occurred)
            .map(|e| e.occur)
            .min()
            .unwrap_or(u64::MAX);
        let detect = self
            .errors
            .iter()
            .filter(|e| e.occurred && !e.handled)
            .map(|e| e.occur + e.latency)
            .min()
            .unwrap_or(u64::MAX);
        trig.min(occur).min(detect)
    }

    /// Runs to completion, handling every checkpoint and error.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulator.
    pub fn run_to_completion(&mut self) -> Result<BerReport, SimError> {
        loop {
            let stop = self.next_stop();
            let out = match self.machine.run(&mut self.hooks, stop) {
                Ok(out) => out,
                Err(SimError::FuelExhausted) => return Err(SimError::FuelExhausted),
                Err(trap) => {
                    // A corrupted register or pc drove a core into an
                    // illegal access. If an injected error is pending, the
                    // exception *is* the detection (ahead of its scheduled
                    // latency); recover and resume. Otherwise it is a
                    // genuine program bug — propagate.
                    self.mark_occurrences();
                    if let Some(ei) = self.errors.iter().position(|e| e.occurred && !e.handled) {
                        self.report.exception_detections += 1;
                        self.do_recovery(ei);
                        continue;
                    }
                    return Err(trap);
                }
            };
            self.mark_occurrences();
            // Process due events in ascending threshold order; recovery
            // rewinds progress, so re-evaluate after each.
            loop {
                let progress = self.machine.total_retired();
                let last_ckpt = self.checkpoints.back().map(|c| c.progress).unwrap_or(0);
                let trig = self
                    .cfg
                    .triggers
                    .iter()
                    .copied()
                    .find(|&t| t > last_ckpt && t <= progress);
                let detect = self
                    .errors
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.occurred && !e.handled && e.occur + e.latency <= progress)
                    .min_by_key(|(_, e)| e.occur)
                    .map(|(i, e)| (i, e.occur + e.latency));
                match (trig, detect) {
                    (Some(t), Some((ei, d))) => {
                        if t <= d {
                            self.do_checkpoint();
                        } else {
                            self.do_recovery(ei);
                        }
                    }
                    (Some(_), None) => self.do_checkpoint(),
                    (None, Some((ei, _))) => self.do_recovery(ei),
                    (None, None) => break,
                }
                self.mark_occurrences();
            }
            if out == RunOutcome::AllHalted && self.machine.all_halted() {
                // Force-detect any straggling errors at end of execution.
                if let Some(ei) = self.errors.iter().position(|e| e.occurred && !e.handled) {
                    self.do_recovery(ei);
                    continue;
                }
                break;
            }
        }
        // Final sample so short runs with a coarse interval still carry at
        // least one counter snapshot.
        self.publish_ckpt_metrics();
        self.machine.force_sample();
        let mut report = std::mem::take(&mut self.report);
        report.cycles = self.machine.cycles();
        report.sim = *self.machine.stats();
        report.mem = *self.machine.mem().stats();
        report.series = self.machine.take_series();
        Ok(report)
    }

    /// Refreshes the engine-owned `ckpt.*` keys in the machine's unified
    /// metrics registry (all values cumulative over the run):
    ///
    /// * `ckpt.taken` — checkpoints established (count);
    /// * `ckpt.records` — old-value log records written (records);
    /// * `ckpt.omitted` — first updates omitted by the policy (records);
    /// * `ckpt.bytes` — checkpoint bytes written (bytes);
    /// * `ckpt.stall_cycles` — checkpoint stalls (cycles);
    /// * `ckpt.recoveries` — recoveries performed (count);
    /// * `ckpt.recovery_stall_cycles` — recovery stalls (cycles);
    /// * `ckpt.faults_injected` — state corruptions applied (count).
    fn publish_ckpt_metrics(&mut self) {
        let r = &self.report;
        let taken = r.checkpoints_taken;
        let records: u64 = r.intervals.iter().map(|i| i.records).sum();
        let omitted: u64 = r.intervals.iter().map(|i| i.omitted).sum();
        let bytes = r.total_checkpoint_bytes();
        let stall = r.checkpoint_stall_cycles;
        let recoveries = r.recoveries.len() as u64;
        let rec_stall = r.recovery_stall_cycles;
        let faults = r.faults_injected;
        let reg = self.machine.metrics_mut();
        reg.set("ckpt.taken", taken);
        reg.set("ckpt.records", records);
        reg.set("ckpt.omitted", omitted);
        reg.set("ckpt.bytes", bytes);
        reg.set("ckpt.stall_cycles", stall);
        reg.set("ckpt.recoveries", recoveries);
        reg.set("ckpt.recovery_stall_cycles", rec_stall);
        reg.set("ckpt.faults_injected", faults);
        // Ledger gauges (cumulative decisions per reason code; words).
        if let Some(led) = &self.hooks.ledger {
            for reason in crate::ledger::OmitReason::ALL {
                let key = format!("ckpt.ledger.{}", reason.code().replace([':', '-'], "_"));
                reg.set(&key, led.total(reason));
            }
        }
        self.hooks.policy.publish_metrics(reg);
    }

    fn mark_occurrences(&mut self) {
        let progress = self.machine.total_retired();
        for i in 0..self.errors.len() {
            let e = self.errors[i];
            if !e.occurred && e.occur <= progress {
                self.errors[i].occurred = true;
                if let Some(kind) = e.kind {
                    let _ = self.machine.apply_fault(CoreId(e.core), kind);
                    self.report.faults_injected += 1;
                    let landing = self.machine.cycles();
                    self.report.fault_landing_cycles.push(landing);
                    if self.machine.trace().enabled() {
                        self.machine.trace().emit(
                            TraceEvent::instant("fault.inject", "fault", TRACK_ENGINE, landing)
                                .with_arg("core", u64::from(e.core))
                                .with_arg("at_progress", e.occur),
                        );
                    }
                }
            }
        }
    }

    /// Establishes a coordinated checkpoint (global or per-group local).
    fn do_checkpoint(&mut self) {
        let all = self.machine.all_mask();
        let groups: Vec<u64> = match self.cfg.scheme {
            Scheme::GlobalCoordinated => vec![all],
            Scheme::LocalCoordinated => self
                .machine
                .mem()
                .sharing()
                .expect("sharing enabled for local scheme")
                .groups(),
        };
        let sealed_index;
        let (records, omitted, per_core_records) = {
            let sealed = self.hooks.logctl.seal_epoch();
            sealed_index = sealed.index;
            let mut per_core = vec![0u64; self.machine.cores().len()];
            for r in &sealed.records {
                per_core[r.core as usize] += 1;
            }
            (
                sealed.records.len() as u64,
                sealed.omitted.len() as u64,
                per_core,
            )
        };
        let num_cores = self.machine.cores().len();
        let prev_ckpt_cycles = self.checkpoints.back().map(|c| c.cycles).unwrap_or(0);
        let mut max_stall = 0u64;
        let mut lines_total = 0u64;
        for &g in &groups {
            let participants = (g & all).count_ones();
            let arrival = self.machine.mask_ticks(g);
            let flush = self.machine.mem_mut().flush_dirty(g);
            let group_records: u64 = (0..num_cores)
                .filter(|i| g >> i & 1 == 1)
                .map(|i| per_core_records[i])
                .sum();
            // Each log record costs an old-value read (8 B) before the
            // flush overwrites it, plus the 16 B record write.
            let bytes =
                group_records * (LOG_RECORD_BYTES + 8) + CheckpointRecord::arch_bytes(g, num_cores);
            let log_stall = self.machine.mem().log_write_stall(bytes);
            let coord = self
                .machine
                .config()
                .checkpoint_coordination_cycles(participants);
            let stall = coord + flush.stall_cycles + log_stall;
            self.machine
                .stall_cores(g, arrival + stall * TICKS_PER_CYCLE);
            max_stall = max_stall.max(stall);
            lines_total += flush.lines_flushed;
            if self.machine.trace().enabled() {
                // A lone (global) group renders on the engine track; local
                // groups land on their lowest core's track so concurrent
                // group checkpoints never partially overlap one track.
                let track = if groups.len() == 1 {
                    TRACK_ENGINE
                } else {
                    g.trailing_zeros()
                };
                self.machine.trace().emit(
                    TraceEvent::span("ckpt", "ckpt", track, arrival / TICKS_PER_CYCLE, stall)
                        .with_arg("epoch", sealed_index + 1)
                        .with_arg("records", group_records)
                        .with_arg("lines_flushed", flush.lines_flushed)
                        .with_arg("group", g),
                );
            }
        }
        if self.machine.trace().enabled() {
            // The interval this checkpoint seals, as a span from the
            // previous checkpoint's commit point to this one's arrival.
            let now = self.machine.cycles();
            self.machine.trace().emit(
                TraceEvent::span(
                    "ckpt.interval",
                    "ckpt",
                    TRACK_ENGINE,
                    prev_ckpt_cycles,
                    now.saturating_sub(prev_ckpt_cycles),
                )
                .with_arg("epoch", sealed_index)
                .with_arg("records", records)
                .with_arg("omitted", omitted),
            );
        }
        let arch_bytes = CheckpointRecord::arch_bytes(all, num_cores);
        let mem = self.machine.mem_mut().stats_mut();
        mem.log_record_writes += records + arch_bytes / LOG_RECORD_BYTES;

        let progress = self.machine.total_retired();
        let record = CheckpointRecord {
            begins_epoch: sealed_index + 1,
            progress,
            cycles: self.machine.cycles(),
            arch: self.machine.snapshot_arch(),
            groups: groups.clone(),
            shadow_mem: self
                .cfg
                .oracle
                .then(|| self.machine.mem().image().snapshot()),
        };
        self.checkpoints.push_back(record);
        while self.checkpoints.len() > RETAINED_CHECKPOINTS {
            self.checkpoints.pop_front();
        }
        self.hooks.policy.on_checkpoint(sealed_index);
        self.machine.mem_mut().sharing_new_interval();

        self.report.intervals.push(IntervalRecord {
            epoch: sealed_index,
            progress,
            records,
            omitted,
            bytes: records * LOG_RECORD_BYTES + arch_bytes,
            baseline_bytes: (records + omitted) * LOG_RECORD_BYTES + arch_bytes,
            stall_cycles: max_stall,
            lines_flushed: lines_total,
        });
        self.report.checkpoints_taken += 1;
        self.report.checkpoint_stall_cycles += max_stall;

        // Hierarchical level 2: stream every k-th checkpoint out.
        if let Some(sec) = self.cfg.secondary {
            if self
                .report
                .checkpoints_taken
                .is_multiple_of(u64::from(sec.every.max(1)))
            {
                let bytes = records * LOG_RECORD_BYTES + arch_bytes;
                let stall = sec.latency_cycles + (bytes as f64 / sec.bytes_per_cycle).ceil() as u64;
                let arrival = self.machine.mask_ticks(all);
                self.machine
                    .stall_cores(all, arrival + stall * TICKS_PER_CYCLE);
                self.report.secondary_checkpoints += 1;
                self.report.secondary_bytes += bytes;
                self.report.secondary_stall_cycles += stall;
            }
        }
        self.publish_ckpt_metrics();
    }

    /// Handles the detection of error `ei`: roll back to the most recent
    /// checkpoint established before the error occurred, recompute omitted
    /// values, restore logged values and architectural state, and resume.
    fn do_recovery(&mut self, ei: usize) {
        let err = self.errors[ei];
        let all = self.machine.all_mask();
        let num_cores = self.machine.cores().len();
        let detected_at_progress = self.machine.total_retired();
        let detected_at_cycles = self.machine.cycles();

        // Safe checkpoint: the most recent one provably taken before the
        // error occurred (with detection latency ≤ the checkpoint period
        // this is the most recent or second most recent — Fig. 2).
        let safe_idx = self
            .checkpoints
            .iter()
            .rposition(|c| c.progress <= err.occur)
            .expect("a safe checkpoint is always retained");
        let safe = self.checkpoints[safe_idx].clone();

        // Victim set.
        let victim_mask = match self.cfg.scheme {
            Scheme::GlobalCoordinated => all,
            Scheme::LocalCoordinated => {
                let mut victims = 1u64 << err.core;
                // Union communicating groups over the undone intervals and
                // the current one, to a fixpoint.
                let mut group_sets: Vec<u64> = self
                    .checkpoints
                    .iter()
                    .filter(|c| c.begins_epoch > safe.begins_epoch)
                    .flat_map(|c| c.groups.iter().copied())
                    .collect();
                if let Some(t) = self.machine.mem().sharing() {
                    group_sets.extend(t.groups());
                }
                loop {
                    let before = victims;
                    for &g in &group_sets {
                        if g & victims != 0 {
                            victims |= g;
                        }
                    }
                    if victims == before {
                        break;
                    }
                }
                victims & all
            }
        };

        // Roll the log back and collect the epochs to undo (newest first).
        let undone: Vec<LogEpoch> = match self.cfg.scheme {
            Scheme::GlobalCoordinated => self.hooks.logctl.rollback_to(safe.begins_epoch),
            Scheme::LocalCoordinated => self
                .hooks
                .logctl
                .rollback_victims(safe.begins_epoch, victim_mask),
        };

        // Restore memory: newest epoch first, oldest last (the oldest —
        // the safe epoch — holds the values at the safe checkpoint).
        let mut restored_records = 0u64;
        let mut recomputed_values = 0u64;
        let mut recompute_alu = 0u64;
        let mut recompute_cycles_per_core = vec![0u64; num_cores];
        let mut opbuf_reads = 0u64;
        let mut restored_words: Vec<WordAddr> = Vec::new();
        for epoch in &undone {
            for rec in &epoch.records {
                self.machine
                    .mem_mut()
                    .image_mut()
                    .write(rec.addr, rec.old_value);
                restored_records += 1;
                if self.cfg.oracle {
                    restored_words.push(rec.addr);
                }
            }
            for om in &epoch.omitted {
                let rc = self
                    .hooks
                    .policy
                    .recompute(om.addr, epoch.index)
                    .expect("every omitted value must be recomputable");
                self.machine.mem_mut().image_mut().write(om.addr, rc.value);
                recomputed_values += 1;
                recompute_alu += rc.alu_ops;
                opbuf_reads += rc.opbuf_reads;
                recompute_cycles_per_core[om.core as usize] += rc.cycles;
                if let Some(led) = &mut self.hooks.ledger {
                    led.record_replay(rc.slice, rc.cycles, rc.alu_ops, rc.opbuf_reads);
                }
                if self.cfg.oracle {
                    restored_words.push(om.addr);
                }
            }
        }

        // Oracle: restored state must match the safe checkpoint's shadow.
        // Phantom errors corrupt nothing, so any mismatch is an engine bug
        // and panics. Injected faults can legitimately defeat the log (a
        // memory flip in a word the undone epochs never covered), so in
        // fault mode divergence is counted and reported instead.
        let fault_mode = !self.cfg.faults.is_empty();
        let mut shadow_divergence = 0u64;
        if let Some(shadow) = &safe.shadow_mem {
            match self.cfg.scheme {
                Scheme::GlobalCoordinated => {
                    if fault_mode {
                        shadow_divergence = self
                            .machine
                            .mem()
                            .image()
                            .words()
                            .iter()
                            .zip(shadow.iter())
                            .filter(|(got, want)| got != want)
                            .count() as u64;
                    } else {
                        assert_eq!(
                            self.machine.mem().image().words(),
                            shadow.as_slice(),
                            "recovered memory image differs from the safe checkpoint"
                        );
                    }
                }
                Scheme::LocalCoordinated => {
                    for w in &restored_words {
                        let got = self.machine.mem().image().read(*w);
                        let want = shadow[w.word_index()];
                        if got != want {
                            assert!(
                                fault_mode,
                                "restored word {w} differs from the safe checkpoint"
                            );
                            shadow_divergence += 1;
                        }
                    }
                }
            }
        }

        // Costs.
        let arch_bytes = CheckpointRecord::arch_bytes(victim_mask, num_cores);
        let bytes_moved = restored_records * LOG_RECORD_BYTES
            + (restored_records + recomputed_values) * 8
            + arch_bytes;
        let dram = self.machine.config().mem.dram.latency_cycles;
        let transfer = self.machine.mem().log_write_stall(bytes_moved);
        let rc_stall = recompute_cycles_per_core.iter().copied().max().unwrap_or(0);
        let coord = self
            .machine
            .config()
            .checkpoint_coordination_cycles(victim_mask.count_ones());
        // Scratchpad-based recomputation (Section II-B) overlaps with the
        // restore traffic; register-file-based recomputation serializes
        // before the register restore.
        let restore_and_recompute = if self.hooks.policy.overlaps_restore() {
            transfer.max(rc_stall)
        } else {
            transfer + rc_stall
        };
        let stall = dram + restore_and_recompute + coord;
        {
            let mem = self.machine.mem_mut().stats_mut();
            mem.log_record_reads += restored_records;
            mem.recovery_word_writes += restored_records + recomputed_values + arch_bytes / 8;
        }
        if self.machine.trace().enabled() {
            let trace = self.machine.trace();
            trace.emit(
                TraceEvent::span(
                    "recovery",
                    "recovery",
                    TRACK_ENGINE,
                    detected_at_cycles,
                    stall,
                )
                .with_arg("safe_epoch", safe.begins_epoch)
                .with_arg("restored", restored_records)
                .with_arg("recomputed", recomputed_values)
                .with_arg("victims", victim_mask),
            );
            // Sub-spans: log restore traffic, then Slice re-execution —
            // concurrent with the restore under a scratchpad policy,
            // serialized after it otherwise. Both nest inside "recovery".
            let restore_start = detected_at_cycles + dram;
            trace.emit(
                TraceEvent::span(
                    "recovery.restore",
                    "recovery",
                    TRACK_ENGINE,
                    restore_start,
                    transfer,
                )
                .with_arg("records", restored_records)
                .with_arg("bytes", bytes_moved),
            );
            let replay_start = if self.hooks.policy.overlaps_restore() {
                restore_start
            } else {
                restore_start + transfer
            };
            trace.emit(
                TraceEvent::span(
                    "recovery.replay",
                    "recovery",
                    TRACK_ENGINE,
                    replay_start,
                    rc_stall,
                )
                .with_arg("slices", recomputed_values)
                .with_arg("alu_ops", recompute_alu),
            );
        }

        // Restore architectural state and resume the victims.
        let t_d = self.machine.mask_ticks(victim_mask);
        self.machine
            .restore_arch(&safe.arch, victim_mask, t_d + stall * TICKS_PER_CYCLE);
        match self.cfg.scheme {
            Scheme::GlobalCoordinated => self.machine.mem_mut().invalidate_all(),
            Scheme::LocalCoordinated => self.machine.mem_mut().invalidate_cores(victim_mask),
        }
        self.hooks
            .policy
            .on_rollback(safe.begins_epoch, victim_mask);

        // Checkpoints newer than the safe one are gone (global): their
        // epochs were undone and will be re-established.
        if self.cfg.scheme == Scheme::GlobalCoordinated {
            self.checkpoints.truncate(safe_idx + 1);
        }

        // The handled error, plus any other occurred-but-undetected error
        // whose corruption the rollback just erased, are done.
        let mut newly_handled = 0u64;
        for e in &mut self.errors {
            if e.occurred
                && !e.handled
                && e.occur >= safe.progress
                && victim_mask >> e.core & 1 == 1
            {
                e.handled = true;
                newly_handled += 1;
            }
        }
        if !self.errors[ei].handled {
            self.errors[ei].handled = true;
            newly_handled += 1;
        }

        self.report.recoveries.push(RecoveryRecord {
            detected_at_progress,
            detected_at_cycles,
            safe_epoch: safe.begins_epoch,
            restored_records,
            recomputed_values,
            recompute_alu_ops: recompute_alu,
            stall_cycles: stall,
            waste_cycles: detected_at_cycles.saturating_sub(safe.cycles),
            victim_mask,
            shadow_divergence,
        });
        self.report.divergent_words += shadow_divergence;
        self.report.errors_handled += newly_handled;
        self.report.recovery_stall_cycles += stall;
        self.publish_ckpt_metrics();
        let _ = opbuf_reads; // charged by the policy's own statistics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NoOmission;
    use crate::schedule::{uniform_points, ErrorSchedule};
    use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
    use acr_sim::{MachineConfig, NoHooks};

    /// A two-phase kernel per thread: fill a private region, then reduce.
    fn kernel(threads: usize, iters: u64) -> Program {
        let mut b = ProgramBuilder::new(threads);
        b.set_mem_bytes(1 << 20);
        for t in 0..threads as u32 {
            let base = u64::from(t) * 131072;
            let tb = b.thread(t);
            tb.imm(Reg(10), base);
            let l = tb.begin_loop(Reg(1), Reg(2), iters);
            tb.alui(AluOp::Mul, Reg(3), Reg(1), 17);
            tb.alui(AluOp::Add, Reg(3), Reg(3), 5);
            tb.alui(AluOp::Mul, Reg(4), Reg(1), 8);
            tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
            tb.store(Reg(3), Reg(5), 0);
            tb.end_loop(l);
            // Reduction pass re-writes word 0 of the region repeatedly.
            tb.imm(Reg(6), 0);
            let l = tb.begin_loop(Reg(1), Reg(2), iters);
            tb.alui(AluOp::Mul, Reg(4), Reg(1), 8);
            tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
            tb.load(Reg(7), Reg(5), 0);
            tb.alu(AluOp::Add, Reg(6), Reg(6), Reg(7));
            tb.store(Reg(6), Reg(10), 0);
            tb.end_loop(l);
            tb.halt();
        }
        let p = b.build();
        p.validate().unwrap();
        p
    }

    fn reference_mem(p: &Program, cores: u32) -> Vec<u64> {
        let mut m = Machine::new(MachineConfig::with_cores(cores), p);
        m.run(&mut NoHooks, u64::MAX).unwrap();
        m.mem().image().words().to_vec()
    }

    #[test]
    fn checkpointing_only_overhead_and_identical_result() {
        let p = kernel(2, 150);
        let reference = reference_mem(&p, 2);

        let m = Machine::new(MachineConfig::with_cores(2), &p);
        let total = reference_total(&p, 2);
        let cfg = BerConfig {
            scheme: Scheme::GlobalCoordinated,
            triggers: uniform_points(total, 5),
            errors: ErrorSchedule::none(),
            oracle: true,
            secondary: None,
            faults: Vec::new(),
        };
        let mut engine = BerEngine::new(m, NoOmission, cfg);
        let report = engine.run_to_completion().unwrap();
        assert_eq!(report.checkpoints_taken, 5);
        assert_eq!(report.errors_handled, 0);
        assert!(report.checkpoint_stall_cycles > 0);
        assert_eq!(engine.machine().mem().image().words(), reference);

        // Checkpointing must cost time vs No_Ckpt.
        let mut plain = Machine::new(MachineConfig::with_cores(2), &p);
        plain.run(&mut NoHooks, u64::MAX).unwrap();
        assert!(report.cycles > plain.cycles());
    }

    fn reference_total(p: &Program, cores: u32) -> u64 {
        let mut m = Machine::new(MachineConfig::with_cores(cores), p);
        m.run(&mut NoHooks, u64::MAX).unwrap();
        m.total_retired()
    }

    #[test]
    fn recovery_restores_and_reexecutes_to_same_result() {
        let p = kernel(2, 150);
        let reference = reference_mem(&p, 2);
        let total = reference_total(&p, 2);

        let m = Machine::new(MachineConfig::with_cores(2), &p);
        let cfg = BerConfig {
            scheme: Scheme::GlobalCoordinated,
            triggers: uniform_points(total, 5),
            errors: ErrorSchedule::uniform(total, 1, 5, 0.5),
            oracle: true,
            secondary: None,
            faults: Vec::new(),
        };
        let mut engine = BerEngine::new(m, NoOmission, cfg);
        let report = engine.run_to_completion().unwrap();
        assert_eq!(report.errors_handled, 1);
        assert_eq!(report.recoveries.len(), 1);
        let rec = &report.recoveries[0];
        assert!(rec.restored_records > 0);
        assert_eq!(rec.recomputed_values, 0); // NoOmission
        assert!(rec.waste_cycles > 0);
        assert_eq!(engine.machine().mem().image().words(), reference);
        // Extra checkpoints were re-established after rollback.
        assert!(report.checkpoints_taken >= 5);
    }

    #[test]
    fn multiple_errors_all_handled() {
        let p = kernel(2, 120);
        let reference = reference_mem(&p, 2);
        let total = reference_total(&p, 2);
        for n_err in [2u32, 4] {
            let m = Machine::new(MachineConfig::with_cores(2), &p);
            let cfg = BerConfig {
                scheme: Scheme::GlobalCoordinated,
                triggers: uniform_points(total, 8),
                errors: ErrorSchedule::uniform(total, n_err, 8, 0.4),
                oracle: true,
                secondary: None,
                faults: Vec::new(),
            };
            let mut engine = BerEngine::new(m, NoOmission, cfg);
            let report = engine.run_to_completion().unwrap();
            assert!(report.errors_handled >= u64::from(n_err).min(1));
            assert_eq!(engine.machine().mem().image().words(), reference);
        }
    }

    #[test]
    fn error_overhead_exceeds_error_free() {
        let p = kernel(2, 150);
        let total = reference_total(&p, 2);
        let run = |errors: ErrorSchedule| {
            let m = Machine::new(MachineConfig::with_cores(2), &p);
            let cfg = BerConfig {
                scheme: Scheme::GlobalCoordinated,
                triggers: uniform_points(total, 5),
                errors,
                oracle: false,
                secondary: None,
                faults: Vec::new(),
            };
            BerEngine::new(m, NoOmission, cfg)
                .run_to_completion()
                .unwrap()
        };
        let ne = run(ErrorSchedule::none());
        let e = run(ErrorSchedule::uniform(total, 1, 5, 0.5));
        assert!(e.cycles > ne.cycles, "recovery must add time");
    }

    #[test]
    fn local_scheme_runs_and_matches_reference_without_errors() {
        let p = kernel(4, 100);
        let reference = reference_mem(&p, 4);
        let total = reference_total(&p, 4);
        let m = Machine::new(MachineConfig::with_cores(4), &p);
        let cfg = BerConfig {
            scheme: Scheme::LocalCoordinated,
            triggers: uniform_points(total, 5),
            errors: ErrorSchedule::none(),
            oracle: true,
            secondary: None,
            faults: Vec::new(),
        };
        let mut engine = BerEngine::new(m, NoOmission, cfg);
        let report = engine.run_to_completion().unwrap();
        assert_eq!(report.checkpoints_taken, 5);
        assert_eq!(engine.machine().mem().image().words(), reference);
    }

    #[test]
    fn local_scheme_recovers_single_error() {
        let p = kernel(4, 100);
        let reference = reference_mem(&p, 4);
        let total = reference_total(&p, 4);
        let m = Machine::new(MachineConfig::with_cores(4), &p);
        let cfg = BerConfig {
            scheme: Scheme::LocalCoordinated,
            triggers: uniform_points(total, 5),
            errors: ErrorSchedule::uniform(total, 1, 5, 0.3),
            oracle: true,
            secondary: None,
            faults: Vec::new(),
        };
        let mut engine = BerEngine::new(m, NoOmission, cfg);
        let report = engine.run_to_completion().unwrap();
        assert_eq!(report.errors_handled, 1);
        // Threads are independent here, so the victim set stays small and
        // the final state still matches.
        assert!(report.recoveries[0].victim_mask.count_ones() <= 4);
        assert_eq!(engine.machine().mem().image().words(), reference);
    }

    #[test]
    fn interval_records_track_first_updates() {
        let p = kernel(1, 200);
        let total = reference_total(&p, 1);
        let m = Machine::new(MachineConfig::with_cores(1), &p);
        let cfg = BerConfig {
            scheme: Scheme::GlobalCoordinated,
            triggers: uniform_points(total, 4),
            errors: ErrorSchedule::none(),
            oracle: false,
            secondary: None,
            faults: Vec::new(),
        };
        let mut engine = BerEngine::new(m, NoOmission, cfg);
        let report = engine.run_to_completion().unwrap();
        assert_eq!(report.intervals.len(), 4);
        assert!(report.intervals.iter().any(|i| i.records > 0));
        assert!(report.total_checkpoint_bytes() >= report.intervals.len() as u64);
        // Without omission, baseline == actual.
        assert_eq!(
            report.total_checkpoint_bytes(),
            report.total_baseline_bytes()
        );
    }
}

#[cfg(test)]
mod secondary_tests {
    use super::*;
    use crate::policy::NoOmission;
    use crate::schedule::{uniform_points, ErrorSchedule};
    use acr_isa::{AluOp, ProgramBuilder, Reg};
    use acr_sim::MachineConfig;

    fn program() -> acr_isa::Program {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(1 << 18);
        let t = b.thread(0);
        t.imm(Reg(10), 4096);
        let outer = t.begin_loop(Reg(8), Reg(9), 6);
        let l = t.begin_loop(Reg(1), Reg(2), 256);
        t.alui(AluOp::Mul, Reg(3), Reg(1), 11);
        t.alu(AluOp::Xor, Reg(3), Reg(3), Reg(8));
        t.alui(AluOp::Mul, Reg(4), Reg(1), 8);
        t.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
        t.store(Reg(3), Reg(5), 0);
        t.end_loop(l);
        t.end_loop(outer);
        t.halt();
        b.build()
    }

    fn run(secondary: Option<SecondaryStorage>) -> BerReport {
        let p = program();
        let total = {
            let mut m = Machine::new(MachineConfig::with_cores(1), &p);
            m.run(&mut acr_sim::NoHooks, u64::MAX).unwrap();
            m.total_retired()
        };
        let m = Machine::new(MachineConfig::with_cores(1), &p);
        let cfg = BerConfig {
            scheme: Scheme::GlobalCoordinated,
            triggers: uniform_points(total, 10),
            errors: ErrorSchedule::none(),
            oracle: false,
            secondary,
            faults: Vec::new(),
        };
        BerEngine::new(m, NoOmission, cfg)
            .run_to_completion()
            .unwrap()
    }

    #[test]
    fn secondary_streams_every_kth_checkpoint() {
        let rep = run(Some(SecondaryStorage {
            every: 3,
            ..Default::default()
        }));
        assert_eq!(rep.checkpoints_taken, 10);
        assert_eq!(rep.secondary_checkpoints, 3); // checkpoints 3, 6, 9
        assert!(rep.secondary_bytes > 0);
        assert!(rep.secondary_stall_cycles > 0);
    }

    #[test]
    fn secondary_costs_time() {
        let without = run(None);
        let with = run(Some(SecondaryStorage::default()));
        assert_eq!(without.secondary_checkpoints, 0);
        assert!(with.cycles > without.cycles);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::policy::NoOmission;
    use crate::schedule::{uniform_points, ErrorSchedule};
    use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
    use acr_sim::{MachineConfig, NoHooks};

    fn program() -> Program {
        let mut b = ProgramBuilder::new(1);
        b.set_mem_bytes(1 << 16);
        let t = b.thread(0);
        t.imm(Reg(10), 4096);
        let l = t.begin_loop(Reg(1), Reg(2), 400);
        t.alui(AluOp::Mul, Reg(3), Reg(1), 7);
        t.alui(AluOp::And, Reg(4), Reg(1), 63);
        t.alui(AluOp::Mul, Reg(4), Reg(4), 8);
        t.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
        t.store(Reg(3), Reg(5), 0);
        t.end_loop(l);
        t.halt();
        b.build()
    }

    fn reference(p: &Program) -> (u64, Vec<u64>) {
        let mut m = Machine::new(MachineConfig::with_cores(1), p);
        m.run(&mut NoHooks, u64::MAX).unwrap();
        (m.total_retired(), m.mem().image().words().to_vec())
    }

    fn engine_with(
        p: &Program,
        triggers: Vec<u64>,
        errors: ErrorSchedule,
    ) -> BerEngine<'_, NoOmission> {
        let m = Machine::new(MachineConfig::with_cores(1), p);
        BerEngine::new(
            m,
            NoOmission,
            BerConfig {
                scheme: Scheme::GlobalCoordinated,
                triggers,
                errors,
                oracle: true,
                secondary: None,
                faults: Vec::new(),
            },
        )
    }

    #[test]
    fn error_before_first_checkpoint_rolls_to_start() {
        let p = program();
        let (total, want) = reference(&p);
        // Error very early, detected before the first trigger.
        let errors = ErrorSchedule {
            occurrences: vec![total / 50],
            detection_latency: total / 50,
        };
        let mut e = engine_with(&p, uniform_points(total, 4), errors);
        let rep = e.run_to_completion().unwrap();
        assert_eq!(rep.errors_handled, 1);
        assert_eq!(rep.recoveries[0].safe_epoch, 0, "must restore the start");
        assert_eq!(e.machine().mem().image().words(), want);
    }

    #[test]
    fn error_detected_only_at_halt_is_forced() {
        let p = program();
        let (total, want) = reference(&p);
        // Occurs just before the end; detection point lies beyond the end
        // of execution, so the engine must force-handle it at halt.
        let errors = ErrorSchedule {
            occurrences: vec![total - total / 100],
            detection_latency: total / 4,
        };
        let mut e = engine_with(&p, uniform_points(total, 4), errors);
        let rep = e.run_to_completion().unwrap();
        assert_eq!(rep.errors_handled, 1);
        assert_eq!(e.machine().mem().image().words(), want);
    }

    #[test]
    fn second_error_erased_by_first_rollback_is_not_recovered_twice() {
        let p = program();
        let (total, want) = reference(&p);
        // Two errors in quick succession: the rollback for the first also
        // undoes the second's corruption (occur >= safe progress), so only
        // one recovery happens but both count as handled.
        let errors = ErrorSchedule {
            occurrences: vec![total / 2, total / 2 + total / 100],
            detection_latency: total / 10,
        };
        let mut e = engine_with(&p, uniform_points(total, 8), errors);
        let rep = e.run_to_completion().unwrap();
        assert_eq!(rep.errors_handled, 2);
        assert_eq!(rep.recoveries.len(), 1, "one rollback covers both");
        assert_eq!(e.machine().mem().image().words(), want);
    }

    #[test]
    fn corrupted_checkpoint_is_skipped() {
        let p = program();
        let (total, want) = reference(&p);
        // Fig 2: the error occurs just before a checkpoint and is detected
        // after it — the engine must roll back PAST that checkpoint.
        let trigger = total / 2;
        let errors = ErrorSchedule {
            occurrences: vec![trigger - total / 200],
            detection_latency: total / 50,
        };
        let mut e = engine_with(&p, vec![total / 4, trigger, 3 * total / 4], errors);
        let rep = e.run_to_completion().unwrap();
        assert_eq!(rep.errors_handled, 1);
        // Safe epoch is the one opened by the total/4 checkpoint (epoch 1),
        // not the corrupted total/2 one (epoch 2).
        assert_eq!(rep.recoveries[0].safe_epoch, 1);
        assert_eq!(e.machine().mem().image().words(), want);
    }

    #[test]
    fn zero_triggers_still_recovers_to_start() {
        let p = program();
        let (total, want) = reference(&p);
        let errors = ErrorSchedule {
            occurrences: vec![total / 3],
            detection_latency: total / 10,
        };
        let mut e = engine_with(&p, Vec::new(), errors);
        let rep = e.run_to_completion().unwrap();
        assert_eq!(rep.checkpoints_taken, 0);
        assert_eq!(rep.errors_handled, 1);
        assert_eq!(rep.recoveries[0].safe_epoch, 0);
        assert_eq!(e.machine().mem().image().words(), want);
    }
}
