//! The omission-decision ledger: why each checkpointed word was logged
//! or omitted.
//!
//! Every first update in an interval forces exactly one decision in the
//! engine's store hook — omit the old value (it is recomputable through
//! the `AddrMap`) or write a log record. The ledger attributes each
//! decision to a reason code, aggregated three ways:
//!
//! * per reason ([`DecisionLedger::total`]),
//! * per [`RANGE_BYTES`]-sized address range ([`DecisionLedger::ranges`]),
//! * per Slice for the omissions ([`DecisionLedger::per_slice`]), joined
//!   during recovery with the per-Slice replay cost
//!   ([`DecisionLedger::replays`]).
//!
//! **Conservation invariant**: the per-reason counts sum exactly to the
//! number of first-update decisions taken — equal to the log
//! controller's lifetime logged + omitted totals. (In degraded
//! full-logging mode the engine skips the omission lookup and records
//! `logged:degraded` directly, so the sum can exceed the omission-lookup
//! count; outside degraded windows the two coincide.) A word is never
//! double-counted and never dropped. Recording is purely observational
//! (no simulated cycles), and every aggregate is keyed through
//! `BTreeMap`s so exports are deterministic.

use std::collections::BTreeMap;

use acr_isa::SliceId;
use acr_mem::WordAddr;

/// Bytes per ledger address range (one aggregation bucket).
pub const RANGE_BYTES: u64 = 4096;

/// Why a first update was omitted from — or kept in — the checkpoint log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OmitReason {
    /// Omitted: a live `AddrMap` association recomputes the old value.
    OmittedSlice,
    /// Logged: the producing store was never covered by a Slice (no
    /// `ASSOC-ADDR` reached the `AddrMap` for this value).
    LoggedNoSlice,
    /// Logged: the compiler extracted a Slice for the producing store but
    /// the length threshold filter rejected it.
    LoggedSliceTooLong,
    /// Logged: an association existed but was evicted when the owning
    /// core's `AddrMap` ran out of capacity.
    LoggedAddrmapEvicted,
    /// Logged: the association was invalidated by a later uncovered store
    /// (the old value is no longer any Slice's output).
    LoggedNotRecomputable,
    /// Logged: the engine was in degraded full-logging mode after a
    /// recovery escalation — omission is suspended until the next clean
    /// checkpoint commits, so the word was logged regardless of whether a
    /// Slice could have recomputed it.
    LoggedDegraded,
}

/// Number of distinct [`OmitReason`] codes (array width of the ledger's
/// per-reason aggregates).
pub const NUM_REASONS: usize = 6;

impl OmitReason {
    /// All reasons, in rendering order.
    pub const ALL: [OmitReason; NUM_REASONS] = [
        OmitReason::OmittedSlice,
        OmitReason::LoggedNoSlice,
        OmitReason::LoggedSliceTooLong,
        OmitReason::LoggedAddrmapEvicted,
        OmitReason::LoggedNotRecomputable,
        OmitReason::LoggedDegraded,
    ];

    /// The stable reason code used in exports.
    pub fn code(self) -> &'static str {
        match self {
            OmitReason::OmittedSlice => "omitted:slice",
            OmitReason::LoggedNoSlice => "logged:no-slice",
            OmitReason::LoggedSliceTooLong => "logged:slice-too-long",
            OmitReason::LoggedAddrmapEvicted => "logged:addrmap-evicted",
            OmitReason::LoggedNotRecomputable => "logged:not-recomputable",
            OmitReason::LoggedDegraded => "logged:degraded",
        }
    }

    /// True for the (single) omitted reason.
    pub fn is_omitted(self) -> bool {
        self == OmitReason::OmittedSlice
    }

    fn idx(self) -> usize {
        match self {
            OmitReason::OmittedSlice => 0,
            OmitReason::LoggedNoSlice => 1,
            OmitReason::LoggedSliceTooLong => 2,
            OmitReason::LoggedAddrmapEvicted => 3,
            OmitReason::LoggedNotRecomputable => 4,
            OmitReason::LoggedDegraded => 5,
        }
    }
}

/// Accumulated recovery replay cost of one Slice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCost {
    /// Times the Slice was re-executed during recoveries.
    pub replays: u64,
    /// Cycles those re-executions occupied on their cores.
    pub cycles: u64,
    /// ALU operations executed (energy accounting).
    pub alu_ops: u64,
    /// Operand-buffer reads (energy accounting).
    pub opbuf_reads: u64,
}

/// Per-reason / per-range / per-Slice aggregation of omission decisions —
/// see the module-level notes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecisionLedger {
    totals: [u64; NUM_REASONS],
    ranges: BTreeMap<u64, [u64; NUM_REASONS]>,
    per_slice: BTreeMap<u32, u64>,
    replays: BTreeMap<u32, ReplayCost>,
}

impl DecisionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one first-update decision on `addr`. `slice` is the
    /// association behind an [`OmitReason::OmittedSlice`] decision.
    pub fn record(&mut self, addr: WordAddr, reason: OmitReason, slice: Option<SliceId>) {
        let i = reason.idx();
        self.totals[i] += 1;
        self.ranges.entry(addr.byte() / RANGE_BYTES).or_default()[i] += 1;
        if let Some(s) = slice {
            *self.per_slice.entry(s.0).or_default() += 1;
        }
    }

    /// Records one Slice re-execution during recovery.
    pub fn record_replay(&mut self, slice: SliceId, cycles: u64, alu_ops: u64, opbuf_reads: u64) {
        let c = self.replays.entry(slice.0).or_default();
        c.replays += 1;
        c.cycles += cycles;
        c.alu_ops += alu_ops;
        c.opbuf_reads += opbuf_reads;
    }

    /// Decisions recorded for `reason`.
    pub fn total(&self, reason: OmitReason) -> u64 {
        self.totals[reason.idx()]
    }

    /// All first-update decisions recorded (sum over every reason).
    pub fn total_decisions(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Decisions that wrote a log record.
    pub fn total_logged(&self) -> u64 {
        self.total_decisions() - self.total(OmitReason::OmittedSlice)
    }

    /// Decisions that omitted the old value.
    pub fn total_omitted(&self) -> u64 {
        self.total(OmitReason::OmittedSlice)
    }

    /// Per-range decision counts in ascending address order: the range's
    /// starting byte address and its counts indexed like
    /// [`OmitReason::ALL`].
    pub fn ranges(&self) -> impl Iterator<Item = (u64, [u64; NUM_REASONS])> + '_ {
        self.ranges.iter().map(|(k, v)| (k * RANGE_BYTES, *v))
    }

    /// Omission counts per Slice, ascending by Slice id.
    pub fn per_slice(&self) -> impl Iterator<Item = (SliceId, u64)> + '_ {
        self.per_slice.iter().map(|(s, n)| (SliceId(*s), *n))
    }

    /// Recovery replay costs per Slice, ascending by Slice id.
    pub fn replays(&self) -> impl Iterator<Item = (SliceId, ReplayCost)> + '_ {
        self.replays.iter().map(|(s, c)| (SliceId(*s), *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wa(b: u64) -> WordAddr {
        WordAddr::new(b)
    }

    #[test]
    fn totals_and_ranges_conserve_decisions() {
        let mut l = DecisionLedger::new();
        l.record(wa(0), OmitReason::OmittedSlice, Some(SliceId(3)));
        l.record(wa(8), OmitReason::LoggedNoSlice, None);
        l.record(wa(4096), OmitReason::LoggedNoSlice, None);
        l.record(wa(4104), OmitReason::LoggedAddrmapEvicted, None);
        assert_eq!(l.total_decisions(), 4);
        assert_eq!(l.total_omitted(), 1);
        assert_eq!(l.total_logged(), 3);
        let range_sum: u64 = l.ranges().map(|(_, c)| c.iter().sum::<u64>()).sum();
        assert_eq!(range_sum, l.total_decisions());
        let ranges: Vec<u64> = l.ranges().map(|(base, _)| base).collect();
        assert_eq!(ranges, vec![0, 4096]);
        assert_eq!(l.per_slice().collect::<Vec<_>>(), vec![(SliceId(3), 1)]);
    }

    #[test]
    fn replay_costs_accumulate_per_slice() {
        let mut l = DecisionLedger::new();
        l.record_replay(SliceId(2), 5, 3, 2);
        l.record_replay(SliceId(2), 5, 3, 2);
        l.record_replay(SliceId(7), 1, 1, 0);
        let all: Vec<_> = l.replays().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, SliceId(2));
        assert_eq!(all[0].1.replays, 2);
        assert_eq!(all[0].1.cycles, 10);
        assert_eq!(all[1].1.alu_ops, 1);
    }
}
