//! Automatic failing-case shrinking: deterministic delta debugging over a
//! case's fault plan.
//!
//! Given one failing campaign case — a fault plan whose engine run ends
//! in a postmortem — the shrinker searches for a *minimal reproducer*
//! that fails the same way, in two deterministic stages:
//!
//! 1. **ddmin over the fault list**: partition the plan into `n` chunks
//!    and try every complement; every candidate of a round is evaluated
//!    (in parallel when jobs allow) and the *lowest-index* failing one is
//!    adopted, so the result is byte-identical for every `--jobs` value.
//!    On a round with no progress the granularity doubles, until chunks
//!    are single faults.
//! 2. **Field narrowing** on the surviving faults, in fault order: the
//!    injection point halves toward 1, bit positions halve toward 0,
//!    burst spans halve toward 2, and memory addresses halve toward the
//!    bottom of the image (word-aligned) — each step kept only while the
//!    case still fails with the same signature.
//!
//! The *failure signature* is the postmortem trigger (`"divergence"`,
//! `"abort"`, `"hang"`, …): a shrunk plan must reproduce the exact
//! trigger of the original failure, not merely *some* failure, so the
//! minimal case is a reproducer of the bug class under triage. The final
//! plan serializes to a small `acr.repro.v1` JSON document via
//! [`fault_to_json`]; [`fault_from_json`] round-trips it for replay.

use std::fmt::Write as _;

use acr_isa::Program;
use acr_mem::{CoreId, WordAddr};
use acr_sim::{Fault, FaultKind, FaultPlan, FaultPlanConfig, MachineConfig};
use acr_trace::{push_json_string, Json, MetricsRegistry};

use crate::errors::CkptError;
use crate::inject::{
    fault_free_baseline, run_fault_case, CampaignConfig, CampaignError, CaseCtx, FaultCaseRecord,
};
use crate::parallel::ParallelRunner;
use crate::policy::OmissionPolicy;
use crate::postmortem::PostmortemBundle;

/// Repro document schema identifier.
pub const REPRO_SCHEMA: &str = "acr.repro.v1";

/// Word alignment of the memory image (mirrors `acr-mem`'s layout; the
/// narrowing stage must keep halved addresses aligned).
const WORD_BYTES: u64 = 8;

/// Shrinker knobs.
#[derive(Debug, Clone)]
pub struct ShrinkConfig {
    /// Worker threads evaluating ddmin candidates (0 = auto). Purely an
    /// execution knob: the shrunk plan is identical for every value.
    pub jobs: usize,
    /// Hard ceiling on engine-run evaluations, bounding shrink time on
    /// adversarial plans. The shrinker stops (keeping its best plan so
    /// far) when the budget is exhausted.
    pub max_evaluations: u64,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig {
            jobs: 1,
            max_evaluations: 2048,
        }
    }
}

/// How one evaluated plan failed.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Postmortem trigger — the failure signature shrinking preserves.
    pub trigger: &'static str,
    /// The case record of the failing run.
    pub record: FaultCaseRecord,
    /// The failing run's forensic bundle.
    pub bundle: PostmortemBundle,
}

/// The shrinker's result: a minimal plan plus the evidence it still
/// fails identically.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// Faults in the original plan.
    pub original_faults: usize,
    /// The minimal reproducer, in evaluation order.
    pub minimal: Vec<Fault>,
    /// The minimal plan's failure (same trigger as the original, by
    /// construction).
    pub failure: CaseFailure,
    /// ddmin rounds executed.
    pub rounds: u64,
    /// Engine runs spent (original + candidates + narrowing + final).
    pub evaluations: u64,
    /// Narrowing steps that were kept.
    pub narrowed_fields: u64,
    /// `shrink.*` counters mirroring the fields above.
    pub metrics: MetricsRegistry,
}

impl ShrinkOutcome {
    /// Faults removed by ddmin.
    pub fn dropped_faults(&self) -> usize {
        self.original_faults - self.minimal.len()
    }
}

/// Plans a dense multi-fault case: the seeded [`FaultPlan`] a campaign
/// would spread over `cfg.count` independent cases, taken as *one* case's
/// fault list. This is how the CLI builds a forced-divergence case worth
/// shrinking.
///
/// # Errors
///
/// Fails like a campaign would: broken fault-free runs, or no injectable
/// kind (memory corruption with an empty written working set).
pub fn dense_fault_plan(
    program: &Program,
    machine: MachineConfig,
    cfg: &CampaignConfig,
) -> Result<Vec<Fault>, CampaignError> {
    let base = fault_free_baseline(program, machine, cfg.interp_fuel, 0)?;
    let injectable = cfg.kinds.reg
        || cfg.kinds.pc
        || cfg.kinds.crash
        || ((cfg.kinds.mem || cfg.kinds.burst || cfg.kinds.stuck) && !base.mem_targets.is_empty());
    if !injectable {
        return Err(CkptError::NoInjectableKind {
            requested: "shrink plan".to_string(),
        }
        .into());
    }
    let plan = FaultPlan::generate(&FaultPlanConfig {
        seed: cfg.seed,
        count: cfg.count,
        kinds: cfg.kinds,
        total_progress: base.total,
        cores: machine.num_cores,
        mem_targets: base.mem_targets,
        storm: cfg.storm,
    });
    Ok(plan.faults)
}

/// Replays one fault plan exactly once and reports whether — and how —
/// it fails. `Ok(None)` means the plan no longer fails: the repro is
/// stale (e.g. the engine changed underneath it). This is the engine
/// behind `acr_cli shrink --replay`.
///
/// # Errors
///
/// [`CampaignError`] on an empty plan, an out-of-range detection
/// latency, or a broken fault-free baseline.
pub fn replay_case<P, F>(
    program: &Program,
    machine: MachineConfig,
    cfg: &CampaignConfig,
    case_index: usize,
    faults: &[Fault],
    policy: F,
) -> Result<Option<CaseFailure>, CampaignError>
where
    P: OmissionPolicy,
    F: Fn() -> P + Sync,
{
    if faults.is_empty() {
        return Err(CkptError::EmptyCampaign.into());
    }
    if !(0.0..=1.0).contains(&cfg.detection_latency_frac) {
        return Err(CkptError::InvalidLatency {
            frac: cfg.detection_latency_frac,
        }
        .into());
    }
    let base = fault_free_baseline(program, machine, cfg.interp_fuel, 0)?;
    let period = base.total / (u64::from(cfg.num_checkpoints) + 1);
    let detection_latency = (period as f64 * cfg.detection_latency_frac) as u64;
    let ctx = CaseCtx {
        program,
        machine,
        cfg,
        total: base.total,
        detection_latency,
        reference_mem: &base.reference_mem,
        reference_regs: base.reference_regs.as_deref(),
        policy: &policy,
    };
    let (record, bundle) = run_fault_case(&ctx, case_index, faults);
    Ok(bundle.map(|bundle| {
        let trigger = bundle.trigger;
        CaseFailure {
            trigger,
            record,
            bundle,
        }
    }))
}

/// One halving step of a narrowing dimension, or `None` once the
/// dimension bottoms out. Dimensions are tried in this order per fault:
/// injection point, bit, span, address.
fn narrowing_steps(f: Fault) -> Vec<Fault> {
    let mut steps = Vec::new();
    if f.at_progress > 1 {
        steps.push(Fault {
            at_progress: (f.at_progress / 2).max(1),
            ..f
        });
    }
    let halved_bit = |bit: u8| bit / 2;
    let halved_addr = |addr: WordAddr| {
        let b = addr.byte() / 2;
        WordAddr::new(b - b % WORD_BYTES)
    };
    match f.kind {
        FaultKind::RegBitFlip { reg, bit } => {
            if bit > 0 {
                steps.push(Fault {
                    kind: FaultKind::RegBitFlip {
                        reg,
                        bit: halved_bit(bit),
                    },
                    ..f
                });
            }
        }
        FaultKind::PcBitFlip { bit } => {
            if bit > 0 {
                steps.push(Fault {
                    kind: FaultKind::PcBitFlip {
                        bit: halved_bit(bit),
                    },
                    ..f
                });
            }
        }
        FaultKind::MemBitFlip { addr, bit } => {
            if bit > 0 {
                steps.push(Fault {
                    kind: FaultKind::MemBitFlip {
                        addr,
                        bit: halved_bit(bit),
                    },
                    ..f
                });
            }
            if addr.byte() > 0 {
                steps.push(Fault {
                    kind: FaultKind::MemBitFlip {
                        addr: halved_addr(addr),
                        bit,
                    },
                    ..f
                });
            }
        }
        FaultKind::MemBurst { addr, bit, span } => {
            if bit > 0 {
                steps.push(Fault {
                    kind: FaultKind::MemBurst {
                        addr,
                        bit: halved_bit(bit),
                        span,
                    },
                    ..f
                });
            }
            if span > 2 {
                steps.push(Fault {
                    kind: FaultKind::MemBurst {
                        addr,
                        bit,
                        span: (span / 2).max(2),
                    },
                    ..f
                });
            }
            if addr.byte() > 0 {
                steps.push(Fault {
                    kind: FaultKind::MemBurst {
                        addr: halved_addr(addr),
                        bit,
                        span,
                    },
                    ..f
                });
            }
        }
        FaultKind::StuckAt {
            addr,
            bit,
            stuck_one,
        } => {
            if bit > 0 {
                steps.push(Fault {
                    kind: FaultKind::StuckAt {
                        addr,
                        bit: halved_bit(bit),
                        stuck_one,
                    },
                    ..f
                });
            }
            if addr.byte() > 0 {
                steps.push(Fault {
                    kind: FaultKind::StuckAt {
                        addr: halved_addr(addr),
                        bit,
                        stuck_one,
                    },
                    ..f
                });
            }
        }
        FaultKind::Crash => {}
    }
    steps
}

/// Shrinks one failing case to a minimal reproducer with the same
/// postmortem trigger. `faults` is the case's full fault plan (e.g. from
/// [`dense_fault_plan`]); `case_index` seeds per-case machinery (nested
/// recovery faults) exactly as the campaign did, so the shrunk plan
/// replays in the identical engine configuration.
///
/// # Errors
///
/// * [`CampaignError`] if the fault-free baseline fails;
/// * [`CkptError::Unsupported`] (wrapped) if the original plan does
///   *not* fail — there is nothing to shrink.
pub fn shrink_case<P, F>(
    program: &Program,
    machine: MachineConfig,
    cfg: &CampaignConfig,
    case_index: usize,
    faults: &[Fault],
    shrink_cfg: &ShrinkConfig,
    policy: F,
) -> Result<ShrinkOutcome, CampaignError>
where
    P: OmissionPolicy,
    F: Fn() -> P + Sync,
{
    if faults.is_empty() {
        return Err(CkptError::EmptyCampaign.into());
    }
    if !(0.0..=1.0).contains(&cfg.detection_latency_frac) {
        return Err(CkptError::InvalidLatency {
            frac: cfg.detection_latency_frac,
        }
        .into());
    }
    let base = fault_free_baseline(program, machine, cfg.interp_fuel, 0)?;
    let period = base.total / (u64::from(cfg.num_checkpoints) + 1);
    let detection_latency = (period as f64 * cfg.detection_latency_frac) as u64;
    let ctx = CaseCtx {
        program,
        machine,
        cfg,
        total: base.total,
        detection_latency,
        reference_mem: &base.reference_mem,
        reference_regs: base.reference_regs.as_deref(),
        policy: &policy,
    };

    // The failure signature the whole search must preserve.
    let (record, bundle) = run_fault_case(&ctx, case_index, faults);
    let mut evaluations = 1u64;
    let Some(bundle) = bundle else {
        return Err(CkptError::Unsupported {
            what: format!(
                "shrink: case {case_index} does not fail (outcome {}) — nothing to shrink",
                record.outcome.label()
            ),
        }
        .into());
    };
    let trigger = bundle.trigger;
    let fails = |plan: &[Fault]| -> bool {
        let (_, b) = run_fault_case(&ctx, case_index, plan);
        b.is_some_and(|b| b.trigger == trigger)
    };

    // Stage 1: ddmin over the fault list. Every candidate of a round is
    // evaluated and the lowest-index failing one adopted — more engine
    // runs than first-hit-wins, but jobs-invariant by construction.
    let runner = ParallelRunner::new(shrink_cfg.jobs);
    let mut plan: Vec<Fault> = faults.to_vec();
    let mut chunks = 2usize;
    let mut rounds = 0u64;
    while plan.len() >= 2 && evaluations < shrink_cfg.max_evaluations {
        rounds += 1;
        let n = chunks.min(plan.len());
        let candidates: Vec<Vec<Fault>> = (0..n)
            .map(|c| {
                let start = c * plan.len() / n;
                let end = (c + 1) * plan.len() / n;
                let mut cand = Vec::with_capacity(plan.len() - (end - start));
                cand.extend_from_slice(&plan[..start]);
                cand.extend_from_slice(&plan[end..]);
                cand
            })
            .filter(|cand| !cand.is_empty())
            .collect();
        evaluations += candidates.len() as u64;
        let verdicts = runner.run_ordered(candidates.len(), |i| fails(&candidates[i]));
        if let Some(winner) = verdicts.iter().position(|&v| v) {
            plan = candidates[winner].clone();
            chunks = 2.max(n - 1);
        } else if n < plan.len() {
            chunks = (n * 2).min(plan.len());
        } else {
            break;
        }
    }

    // Stage 2: greedy per-fault field narrowing, sequential and in fault
    // order (deterministic for every jobs value by construction).
    let mut narrowed_fields = 0u64;
    let mut idx = 0;
    'narrow: while idx < plan.len() {
        loop {
            let steps = narrowing_steps(plan[idx]);
            let mut advanced = false;
            for step in steps {
                if evaluations >= shrink_cfg.max_evaluations {
                    break 'narrow;
                }
                let mut cand = plan.clone();
                cand[idx] = step;
                evaluations += 1;
                if fails(&cand) {
                    plan = cand;
                    narrowed_fields += 1;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        idx += 1;
    }

    // Final definitive run of the minimal plan: its record and bundle are
    // what the repro ships.
    let (record, bundle) = run_fault_case(&ctx, case_index, &plan);
    evaluations += 1;
    let bundle = bundle.expect("minimal plan was verified to fail");
    debug_assert_eq!(bundle.trigger, trigger);

    let mut metrics = MetricsRegistry::new();
    metrics.set("shrink.original_faults", faults.len() as u64);
    metrics.set("shrink.minimal_faults", plan.len() as u64);
    metrics.set("shrink.dropped_faults", (faults.len() - plan.len()) as u64);
    metrics.set("shrink.rounds", rounds);
    metrics.set("shrink.evaluations", evaluations);
    metrics.set("shrink.narrowed_fields", narrowed_fields);

    Ok(ShrinkOutcome {
        original_faults: faults.len(),
        minimal: plan,
        failure: CaseFailure {
            trigger,
            record,
            bundle,
        },
        rounds,
        evaluations,
        narrowed_fields,
        metrics,
    })
}

/// Serializes one fault as a compact JSON object (kind-specific fields
/// only; addresses as hex strings). Inverse of [`fault_from_json`].
pub fn fault_to_json(f: &Fault) -> String {
    let mut o = format!(
        "{{\"at\": {}, \"core\": {}, \"kind\": ",
        f.at_progress, f.core.0
    );
    push_json_string(&mut o, f.kind.label());
    match f.kind {
        FaultKind::RegBitFlip { reg, bit } => {
            let _ = write!(o, ", \"reg\": {reg}, \"bit\": {bit}");
        }
        FaultKind::PcBitFlip { bit } => {
            let _ = write!(o, ", \"bit\": {bit}");
        }
        FaultKind::MemBitFlip { addr, bit } => {
            let _ = write!(o, ", \"addr\": \"{:#x}\", \"bit\": {bit}", addr.byte());
        }
        FaultKind::MemBurst { addr, bit, span } => {
            let _ = write!(
                o,
                ", \"addr\": \"{:#x}\", \"bit\": {bit}, \"span\": {span}",
                addr.byte()
            );
        }
        FaultKind::StuckAt {
            addr,
            bit,
            stuck_one,
        } => {
            let _ = write!(
                o,
                ", \"addr\": \"{:#x}\", \"bit\": {bit}, \"stuck_one\": {stuck_one}",
                addr.byte()
            );
        }
        FaultKind::Crash => {}
    }
    o.push('}');
    o
}

/// Parses a fault serialized by [`fault_to_json`].
///
/// # Errors
///
/// Returns a message naming the missing or malformed field.
pub fn fault_from_json(j: &Json) -> Result<Fault, String> {
    let num = |key: &str| -> Result<u64, String> {
        j.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("fault field `{key}` missing"))
    };
    let bit = || num("bit").map(|b| b as u8);
    let addr = || -> Result<WordAddr, String> {
        let s = j
            .get("addr")
            .and_then(Json::as_str)
            .ok_or("fault field `addr` missing")?;
        let b = u64::from_str_radix(s.trim_start_matches("0x"), 16)
            .map_err(|e| format!("fault field `addr`: {e}"))?;
        if b % WORD_BYTES != 0 {
            return Err(format!("fault field `addr`: {b:#x} is not word-aligned"));
        }
        Ok(WordAddr::new(b))
    };
    let kind = match j.get("kind").and_then(Json::as_str).unwrap_or("") {
        "reg" => FaultKind::RegBitFlip {
            reg: num("reg")? as u8,
            bit: bit()?,
        },
        "pc" => FaultKind::PcBitFlip { bit: bit()? },
        "mem" => FaultKind::MemBitFlip {
            addr: addr()?,
            bit: bit()?,
        },
        "burst" => FaultKind::MemBurst {
            addr: addr()?,
            bit: bit()?,
            span: num("span")? as u8,
        },
        "stuck" => FaultKind::StuckAt {
            addr: addr()?,
            bit: bit()?,
            stuck_one: matches!(j.get("stuck_one"), Some(Json::Bool(true))),
        },
        "crash" => FaultKind::Crash,
        other => return Err(format!("unknown fault kind `{other}`")),
    };
    Ok(Fault {
        at_progress: num("at")?,
        core: CoreId(num("core")? as u32),
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NoOmission;
    use acr_isa::{AluOp, ProgramBuilder, Reg};
    use acr_sim::FaultKindSet;
    use acr_trace::parse_json;

    fn kernel() -> Program {
        let mut b = ProgramBuilder::new(2);
        b.set_mem_bytes(1 << 18);
        for t in 0..2u32 {
            let base = u64::from(t) * 32768;
            let tb = b.thread(t);
            tb.imm(Reg(10), base);
            let l = tb.begin_loop(Reg(1), Reg(2), 60);
            tb.alui(AluOp::Mul, Reg(3), Reg(1), 13);
            tb.alui(AluOp::Mul, Reg(4), Reg(1), 8);
            tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
            tb.store(Reg(3), Reg(5), 0);
            tb.end_loop(l);
            tb.halt();
        }
        b.build()
    }

    fn mem_only() -> FaultKindSet {
        FaultKindSet {
            reg: false,
            pc: false,
            mem: true,
            burst: false,
            stuck: false,
            crash: false,
        }
    }

    /// A deterministic forced-divergence plan: the first seed whose dense
    /// mem-fault plan fails at all.
    fn failing_setup() -> (Program, CampaignConfig, Vec<Fault>) {
        let p = kernel();
        for seed in 42..62 {
            let cfg = CampaignConfig {
                seed,
                count: 10,
                kinds: mem_only(),
                num_checkpoints: 4,
                jobs: 1,
                ..CampaignConfig::default()
            };
            let faults =
                dense_fault_plan(&p, MachineConfig::with_cores(2), &cfg).expect("plan generates");
            assert!(faults.len() >= 8, "want a dense plan, got {}", faults.len());
            let outcome = shrink_case(
                &p,
                MachineConfig::with_cores(2),
                &cfg,
                0,
                &faults,
                &ShrinkConfig::default(),
                || NoOmission,
            );
            if outcome.is_ok() {
                return (p, cfg, faults);
            }
        }
        panic!("no failing seed found in 42..62");
    }

    #[test]
    fn shrink_finds_a_smaller_plan_with_the_same_trigger() {
        let (p, cfg, faults) = failing_setup();
        let out = shrink_case(
            &p,
            MachineConfig::with_cores(2),
            &cfg,
            0,
            &faults,
            &ShrinkConfig::default(),
            || NoOmission,
        )
        .expect("case fails, so it shrinks");
        assert!(out.minimal.len() <= faults.len());
        assert!(
            out.minimal.len() * 2 <= faults.len(),
            "expected >=50% shrink, got {} of {}",
            out.minimal.len(),
            faults.len()
        );
        assert_eq!(out.original_faults, faults.len());
        assert_eq!(out.failure.bundle.trigger, out.failure.trigger);
        assert!(out.evaluations >= 2);
        assert_eq!(
            out.metrics.get("shrink.minimal_faults"),
            Some(out.minimal.len() as u64)
        );

        // The minimal plan must still fail with the identical signature
        // when replayed from scratch (what `acr_cli shrink --replay` does).
        let replay = shrink_case(
            &p,
            MachineConfig::with_cores(2),
            &cfg,
            0,
            &out.minimal,
            &ShrinkConfig {
                max_evaluations: 1,
                ..ShrinkConfig::default()
            },
            || NoOmission,
        )
        .expect("minimal plan still fails");
        assert_eq!(replay.failure.trigger, out.failure.trigger);
    }

    #[test]
    fn shrinking_is_jobs_invariant() {
        let (p, cfg, faults) = failing_setup();
        let runs: Vec<ShrinkOutcome> = [1usize, 4]
            .iter()
            .map(|&jobs| {
                shrink_case(
                    &p,
                    MachineConfig::with_cores(2),
                    &cfg,
                    0,
                    &faults,
                    &ShrinkConfig {
                        jobs,
                        ..ShrinkConfig::default()
                    },
                    || NoOmission,
                )
                .expect("shrinks")
            })
            .collect();
        assert_eq!(runs[0].minimal, runs[1].minimal);
        assert_eq!(runs[0].failure.trigger, runs[1].failure.trigger);
        // Byte-for-byte identical forensics, not merely equal structs.
        assert_eq!(
            runs[0].failure.bundle.to_json(),
            runs[1].failure.bundle.to_json()
        );
        assert_eq!(runs[0].evaluations, runs[1].evaluations);
    }

    #[test]
    fn passing_cases_are_rejected() {
        let p = kernel();
        let cfg = CampaignConfig {
            count: 1,
            kinds: FaultKindSet::recoverable(),
            jobs: 1,
            ..CampaignConfig::default()
        };
        let faults = dense_fault_plan(&p, MachineConfig::with_cores(2), &cfg).expect("plan");
        let err = shrink_case(
            &p,
            MachineConfig::with_cores(2),
            &cfg,
            0,
            &faults,
            &ShrinkConfig::default(),
            || NoOmission,
        )
        .unwrap_err();
        assert!(err.to_string().contains("does not fail"), "{err}");
    }

    #[test]
    fn fault_json_round_trips_every_kind() {
        let faults = [
            Fault {
                at_progress: 7,
                core: CoreId(1),
                kind: FaultKind::RegBitFlip { reg: 3, bit: 17 },
            },
            Fault {
                at_progress: 9,
                core: CoreId(0),
                kind: FaultKind::PcBitFlip { bit: 2 },
            },
            Fault {
                at_progress: 11,
                core: CoreId(1),
                kind: FaultKind::MemBitFlip {
                    addr: WordAddr::new(0x1f8),
                    bit: 63,
                },
            },
            Fault {
                at_progress: 13,
                core: CoreId(0),
                kind: FaultKind::MemBurst {
                    addr: WordAddr::new(0x40),
                    bit: 60,
                    span: 7,
                },
            },
            Fault {
                at_progress: 15,
                core: CoreId(1),
                kind: FaultKind::StuckAt {
                    addr: WordAddr::new(0x8),
                    bit: 0,
                    stuck_one: true,
                },
            },
            Fault {
                at_progress: 17,
                core: CoreId(0),
                kind: FaultKind::Crash,
            },
        ];
        for f in faults {
            let text = fault_to_json(&f);
            let parsed = fault_from_json(&parse_json(&text).expect("valid JSON"))
                .unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(parsed, f, "{text}");
        }
        // Malformed inputs get messages, not panics.
        let j = parse_json(
            "{\"at\": 1, \"core\": 0, \"kind\": \"mem\", \"addr\": \"0x3\", \"bit\": 0}",
        )
        .unwrap();
        assert!(fault_from_json(&j).unwrap_err().contains("aligned"));
        let j = parse_json("{\"at\": 1, \"core\": 0, \"kind\": \"nope\"}").unwrap();
        assert!(fault_from_json(&j)
            .unwrap_err()
            .contains("unknown fault kind"));
    }

    #[test]
    fn narrowing_steps_shrink_toward_minimal_fields() {
        let f = Fault {
            at_progress: 100,
            core: CoreId(0),
            kind: FaultKind::MemBurst {
                addr: WordAddr::new(0x100),
                bit: 32,
                span: 8,
            },
        };
        let steps = narrowing_steps(f);
        assert_eq!(steps.len(), 4, "progress, bit, span, addr");
        assert_eq!(steps[0].at_progress, 50);
        // Every step keeps addresses word-aligned.
        for s in &steps {
            if let FaultKind::MemBurst { addr, .. } = s.kind {
                assert_eq!(addr.byte() % WORD_BYTES, 0);
            }
        }
        // Bottomed-out faults produce no steps.
        let done = Fault {
            at_progress: 1,
            core: CoreId(0),
            kind: FaultKind::Crash,
        };
        assert!(narrowing_steps(done).is_empty());
    }
}
