//! Dependency-free parallel execution with deterministic, index-ordered
//! merge.
//!
//! Fault-injection campaigns and multi-workload sweeps are embarrassingly
//! parallel: every case is an independent run over its own fresh
//! [`Machine`](acr_sim::Machine) and policy, and no case reads another
//! case's output. What is *not* automatic is determinism of the merged
//! result — a naive channel-based collect would order results by
//! completion time, which varies with scheduling. [`ParallelRunner`]
//! therefore separates the two concerns:
//!
//! * **work distribution** is dynamic (a shared atomic work index hands
//!   out the next case to whichever worker is free, so long and short
//!   cases balance), but
//! * **result placement** is static: every result is stored at its case
//!   index, so the merged `Vec` is identical to the sequential loop's
//!   output for every worker count, byte for byte.
//!
//! Workers never share mutable simulator state. The simulator's
//! [`SharedSink`](acr_trace::SharedSink) is deliberately `Rc`-based (and
//! therefore `!Send`), which the compiler turns into a guarantee: a
//! `Machine` *cannot* leak across threads, so each worker must construct
//! its own inside the worker closure. Only plain data (`Program`,
//! configs, reference images) crosses the thread boundary, and only by
//! shared reference.
//!
//! Built on `std::thread::scope` only — no new crates, matching the
//! workspace's no-external-deps ethos.

use std::sync::atomic::{AtomicUsize, Ordering};

use acr_trace::{Stopwatch, WorkerLoad};

/// Environment variable overriding the default worker count (`0` or a
/// non-numeric value fall back to the detected parallelism).
pub const JOBS_ENV: &str = "ACR_JOBS";

/// The default worker count: `ACR_JOBS` if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`], otherwise 1.
pub fn available_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Shards `n` independent work items across a fixed pool of scoped
/// worker threads and merges the results in item-index order.
///
/// The runner guarantees *jobs-invariance*: for a pure per-item function
/// the returned `Vec` is identical for every worker count, including 1
/// (which runs a plain sequential loop on the calling thread, spawning
/// nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelRunner {
    jobs: usize,
}

impl ParallelRunner {
    /// A runner with `jobs` workers; `0` means auto ([`available_jobs`]).
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 { available_jobs() } else { jobs };
        ParallelRunner { jobs: jobs.max(1) }
    }

    /// The resolved worker count (≥ 1).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f(i)` for every `i in 0..n` and returns the results in index
    /// order. Work is handed out dynamically via a shared atomic index;
    /// placement is by index, so the output order never depends on
    /// scheduling.
    pub fn run_ordered<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_sharded(n, || (), |i, ()| f(i)).0
    }

    /// Like [`ParallelRunner::run_ordered`], but each worker additionally
    /// carries a private shard accumulator created by `init` (e.g. a
    /// `MetricsRegistry`). Returns the index-ordered results plus the
    /// shard states in worker order; callers fold the shards with an
    /// associative, commutative merge so the fold is also
    /// jobs-invariant.
    pub fn run_sharded<R, S, I, F>(&self, n: usize, init: I, f: F) -> (Vec<R>, Vec<S>)
    where
        R: Send,
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> R + Sync,
    {
        let (results, shards, _loads) = self.run_sharded_loads(n, init, f);
        (results, shards)
    }

    /// Like [`ParallelRunner::run_sharded`], but additionally reports each
    /// worker's host-side load ([`WorkerLoad`]): wall time spent inside
    /// work items and the number of items the dynamic handout gave it.
    ///
    /// The loads are observability only — which cases land on which worker
    /// depends on scheduling, so they are *not* jobs-invariant and must
    /// never flow into content hashes or compared reports. They feed the
    /// `host.jobs.*` section of run manifests.
    pub fn run_sharded_loads<R, S, I, F>(
        &self,
        n: usize,
        init: I,
        f: F,
    ) -> (Vec<R>, Vec<S>, Vec<WorkerLoad>)
    where
        R: Send,
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> R + Sync,
    {
        let workers = self.jobs.min(n.max(1));
        if workers <= 1 {
            let mut shard = init();
            let mut load = WorkerLoad::default();
            let results = (0..n)
                .map(|i| {
                    let sw = Stopwatch::start();
                    let r = f(i, &mut shard);
                    load.busy_ns += sw.elapsed_ns();
                    load.items += 1;
                    r
                })
                .collect();
            return (results, vec![shard], vec![load]);
        }

        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut shards: Vec<S> = Vec::with_capacity(workers);
        let mut loads: Vec<WorkerLoad> = Vec::with_capacity(workers);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut shard = init();
                        let mut load = WorkerLoad::default();
                        let mut done: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let sw = Stopwatch::start();
                            done.push((i, f(i, &mut shard)));
                            load.busy_ns += sw.elapsed_ns();
                            load.items += 1;
                        }
                        (done, shard, load)
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok((done, shard, load)) => {
                        for (i, r) in done {
                            slots[i] = Some(r);
                        }
                        shards.push(shard);
                        loads.push(load);
                    }
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });

        let results = slots
            .into_iter()
            .map(|s| s.expect("every index 0..n was claimed by exactly one worker"))
            .collect();
        (results, shards, loads)
    }
}

impl Default for ParallelRunner {
    /// Auto-sized runner ([`available_jobs`]).
    fn default() -> Self {
        ParallelRunner::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered_for_every_jobs_value() {
        let expect: Vec<u64> = (0..97u64).map(|i| i * i + 1).collect();
        for jobs in [1, 2, 3, 4, 8, 16] {
            let r = ParallelRunner::new(jobs).run_ordered(97, |i| (i as u64) * (i as u64) + 1);
            assert_eq!(r, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_items_and_zero_jobs_are_fine() {
        let r = ParallelRunner::new(0);
        assert!(r.jobs() >= 1);
        let out: Vec<u32> = r.run_ordered(0, |_| unreachable!("no items"));
        assert!(out.is_empty());
    }

    #[test]
    fn shards_cover_every_item_exactly_once() {
        for jobs in [1, 3, 8] {
            let (results, shards) = ParallelRunner::new(jobs).run_sharded(
                50,
                || 0u64,
                |i, acc: &mut u64| {
                    *acc += 1;
                    i
                },
            );
            assert_eq!(results, (0..50).collect::<Vec<_>>(), "jobs={jobs}");
            assert_eq!(shards.iter().sum::<u64>(), 50, "jobs={jobs}");
            assert_eq!(shards.len(), jobs.min(50), "jobs={jobs}");
        }
    }

    #[test]
    fn loads_account_for_every_item_without_touching_results() {
        for jobs in [1, 4] {
            let (results, _shards, loads) =
                ParallelRunner::new(jobs).run_sharded_loads(30, || (), |i, ()| i as u64 * 2);
            assert_eq!(results, (0..30).map(|i| i * 2).collect::<Vec<u64>>());
            assert_eq!(loads.len(), jobs.min(30), "one load per worker");
            assert_eq!(
                loads.iter().map(|l| l.items).sum::<u64>(),
                30,
                "jobs={jobs}: every item charged to exactly one worker"
            );
        }
    }

    #[test]
    fn single_job_runs_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let ids = ParallelRunner::new(1).run_ordered(4, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            ParallelRunner::new(2).run_ordered(8, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            });
        });
        assert!(caught.is_err());
    }
}
