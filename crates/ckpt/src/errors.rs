//! Error-rate models (Fig. 1 of the paper).

/// Relative per-bit soft-error rate after `generations` technology
/// generations, assuming the 8 %/bit/generation degradation the paper's
/// Fig. 1 plots (after Borkar, IEEE Micro'05).
pub fn per_bit_error_rate(generations: u32) -> f64 {
    1.08f64.powi(generations as i32)
}

/// Relative *component* (chip) error rate after `generations` generations:
/// per-bit degradation compounded with the transistor-count doubling each
/// generation — the curve Fig. 1 shows rising steeply across generations.
pub fn component_error_rate(generations: u32) -> f64 {
    per_bit_error_rate(generations) * 2f64.powi(generations as i32)
}

/// Expected number of errors over an execution of `seconds` seconds given
/// a system-wide error rate of `errors_per_hour`.
pub fn expected_errors(seconds: f64, errors_per_hour: f64) -> f64 {
    seconds * errors_per_hour / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_bit_grows_eight_percent() {
        assert!((per_bit_error_rate(0) - 1.0).abs() < 1e-12);
        assert!((per_bit_error_rate(1) - 1.08).abs() < 1e-12);
        let r = per_bit_error_rate(8);
        assert!((r - 1.08f64.powi(8)).abs() < 1e-9);
    }

    #[test]
    fn component_rate_compounds_density() {
        // One generation: 2x transistors, each 8% worse.
        assert!((component_error_rate(1) - 2.16).abs() < 1e-12);
        assert!(component_error_rate(8) > component_error_rate(4));
    }

    #[test]
    fn expected_errors_linear_in_time() {
        let e1 = expected_errors(3600.0, 2.0);
        assert!((e1 - 2.0).abs() < 1e-12);
        assert!((expected_errors(7200.0, 2.0) - 4.0).abs() < 1e-12);
    }
}
