//! Error-rate models (Fig. 1 of the paper) and typed configuration
//! errors for the user-reachable campaign surface.

use std::fmt;

/// A malformed campaign or engine configuration, reported to the user as
/// a message instead of a panic backtrace. Internal invariant violations
/// stay as panics; everything a CLI flag or caller-supplied config can
/// trigger goes through this type.
#[derive(Debug, Clone, PartialEq)]
pub enum CkptError {
    /// Detection latency fraction outside `[0, 1]` — the paper assumes
    /// detection no later than one checkpoint period after occurrence.
    InvalidLatency {
        /// The rejected fraction.
        frac: f64,
    },
    /// A campaign with zero cases was requested.
    EmptyCampaign,
    /// The kind set enables no fault that can actually be injected (e.g.
    /// only `mem` with an empty written working set).
    NoInjectableKind {
        /// The kind selection as requested.
        requested: String,
    },
    /// The program retires too few instructions to place a fault in
    /// `[1, total)`.
    ProgramTooShort {
        /// Total retired instructions of the fault-free run.
        total: u64,
    },
    /// The program has no threads, so the machine has no cores to run
    /// (or inject faults into). Previously this surfaced as a
    /// remainder-by-zero panic deep in engine construction.
    NoCores,
    /// The requested feature combination is not supported.
    Unsupported {
        /// What was requested and why it is rejected.
        what: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::InvalidLatency { frac } => write!(
                f,
                "detection latency fraction {frac} must be within [0, 1] \
                 (at most one checkpoint period)"
            ),
            CkptError::EmptyCampaign => {
                write!(f, "campaign must plan at least one fault case")
            }
            CkptError::NoInjectableKind { requested } => write!(
                f,
                "no injectable fault kind: `{requested}` selects nothing \
                 the target program can be corrupted with"
            ),
            CkptError::ProgramTooShort { total } => write!(
                f,
                "program too short to inject into ({total} retired \
                 instructions; need at least 2)"
            ),
            CkptError::NoCores => write!(
                f,
                "program has no threads: a campaign needs at least one \
                 core to run and fault"
            ),
            CkptError::Unsupported { what } => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Relative per-bit soft-error rate after `generations` technology
/// generations, assuming the 8 %/bit/generation degradation the paper's
/// Fig. 1 plots (after Borkar, IEEE Micro'05).
pub fn per_bit_error_rate(generations: u32) -> f64 {
    1.08f64.powi(generations as i32)
}

/// Relative *component* (chip) error rate after `generations` generations:
/// per-bit degradation compounded with the transistor-count doubling each
/// generation — the curve Fig. 1 shows rising steeply across generations.
pub fn component_error_rate(generations: u32) -> f64 {
    per_bit_error_rate(generations) * 2f64.powi(generations as i32)
}

/// Expected number of errors over an execution of `seconds` seconds given
/// a system-wide error rate of `errors_per_hour`.
pub fn expected_errors(seconds: f64, errors_per_hour: f64) -> f64 {
    seconds * errors_per_hour / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_bit_grows_eight_percent() {
        assert!((per_bit_error_rate(0) - 1.0).abs() < 1e-12);
        assert!((per_bit_error_rate(1) - 1.08).abs() < 1e-12);
        let r = per_bit_error_rate(8);
        assert!((r - 1.08f64.powi(8)).abs() < 1e-9);
    }

    #[test]
    fn component_rate_compounds_density() {
        // One generation: 2x transistors, each 8% worse.
        assert!((component_error_rate(1) - 2.16).abs() < 1e-12);
        assert!(component_error_rate(8) > component_error_rate(4));
    }

    #[test]
    fn expected_errors_linear_in_time() {
        let e1 = expected_errors(3600.0, 2.0);
        assert!((e1 - 2.0).abs() < 1e-12);
        assert!((expected_errors(7200.0, 2.0) - 4.0).abs() < 1e-12);
    }
}
