//! Checkpoint and error scheduling in progress units.
//!
//! Progress is measured in total retired instructions, which is identical
//! across the `No_Ckpt`, `Ckpt` and `ReCkpt` configurations of the same
//! program — the natural simulator analogue of the paper's "checkpoints
//! (and errors) uniformly distributed over the execution time".

/// Returns `n` points uniformly distributed over `(0, total)`:
/// `i * total / (n + 1)` for `i = 1..=n`.
pub fn uniform_points(total: u64, n: u32) -> Vec<u64> {
    (1..=u64::from(n))
        .map(|i| i * total / (u64::from(n) + 1))
        .collect()
}

/// An error schedule: occurrence points plus a detection latency, both in
/// progress units. Detection latency must not exceed the checkpoint period
/// for the two-checkpoint retention to suffice (Section II-A) — callers
/// construct schedules through [`ErrorSchedule::uniform`], which enforces
/// this.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ErrorSchedule {
    /// Error occurrence points (ascending progress values).
    pub occurrences: Vec<u64>,
    /// Progress between an error's occurrence and its detection.
    pub detection_latency: u64,
}

impl ErrorSchedule {
    /// `num_errors` errors uniformly distributed over `total` progress,
    /// detected after `latency_frac` of the checkpoint period implied by
    /// `num_checkpoints`.
    ///
    /// # Panics
    ///
    /// Panics if `latency_frac` is not within `[0, 1]` (the paper assumes
    /// detection latency no longer than the checkpoint period). Callers
    /// handling user input should use [`ErrorSchedule::try_uniform`].
    pub fn uniform(total: u64, num_errors: u32, num_checkpoints: u32, latency_frac: f64) -> Self {
        Self::try_uniform(total, num_errors, num_checkpoints, latency_frac)
            .expect("detection latency must be at most one checkpoint period")
    }

    /// Fallible form of [`ErrorSchedule::uniform`]: rejects an out-of-range
    /// `latency_frac` with a typed error instead of panicking.
    pub fn try_uniform(
        total: u64,
        num_errors: u32,
        num_checkpoints: u32,
        latency_frac: f64,
    ) -> Result<Self, crate::CkptError> {
        if !(0.0..=1.0).contains(&latency_frac) {
            return Err(crate::CkptError::InvalidLatency { frac: latency_frac });
        }
        let period = total / (u64::from(num_checkpoints) + 1);
        Ok(ErrorSchedule {
            occurrences: uniform_points(total, num_errors),
            detection_latency: (period as f64 * latency_frac) as u64,
        })
    }

    /// No errors (the `*_NE` configurations).
    pub fn none() -> Self {
        ErrorSchedule::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_points_are_interior_and_even() {
        let p = uniform_points(100, 4);
        assert_eq!(p, vec![20, 40, 60, 80]);
        assert!(uniform_points(100, 0).is_empty());
    }

    #[test]
    fn uniform_schedule_latency_scales_with_period() {
        let s = ErrorSchedule::uniform(1000, 2, 9, 0.5);
        assert_eq!(s.occurrences, vec![333, 666]);
        assert_eq!(s.detection_latency, 50); // period 100, half
    }

    #[test]
    #[should_panic(expected = "checkpoint period")]
    fn excessive_latency_rejected() {
        let _ = ErrorSchedule::uniform(1000, 1, 9, 1.5);
    }

    #[test]
    fn try_uniform_reports_typed_error() {
        let err = ErrorSchedule::try_uniform(1000, 1, 9, 1.5).unwrap_err();
        assert!(matches!(err, crate::CkptError::InvalidLatency { .. }));
        assert!(ErrorSchedule::try_uniform(1000, 1, 9, 1.0).is_ok());
    }

    #[test]
    fn none_is_empty() {
        let s = ErrorSchedule::none();
        assert!(s.occurrences.is_empty());
    }
}
