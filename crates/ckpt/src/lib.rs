//! # acr-ckpt — backward error recovery framework
//!
//! Log-based incremental in-memory checkpointing with global and local
//! coordinated schemes, a fail-stop error model with detection latency, and
//! rollback/recovery — the BER baseline ACR builds on (Sections II-A, V-E
//! of the paper; after ReVive/Rebound/SafetyNet).
//!
//! The central type is [`BerEngine`]: it owns an `acr-sim` machine, drives
//! it between checkpoint triggers and error events, performs coordinated
//! checkpoints (dirty-line flush + old-value logging + register dump),
//! injects errors, and recovers by rolling the machine back to the most
//! recent *safe* checkpoint. The engine is generic over an
//! [`OmissionPolicy`] — the seam where ACR plugs in:
//!
//! * [`NoOmission`] gives the plain `Ckpt` baseline configurations,
//! * `acr::AcrPolicy` (in the `acr` crate) omits recomputable values from
//!   the log and regenerates them during recovery, giving the `ReCkpt`
//!   configurations.
//!
//! ## Correctness oracle
//!
//! With [`BerConfig::oracle`] enabled the engine snapshots functional
//! memory at every checkpoint (zero simulated cost) and asserts, after
//! every recovery, that the restored words are bit-identical to the
//! snapshot — with and without omission. Property tests in the workspace
//! fuzz programs and error schedules over this invariant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod engine;
pub mod errors;
pub mod frequency;
mod inject;
mod ledger;
mod monitor;
pub mod parallel;
mod policy;
mod postmortem;
mod report;
mod schedule;
mod shrink;
mod soak;

pub use checkpoint::CheckpointRecord;
pub use engine::{BerConfig, BerEngine, ResilienceConfig, Scheme, SecondaryStorage};
pub use errors::CkptError;
pub use inject::{
    run_campaign, run_campaign_loads, CampaignConfig, CampaignError, CampaignReport, CaseOutcome,
    FaultCaseRecord,
};
pub use ledger::{DecisionLedger, OmitReason, ReplayCost, NUM_REASONS, RANGE_BYTES};
pub use monitor::{BreachRecord, InvariantSummary, MonitorCounters};
pub use parallel::{available_jobs, ParallelRunner, JOBS_ENV};
pub use policy::{NoOmission, OmissionPolicy, Recomputed};
pub use postmortem::{
    EscalationStep, EventRecord, PostmortemBundle, RingDigest, POSTMORTEM_SCHEMA,
};
pub use report::{BerReport, IntervalRecord, RecoveryRecord};
pub use schedule::{uniform_points, ErrorSchedule};
pub use shrink::{
    dense_fault_plan, fault_from_json, fault_to_json, replay_case, shrink_case, CaseFailure,
    ShrinkConfig, ShrinkOutcome, REPRO_SCHEMA,
};
pub use soak::{
    chunk_config, chunk_seed, default_models, default_resilience, run_soak, SoakCell, SoakCombo,
    SoakCursor, SoakGrid, SoakModel, SoakOutcome, SoakPostmortem, SoakResilience,
    SOAK_CURSOR_SCHEMA,
};
