//! Long-horizon soak campaigns over a workload × fault-model ×
//! resilience grid, with a resumable cursor.
//!
//! A *soak run* is an open-ended sequence of bounded fault campaigns
//! ("chunks"): chunk `i` exercises grid combo `i % combos`, with a
//! per-chunk seed mixed deterministically from the soak seed — so the
//! case stream is reproducible from `(seed, chunk_cases, grid)` alone,
//! independent of how many invocations it took to get there. The driver
//! is bounded by the caller (case budget, wall-clock budget) through the
//! `keep_going` callback; the wall clock may *stop* a soak but can never
//! change what any chunk computes.
//!
//! Every finished case is folded into the four-way outcome matrix the
//! triage workflow keys on — `recovered` / `due` (detected unrecoverable
//! error) / `sdc` (silent data corruption) / `hang` (recovery-watchdog
//! abort) — per combo and in total, and every non-recovered case keeps
//! its [`PostmortemBundle`]. The cursor serializes to a small JSON
//! document (`acr.soak-cursor.v1`) carrying the matrix and a per-combo
//! hash chain, so a resumed soak can prove it continued the exact same
//! stream.

use std::fmt::Write as _;

use acr_sim::{FaultKindSet, FaultStorm};
use acr_trace::{parse_json, push_json_string, Fnv1a, Json, MetricsRegistry};

use crate::inject::{CampaignConfig, CampaignError, CampaignReport};
use crate::postmortem::PostmortemBundle;

/// Cursor document schema identifier.
pub const SOAK_CURSOR_SCHEMA: &str = "acr.soak-cursor.v1";

/// One fault-model preset of the soak grid: a kind set plus an optional
/// storm schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakModel {
    /// Preset label (stable; part of the grid fingerprint).
    pub label: String,
    /// Fault kinds the preset draws from.
    pub kinds: FaultKindSet,
    /// Temporal clustering, if any.
    pub storm: Option<FaultStorm>,
}

/// The default fault-model presets, from benign to adversarial.
pub fn default_models() -> Vec<SoakModel> {
    vec![
        SoakModel {
            label: "recoverable".to_string(),
            kinds: FaultKindSet::recoverable(),
            storm: None,
        },
        SoakModel {
            label: "classic".to_string(),
            kinds: FaultKindSet::all(),
            storm: None,
        },
        SoakModel {
            label: "adversarial".to_string(),
            kinds: FaultKindSet::adversarial(),
            storm: None,
        },
        SoakModel {
            label: "adversarial-storm".to_string(),
            kinds: FaultKindSet::adversarial(),
            storm: Some(FaultStorm::default()),
        },
        SoakModel {
            label: "stuck".to_string(),
            kinds: FaultKindSet {
                reg: false,
                pc: false,
                mem: false,
                burst: false,
                stuck: true,
                crash: false,
            },
            storm: None,
        },
    ]
}

/// One resilience preset of the soak grid (maps onto
/// [`crate::ResilienceConfig`] knobs of the per-case engines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakResilience {
    /// Preset label (stable; part of the grid fingerprint).
    pub label: String,
    /// Strike each case's first recovery with a nested recovery-window
    /// fault.
    pub recovery_faults: bool,
    /// Checkpoint generations retained.
    pub generations: u32,
    /// Recovery-watchdog escalation budget (0 = off).
    pub watchdog_budget_cycles: u64,
}

/// The default resilience presets: plain, nested-fault, and nested-fault
/// under a generous watchdog.
pub fn default_resilience() -> Vec<SoakResilience> {
    vec![
        SoakResilience {
            label: "baseline".to_string(),
            recovery_faults: false,
            generations: 1,
            watchdog_budget_cycles: 0,
        },
        SoakResilience {
            label: "nested".to_string(),
            recovery_faults: true,
            generations: 2,
            watchdog_budget_cycles: 0,
        },
        SoakResilience {
            label: "watchdog".to_string(),
            recovery_faults: true,
            generations: 2,
            // Generous: real escalations finish well under this; only a
            // genuinely hung recovery trips it into a `hang` postmortem.
            watchdog_budget_cycles: 50_000_000,
        },
    ]
}

/// One cell of the soak grid: workload × fault model × resilience.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakCombo {
    /// Workload name (the driver's `run_chunk` resolves it to a program).
    pub workload: String,
    /// Fault-model preset.
    pub model: SoakModel,
    /// Resilience preset.
    pub resilience: SoakResilience,
}

impl SoakCombo {
    /// `workload/model/resilience`, the combo's display key.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}",
            self.workload, self.model.label, self.resilience.label
        )
    }
}

/// The full soak grid, workload-major then model then resilience — the
/// chunk schedule walks it round-robin.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakGrid {
    /// Every combo, in schedule order.
    pub combos: Vec<SoakCombo>,
}

impl SoakGrid {
    /// Builds the cross product `workloads × models × presets`.
    pub fn new(workloads: &[String], models: &[SoakModel], presets: &[SoakResilience]) -> SoakGrid {
        let mut combos = Vec::with_capacity(workloads.len() * models.len() * presets.len());
        for w in workloads {
            for m in models {
                for r in presets {
                    combos.push(SoakCombo {
                        workload: w.clone(),
                        model: m.clone(),
                        resilience: r.clone(),
                    });
                }
            }
        }
        SoakGrid { combos }
    }

    /// FNV-1a fingerprint over every combo's identity — labels *and* the
    /// numbers behind them, so renaming or retuning a preset invalidates
    /// stale cursors instead of silently mixing streams.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for c in &self.combos {
            h.write(c.workload.as_bytes());
            h.write(c.model.label.as_bytes());
            h.write(&[
                u8::from(c.model.kinds.reg),
                u8::from(c.model.kinds.pc),
                u8::from(c.model.kinds.mem),
                u8::from(c.model.kinds.burst),
                u8::from(c.model.kinds.stuck),
                u8::from(c.model.kinds.crash),
            ]);
            match c.model.storm {
                Some(s) => {
                    h.write_u64(s.mean_gap);
                    h.write_u64(u64::from(s.max_burst));
                }
                None => h.write_u64(u64::MAX),
            }
            h.write(c.resilience.label.as_bytes());
            h.write_u64(u64::from(c.resilience.recovery_faults));
            h.write_u64(u64::from(c.resilience.generations));
            h.write_u64(c.resilience.watchdog_budget_cycles);
        }
        h.finish()
    }
}

/// Cumulative outcome matrix of one grid combo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakCell {
    /// Combo key (`workload/model/resilience`).
    pub key: String,
    /// Cases finished.
    pub cases: u64,
    /// Cases that converged to the reference.
    pub recovered: u64,
    /// Detected unrecoverable errors.
    pub due: u64,
    /// Silent data corruptions — a soak's red flag.
    pub sdc: u64,
    /// Recovery-watchdog aborts.
    pub hang: u64,
    /// FNV-1a chain over the combo's chunk content hashes, in chunk
    /// order — two soaks followed the same stream iff their chains agree.
    pub hash_chain: u64,
}

impl SoakCell {
    fn new(key: String) -> SoakCell {
        SoakCell {
            key,
            cases: 0,
            recovered: 0,
            due: 0,
            sdc: 0,
            hang: 0,
            hash_chain: 0,
        }
    }
}

/// The resumable soak state: where the chunk schedule stands plus the
/// cumulative matrix. Serializes to `acr.soak-cursor.v1` JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakCursor {
    /// Soak seed every chunk seed is mixed from.
    pub seed: u64,
    /// Cases per chunk.
    pub chunk_cases: u32,
    /// Fingerprint of the grid this cursor belongs to.
    pub fingerprint: u64,
    /// Chunks finished so far (also the next chunk index).
    pub chunks_done: u64,
    /// Per-combo matrices, in grid order.
    pub cells: Vec<SoakCell>,
}

impl SoakCursor {
    /// A fresh cursor at the start of `grid`'s schedule.
    pub fn new(grid: &SoakGrid, seed: u64, chunk_cases: u32) -> SoakCursor {
        SoakCursor {
            seed,
            chunk_cases,
            fingerprint: grid.fingerprint(),
            chunks_done: 0,
            cells: grid.combos.iter().map(|c| SoakCell::new(c.key())).collect(),
        }
    }

    /// Total `(cases, recovered, due, sdc, hang)` across all combos.
    pub fn totals(&self) -> (u64, u64, u64, u64, u64) {
        self.cells.iter().fold((0, 0, 0, 0, 0), |acc, c| {
            (
                acc.0 + c.cases,
                acc.1 + c.recovered,
                acc.2 + c.due,
                acc.3 + c.sdc,
                acc.4 + c.hang,
            )
        })
    }

    /// The outcome matrix as an aligned text table (combos with no cases
    /// yet are shown as pending).
    pub fn matrix(&self) -> String {
        let width = self
            .cells
            .iter()
            .map(|c| c.key.len())
            .max()
            .unwrap_or(0)
            .max("combo".len());
        let mut out = format!(
            "  {:<width$}  {:>8}  {:>9}  {:>6}  {:>5}  {:>5}\n",
            "combo", "cases", "recovered", "due", "sdc", "hang"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "  {:<width$}  {:>8}  {:>9}  {:>6}  {:>5}  {:>5}",
                c.key, c.cases, c.recovered, c.due, c.sdc, c.hang
            );
        }
        let (cases, recovered, due, sdc, hang) = self.totals();
        let _ = writeln!(
            out,
            "  {:<width$}  {:>8}  {:>9}  {:>6}  {:>5}  {:>5}",
            "total", cases, recovered, due, sdc, hang
        );
        out
    }

    /// Serializes the cursor (deterministic, hand-rolled like every other
    /// JSON artifact in the workspace; `u64`s that can exceed 2^53 are
    /// hex strings).
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n  \"schema\": ");
        push_json_string(&mut o, SOAK_CURSOR_SCHEMA);
        let _ = write!(o, ",\n  \"seed\": \"{:#x}\"", self.seed);
        let _ = write!(o, ",\n  \"chunk_cases\": {}", self.chunk_cases);
        let _ = write!(o, ",\n  \"fingerprint\": \"{:#018x}\"", self.fingerprint);
        let _ = write!(o, ",\n  \"chunks_done\": {}", self.chunks_done);
        o.push_str(",\n  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"key\": ");
            push_json_string(&mut o, &c.key);
            let _ = write!(
                o,
                ", \"cases\": {}, \"recovered\": {}, \"due\": {}, \"sdc\": {}, \
                 \"hang\": {}, \"hash_chain\": \"{:#018x}\"}}",
                c.cases, c.recovered, c.due, c.sdc, c.hang, c.hash_chain
            );
        }
        o.push_str("\n  ]\n}\n");
        o
    }

    /// Parses and validates a cursor against `grid`: schema, fingerprint
    /// and cell keys must all match, or the cursor belongs to a different
    /// soak and resuming from it would splice two unrelated streams.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first mismatch.
    pub fn parse(text: &str, grid: &SoakGrid) -> Result<SoakCursor, String> {
        let j = parse_json(text)?;
        let schema = j.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SOAK_CURSOR_SCHEMA {
            return Err(format!(
                "unknown cursor schema `{schema}` (expected {SOAK_CURSOR_SCHEMA})"
            ));
        }
        let hex = |j: &Json, key: &str| -> Result<u64, String> {
            let s = j
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("cursor field `{key}` missing"))?;
            u64::from_str_radix(s.trim_start_matches("0x"), 16)
                .map_err(|e| format!("cursor field `{key}`: {e}"))
        };
        let num = |j: &Json, key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("cursor field `{key}` missing"))
        };
        let fingerprint = hex(&j, "fingerprint")?;
        if fingerprint != grid.fingerprint() {
            return Err(format!(
                "cursor fingerprint {fingerprint:#018x} does not match this \
                 grid ({:#018x}) — workloads, models or presets changed",
                grid.fingerprint()
            ));
        }
        let cells_json = j
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("cursor field `cells` missing")?;
        if cells_json.len() != grid.combos.len() {
            return Err(format!(
                "cursor has {} cells, grid has {} combos",
                cells_json.len(),
                grid.combos.len()
            ));
        }
        let mut cells = Vec::with_capacity(cells_json.len());
        for (c, combo) in cells_json.iter().zip(&grid.combos) {
            let key = c.get("key").and_then(Json::as_str).unwrap_or("");
            if key != combo.key() {
                return Err(format!(
                    "cursor cell `{key}` does not match grid combo `{}`",
                    combo.key()
                ));
            }
            cells.push(SoakCell {
                key: key.to_string(),
                cases: num(c, "cases")?,
                recovered: num(c, "recovered")?,
                due: num(c, "due")?,
                sdc: num(c, "sdc")?,
                hang: num(c, "hang")?,
                hash_chain: hex(c, "hash_chain")?,
            });
        }
        Ok(SoakCursor {
            seed: hex(&j, "seed")?,
            chunk_cases: num(&j, "chunk_cases")? as u32,
            fingerprint,
            chunks_done: num(&j, "chunks_done")?,
            cells,
        })
    }
}

/// Mixes the soak seed and a chunk index into that chunk's campaign seed
/// (splitmix64 finalizer — avalanche on every bit, pure integer).
pub fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The campaign configuration of one soak chunk: the caller's base config
/// with the chunk's seed/count and the combo's model + resilience knobs
/// substituted in.
pub fn chunk_config(
    base: &CampaignConfig,
    cursor: &SoakCursor,
    combo: &SoakCombo,
    chunk: u64,
) -> CampaignConfig {
    CampaignConfig {
        seed: chunk_seed(cursor.seed, chunk),
        count: cursor.chunk_cases,
        kinds: combo.model.kinds,
        storm: combo.model.storm,
        recovery_faults: combo.resilience.recovery_faults,
        generations: combo.resilience.generations,
        watchdog_budget_cycles: combo.resilience.watchdog_budget_cycles,
        ..base.clone()
    }
}

/// One non-recovered case's forensics, tagged with where in the soak it
/// happened.
#[derive(Debug, Clone)]
pub struct SoakPostmortem {
    /// Workload of the chunk.
    pub workload: String,
    /// Chunk index.
    pub chunk: u64,
    /// The case's forensic bundle.
    pub bundle: PostmortemBundle,
}

/// What one soak invocation accomplished.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// The advanced cursor (serialize it to resume later).
    pub cursor: SoakCursor,
    /// Chunks run by this invocation.
    pub chunks_run: u64,
    /// `soak.*` counters for this invocation (not cumulative).
    pub metrics: MetricsRegistry,
    /// Every non-recovered case's bundle, in chunk order.
    pub postmortems: Vec<SoakPostmortem>,
    /// One line per chunk, in chunk order.
    pub log: String,
}

/// Drives the soak schedule from `cursor` until `keep_going` says stop
/// (it is consulted *before* each chunk, so budgets are chunk-granular
/// and a resumed soak continues the exact same stream). `run_chunk`
/// executes one campaign — the caller resolves the combo's workload to a
/// program and policy.
///
/// # Errors
///
/// Propagates the first chunk whose *fault-free baseline* fails
/// ([`CampaignError`]); failing fault cases are data, not errors.
pub fn run_soak<F, S>(
    grid: &SoakGrid,
    base: &CampaignConfig,
    mut cursor: SoakCursor,
    mut run_chunk: F,
    mut keep_going: S,
) -> Result<SoakOutcome, CampaignError>
where
    F: FnMut(&SoakCombo, &CampaignConfig) -> Result<CampaignReport, CampaignError>,
    S: FnMut(&SoakCursor) -> bool,
{
    assert_eq!(
        cursor.fingerprint,
        grid.fingerprint(),
        "cursor does not belong to this grid (validate with SoakCursor::parse)"
    );
    let mut metrics = MetricsRegistry::new();
    let mut postmortems = Vec::new();
    let mut log = String::new();
    let mut chunks_run = 0u64;
    while keep_going(&cursor) {
        let chunk = cursor.chunks_done;
        let slot = (chunk % grid.combos.len() as u64) as usize;
        let combo = &grid.combos[slot];
        let cfg = chunk_config(base, &cursor, combo, chunk);
        let report = run_chunk(combo, &cfg)?;
        let (recovered, due, sdc, hang) = report.class_counts();
        let cell = &mut cursor.cells[slot];
        cell.cases += report.cases.len() as u64;
        cell.recovered += recovered;
        cell.due += due;
        cell.sdc += sdc;
        cell.hang += hang;
        let mut h = Fnv1a::new();
        h.write_u64(cell.hash_chain);
        h.write_u64(report.content_hash());
        cell.hash_chain = h.finish();
        metrics.add("soak.chunks", 1);
        metrics.add("soak.cases", report.cases.len() as u64);
        metrics.add("soak.recovered", recovered);
        metrics.add("soak.due", due);
        metrics.add("soak.sdc", sdc);
        metrics.add("soak.hang", hang);
        metrics.add(
            &format!("soak.combo.{}.cases", combo.key()),
            report.cases.len() as u64,
        );
        let _ = writeln!(
            log,
            "chunk {chunk:04} {} seed {:#018x} cases {}: recovered {recovered} \
             due {due} sdc {sdc} hang {hang}",
            combo.key(),
            cfg.seed,
            report.cases.len(),
        );
        for bundle in report.postmortems {
            postmortems.push(SoakPostmortem {
                workload: combo.workload.clone(),
                chunk,
                bundle,
            });
        }
        cursor.chunks_done += 1;
        chunks_run += 1;
    }
    Ok(SoakOutcome {
        cursor,
        chunks_run,
        metrics,
        postmortems,
        log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::run_campaign;
    use crate::policy::NoOmission;
    use acr_isa::{AluOp, Program, ProgramBuilder, Reg};
    use acr_sim::MachineConfig;

    fn kernel() -> Program {
        let mut b = ProgramBuilder::new(2);
        b.set_mem_bytes(1 << 18);
        for t in 0..2u32 {
            let base = u64::from(t) * 32768;
            let tb = b.thread(t);
            tb.imm(Reg(10), base);
            let l = tb.begin_loop(Reg(1), Reg(2), 80);
            tb.alui(AluOp::Mul, Reg(3), Reg(1), 13);
            tb.alui(AluOp::Mul, Reg(4), Reg(1), 8);
            tb.alu(AluOp::Add, Reg(5), Reg(10), Reg(4));
            tb.store(Reg(3), Reg(5), 0);
            tb.end_loop(l);
            tb.halt();
        }
        b.build()
    }

    fn grid() -> SoakGrid {
        SoakGrid::new(
            &["kernel".to_string()],
            &default_models()[..3],
            &default_resilience()[..2],
        )
    }

    fn base() -> CampaignConfig {
        CampaignConfig {
            num_checkpoints: 5,
            ..CampaignConfig::default()
        }
    }

    fn drive(cursor: SoakCursor, chunks: u64) -> SoakOutcome {
        let p = kernel();
        let g = grid();
        let stop_at = cursor.chunks_done + chunks;
        run_soak(
            &g,
            &base(),
            cursor,
            |_, cfg| run_campaign(&p, MachineConfig::with_cores(2), cfg, || NoOmission),
            |c| c.chunks_done < stop_at,
        )
        .expect("soak runs")
    }

    #[test]
    fn grid_and_fingerprint_are_deterministic() {
        let a = grid();
        let b = grid();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.combos.len(), 6);
        // Reordering presets is a different soak.
        let flipped = SoakGrid {
            combos: a.combos.iter().rev().cloned().collect(),
        };
        assert_ne!(a.fingerprint(), flipped.fingerprint());
    }

    #[test]
    fn chunk_seeds_avalanche() {
        let s: Vec<u64> = (0..8).map(|i| chunk_seed(42, i)).collect();
        for (i, a) in s.iter().enumerate() {
            for b in &s[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_ne!(chunk_seed(42, 0), chunk_seed(43, 0));
    }

    #[test]
    fn soak_classifies_every_case_and_logs_chunks() {
        let g = grid();
        let cursor = SoakCursor::new(&g, 42, 5);
        let out = drive(cursor, 6);
        assert_eq!(out.chunks_run, 6);
        let (cases, recovered, due, sdc, hang) = out.cursor.totals();
        assert_eq!(cases, 30);
        assert_eq!(cases, recovered + due + sdc + hang);
        assert_eq!(sdc, 0, "{}", out.cursor.matrix());
        assert_eq!(out.metrics.get("soak.cases"), Some(30));
        assert_eq!(out.log.lines().count(), 6);
        // Every combo ran exactly once.
        assert!(out.cursor.cells.iter().all(|c| c.cases == 5));
        // Non-recovered cases carry bundles.
        assert_eq!(out.postmortems.len() as u64, due + sdc + hang);
    }

    #[test]
    fn resumed_soak_continues_the_same_stream() {
        let g = grid();
        let straight = drive(SoakCursor::new(&g, 7, 4), 6);

        let first = drive(SoakCursor::new(&g, 7, 4), 3);
        // Round-trip through the serialized cursor, as a real resume does.
        let parsed = SoakCursor::parse(&first.cursor.to_json(), &g).expect("cursor parses");
        assert_eq!(parsed, first.cursor);
        let second = drive(parsed, 3);

        assert_eq!(second.cursor, straight.cursor);
        assert_eq!(
            second
                .cursor
                .cells
                .iter()
                .map(|c| c.hash_chain)
                .collect::<Vec<_>>(),
            straight
                .cursor
                .cells
                .iter()
                .map(|c| c.hash_chain)
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn stale_cursors_are_rejected() {
        let g = grid();
        let cursor = SoakCursor::new(&g, 42, 5);
        let other = SoakGrid::new(
            &["other".to_string()],
            &default_models()[..1],
            &default_resilience()[..1],
        );
        let err = SoakCursor::parse(&cursor.to_json(), &other).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
        let err = SoakCursor::parse("{}", &g).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }
}
