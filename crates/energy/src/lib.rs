//! # acr-energy — event-based energy model (McPAT substitute)
//!
//! The paper extracts energy from McPAT integrated with Sniper. We replace
//! it with an event-energy model: every architectural event counted by the
//! simulator (`acr-sim`/`acr-mem`) and by ACR's handlers is multiplied by a
//! per-event energy, plus leakage proportional to execution time.
//!
//! The per-event energies are 22 nm order-of-magnitude values from the
//! public literature (Horowitz ISSCC'14 keynote, the exascale report the
//! paper cites, CACTI-style cache models). Absolute joules are
//! approximate; what matters for reproducing the paper's *trends* is the
//! technology-scaling imbalance it builds on: recomputing a value (a few
//! ALU ops at ≈pJ each, plus operand-buffer reads) must be far cheaper than
//! moving it to/from DRAM (≈nJ per line). The defaults preserve roughly
//! three orders of magnitude between those, matching Fig. 1's premise.
//!
//! ```
//! use acr_energy::{EnergyModel, EnergyInputs};
//!
//! let model = EnergyModel::default();
//! let mut ev = EnergyInputs::default();
//! ev.alu_ops = 1_000_000;
//! ev.dram_line_reads = 1_000;
//! ev.cycles = 2_000_000;
//! ev.cores = 8;
//! let breakdown = model.energy(&ev);
//! assert!(breakdown.total_joules() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Every event count the energy model consumes. Callers aggregate the
/// counters of `acr_sim::SimStats`, `acr_mem::MemStats` and ACR's own
/// handler statistics into this flat struct.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyInputs {
    /// Simple ALU/immediate operations.
    pub alu_ops: u64,
    /// Multiplies.
    pub mul_ops: u64,
    /// Divides/remainders.
    pub div_ops: u64,
    /// Total retired instructions (fetch/decode/RF overhead, incl. L1-I).
    pub instructions: u64,
    /// L1-D accesses.
    pub l1d_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// DRAM line (64 B) reads.
    pub dram_line_reads: u64,
    /// DRAM line (64 B) writes.
    pub dram_line_writes: u64,
    /// Coherence protocol messages.
    pub coherence_messages: u64,
    /// Cache-to-cache line transfers.
    pub c2c_transfers: u64,
    /// Checkpoint log records written (16 B each).
    pub log_record_writes: u64,
    /// Checkpoint log records read during recovery.
    pub log_record_reads: u64,
    /// Words written to memory during recovery restore.
    pub recovery_word_writes: u64,
    /// `AddrMap` insertions/updates (ACR checkpoint handler).
    pub addrmap_writes: u64,
    /// `AddrMap` lookups (memory-controller omission checks + recovery).
    pub addrmap_reads: u64,
    /// Operand-buffer captures (at `ASSOC-ADDR`).
    pub opbuf_writes: u64,
    /// Operand-buffer reads (recomputation inputs).
    pub opbuf_reads: u64,
    /// ALU operations executed while recomputing Slices during recovery.
    pub slice_alu_ops: u64,
    /// Execution time in core cycles (leakage).
    pub cycles: u64,
    /// Number of cores (leakage scales with the active tile count).
    pub cores: u32,
}

/// Per-event energies in joules, plus leakage power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Simple ALU op.
    pub alu_pj: f64,
    /// Multiply.
    pub mul_pj: f64,
    /// Divide.
    pub div_pj: f64,
    /// Per-instruction front-end + register-file overhead (incl. L1-I).
    pub instr_overhead_pj: f64,
    /// L1-D access.
    pub l1d_pj: f64,
    /// L2 access.
    pub l2_pj: f64,
    /// DRAM transfer per byte.
    pub dram_pj_per_byte: f64,
    /// Coherence message.
    pub coherence_msg_pj: f64,
    /// Cache-to-cache line transfer (interconnect).
    pub c2c_pj: f64,
    /// `AddrMap` access — modelled "after L1-D" (Section IV) but smaller.
    pub addrmap_pj: f64,
    /// Operand-buffer access.
    pub opbuf_pj: f64,
    /// Leakage power per core tile (core + private caches), watts.
    pub leakage_w_per_core: f64,
    /// Core frequency in GHz (to convert cycles to seconds for leakage).
    pub freq_ghz: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            alu_pj: 0.5,
            mul_pj: 3.0,
            div_pj: 10.0,
            instr_overhead_pj: 14.0,
            l1d_pj: 25.0,
            l2_pj: 80.0,
            dram_pj_per_byte: 20.0,
            coherence_msg_pj: 8.0,
            c2c_pj: 250.0,
            addrmap_pj: 8.0,
            opbuf_pj: 4.0,
            leakage_w_per_core: 0.08,
            freq_ghz: 1.09,
        }
    }
}

/// Energy broken down by component, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core dynamic energy (ALU + front-end).
    pub core_j: f64,
    /// Cache dynamic energy (L1-D + L2).
    pub cache_j: f64,
    /// DRAM dynamic energy, including log traffic.
    pub dram_j: f64,
    /// Coherence/interconnect energy.
    pub network_j: f64,
    /// ACR hardware (AddrMap + operand buffer + Slice recomputation ALUs).
    pub acr_j: f64,
    /// Leakage over the execution time.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.core_j + self.cache_j + self.dram_j + self.network_j + self.acr_j + self.static_j
    }

    /// Publishes the breakdown into `reg` under `energy.*` keys. Values
    /// are **picojoules**, rounded to the nearest integer, so the unified
    /// registry stays pure-`u64` and exports stay byte-deterministic:
    ///
    /// * `energy.core.pj` — core dynamic energy (pJ);
    /// * `energy.cache.pj` — L1-D + L2 dynamic energy (pJ);
    /// * `energy.dram.pj` — DRAM dynamic energy incl. log traffic (pJ);
    /// * `energy.network.pj` — coherence/interconnect energy (pJ);
    /// * `energy.acr.pj` — ACR hardware energy (pJ);
    /// * `energy.static.pj` — leakage over the run (pJ);
    /// * `energy.total.pj` — sum of the above (pJ).
    pub fn metrics(&self, reg: &mut acr_trace::MetricsRegistry) {
        let pj = |j: f64| (j * 1e12).round().max(0.0) as u64;
        reg.set("energy.core.pj", pj(self.core_j));
        reg.set("energy.cache.pj", pj(self.cache_j));
        reg.set("energy.dram.pj", pj(self.dram_j));
        reg.set("energy.network.pj", pj(self.network_j));
        reg.set("energy.acr.pj", pj(self.acr_j));
        reg.set("energy.static.pj", pj(self.static_j));
        reg.set("energy.total.pj", pj(self.total_joules()));
    }
}

/// Energy-delay product in joule-seconds.
pub fn edp(total_joules: f64, seconds: f64) -> f64 {
    total_joules * seconds
}

impl EnergyModel {
    /// Evaluates the model over aggregated event counts.
    pub fn energy(&self, ev: &EnergyInputs) -> EnergyBreakdown {
        const PJ: f64 = 1e-12;
        let core_j = (ev.alu_ops as f64 * self.alu_pj
            + ev.mul_ops as f64 * self.mul_pj
            + ev.div_ops as f64 * self.div_pj
            + ev.instructions as f64 * self.instr_overhead_pj)
            * PJ;
        let cache_j =
            (ev.l1d_accesses as f64 * self.l1d_pj + ev.l2_accesses as f64 * self.l2_pj) * PJ;
        let line_bytes = 64.0;
        let log_bytes = 16.0;
        let word_bytes = 8.0;
        let dram_j = ((ev.dram_line_reads + ev.dram_line_writes) as f64
            * line_bytes
            * self.dram_pj_per_byte
            + (ev.log_record_writes + ev.log_record_reads) as f64
                * log_bytes
                * self.dram_pj_per_byte
            + ev.recovery_word_writes as f64 * word_bytes * self.dram_pj_per_byte)
            * PJ;
        let network_j = (ev.coherence_messages as f64 * self.coherence_msg_pj
            + ev.c2c_transfers as f64 * self.c2c_pj)
            * PJ;
        let acr_j = ((ev.addrmap_reads + ev.addrmap_writes) as f64 * self.addrmap_pj
            + (ev.opbuf_reads + ev.opbuf_writes) as f64 * self.opbuf_pj
            + ev.slice_alu_ops as f64 * self.alu_pj)
            * PJ;
        let seconds = ev.cycles as f64 / (self.freq_ghz * 1e9);
        let static_j = seconds * self.leakage_w_per_core * f64::from(ev.cores);
        EnergyBreakdown {
            core_j,
            cache_j,
            dram_j,
            network_j,
            acr_j,
            static_j,
        }
    }

    /// Energy to recompute one value along a Slice of `len` instructions
    /// with `inputs` operand-buffer reads — the quantity the paper compares
    /// against a DRAM read to justify recomputation (Section II-B).
    pub fn slice_recompute_pj(&self, len: usize, inputs: usize) -> f64 {
        len as f64 * self.alu_pj + inputs as f64 * self.opbuf_pj
    }

    /// Energy to read one value from a checkpoint in DRAM (one log record).
    pub fn log_read_pj(&self) -> f64 {
        16.0 * self.dram_pj_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recomputation_cheaper_than_memory() {
        // The premise of the paper (Section II-B): recomputing along a
        // bounded Slice costs far less than retrieving the stored copy.
        let m = EnergyModel::default();
        let recompute = m.slice_recompute_pj(10, 4);
        assert!(
            recompute < m.log_read_pj() / 3.0,
            "recompute {recompute} pJ should be well below a log read {} pJ",
            m.log_read_pj()
        );
    }

    #[test]
    fn breakdown_components_populate() {
        let m = EnergyModel::default();
        let ev = EnergyInputs {
            alu_ops: 100,
            mul_ops: 10,
            instructions: 200,
            l1d_accesses: 50,
            l2_accesses: 5,
            dram_line_reads: 2,
            dram_line_writes: 1,
            coherence_messages: 20,
            c2c_transfers: 1,
            log_record_writes: 3,
            addrmap_writes: 4,
            opbuf_writes: 8,
            slice_alu_ops: 6,
            cycles: 10_000,
            cores: 8,
            ..Default::default()
        };
        let b = m.energy(&ev);
        assert!(b.core_j > 0.0);
        assert!(b.cache_j > 0.0);
        assert!(b.dram_j > 0.0);
        assert!(b.network_j > 0.0);
        assert!(b.acr_j > 0.0);
        assert!(b.static_j > 0.0);
        let sum = b.core_j + b.cache_j + b.dram_j + b.network_j + b.acr_j + b.static_j;
        assert!((b.total_joules() - sum).abs() < 1e-18);
    }

    #[test]
    fn energy_scales_linearly_with_events() {
        let m = EnergyModel::default();
        let mut ev = EnergyInputs {
            dram_line_reads: 100,
            ..Default::default()
        };
        let e1 = m.energy(&ev).dram_j;
        ev.dram_line_reads = 200;
        let e2 = m.energy(&ev).dram_j;
        assert!((e2 - 2.0 * e1).abs() < 1e-15);
    }

    #[test]
    fn edp_is_product() {
        assert!((edp(2.0, 3.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_scales_with_time_and_cores() {
        let m = EnergyModel::default();
        let ev8 = EnergyInputs {
            cycles: 1_000_000,
            cores: 8,
            ..Default::default()
        };
        let ev32 = EnergyInputs {
            cycles: 1_000_000,
            cores: 32,
            ..Default::default()
        };
        let b8 = m.energy(&ev8).static_j;
        let b32 = m.energy(&ev32).static_j;
        assert!((b32 / b8 - 4.0).abs() < 1e-9);
    }
}
