//! # acr-workloads — NAS-like synthetic kernel generators
//!
//! The paper evaluates eight NAS benchmarks (`bt cg dc ft is lu mg sp`,
//! i.e. the suite minus `ep`, plus DC) on 8/16/32 threads. Real NAS
//! binaries cannot run on our ISA, so this crate generates synthetic
//! kernels whose *relevant* properties are modelled on the real codes —
//! the properties that determine every effect the paper measures:
//!
//! * **Producer-chain depth per store.** The arithmetic backward-slice
//!   length of each store decides whether ACR can cover it at a given
//!   threshold (Table II). Each kernel's store sites draw depths from a
//!   benchmark-specific distribution: `is` (integer sort) stores tiny
//!   ranking computations (≤ 5 ops, 97 % coverage at threshold 5), `cg`
//!   accumulates long sparse dot products (mostly 11–30 ops, only ≈ 7 %
//!   coverage at threshold 10), `bt`/`sp`/`lu` mix shallow and deep block
//!   solves, `mg` sits mostly in the 21–30 band, `ft` in 11–40, `dc`
//!   (aggregation counters) mostly shallow, and every kernel has some
//!   never-coverable stores (pure copies, or chains beyond 50 ops).
//! * **Phase structure.** Kernels iterate sweeps over their arrays, so
//!   old values are recomputable from the previous sweep's `ASSOC-ADDR`;
//!   phases with different class mixes create the per-interval variation
//!   of Fig. 10, and `is`'s final permutation phase (pure copies, large
//!   state) reproduces its tiny *Max* reduction in Fig. 9.
//! * **Inter-core communication.** `bt`/`cg`/`sp` exchange shared data
//!   every sweep (all-to-all — coordinated local checkpointing degenerates
//!   to global, Fig. 13); `ft`/`is`/`mg`/`dc` communicate rarely and in
//!   small groups; `lu` is in between.
//! * **Per-interval load imbalance.** The "heavy role" rotates across
//!   threads, so global coordination pays the per-interval maximum while
//!   local groups pay their own cost — the source of the local scheme's
//!   advantage.
//!
//! Generation is deterministic for a given [`WorkloadConfig`] seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emit;
mod spec;

pub use emit::generate;
pub use spec::{kernel_spec, ClassKind, ClassSpec, Comm, HeavySpec, KernelSpec, PhaseSpec};

use std::fmt;

/// The benchmarks of the paper's evaluation (NAS minus `ep`, plus DC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    Bt,
    Cg,
    Dc,
    Ft,
    Is,
    Lu,
    Mg,
    Sp,
}

impl Benchmark {
    /// All benchmarks, in the paper's alphabetical order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Bt,
        Benchmark::Cg,
        Benchmark::Dc,
        Benchmark::Ft,
        Benchmark::Is,
        Benchmark::Lu,
        Benchmark::Mg,
        Benchmark::Sp,
    ];

    /// The benchmark's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bt => "bt",
            Benchmark::Cg => "cg",
            Benchmark::Dc => "dc",
            Benchmark::Ft => "ft",
            Benchmark::Is => "is",
            Benchmark::Lu => "lu",
            Benchmark::Mg => "mg",
            Benchmark::Sp => "sp",
        }
    }

    /// Parses a benchmark name.
    pub fn from_name(s: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == s)
    }

    /// The Slice-length threshold the paper uses for this benchmark: 10,
    /// except `is`, where footnote 4 conservatively reduces it to 5 (at
    /// 10 essentially everything would be omitted).
    pub fn default_threshold(self) -> usize {
        if self == Benchmark::Is {
            5
        } else {
            10
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// NAS-style problem-size classes, mapped to ROI scale factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Small (quick tests): scale 0.25.
    S,
    /// Workstation: scale 0.5.
    W,
    /// The default evaluation size: scale 1.0.
    A,
    /// Large: scale 2.0.
    B,
}

impl Class {
    /// The ROI scale factor this class maps to.
    pub fn scale(self) -> f64 {
        match self {
            Class::S => 0.25,
            Class::W => 0.5,
            Class::A => 1.0,
            Class::B => 2.0,
        }
    }
}

/// Workload generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Threads (== cores; the paper pins one per core). 8/16/32 in the
    /// paper.
    pub threads: u32,
    /// Scales the number of sweeps (execution length); 1.0 is the default
    /// region-of-interest size.
    pub scale: f64,
    /// Deterministic generation seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            threads: 8,
            scale: 1.0,
            seed: 0xAC12_2020,
        }
    }
}

impl WorkloadConfig {
    /// A config with the given thread count (chainable).
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// A config with the given scale (chainable).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// A config with the scale of a NAS-style [`Class`] (chainable).
    pub fn with_class(mut self, class: Class) -> Self {
        self.scale = class.scale();
        self
    }
}

#[cfg(test)]
mod class_tests {
    use super::*;

    #[test]
    fn classes_order_by_scale() {
        assert!(Class::S.scale() < Class::W.scale());
        assert!(Class::W.scale() < Class::A.scale());
        assert!(Class::A.scale() < Class::B.scale());
        let cfg = WorkloadConfig::default().with_class(Class::W);
        assert!((cfg.scale - 0.5).abs() < 1e-12);
    }
}
