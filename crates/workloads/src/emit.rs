//! Program emission from a [`KernelSpec`].

use acr_rng::SmallRng;

use acr_isa::{AluOp, BranchCond, Program, ProgramBuilder, Reg, ThreadBuilder};

use crate::spec::{kernel_spec, ClassKind, ClassSpec, Comm, PhaseSpec};
use crate::{Benchmark, WorkloadConfig};

/// Store sites per inner-loop iteration. Class weights are realised over
/// this many static sites via largest-remainder apportionment, giving
/// ≈ 1.6 % weight resolution.
const SITES: u32 = 64;

/// Register conventions used by the generators.
mod regs {
    use acr_isa::Reg;

    /// Always zero.
    pub const ZERO: Reg = Reg(15);
    /// Shared-region base.
    pub const SHARED: Reg = Reg(11);
    /// Input-array base (per thread).
    pub const INPUT: Reg = Reg(12);
    /// Output-region base (per thread).
    pub const OUT: Reg = Reg(10);
    /// Sweep counter / limit.
    pub const SWEEP: Reg = Reg(1);
    pub const SWEEP_LIM: Reg = Reg(2);
    /// Inner counter / limit.
    pub const INNER: Reg = Reg(3);
    pub const INNER_LIM: Reg = Reg(4);
    /// Address scratch.
    pub const ADDR: Reg = Reg(5);
    pub const ADDR_T: Reg = Reg(6);
    /// Guard scratch.
    pub const GUARD: Reg = Reg(7);
    /// Load scratch.
    pub const LD0: Reg = Reg(20);
    pub const LD1: Reg = Reg(21);
    /// Expression accumulator.
    pub const ACC: Reg = Reg(22);
    /// Communication accumulator (never stored: values read from peers
    /// are timing-dependent, so they must not reach memory).
    pub const COMM: Reg = Reg(24);
}

/// Generates the program for `bench` under `cfg`.
///
/// The returned program is *raw* (no `ASSOC-ADDR`s); run it through
/// `acr_slicer::instrument` (or `acr::Experiment`) for the ACR
/// configurations. The program is validated before being returned.
///
/// ```
/// use acr_workloads::{generate, Benchmark, WorkloadConfig};
///
/// let cfg = WorkloadConfig::default().with_threads(2).with_scale(0.2);
/// let program = generate(Benchmark::Is, &cfg);
/// assert_eq!(program.num_threads(), 2);
/// assert!(program.validate().is_ok());
/// ```
///
/// # Panics
///
/// Panics if the generator produces an invalid program (a bug, covered by
/// tests for every benchmark).
pub fn generate(bench: Benchmark, cfg: &WorkloadConfig) -> Program {
    let spec = kernel_spec(bench);
    let threads = cfg.threads.max(1);

    // Memory layout.
    let shared_bytes = round_up(u64::from(threads) * 64, 4096);
    let max_addrs = spec.phases.iter().map(|p| p.addrs).max().unwrap_or(0);
    let max_extra = spec
        .phases
        .iter()
        .filter_map(|p| p.heavy.map(|h| h.extra_addrs))
        .max()
        .unwrap_or(0);
    let region_bytes = round_up(
        u64::from(spec.input_words + max_addrs + max_extra) * 8,
        4096,
    );
    let heavy_off = u64::from(max_addrs) * 8;

    let mut b = ProgramBuilder::new(threads as usize);
    b.set_mem_bytes(shared_bytes + u64::from(threads) * region_bytes);

    let mut labels: Vec<Vec<(u32, String)>> = Vec::with_capacity(threads as usize);
    for t in 0..threads {
        let input_base = shared_bytes + u64::from(t) * region_bytes;
        let out_base = input_base + u64::from(spec.input_words) * 8;
        let tb = b.thread(t);
        let mut regions = vec![(tb.here(), "init".to_owned())];
        tb.imm(regs::ZERO, 0);
        tb.imm(regs::SHARED, 0);
        tb.imm(regs::INPUT, input_base);
        tb.imm(regs::OUT, out_base);
        tb.imm(regs::COMM, 0);

        emit_init(tb, &spec, cfg.seed, t);
        tb.barrier();

        for (pi, phase) in spec.phases.iter().enumerate() {
            regions.push((tb.here(), format!("phase{pi}.{}", phase.name)));
            emit_phase(
                tb,
                phase,
                pi as u32,
                t,
                threads,
                heavy_off,
                u64::from(spec.input_words),
                cfg,
            );
            tb.barrier();
        }
        tb.halt();
        labels.push(regions);
    }
    let mut p = b.build();
    for (t, regions) in labels.into_iter().enumerate() {
        p.set_thread_labels(t as u32, regions);
    }
    p.validate().expect("generated program is well-formed");
    p
}

fn round_up(x: u64, to: u64) -> u64 {
    x.div_ceil(to) * to
}

fn site_rng(seed: u64, t: u32, phase: u32, site: u32) -> SmallRng {
    let mix = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((u64::from(t) << 40) | (u64::from(phase) << 20) | u64::from(site));
    SmallRng::seed_from_u64(mix)
}

/// Initialises the per-thread input array with index-derived values.
fn emit_init(tb: &mut ThreadBuilder, spec: &crate::KernelSpec, seed: u64, t: u32) {
    let iters = u64::from(spec.input_words / SITES);
    let l = tb.begin_loop(regs::INNER, regs::INNER_LIM, iters);
    tb.alui(AluOp::Mul, regs::ADDR_T, regs::INNER, u64::from(SITES) * 8);
    tb.alu(AluOp::Add, regs::ADDR, regs::INPUT, regs::ADDR_T);
    for site in 0..SITES {
        let mut rng = site_rng(seed, t, u32::MAX, site);
        let k: u64 = rng.gen_range(3..=61) | 1;
        let c: u64 = rng.gen_range(1..=0xFFFF);
        tb.alui(AluOp::Mul, regs::ACC, regs::INNER, k);
        tb.alui(AluOp::Xor, regs::ACC, regs::ACC, c);
        tb.store(regs::ACC, regs::ADDR, u64::from(site) * 8);
    }
    tb.end_loop(l);
}

/// Assigns classes to the `SITES` static store sites by largest-remainder
/// apportionment of the class weights.
fn apportion(classes: &[ClassSpec]) -> Vec<usize> {
    let mut counts: Vec<u32> = classes
        .iter()
        .map(|c| (c.weight * f64::from(SITES)).floor() as u32)
        .collect();
    let assigned: u32 = counts.iter().sum();
    let mut remainders: Vec<(usize, f64)> = classes
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let exact = c.weight * f64::from(SITES);
            (i, exact - exact.floor())
        })
        .collect();
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut left = SITES.saturating_sub(assigned);
    for (i, _) in remainders {
        if left == 0 {
            break;
        }
        counts[i] += 1;
        left -= 1;
    }
    // Pad/truncate defensively to exactly SITES.
    let mut out = Vec::with_capacity(SITES as usize);
    for (i, n) in counts.iter().enumerate() {
        for _ in 0..*n {
            if out.len() < SITES as usize {
                out.push(i);
            }
        }
    }
    while out.len() < SITES as usize {
        out.push(0);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn emit_phase(
    tb: &mut ThreadBuilder,
    phase: &PhaseSpec,
    pi: u32,
    t: u32,
    threads: u32,
    heavy_off: u64,
    input_words: u64,
    cfg: &WorkloadConfig,
) {
    let sweeps = ((f64::from(phase.sweeps) * cfg.scale).round() as u64).max(1);
    let assignment = apportion(&phase.classes);

    let sweep_loop = tb.begin_loop(regs::SWEEP, regs::SWEEP_LIM, sweeps);

    // Main store sweep.
    emit_store_block(
        tb,
        phase,
        &assignment,
        u64::from(phase.addrs / SITES),
        0,
        cfg.seed ^ u64::from(pi) << 8,
        t,
        pi,
        input_words,
    );

    // Periodic burst block: staggered bursts fire when
    // (sweep + t) % period == 0 (rotating imbalance); unstaggered bursts
    // fire for every thread in the same sweep.
    if let Some(h) = phase.heavy {
        // The +1 keeps sweep 0 burst-free (for unstaggered bursts), so the
        // first-touch interval does not swallow the burst volume.
        let stagger = if h.staggered { u64::from(t) + 1 } else { 1 };
        tb.alui(AluOp::Add, regs::GUARD, regs::SWEEP, stagger);
        tb.alui(
            AluOp::And,
            regs::GUARD,
            regs::GUARD,
            u64::from(h.period - 1),
        );
        let bp = tb.branch_placeholder(BranchCond::Ne, regs::GUARD, regs::ZERO);
        emit_store_block(
            tb,
            phase,
            &assignment,
            u64::from(h.extra_addrs / SITES),
            heavy_off,
            cfg.seed ^ 0xBEEF ^ u64::from(pi) << 8,
            t,
            pi + 100,
            input_words,
        );
        let after = tb.here();
        tb.patch_branch(bp, after);
    }

    // Communication block.
    match phase.comm {
        Comm::None => {}
        Comm::AllToAll { period } => {
            emit_comm(tb, period, &all_to_all_partners(t, threads));
        }
        Comm::Groups { size, period } => {
            emit_comm(tb, period, &group_partners(t, threads, size));
        }
    }
    tb.end_loop(sweep_loop);
}

/// One inner loop writing `iters * SITES` words at `regs::OUT + extra_off`.
#[allow(clippy::too_many_arguments)]
fn emit_store_block(
    tb: &mut ThreadBuilder,
    phase: &PhaseSpec,
    assignment: &[usize],
    iters: u64,
    extra_off: u64,
    seed: u64,
    t: u32,
    phase_key: u32,
    input_words: u64,
) {
    if iters == 0 {
        return;
    }
    let l = tb.begin_loop(regs::INNER, regs::INNER_LIM, iters);
    tb.alui(AluOp::Mul, regs::ADDR_T, regs::INNER, u64::from(SITES) * 8);
    tb.alu(AluOp::Add, regs::ADDR, regs::OUT, regs::ADDR_T);
    if extra_off != 0 {
        tb.alui(AluOp::Add, regs::ADDR, regs::ADDR, extra_off);
    }
    for site in 0..SITES {
        let class = &phase.classes[assignment[site as usize]];
        let mut rng = site_rng(seed, t, phase_key, site);
        let value_reg = emit_value(tb, class, &mut rng, input_words);
        tb.store(value_reg, regs::ADDR, u64::from(site) * 8);
    }
    tb.end_loop(l);
}

/// Emits one store site's value computation; returns the value register.
fn emit_value(
    tb: &mut ThreadBuilder,
    class: &ClassSpec,
    rng: &mut SmallRng,
    input_words: u64,
) -> Reg {
    match class.kind {
        ClassKind::Copy => {
            let off = rng.gen_range(0..input_words) * 8;
            tb.load(regs::LD0, regs::INPUT, off);
            regs::LD0
        }
        ClassKind::Arith => {
            let depth = rng.gen_range(class.depth.0..=class.depth.1) as u32;
            let loads = class.loads.min(2);
            for r in [regs::LD0, regs::LD1].iter().take(loads as usize) {
                let off = rng.gen_range(0..input_words) * 8;
                tb.load(*r, regs::INPUT, off);
            }
            let first = *[AluOp::Add, AluOp::Xor, AluOp::Or]
                .get(rng.gen_range(0..3usize))
                .expect("index in range");
            match loads {
                2 => tb.alu(first, regs::ACC, regs::LD0, regs::LD1),
                1 => tb.alu(first, regs::ACC, regs::LD0, regs::SWEEP),
                _ => tb.alu(first, regs::ACC, regs::INNER, regs::SWEEP),
            };
            for k in 1..depth {
                if k % 9 == 4 {
                    tb.alu(AluOp::Xor, regs::ACC, regs::ACC, regs::INNER);
                } else if k % 13 == 7 {
                    tb.alu(AluOp::Add, regs::ACC, regs::ACC, regs::SWEEP);
                } else {
                    let (op, c) = random_op(rng);
                    tb.alui(op, regs::ACC, regs::ACC, c);
                }
            }
            regs::ACC
        }
    }
}

fn random_op(rng: &mut SmallRng) -> (AluOp, u64) {
    match rng.gen_range(0..8u32) {
        0 | 1 => (AluOp::Add, rng.gen_range(1..=0xF_FFFF)),
        2 => (AluOp::Sub, rng.gen_range(1..=0xFFFF)),
        3 | 4 => (AluOp::Xor, rng.gen_range(1..=0xFFFF_FFFF)),
        5 => (AluOp::Mul, rng.gen_range(1..=31u64) * 2 + 1),
        6 => (AluOp::Shl, rng.gen_range(1..=3)),
        _ => (AluOp::Shr, rng.gen_range(1..=2)),
    }
}

/// Exchange with partners every `period`-th sweep: publish the sweep
/// counter to our shared slot, read each partner's slot into the comm
/// accumulator. Peer values never reach memory (see `regs::COMM`).
fn emit_comm(tb: &mut ThreadBuilder, period: u32, partners: &[(u32, u32)]) {
    let guarded = period > 1;
    let bp = if guarded {
        tb.alui(AluOp::And, regs::GUARD, regs::SWEEP, u64::from(period - 1));
        Some(tb.branch_placeholder(BranchCond::Ne, regs::GUARD, regs::ZERO))
    } else {
        None
    };
    for &(me, partner) in partners {
        tb.store(regs::SWEEP, regs::SHARED, u64::from(me) * 64);
        tb.load(regs::LD0, regs::SHARED, u64::from(partner) * 64);
        tb.alu(AluOp::Add, regs::COMM, regs::COMM, regs::LD0);
    }
    if let Some(bp) = bp {
        let after = tb.here();
        tb.patch_branch(bp, after);
    }
}

/// Ring + chord: connects every thread into one component.
fn all_to_all_partners(t: u32, threads: u32) -> Vec<(u32, u32)> {
    if threads < 2 {
        return Vec::new();
    }
    let mut v = vec![(t, (t + 1) % threads)];
    if threads > 2 {
        v.push((t, (t + 2) % threads));
    }
    v
}

/// Ring within a disjoint group of `size` threads.
fn group_partners(t: u32, threads: u32, size: u32) -> Vec<(u32, u32)> {
    let size = size.max(1).min(threads);
    if size < 2 {
        return Vec::new();
    }
    let g = t / size;
    let base = g * size;
    let span = size.min(threads - base);
    if span < 2 {
        return Vec::new();
    }
    let partner = base + (t - base + 1) % span;
    vec![(t, partner)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_isa::interp::Interp;
    use acr_slicer::{instrument, SlicerConfig};

    fn small() -> WorkloadConfig {
        WorkloadConfig {
            threads: 4,
            scale: 0.34,
            seed: 7,
        }
    }

    #[test]
    fn all_benchmarks_generate_valid_programs() {
        for b in Benchmark::ALL {
            let p = generate(b, &small());
            assert!(p.num_threads() == 4, "{b}");
            assert!(p.static_len() > 1000, "{b} too small");
            p.validate().unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Benchmark::Ft, &small());
        let b = generate(Benchmark::Ft, &small());
        assert_eq!(a, b);
        let c = generate(Benchmark::Ft, &WorkloadConfig { seed: 8, ..small() });
        assert_ne!(a, c);
    }

    #[test]
    fn instrumented_kernels_verify_slices_end_to_end() {
        // The strongest slicer/workload oracle: run every instrumented
        // benchmark in the reference interpreter with per-ASSOC-ADDR
        // verification that the Slice reproduces the stored value.
        for b in Benchmark::ALL {
            let cfg = WorkloadConfig {
                threads: 2,
                scale: 0.2,
                seed: 11,
            };
            let p = generate(b, &cfg);
            let (ip, stats) = instrument(
                &p,
                &SlicerConfig {
                    threshold: b.default_threshold(),
                },
            );
            assert!(stats.sliced_stores > 0, "{b} has no sliceable stores");
            let mut i = Interp::new(&ip);
            i.verify_slices(true);
            i.run_to_completion(200_000_000)
                .unwrap_or_else(|e| panic!("{b}: {e}"));
        }
    }

    #[test]
    fn coverage_shapes_follow_table_ii() {
        let cfg = small();
        let coverage = |b: Benchmark, threshold: usize| {
            let p = generate(b, &cfg);
            let (_, s) = instrument(&p, &SlicerConfig { threshold });
            s.static_coverage()
        };
        // is is extremely amenable even at threshold 5.
        assert!(coverage(Benchmark::Is, 5) > 0.65);
        // cg is barely coverable at 10 but jumps at 20 and 30 (Table II).
        // (Static coverage here includes the init phase, which inflates
        // the absolute numbers; the dynamic checkpoint-size reductions are
        // asserted at the experiment level and in table2 harness tests.)
        let cg10 = coverage(Benchmark::Cg, 10);
        let cg20 = coverage(Benchmark::Cg, 20);
        let cg30 = coverage(Benchmark::Cg, 30);
        assert!(cg20 > cg10 + 0.25, "cg@10 = {cg10}, cg@20 = {cg20}");
        assert!(cg30 > cg20 + 0.1, "cg@30 = {cg30}");
        // bt climbs steeply between 20 and 30.
        let bt20 = coverage(Benchmark::Bt, 20);
        let bt30 = coverage(Benchmark::Bt, 30);
        assert!(bt30 > bt20 + 0.2, "bt {bt20} -> {bt30}");
    }

    #[test]
    fn partners_connectivity() {
        // All-to-all must connect all threads through ring edges.
        let mut reach = [false; 8];
        reach[0] = true;
        for _ in 0..8 {
            for t in 0..8u32 {
                for (a, b) in all_to_all_partners(t, 8) {
                    if reach[a as usize] || reach[b as usize] {
                        reach[a as usize] = true;
                        reach[b as usize] = true;
                    }
                }
            }
        }
        assert!(reach.iter().all(|&r| r));
        // Group partners stay within the group.
        for t in 0..8u32 {
            for (a, b) in group_partners(t, 8, 4) {
                assert_eq!(a / 4, b / 4);
            }
        }
        // Degenerate cases.
        assert!(group_partners(0, 1, 4).is_empty());
        assert!(all_to_all_partners(0, 1).is_empty());
    }

    #[test]
    fn apportion_matches_weights_by_largest_remainder() {
        use crate::spec::ClassSpec;
        let classes = [
            ClassSpec {
                weight: 0.50,
                kind: ClassKind::Arith,
                depth: (2, 4),
                loads: 0,
            },
            ClassSpec {
                weight: 0.30,
                kind: ClassKind::Arith,
                depth: (5, 9),
                loads: 1,
            },
            ClassSpec {
                weight: 0.15,
                kind: ClassKind::Arith,
                depth: (12, 19),
                loads: 1,
            },
            ClassSpec {
                weight: 0.05,
                kind: ClassKind::Copy,
                depth: (0, 0),
                loads: 1,
            },
        ];
        let a = apportion(&classes);
        assert_eq!(a.len(), SITES as usize);
        let count = |c: usize| a.iter().filter(|&&x| x == c).count();
        assert_eq!(count(0), 32); // 0.50 * 64
        assert_eq!(count(1), 19); // 0.30 * 64 = 19.2
        assert_eq!(count(2), 10); // 0.15 * 64 = 9.6 -> rounds up via remainder
        assert_eq!(count(3), 3); // 0.05 * 64 = 3.2
    }

    #[test]
    fn tiny_weights_survive_apportionment_or_vanish_gracefully() {
        use crate::spec::ClassSpec;
        let classes = [
            ClassSpec {
                weight: 0.995,
                kind: ClassKind::Arith,
                depth: (2, 4),
                loads: 0,
            },
            ClassSpec {
                weight: 0.005,
                kind: ClassKind::Copy,
                depth: (0, 0),
                loads: 1,
            },
        ];
        let a = apportion(&classes);
        assert_eq!(a.len(), SITES as usize);
        // 0.005 * 64 = 0.32 sites: either 0 or 1, never more.
        assert!(a.iter().filter(|&&x| x == 1).count() <= 1);
    }

    #[test]
    fn thread_count_scales_memory() {
        let p8 = generate(Benchmark::Mg, &WorkloadConfig::default());
        let p32 = generate(Benchmark::Mg, &WorkloadConfig::default().with_threads(32));
        assert!(p32.mem_bytes() > p8.mem_bytes() * 3);
        assert_eq!(p32.num_threads(), 32);
    }
}
